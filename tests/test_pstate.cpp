#include "platform/pstate.hpp"

#include <gtest/gtest.h>

namespace epajsrm::platform {
namespace {

TEST(PstateTable, LinearLadderEndpoints) {
  const PstateTable t = PstateTable::linear(2.6, 1.2, 8);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_DOUBLE_EQ(t.freq_ghz(0), 2.6);
  EXPECT_DOUBLE_EQ(t.freq_ghz(7), 1.2);
  EXPECT_EQ(t.deepest(), 7u);
}

TEST(PstateTable, RatiosDescendFromOne) {
  const PstateTable t = PstateTable::linear(2.0, 1.0, 5);
  EXPECT_DOUBLE_EQ(t.ratio(0), 1.0);
  for (std::uint32_t i = 1; i < t.size(); ++i) {
    EXPECT_LT(t.ratio(i), t.ratio(i - 1));
  }
  EXPECT_DOUBLE_EQ(t.ratio(4), 0.5);
}

TEST(PstateTable, SingleStateLadder) {
  const PstateTable t = PstateTable::linear(3.0, 1.0, 1);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.ratio(0), 1.0);
}

TEST(PstateTable, StateAtOrBelowSnapsDown) {
  const PstateTable t = PstateTable::linear(2.0, 1.0, 5);  // ratios 1,.875,.75,.625,.5
  EXPECT_EQ(t.state_at_or_below(1.0), 0u);
  EXPECT_EQ(t.state_at_or_below(0.9), 1u);
  EXPECT_EQ(t.state_at_or_below(0.75), 2u);
  EXPECT_EQ(t.state_at_or_below(0.60), 4u);
  EXPECT_EQ(t.state_at_or_below(0.10), 4u);  // deepest when nothing fits
}

TEST(PstateTable, ExplicitTableValidated) {
  EXPECT_THROW(PstateTable({}), std::invalid_argument);
  EXPECT_THROW(PstateTable({2.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(PstateTable({2.0, 2.5}), std::invalid_argument);
  EXPECT_THROW(PstateTable({2.0, -1.0}), std::invalid_argument);
  EXPECT_NO_THROW(PstateTable({2.6, 2.2, 1.8}));
}

TEST(PstateTable, OutOfRangeIndexThrows) {
  const PstateTable t = PstateTable::linear(2.0, 1.0, 3);
  EXPECT_THROW(t.freq_ghz(3), std::out_of_range);
}

TEST(PstateTable, LinearRejectsBadArguments) {
  EXPECT_THROW(PstateTable::linear(2.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(PstateTable::linear(1.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(PstateTable::linear(2.0, -1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace epajsrm::platform
