// First-come-first-served scheduling (no backfilling): the queue head
// blocks everything behind it. The baseline every backfilling study
// compares against.
#pragma once

#include "sched/scheduler.hpp"

namespace epajsrm::sched {

/// Strict in-order launcher.
class FcfsScheduler final : public SchedulerPolicy {
 public:
  void schedule(SchedulingContext& ctx) override;
  std::string name() const override { return "fcfs"; }
};

}  // namespace epajsrm::sched
