// Per-user energy scoreboard — Tokyo Tech's technology-development row:
// "Gives users mark on how well they used power and energy". Aggregates
// the end-of-job energy reports into per-user totals, average efficiency
// and a letter mark, and renders the ranking sites would publish to their
// users.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/energy_accounting.hpp"

namespace epajsrm::telemetry {

/// Aggregated energy behaviour of one user.
struct UserScore {
  std::string user;
  std::uint64_t jobs = 0;
  double total_kwh = 0.0;
  double node_hours = 0.0;
  /// Energy intensity: kWh per node-hour (lower = thriftier).
  double kwh_per_node_hour = 0.0;
  /// Mean of per-job grades mapped A=1..E=5, rendered back to a letter.
  char mark = 'C';
};

/// Accumulates job reports into user scores.
class UserScoreboard {
 public:
  /// Ingests one end-of-job report.
  void add(const JobEnergyReport& report);

  /// Ingests a batch (e.g. core::RunResult::job_reports).
  void add_all(const std::vector<JobEnergyReport>& reports);

  /// Scores sorted by energy intensity, thriftiest first. Users need at
  /// least `min_jobs` finished jobs to be ranked (default 1).
  std::vector<UserScore> ranking(std::uint64_t min_jobs = 1) const;

  /// Score of one user; nullptr-like empty optional semantics via jobs==0.
  UserScore score_of(const std::string& user) const;

  std::size_t user_count() const { return users_.size(); }

  /// Renders the user-facing leaderboard.
  static std::string format_ranking(const std::vector<UserScore>& scores);

 private:
  struct Accum {
    std::uint64_t jobs = 0;
    double kwh = 0.0;
    double node_hours = 0.0;
    double grade_points = 0.0;  // A=1..E=5 summed
  };
  static UserScore to_score(const std::string& user, const Accum& a);

  std::map<std::string, Accum> users_;
};

}  // namespace epajsrm::telemetry
