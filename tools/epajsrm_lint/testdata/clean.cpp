// Fixture: no rule may fire on this file. It exercises the reasons the
// linter must NOT flag: suppression comments, comments and string
// literals mentioning banned constructs, properly suffixed quantities,
// function declarations, and qualified definitions.
#include <chrono>
#include <string>
#include <vector>

// A comment may say const_cast, rand(), steady_clock or .at(i) freely.
static const char* kDoc = "const_cast and rand() are banned; .at( too";

struct Quantities {
  double node_watts = 90.0;
  double total_energy_joules = 0.0;
  double budget_kwh = 1.5;
  double power_factor = 1.0;       // dimensionless: semantic ending
  double energy_epsilon_rel = 1e-9;
};

// Function declarations are not quantity variables.
double watts_at(double freq_ratio, double utilization);

class PowerModel {
 public:
  double peak_watts() const;
};

// Qualified definitions are scope names, not variables.
double PowerModel::peak_watts() const { return 270.0; }

int checked_lookup(const std::vector<int>& table, unsigned i) {
  return table.at(i);  // lint:allow(unguarded-at)
}

long profiled_now_ns() {
  const auto t0 = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
  return t0.time_since_epoch().count();
}

void legacy_api(const int* cp) {
  int* p = const_cast<int*>(cp);  // lint:allow(const-cast)
  (void)p;
  (void)kDoc;
}

// Plain declarations of the type are fine; brace-init needs a suppression.
struct ScenarioConfig {
  int nodes = 0;
};

ScenarioConfig builder_escape_hatch() {
  ScenarioConfig config;  // no braces: not aggregate init
  config.nodes = 4;
  auto raw = ScenarioConfig{.nodes = 2};  // lint:allow(scenario-aggregate)
  (void)raw;
  return config;
}

// power-sweep: a suppression on the loop header covers the whole body
// (this is how the invariant auditor's brute-force parity sweep is
// sanctioned), and state-only sweeps with no power getters are free.
struct SweepNode {
  double current_watts() const { return 90.0; }
  bool schedulable() const { return true; }
  void set_current_watts(double) {}
};
struct SweepCluster {
  SweepNode* nodes() const { return nullptr; }
};

double sanctioned_parity_sweep(const SweepCluster& cluster) {
  double total_watts = 0.0;
  for (const SweepNode& node : cluster.nodes()) {  // lint:allow(power-sweep)
    total_watts += node.current_watts();
  }
  return total_watts;
}

// unbounded-series: bounded-by-construction stores may keep sample-store
// names when suppressed, and transient output vectors are out of scope by
// name.
struct SeriesPoint {
  long t_us = 0;
  double value = 0.0;
};

class BoundedRetention {
 public:
  void on_tick(long t_us, double value) {
    // Pruned to a fixed window right below: bounded despite the name.
    window_samples_.push_back({t_us, value});  // lint:allow(unbounded-series)
    if (window_samples_.size() > 16) window_samples_.erase(
        window_samples_.begin());
  }

  std::vector<long> snapshot_times() const {
    std::vector<long> out;
    for (const SeriesPoint& p : window_samples_) out.push_back(p.t_us);
    return out;  // `out` is not a sample store: no suppression needed
  }

 private:
  std::vector<SeriesPoint> window_samples_;
};

// raw-socket: comments and strings may mention socket(2) or
// #include <sys/socket.h> freely; identifiers that merely contain the
// word do not match, and a sanctioned call takes a suppression.
static const char* kSocketDoc = "socket(AF_INET, ...) lives in net/carrier";
extern int socket(int, int, int);  // lint:allow(raw-socket)
int borrow_carrier_descriptor() {
  (void)kSocketDoc;
  int socket_fd_shim = socket(2, 1, 0);  // lint:allow(raw-socket)
  return socket_fd_shim;
}

int state_only_sweep(SweepCluster& cluster) {
  int usable = 0;
  for (SweepNode& node : cluster.nodes()) {
    if (node.schedulable()) ++usable;  // no power read: fine
    node.set_current_watts(90.0);      // setters are writes, not reads
  }
  return usable;
}
