#include "survey/activities.hpp"

#include <algorithm>
#include <set>

namespace epajsrm::survey {

const char* to_string(Maturity m) {
  switch (m) {
    case Maturity::kResearch:        return "Research";
    case Maturity::kTechDevelopment: return "Tech. development";
    case Maturity::kProduction:      return "Production";
  }
  return "?";
}

const char* to_string(Technique t) {
  switch (t) {
    case Technique::kPowerCapping:        return "power capping";
    case Technique::kDynamicPowerSharing: return "dynamic power sharing";
    case Technique::kDvfsScheduling:      return "DVFS-aware scheduling";
    case Technique::kNodeShutdown:        return "node shutdown";
    case Technique::kEnergyReporting:     return "energy reporting";
    case Technique::kPowerPrediction:     return "power prediction";
    case Technique::kEmergencyResponse:   return "emergency response";
    case Technique::kSourceSelection:     return "energy-source selection";
    case Technique::kLayoutAware:         return "layout-aware scheduling";
    case Technique::kThermalAware:        return "thermal-aware scheduling";
    case Technique::kCostAwareOrdering:   return "cost-aware ordering";
    case Technique::kMoldableJobs:        return "moldable jobs";
    case Technique::kMonitoring:          return "power/energy monitoring";
    case Technique::kInterSystemCapping:  return "inter-system capping";
    case Technique::kVmSplitting:         return "VM node splitting";
  }
  return "?";
}

const std::vector<Activity>& all_activities() {
  using M = Maturity;
  using T = Technique;
  static const std::vector<Activity> activities = {
      // --- Table I: RIKEN ----------------------------------------------------
      {"RIKEN", M::kResearch, T::kSourceSelection,
       "Integrating job scheduler info with decision to use grid vs. gas "
       "turbine energy",
       "epa/source_selection"},
      {"RIKEN", M::kTechDevelopment, T::kDvfsScheduling,
       "Power-aware job scheduling for Post-K, with Fujitsu",
       "epa/power_budget_dvfs"},
      {"RIKEN", M::kProduction, T::kCostAwareOrdering,
       "3 days for large jobs each month", "workload (capability mix)"},
      {"RIKEN", M::kProduction, T::kEmergencyResponse,
       "Automated emergency job killing if power limit exceeded",
       "epa/emergency_response"},
      {"RIKEN", M::kProduction, T::kPowerPrediction,
       "Pre-run estimate of power usage of each job, based on temperature",
       "predict/tag_history"},

      // --- Table I: Tokyo Tech -----------------------------------------------
      {"TokyoTech", M::kResearch, T::kMonitoring,
       "Activities to facilitate production development", "telemetry"},
      {"TokyoTech", M::kTechDevelopment, T::kInterSystemCapping,
       "Inter-system power capping: TSUBAME2 and TSUBAME3 share the "
       "facility power budget",
       "epa/group_power_cap"},
      {"TokyoTech", M::kProduction, T::kNodeShutdown,
       "RM dynamically boots or shuts down nodes to stay under power cap "
       "(summer only, ~30 min window), cooperates with PBS Pro, no job "
       "kills (NEC implemented)",
       "epa/node_cycling_cap"},
      {"TokyoTech", M::kProduction, T::kNodeShutdown,
       "RM shuts down nodes that have been idle for a long time",
       "epa/idle_shutdown"},
      {"TokyoTech", M::kProduction, T::kVmSplitting,
       "Uses virtual machines to split compute nodes (complicates physical "
       "node shutdown)",
       "platform/node (core-level sharing)"},
      {"TokyoTech", M::kResearch, T::kPowerPrediction,
       "Analyze archived power/energy info for EPA scheduling",
       "predict/ridge"},
      {"TokyoTech", M::kTechDevelopment, T::kEnergyReporting,
       "Gives users mark on how well they used power and energy",
       "telemetry/energy_accounting (grade)"},
      {"TokyoTech", M::kProduction, T::kEnergyReporting,
       "Energy use provided to users at end of every job",
       "telemetry/energy_accounting"},

      // --- Table I: CEA --------------------------------------------------------
      {"CEA", M::kResearch, T::kDvfsScheduling,
       "Investigating mpi_yield_when_idle; BULL power capping and DVFS",
       "power/node_power_model"},
      {"CEA", M::kTechDevelopment, T::kDvfsScheduling,
       "With BULL, developing power-adaptive scheduling in SLURM",
       "epa/power_budget_dvfs"},
      {"CEA", M::kTechDevelopment, T::kLayoutAware,
       "Developing 'layout logic' in SLURM: know which PDUs/chillers a "
       "node depends on; avoid scheduling onto them during maintenance",
       "rm/layout"},
      {"CEA", M::kProduction, T::kNodeShutdown,
       "Manually shutting down nodes to shift power budget between systems",
       "rm/node_lifecycle"},

      // --- Table I: KAUST -------------------------------------------------------
      {"KAUST", M::kResearch, T::kMonitoring,
       "Monitoring and managing power under data-center power and cooling "
       "limits",
       "telemetry/monitor"},
      {"KAUST", M::kTechDevelopment, T::kPowerPrediction,
       "Analyzing and detecting the most power-hungry applications in "
       "production; optimal power-limit strategy for users on Shaheen",
       "predict/*"},
      {"KAUST", M::kProduction, T::kPowerCapping,
       "Static power capping via Cray CAPMC: 30% of nodes uncapped, 70% at "
       "270 W",
       "epa/static_power_cap"},
      {"KAUST", M::kProduction, T::kDynamicPowerSharing,
       "SLURM Dynamic Power Management interfacing with Cray CAPMC "
       "(co-developed with SchedMD)",
       "epa/power_budget_dvfs + epa/dynamic_power_share"},

      // --- Table I: LRZ -----------------------------------------------------------
      {"LRZ", M::kResearch, T::kDvfsScheduling,
       "Investigating merging SLURM and GEOPM for system energy & power "
       "control; scheduling for power instead of energy",
       "epa/power_budget_dvfs"},
      {"LRZ", M::kResearch, T::kThermalAware,
       "Linking job scheduler with IT infrastructure + cooling; delay jobs "
       "when infrastructure is inefficient",
       "epa/ms3_thermal (infrastructure variant)"},
      {"LRZ", M::kTechDevelopment, T::kDvfsScheduling,
       "Adding energy-aware scheduling to SLURM, like LoadLeveler today",
       "epa/energy_to_solution"},
      {"LRZ", M::kProduction, T::kDvfsScheduling,
       "First run of a new app characterized for frequency, runtime, "
       "energy; admin selects energy-to-solution or best performance "
       "(LoadLeveler EAS with IBM, ported to LSF)",
       "epa/energy_to_solution"},

      // --- Table II: STFC -----------------------------------------------------------
      {"STFC", M::kResearch, T::kDvfsScheduling,
       "IBM/LSF energy-aware scheduling on a 360-node system; PowerAPI "
       "interface for code-segment power measurement; GEOPM-style policies",
       "epa/energy_to_solution + telemetry/sensor"},
      {"STFC", M::kTechDevelopment, T::kEnergyReporting,
       "Deployment of user power-consumption reporting at job level (fine "
       "and coarse granularity)",
       "telemetry/energy_accounting"},
      {"STFC", M::kProduction, T::kMonitoring,
       "Continuously collecting power/energy monitoring info at data "
       "center, machine and job level",
       "telemetry/monitor"},

      // --- Table II: Trinity (LANL + Sandia) -------------------------------------------
      {"Trinity", M::kResearch, T::kPowerPrediction,
       "Analyzing power monitoring info to assess EPA scheduling "
       "potential; gathering traces for evaluating EPA approaches",
       "workload/swf + predict/*"},
      {"Trinity", M::kTechDevelopment, T::kDvfsScheduling,
       "EPA job scheduling with Adaptive for MOAB/Torque via Cray CAPMC "
       "and Power API; Power API implementation with Cray",
       "epa/power_budget_dvfs + telemetry/sensor"},
      {"Trinity", M::kProduction, T::kPowerCapping,
       "Cray CAPMC power capping: out-of-band, admin system-wide and "
       "node-level caps on all Cray XC systems",
       "power/capmc + epa/static_power_cap"},

      // --- Table II: CINECA ------------------------------------------------------------
      {"CINECA", M::kResearch, T::kPowerPrediction,
       "Scalable power monitoring used to predict per-job power and to "
       "build predictive node power/temperature models (with U. Bologna)",
       "predict/ridge + power/thermal"},
      {"CINECA", M::kTechDevelopment, T::kDvfsScheduling,
       "Developing EPA job scheduling in SLURM with E4; tracking BULL and "
       "SchedMD EPA SLURM work",
       "epa/power_budget_dvfs"},
      {"CINECA", M::kProduction, T::kThermalAware,
       "EPA job scheduling on Eurora (PBSPro, with Altair; now "
       "decommissioned)",
       "epa/ms3_thermal"},

      // --- Table II: JCAHPC -------------------------------------------------------------
      {"JCAHPC", M::kResearch, T::kMonitoring,
       "Activities to facilitate production development", "telemetry"},
      {"JCAHPC", M::kProduction, T::kPowerCapping,
       "Ability to set power caps for groups of nodes via the RM (Fujitsu "
       "proprietary)",
       "epa/group_power_cap"},
      {"JCAHPC", M::kProduction, T::kEmergencyResponse,
       "Manual emergency response: admin sets power cap",
       "epa/emergency_response (manual mode)"},
      {"JCAHPC", M::kProduction, T::kEnergyReporting,
       "Delivering post-job energy use reports to users",
       "telemetry/energy_accounting"},
  };
  return activities;
}

std::vector<Activity> activities_of(const std::string& center) {
  std::vector<Activity> out;
  for (const Activity& a : all_activities()) {
    if (a.center == center) out.push_back(a);
  }
  return out;
}

std::vector<Activity> activities_of(const std::string& center, Maturity m) {
  std::vector<Activity> out;
  for (const Activity& a : all_activities()) {
    if (a.center == center && a.maturity == m) out.push_back(a);
  }
  return out;
}

std::vector<Activity> activities_with(Technique t) {
  std::vector<Activity> out;
  for (const Activity& a : all_activities()) {
    if (a.technique == t) out.push_back(a);
  }
  return out;
}

std::size_t centers_with(Technique t, Maturity m) {
  std::set<std::string> centers;
  for (const Activity& a : all_activities()) {
    if (a.technique == t && a.maturity == m) centers.insert(a.center);
  }
  return centers.size();
}

}  // namespace epajsrm::survey
