#include "telemetry/power_api.hpp"

#include <algorithm>

namespace epajsrm::telemetry {

const char* to_string(PwrObjType t) {
  switch (t) {
    case PwrObjType::kPlatform: return "platform";
    case PwrObjType::kCabinet:  return "cabinet";
    case PwrObjType::kNode:     return "node";
  }
  return "?";
}

const char* to_string(PwrAttr a) {
  switch (a) {
    case PwrAttr::kPower:         return "PWR_ATTR_POWER";
    case PwrAttr::kPowerLimitMax: return "PWR_ATTR_POWER_LIMIT_MAX";
    case PwrAttr::kTemp:          return "PWR_ATTR_TEMP";
    case PwrAttr::kFreq:          return "PWR_ATTR_FREQ";
    case PwrAttr::kEnergy:        return "PWR_ATTR_ENERGY";
  }
  return "?";
}

PwrNotImplemented::PwrNotImplemented(const PwrObject& object, PwrAttr attr)
    : std::logic_error(std::string(to_string(attr)) + " not implemented on " +
                       to_string(object.type) + " '" + object.name + "'") {}

PowerApiContext::PowerApiContext(
    platform::Cluster& cluster, const power::PowerLedger& ledger,
    power::CapmcController* capmc,
    std::function<double(platform::NodeId)> energy_meter)
    : cluster_(&cluster), ledger_(&ledger), capmc_(capmc),
      energy_meter_(std::move(energy_meter)) {
  rack_count_ = static_cast<std::uint32_t>(ledger.rack_count());
}

PwrObject PowerApiContext::entry_point() const {
  return PwrObject{PwrObjType::kPlatform, 0, cluster_->name()};
}

std::vector<PwrObject> PowerApiContext::children(
    const PwrObject& object) const {
  std::vector<PwrObject> out;
  switch (object.type) {
    case PwrObjType::kPlatform:
      for (std::uint32_t r = 0; r < rack_count_; ++r) {
        out.push_back({PwrObjType::kCabinet, r,
                       cluster_->name() + ".cab" + std::to_string(r)});
      }
      break;
    case PwrObjType::kCabinet:
      for (const platform::Node& node : cluster_->nodes()) {
        if (node.rack() == object.index) {
          out.push_back({PwrObjType::kNode, node.id(),
                         object.name + ".node" + std::to_string(node.id())});
        }
      }
      break;
    case PwrObjType::kNode:
      break;
  }
  return out;
}

PwrObject PowerApiContext::parent(const PwrObject& object) const {
  switch (object.type) {
    case PwrObjType::kPlatform:
      return object;
    case PwrObjType::kCabinet:
      return entry_point();
    case PwrObjType::kNode: {
      const std::uint32_t rack = cluster_->node(object.index).rack();
      return PwrObject{PwrObjType::kCabinet, rack,
                       cluster_->name() + ".cab" + std::to_string(rack)};
    }
  }
  return entry_point();
}

std::vector<platform::NodeId> PowerApiContext::nodes_of(
    const PwrObject& object) const {
  std::vector<platform::NodeId> out;
  switch (object.type) {
    case PwrObjType::kPlatform:
      for (const platform::Node& node : cluster_->nodes()) {
        out.push_back(node.id());
      }
      break;
    case PwrObjType::kCabinet:
      for (const platform::Node& node : cluster_->nodes()) {
        if (node.rack() == object.index) out.push_back(node.id());
      }
      break;
    case PwrObjType::kNode:
      out.push_back(object.index);
      break;
  }
  return out;
}

double PowerApiContext::attr_get(const PwrObject& object, PwrAttr attr) const {
  switch (attr) {
    case PwrAttr::kPower:
      // The ledger's hierarchical aggregates make these O(1) regardless of
      // how many nodes the object spans.
      switch (object.type) {
        case PwrObjType::kPlatform: return ledger_->it_power_watts();
        case PwrObjType::kCabinet:  return ledger_->rack_power_watts(object.index);
        case PwrObjType::kNode:     return ledger_->node_watts(object.index);
      }
      throw PwrNotImplemented(object, attr);
    case PwrAttr::kPowerLimitMax:
      // Aggregate limit: sum of node caps; 0 if any member is uncapped.
      switch (object.type) {
        case PwrObjType::kPlatform:
          return ledger_->capped_node_count() < ledger_->node_count()
                     ? 0.0
                     : ledger_->cap_sum_watts();
        case PwrObjType::kCabinet:
          return ledger_->rack_capped_count(object.index) <
                         ledger_->rack_node_count(object.index)
                     ? 0.0
                     : ledger_->rack_cap_sum_watts(object.index);
        case PwrObjType::kNode:
          return ledger_->node_cap_watts(object.index);
      }
      throw PwrNotImplemented(object, attr);
    case PwrAttr::kTemp:
      if (object.type != PwrObjType::kNode) {
        throw PwrNotImplemented(object, attr);
      }
      return ledger_->node_temperature_c(object.index);
    case PwrAttr::kFreq:
      if (object.type != PwrObjType::kNode) {
        throw PwrNotImplemented(object, attr);
      }
      return cluster_->node(object.index).effective_freq_ratio() *
             cluster_->pstates().freq_ghz(0);
    case PwrAttr::kEnergy: {
      if (!energy_meter_) throw PwrNotImplemented(object, attr);
      double sum = 0.0;
      for (platform::NodeId id : nodes_of(object)) {
        sum += energy_meter_(id);
      }
      return sum;
    }
  }
  throw PwrNotImplemented(object, attr);
}

void PowerApiContext::attr_set(const PwrObject& object, PwrAttr attr,
                               double value) {
  if (attr != PwrAttr::kPowerLimitMax) {
    throw PwrNotImplemented(object, attr);
  }
  if (capmc_ == nullptr) {
    throw std::logic_error("read-only Power API context");
  }
  switch (object.type) {
    case PwrObjType::kPlatform:
      capmc_->set_system_cap(value);
      break;
    case PwrObjType::kCabinet: {
      const auto nodes = nodes_of(object);
      if (!nodes.empty()) {
        capmc_->set_group_cap(nodes,
                              value > 0.0
                                  ? value / static_cast<double>(nodes.size())
                                  : 0.0);
      }
      break;
    }
    case PwrObjType::kNode:
      capmc_->set_node_cap(object.index, value);
      break;
  }
}

std::size_t PowerApiContext::object_count() const {
  return 1 + rack_count_ + cluster_->node_count();
}

}  // namespace epajsrm::telemetry
