// Physical-plant model: PDUs, cooling loops, ambient environment and the
// facility power envelope. This is the layer the survey's Figure 1 calls
// "physical plant actuation" — CEA's layout logic (avoid nodes whose PDU or
// chiller is in maintenance), Tokyo Tech's facility cap, and LRZ's
// "delay jobs when IT infrastructure is inefficient" all act here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/ids.hpp"
#include "sim/time.hpp"

namespace epajsrm::platform {

/// A power distribution unit feeding a set of nodes.
struct Pdu {
  PduId id = 0;
  std::string name;
  double capacity_watts = 0.0;  ///< breaker limit; 0 = unlimited
  bool under_maintenance = false;
  std::vector<NodeId> nodes;  ///< nodes fed by this PDU
};

/// A cooling loop (CRAH/chiller circuit) serving a set of nodes.
struct CoolingLoop {
  CoolingId id = 0;
  std::string name;
  double heat_capacity_watts = 0.0;  ///< removable heat; 0 = unlimited
  double supply_temp_c = 18.0;       ///< air/water supply temperature
  bool under_maintenance = false;
  std::vector<NodeId> nodes;  ///< nodes cooled by this loop
};

/// Sinusoidal outside-air temperature: daily cycle plus optional seasonal
/// drift. Drives cooling efficiency (PUE) and the MS3 thermal policy.
class AmbientModel {
 public:
  /// `mean_c` daily mean, `daily_swing_c` peak-to-mean amplitude,
  /// `peak_hour` hour-of-day of the maximum (default 15:00).
  AmbientModel(double mean_c = 18.0, double daily_swing_c = 6.0,
               double peak_hour = 15.0)
      : mean_c_(mean_c), swing_c_(daily_swing_c), peak_hour_(peak_hour) {}

  /// Outside temperature at simulation time t.
  double temperature_c(sim::SimTime t) const;

  double mean_c() const { return mean_c_; }
  void set_mean_c(double c) { mean_c_ = c; }
  double daily_swing_c() const { return swing_c_; }
  double peak_hour() const { return peak_hour_; }

 private:
  double mean_c_;
  double swing_c_;
  double peak_hour_;
};

/// Facility-level electrical/cooling description.
///
/// Total facility draw = IT power + cooling overhead, where the overhead is
/// a PUE-style factor that degrades as outside temperature rises above the
/// free-cooling threshold (coarse model of chiller COP loss).
class Facility {
 public:
  struct Config {
    double site_power_capacity_watts = 0.0;  ///< Q2(a); 0 = unlimited
    double cooling_capacity_watts = 0.0;     ///< Q2(b); 0 = unlimited
    /// PUE at/below the free-cooling threshold temperature.
    double base_pue = 1.25;
    /// Additional PUE per degree C above the threshold.
    double pue_slope_per_c = 0.01;
    double free_cooling_threshold_c = 16.0;
  };

  explicit Facility(Config config, AmbientModel ambient = AmbientModel())
      : config_(config), ambient_(ambient) {}

  const Config& config() const { return config_; }
  const AmbientModel& ambient() const { return ambient_; }
  AmbientModel& ambient() { return ambient_; }

  /// Effective PUE at time t given the ambient model.
  double pue(sim::SimTime t) const;

  /// Facility draw (watts from the feed) for a given IT load at time t.
  double facility_watts(double it_watts, sim::SimTime t) const {
    return it_watts * pue(t);
  }

  /// The IT power that would exactly hit the site capacity at time t
  /// (infinity surrogate when the site is uncapacitated).
  double it_watts_headroom(sim::SimTime t) const;

  // --- plant inventory ---------------------------------------------------

  /// Registers a PDU; returns its id. Node membership is filled by the
  /// ClusterBuilder.
  PduId add_pdu(Pdu pdu);
  CoolingId add_cooling_loop(CoolingLoop loop);

  std::vector<Pdu>& pdus() { return pdus_; }
  const std::vector<Pdu>& pdus() const { return pdus_; }
  Pdu& pdu(PduId id);
  const Pdu& pdu(PduId id) const;

  std::vector<CoolingLoop>& cooling_loops() { return cooling_; }
  const std::vector<CoolingLoop>& cooling_loops() const { return cooling_; }
  CoolingLoop& cooling_loop(CoolingId id);
  const CoolingLoop& cooling_loop(CoolingId id) const;

 private:
  Config config_;
  AmbientModel ambient_;
  std::vector<Pdu> pdus_;
  std::vector<CoolingLoop> cooling_;
};

}  // namespace epajsrm::platform
