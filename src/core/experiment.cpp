#include "core/experiment.hpp"

#include <cstdio>

#include "sim/thread_pool.hpp"

namespace epajsrm::core {

std::string ReplicatedResult::format(const metrics::DistributionSummary& s,
                                     int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f [%.*f..%.*f]", precision, s.median,
                precision, s.min, precision, s.max);
  return buf;
}

ReplicatedResult run_replicated(
    const std::function<ScenarioConfig(std::uint64_t)>& make_config,
    const std::function<void(Scenario&)>& customize,
    std::size_t replications, std::uint64_t base_seed) {
  std::vector<RunResult> results(replications);
  sim::ThreadPool::parallel_for(replications, [&](std::size_t i) {
    ScenarioConfig config = make_config(base_seed + i);
    config.seed = base_seed + i;
    Scenario scenario(config);
    if (customize) customize(scenario);
    results[i] = scenario.run();
  });

  std::vector<double> kwh, util, wait, viol, done, makespan;
  for (const RunResult& r : results) {
    kwh.push_back(r.total_it_kwh_exact);
    util.push_back(r.report.mean_core_utilization);
    wait.push_back(r.report.wait_minutes.median);
    viol.push_back(r.report.violation_fraction);
    done.push_back(static_cast<double>(r.report.jobs_completed));
    makespan.push_back(sim::to_hours(r.report.makespan));
  }

  ReplicatedResult out;
  out.label = results.empty() ? "" : results.front().report.label;
  out.replications = replications;
  out.total_kwh = metrics::summarize(kwh);
  out.mean_utilization = metrics::summarize(util);
  out.median_wait_minutes = metrics::summarize(wait);
  out.violation_fraction = metrics::summarize(viol);
  out.jobs_completed = metrics::summarize(done);
  out.makespan_hours = metrics::summarize(makespan);
  return out;
}

}  // namespace epajsrm::core
