// Line-oriented flat-JSON codec shared by every wire boundary in the
// project (the EDC decision protocol and the svc scenario service).
//
// One serialized message is one JSON object on one line. The writer emits
// keys in call order, so serialization is byte-stable; doubles are printed
// with std::to_chars (shortest form that round-trips exactly) and parsed
// with std::from_chars, so a value survives serialize -> parse
// bit-identically — the property every determinism guarantee built on top
// of this codec rests on.
//
// The parser accepts exactly the subset the writer produces: one flat
// object, string / number / number-array values, \" and \\ escapes, no
// nesting. Failures throw LineError carrying the 1-based line number of
// the offending line within its batch; protocol layers translate that
// into their own error types without losing the position.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace epajsrm::net {

/// A malformed or out-of-contract line. `line` is the 1-based position
/// within the batch that failed; the what() string repeats it.
class LineError : public std::runtime_error {
 public:
  LineError(std::size_t line, const std::string& detail)
      : std::runtime_error("line " + std::to_string(line) + ": " + detail),
        line_(line),
        detail_(detail) {}

  std::size_t line() const { return line_; }
  const std::string& detail() const { return detail_; }

 private:
  std::size_t line_;
  std::string detail_;
};

/// Shortest decimal form of `value` that std::from_chars parses back to
/// the identical bits (std::to_chars default semantics).
std::string format_double(double value);

/// Escapes `text` for embedding in a JSON string: `"` and `\` get a
/// backslash (the only escapes the parser understands — keep payload
/// strings free of control characters).
std::string escape(std::string_view text);

/// Minimal writer for flat one-line JSON objects. Keys are emitted in
/// call order, so serialization is byte-stable.
class LineWriter {
 public:
  void field(std::string_view key, std::string_view string_value) {
    open(key);
    out_ += '"';
    out_ += escape(string_value);
    out_ += '"';
  }

  void field(std::string_view key, std::uint64_t value) {
    open(key);
    out_ += std::to_string(value);
  }

  void field(std::string_view key, std::int64_t value) {
    open(key);
    out_ += std::to_string(value);
  }

  void field(std::string_view key, double value) {
    open(key);
    out_ += format_double(value);
  }

  void field(std::string_view key, const std::vector<std::uint64_t>& ids) {
    open(key);
    out_ += '[';
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) out_ += ',';
      out_ += std::to_string(ids[i]);
    }
    out_ += ']';
  }

  std::string finish() {
    out_ += '}';
    return std::move(out_);
  }

 private:
  void open(std::string_view key) {
    out_ += out_.empty() ? '{' : ',';
    out_ += '"';
    out_.append(key);
    out_ += "\":";
  }

  std::string out_;
};

/// Flat-JSON tokenizer for one line of the subset LineWriter produces.
/// All accessors throw LineError (with the constructor's line number) on
/// missing keys, wrong types, or malformed numbers.
class LineParser {
 public:
  LineParser(std::string_view line, std::size_t line_number);

  const std::string& get_string(std::string_view key) const;
  std::uint64_t get_u64(std::string_view key) const;
  std::int64_t get_i64(std::string_view key) const;
  std::uint32_t get_u32(std::string_view key) const;
  double get_double(std::string_view key) const;
  std::vector<std::uint64_t> get_id_array(std::string_view key) const;

  /// Optional lookups for protocol evolution: the default is returned
  /// when the key is absent (wrong types still throw).
  std::string get_string_or(std::string_view key,
                            std::string_view fallback) const;
  std::uint64_t get_u64_or(std::string_view key, std::uint64_t fallback) const;
  double get_double_or(std::string_view key, double fallback) const;

  bool has(std::string_view key) const {
    return fields_.find(std::string(key)) != fields_.end();
  }

  [[noreturn]] void fail(const std::string& detail) const {
    throw LineError(line_number_, detail);
  }

 private:
  /// One parsed value: the raw numeric token (converted lazily so
  /// integers and doubles both go through std::from_chars exactly once),
  /// a string, or an array of raw numeric tokens.
  struct Field {
    enum class Kind : std::uint8_t { kNumber, kString, kArray };
    Kind kind = Kind::kNumber;
    std::string text;
    std::vector<std::string> items;
  };

  template <typename T>
  T number(const std::string& text, std::string_view key) const;
  const Field& require(std::string_view key, Field::Kind kind) const;
  const Field* find(std::string_view key, Field::Kind kind) const;

  void parse();
  Field parse_value();
  std::string parse_string();
  std::string parse_number_token();
  char peek() const;
  char next();
  void expect(char c);
  void skip_ws();
  [[noreturn]] void fail_eof() const { fail("unexpected end of line"); }

  std::string_view line_;
  std::size_t line_number_;
  std::size_t pos_ = 0;
  std::map<std::string, Field> fields_;
};

}  // namespace epajsrm::net
