#pragma once

namespace fixture::sim {
inline long now_ps() { return 0; }
}  // namespace fixture::sim
