// Fixture: the rand rule must fire here.
#include <cstdlib>
#include <random>

int noise() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}
