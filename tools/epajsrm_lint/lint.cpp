// epajsrm_lint — project-specific correctness lint for the EPA JSRM tree.
//
// Rules (suppress a line with `// lint:allow(<rule>)`):
//
//   const-cast    src/**        `const_cast` is banned; const-correctness
//                               holes hide mutation the energy accounting
//                               must see.
//   wall-clock    src/** except src/obs/
//                               wall-clock reads (steady_clock, ...)
//                               break simulation determinism; only the
//                               observability plane may time real work.
//   rand          src/** except src/obs/
//                               nondeterministic randomness (rand(),
//                               random_device) breaks replayability;
//                               seeded engines are fine.
//   unit-suffix   src/**        double/float variables whose name speaks
//                               of power or energy must carry a unit
//                               suffix (_watts, _joules, _kwh, ...) so
//                               unit bugs are visible at the call site.
//   unguarded-at  src/sim, src/platform, src/power, src/telemetry,
//                 src/core      throwing `.at()` in hot dispatch paths;
//                               use checked contracts + operator[].
//   scenario-aggregate
//                 src/** except src/core/
//                               raw `ScenarioConfig{...}` aggregate
//                               initialization bypasses ScenarioBuilder's
//                               validation and defaulting; construct
//                               scenarios through core::ScenarioBuilder.
//   unbounded-series
//                 src/telemetry/
//                               push_back/emplace_back into containers
//                               named like retained sample stores
//                               (*series*, *samples*, *history*,
//                               *readings*) grows without bound over a
//                               run; retain telemetry in the fixed-budget
//                               obs::DownsamplingSeries ring store.
//   power-sweep   src/** except src/platform/ and src/power/ledger.*
//                               aggregating power by sweeping
//                               cluster.nodes() (reading current_watts()
//                               or power_cap_watts() inside a range-for
//                               over .nodes()) duplicates PowerLedger
//                               state O(n) per query; read the ledger's
//                               O(1) aggregates instead. A suppression on
//                               the loop header covers the whole loop
//                               body (the auditor's brute-force parity
//                               sweep is the sanctioned exception).
//
// Usage:
//   epajsrm_lint <src-dir>             lint the tree; exit 1 on violations
//   epajsrm_lint --self-test <dir>     verify each rule fires on its
//                                      bad_*.cpp fixture and stays silent
//                                      on clean.cpp; exit 1 on mismatch
//
// Plain line-based scanning over comment- and string-stripped text: no
// compiler, no dependencies, deterministic output. C++17.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string text;
};

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Strips comments and string/char literals, replacing them with spaces so
// column positions survive. `in_block_comment` carries /* */ state across
// lines.
std::string strip_noise(const std::string& line, bool& in_block_comment) {
  std::string out(line.size(), ' ');
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out[i] = c;
    ++i;
  }
  return out;
}

// --- unit-suffix helpers ----------------------------------------------------

bool names_power_or_energy(const std::string& id_lower) {
  return id_lower.find("power") != std::string::npos ||
         id_lower.find("energy") != std::string::npos ||
         id_lower.find("watt") != std::string::npos ||
         id_lower.find("joule") != std::string::npos;
}

// A quantity name passes when, after trailing digits/underscores are
// stripped, it ends in a unit ("watts", "kwh", ...) or a semantic ending
// that marks a dimensionless derived value ("factor", "ratio", ...).
bool has_unit_or_semantic_suffix(const std::string& identifier) {
  static const std::vector<std::string> kEndings = {
      // units
      "watts", "watt", "_w", "mw", "kw", "gw",
      "joules", "joule", "_j", "kj", "mj", "gj",
      "wh", "kwh", "mwh",
      // dimensionless / derived quantities named after what they scale
      "alpha", "intensity", "weight", "factor", "ratio", "scale", "share",
      "fraction", "price", "cost", "error", "sigma", "rel", "margin",
  };
  std::string id = to_lower(identifier);
  while (!id.empty() && (id.back() == '_' || std::isdigit(
                             static_cast<unsigned char>(id.back())))) {
    id.pop_back();
  }
  for (const std::string& ending : kEndings) {
    if (ends_with(id, ending)) return true;
  }
  return false;
}

// --- the linter -------------------------------------------------------------

class Linter {
 public:
  // `scope_by_path` = false in self-test mode: every rule applies to every
  // fixture regardless of directory layout.
  explicit Linter(bool scope_by_path) : scope_by_path_(scope_by_path) {}

  void lint_file(const fs::path& path, const std::string& rel) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "epajsrm_lint: cannot read " << path << "\n";
      ++io_errors_;
      return;
    }
    const bool wallclock_scope = !scope_by_path_ || !in_dir(rel, "obs");
    const bool at_scope =
        !scope_by_path_ || in_dir(rel, "sim") || in_dir(rel, "platform") ||
        in_dir(rel, "power") || in_dir(rel, "telemetry") || in_dir(rel, "core");
    const bool aggregate_scope = !scope_by_path_ || !in_dir(rel, "core");
    const bool series_scope = !scope_by_path_ || in_dir(rel, "telemetry");
    const bool sweep_scope =
        !scope_by_path_ ||
        (!in_dir(rel, "platform") && rel.rfind("power/ledger.", 0) != 0);

    bool in_block_comment = false;
    std::string raw;
    int line_no = 0;
    // power-sweep is the one context-sensitive rule: a range-for over
    // .nodes() opens a "sweep" region (tracked by brace depth) inside
    // which the power getters are banned. A suppression on the header
    // line covers the whole loop.
    int brace_depth = 0;
    int sweep_entry_depth = -1;   // -1: not inside a nodes() sweep
    bool sweep_allowed = false;   // header carried lint:allow(power-sweep)
    bool sweep_body_open = false; // saw the body's opening brace
    while (std::getline(in, raw)) {
      ++line_no;
      const std::string code = strip_noise(raw, in_block_comment);

      const auto flag = [&](const char* rule) {
        if (raw.find(std::string("lint:allow(") + rule + ")") !=
            std::string::npos) {
          return;
        }
        violations_.push_back({rel, line_no, rule, trim(raw)});
      };

      if (code.find("const_cast") != std::string::npos) flag("const-cast");
      if (wallclock_scope && hits_wall_clock(code)) flag("wall-clock");
      if (wallclock_scope && hits_rand(code)) flag("rand");
      if (at_scope && code.find(".at(") != std::string::npos) {
        flag("unguarded-at");
      }
      if (aggregate_scope && hits_scenario_aggregate(code)) {
        flag("scenario-aggregate");
      }
      if (series_scope && hits_unbounded_series(code)) {
        flag("unbounded-series");
      }
      check_unit_suffix(code, raw, rel, line_no);

      if (sweep_scope) {
        if (sweep_entry_depth < 0 && hits_nodes_sweep_header(code)) {
          sweep_entry_depth = brace_depth;
          sweep_allowed =
              raw.find("lint:allow(power-sweep)") != std::string::npos;
          sweep_body_open = false;
        }
        if (sweep_entry_depth >= 0 && !sweep_allowed &&
            hits_power_getter(code)) {
          flag("power-sweep");
        }
      }

      for (const char c : code) {
        if (c == '{') ++brace_depth;
        if (c == '}') --brace_depth;
      }
      if (sweep_entry_depth >= 0) {
        if (brace_depth > sweep_entry_depth) {
          sweep_body_open = true;
        } else if (sweep_body_open ||
                   code.find(';') != std::string::npos) {
          // Braced body closed, or a brace-less single-statement body
          // (no ';' can appear in a range-for header itself) ended.
          sweep_entry_depth = -1;
          sweep_allowed = false;
          sweep_body_open = false;
        }
      }
    }
  }

  const std::vector<Violation>& violations() const { return violations_; }
  int io_errors() const { return io_errors_; }

 private:
  static bool in_dir(const std::string& rel, const std::string& top) {
    return rel.rfind(top + "/", 0) == 0;
  }

  static std::string trim(const std::string& s) {
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return "";
    return s.substr(b, s.find_last_not_of(" \t") - b + 1);
  }

  static bool hits_wall_clock(const std::string& code) {
    static const std::regex re(
        "steady_clock|system_clock|high_resolution_clock|gettimeofday|"
        "clock_gettime|\\btime\\s*\\(\\s*(nullptr|NULL|0)\\s*\\)");
    return std::regex_search(code, re);
  }

  static bool hits_rand(const std::string& code) {
    static const std::regex re("\\bs?rand\\s*\\(|random_device");
    return std::regex_search(code, re);
  }

  // A line that opens (or is the continuation tail of) a range-for over
  // cluster.nodes() / cluster_->nodes(). Two shapes: the whole header on
  // one line, or a wrapped header whose final line ends `...nodes()) {`.
  // A range-for header contains no ';', which the caller exploits to
  // detect brace-less single-statement bodies.
  static bool hits_nodes_sweep_header(const std::string& code) {
    static const std::regex for_header(
        "\\bfor\\s*\\([^;]*(\\.|->)\\s*nodes\\s*\\(\\s*\\)");
    static const std::regex wrapped_tail(
        "(\\.|->)\\s*nodes\\s*\\(\\s*\\)\\s*\\)\\s*\\{?\\s*$");
    return std::regex_search(code, for_header) ||
           std::regex_search(code, wrapped_tail);
  }

  // Power-state getters whose per-node reads inside a sweep amount to
  // re-aggregating what the ledger already holds. Getter calls only —
  // `set_current_watts(...)` does not match.
  static bool hits_power_getter(const std::string& code) {
    static const std::regex re(
        "(\\.|->)\\s*(current_watts|power_cap_watts)\\s*\\(\\s*\\)");
    return std::regex_search(code, re);
  }

  // Appending to a container whose name marks it as a retained sample
  // store: over a long run that is unbounded telemetry growth. The ring
  // store (obs::DownsamplingSeries) coarsens instead of growing; the
  // receiver-name heuristic keeps transient output vectors (out, ids, ...)
  // out of scope.
  static bool hits_unbounded_series(const std::string& code) {
    static const std::regex re(
        "([A-Za-z_]\\w*)\\s*(\\.|->)\\s*(push_back|emplace_back)\\s*\\(");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
      const std::string receiver = to_lower((*it)[1].str());
      if (receiver.find("series") != std::string::npos ||
          receiver.find("samples") != std::string::npos ||
          receiver.find("history") != std::string::npos ||
          receiver.find("readings") != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  static bool hits_scenario_aggregate(const std::string& code) {
    // Brace-init only (anonymous or named variable): `ScenarioConfig c;`
    // and the struct's own definition (`struct ScenarioConfig {`) stay
    // legal.
    static const std::regex re(
        "\\bScenarioConfig\\s*(?:[A-Za-z_]\\w*\\s*)?\\{");
    if (!std::regex_search(code, re)) return false;
    static const std::regex definition("\\b(struct|class)\\s+ScenarioConfig");
    return !std::regex_search(code, definition);
  }

  void check_unit_suffix(const std::string& code, const std::string& raw,
                         const std::string& rel, int line_no) {
    static const std::regex decl(
        "\\b(?:double|float)\\s*[*&]?\\s+([A-Za-z_]\\w*)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), decl);
         it != std::sregex_iterator(); ++it) {
      const std::string id = (*it)[1].str();
      // Skip function declarations and qualified definitions — the rule
      // targets value-carrying variables, not callables or scope names.
      std::size_t after =
          static_cast<std::size_t>(it->position(1)) + id.size();
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after]))) {
        ++after;
      }
      if (after < code.size() && (code[after] == '(' || code[after] == ':' ||
                                  code[after] == '<')) {
        continue;
      }
      if (!names_power_or_energy(to_lower(id))) continue;
      if (has_unit_or_semantic_suffix(id)) continue;
      if (raw.find("lint:allow(unit-suffix)") != std::string::npos) continue;
      violations_.push_back({rel, line_no, "unit-suffix",
                             id + " lacks a unit suffix (_watts, _joules, "
                                  "_kwh, ...)"});
    }
  }

  bool scope_by_path_;
  std::vector<Violation> violations_;
  int io_errors_ = 0;
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<fs::path> collect(const fs::path& root) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int lint_tree(const fs::path& root) {
  Linter linter(/*scope_by_path=*/true);
  for (const fs::path& file : collect(root)) {
    linter.lint_file(file, fs::relative(file, root).generic_string());
  }
  for (const Violation& v : linter.violations()) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.text
              << "\n";
  }
  if (!linter.violations().empty()) {
    std::cout << linter.violations().size() << " violation(s)\n";
    return 1;
  }
  if (linter.io_errors() > 0) return 1;
  std::cout << "epajsrm_lint: clean\n";
  return 0;
}

// Fixture contract: bad_<rule-with-underscores>.cpp must trip exactly its
// rule; clean.cpp (which exercises suppressions) must trip nothing.
int self_test(const fs::path& dir) {
  static const std::map<std::string, std::string> kExpected = {
      {"bad_const_cast.cpp", "const-cast"},
      {"bad_wallclock.cpp", "wall-clock"},
      {"bad_rand.cpp", "rand"},
      {"bad_unit_suffix.cpp", "unit-suffix"},
      {"bad_unguarded_at.cpp", "unguarded-at"},
      {"bad_scenario_aggregate.cpp", "scenario-aggregate"},
      {"bad_power_sweep.cpp", "power-sweep"},
      {"bad_unbounded_series.cpp", "unbounded-series"},
  };
  int failures = 0;
  for (const auto& [name, rule] : kExpected) {
    const fs::path file = dir / name;
    Linter linter(/*scope_by_path=*/false);
    linter.lint_file(file, name);
    std::size_t expected_hits = 0;
    for (const Violation& v : linter.violations()) {
      if (v.rule == rule) {
        ++expected_hits;
      } else {
        std::cout << "FAIL " << name << ": stray [" << v.rule << "] at line "
                  << v.line << "\n";
        ++failures;
      }
    }
    if (expected_hits == 0) {
      std::cout << "FAIL " << name << ": rule [" << rule
                << "] did not fire\n";
      ++failures;
    } else {
      std::cout << "ok   " << name << ": [" << rule << "] fired "
                << expected_hits << "x\n";
    }
  }
  {
    Linter linter(/*scope_by_path=*/false);
    linter.lint_file(dir / "clean.cpp", "clean.cpp");
    for (const Violation& v : linter.violations()) {
      std::cout << "FAIL clean.cpp: unexpected [" << v.rule << "] at line "
                << v.line << "\n";
      ++failures;
    }
    if (linter.violations().empty()) std::cout << "ok   clean.cpp: silent\n";
  }
  if (failures > 0) {
    std::cout << failures << " self-test failure(s)\n";
    return 1;
  }
  std::cout << "epajsrm_lint: self-test passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--self-test") {
    return self_test(argv[2]);
  }
  if (argc == 2) {
    return lint_tree(argv[1]);
  }
  std::cerr << "usage: epajsrm_lint <src-dir> | epajsrm_lint --self-test "
               "<fixture-dir>\n";
  return 2;
}
