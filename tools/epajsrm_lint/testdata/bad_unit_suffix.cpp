// Fixture: the unit-suffix rule must fire here.
struct Sample {
  double node_power = 0.0;
  float total_energy = 0.0f;
};

double accumulate(const Sample& s) {
  double wattage = static_cast<double>(s.total_energy) + s.node_power;
  return wattage;
}
