#include "core/experiment.hpp"

#include <cstdio>

#include "core/ensemble.hpp"

namespace epajsrm::core {

std::string ReplicatedResult::format(const metrics::DistributionSummary& s,
                                     int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f [%.*f..%.*f]", precision, s.median,
                precision, s.min, precision, s.max);
  return buf;
}

ReplicatedResult run_replicated(
    const std::function<ScenarioConfig(std::uint64_t)>& make_config,
    const std::function<void(Scenario&)>& customize,
    std::size_t replications, std::uint64_t base_seed) {
  EnsembleConfig config;
  config.replications = replications;
  config.base_seed = base_seed;
  // The historical sequential stream keeps statistics identical to the
  // pre-EnsembleEngine implementation for the same base seed.
  config.seed_stream = SeedStream::kSequential;
  EnsembleEngine engine(config);
  engine.add_point("", make_config, customize);
  EnsembleResult result = engine.run();
  return std::move(result.cells.front().stats);
}

}  // namespace epajsrm::core
