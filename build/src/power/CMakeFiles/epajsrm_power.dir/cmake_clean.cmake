file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_power.dir/capmc.cpp.o"
  "CMakeFiles/epajsrm_power.dir/capmc.cpp.o.d"
  "CMakeFiles/epajsrm_power.dir/energy_source.cpp.o"
  "CMakeFiles/epajsrm_power.dir/energy_source.cpp.o.d"
  "CMakeFiles/epajsrm_power.dir/node_power_model.cpp.o"
  "CMakeFiles/epajsrm_power.dir/node_power_model.cpp.o.d"
  "CMakeFiles/epajsrm_power.dir/tariff.cpp.o"
  "CMakeFiles/epajsrm_power.dir/tariff.cpp.o.d"
  "CMakeFiles/epajsrm_power.dir/thermal.cpp.o"
  "CMakeFiles/epajsrm_power.dir/thermal.cpp.o.d"
  "libepajsrm_power.a"
  "libepajsrm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
