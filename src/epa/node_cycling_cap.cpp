#include "epa/node_cycling_cap.hpp"

#include <algorithm>

namespace epajsrm::epa {

bool NodeCyclingCapPolicy::enforcing(sim::SimTime now) const {
  if (config_.cap_watts <= 0.0 || host_ == nullptr) return false;
  const double ambient =
      host_->cluster().facility().ambient().temperature_c(now);
  return ambient >= config_.enforce_above_ambient_c;
}

double NodeCyclingCapPolicy::power_budget_watts(sim::SimTime now) const {
  return enforcing(now) ? config_.cap_watts : 0.0;
}

void NodeCyclingCapPolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr || config_.cap_watts <= 0.0) return;
  platform::Cluster& cluster = host_->cluster();

  if (!enforcing(now)) {
    // Out of season: restore any nodes this policy turned off.
    for (const platform::Node& node : cluster.nodes()) {
      if (node.state() == platform::NodeState::kOff &&
          host_->power_on_node(node.id())) {
        ++cycled_on_;
      }
    }
    return;
  }

  const double rolling =
      host_->monitor().machine_power().trailing_mean(config_.window);
  // Measured, not ground truth: under degraded telemetry this serves
  // last-known-good plus a safety margin instead of reading garbage.
  const double instant = host_->monitor().measured_it_watts(now);
  const double per_node_peak =
      host_->power_model().peak_watts(cluster.node(0).config());

  if (std::max(rolling, instant) > config_.cap_watts) {
    // Shed: power off enough idle nodes to bring the worst case under the
    // cap. One node at a time per excess chunk keeps the loop stable.
    double excess = std::max(rolling, instant) - config_.cap_watts;
    for (const platform::Node& node : cluster.nodes()) {
      if (excess <= 0.0) break;
      if (node.state() != platform::NodeState::kIdle) continue;
      if (host_->power_off_node(node.id())) {
        ++cycled_off_;
        excess -= node.config().idle_watts;
      }
    }
  } else if (std::max(rolling, instant) <
             config_.cap_watts * (1.0 - config_.restore_margin)) {
    // Restore one node per tick if the headroom could absorb its peak —
    // conservative ramp that avoids oscillation around the cap.
    const double headroom =
        config_.cap_watts * (1.0 - config_.restore_margin) -
        std::max(rolling, instant);
    if (headroom >= per_node_peak) {
      for (const platform::Node& node : cluster.nodes()) {
        if (node.state() == platform::NodeState::kOff &&
            host_->power_on_node(node.id())) {
          ++cycled_on_;
          break;
        }
      }
    }
  }
}

}  // namespace epajsrm::epa
