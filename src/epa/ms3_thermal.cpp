#include "epa/ms3_thermal.hpp"

#include <algorithm>

namespace epajsrm::epa {

void Ms3ThermalPolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr) return;
  platform::Cluster& cluster = host_->cluster();
  const double hottest = host_->ledger().max_temperature_c();
  const double ambient = cluster.facility().ambient().temperature_c(now);

  if (hot_ && last_tick_ > 0) throttled_time_ += now - last_tick_;
  last_tick_ = now;

  const bool over = hottest > config_.node_temp_limit_c ||
                    ambient > config_.ambient_limit_c;
  const bool recovered =
      hottest < config_.node_temp_limit_c - config_.recovery_margin_c &&
      ambient < config_.ambient_limit_c - config_.recovery_margin_c;

  if (!hot_ && over) {
    hot_ = true;
    if (config_.deepen_pstate_when_hot) {
      const std::uint32_t deepest = cluster.pstates().deepest();
      for (const workload::Job* job : host_->running_jobs()) {
        if (job->allocated_nodes().empty()) continue;
        const std::uint32_t current =
            cluster.node(job->allocated_nodes().front()).pstate();
        host_->set_job_pstate(job->id(),
                              std::min(deepest, current + 1));
      }
    }
  } else if (hot_ && recovered) {
    hot_ = false;
    if (config_.deepen_pstate_when_hot) {
      for (const workload::Job* job : host_->running_jobs()) {
        host_->set_job_pstate(job->id(), 0);
      }
    }
    host_->request_schedule();
  }
}

bool Ms3ThermalPolicy::plan_start(StartPlan& plan) {
  if (!hot_ || plan.job == nullptr) return true;
  if (plan.job->spec().priority >= config_.min_priority_when_hot) {
    return true;  // urgent work still runs during the siesta
  }
  if (!plan.dry_run) ++vetoed_;
  return false;
}

}  // namespace epajsrm::epa
