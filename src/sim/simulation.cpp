#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace epajsrm::sim {

namespace {

/// Category tag reserved for the internal per-tick batch entries; the run
/// loop detects batch entries by this array's address. Deliberately
/// *mutable*: const data of equal content can legally be folded together
/// by -fmerge-all-constants or linker ICF, which would alias a user event
/// tagged with the literal "sim.periodic-batch" onto the envelope path.
/// Mutable storage is never merged, so the address stays unique.
char kBatchTagChars[] = "sim.periodic-batch";  // lint:allow(mutable-global) never written; mutable only to defeat constant merging

/// Repeater handles live in their own id space (top bit set) so they can
/// never collide with queue-issued event ids.
constexpr EventId kRepeaterBit = EventId{1} << 63;

}  // namespace

EventCategory Simulation::batch_category() {
  return EventCategory(EventCategory::Internal{}, kBatchTagChars);
}

EventId Simulation::schedule_at(SimTime t, Callback cb,
                                EventCategory category) {
  return queue_.push(std::max(t, now_), std::move(cb), category);
}

EventId Simulation::schedule_every(SimTime period, RepeaterFn cb,
                                   EventCategory category) {
  if (period <= 0) {
    // A non-positive cadence would re-enqueue ticks at or before now_ and
    // drive the monotone clock backwards; reject it outright instead of
    // clamping into a busy loop.
    throw std::invalid_argument(
        "Simulation::schedule_every: period must be positive");
  }
  const SimTime fire_at = now_ + period;
  const EventId handle = next_repeater_handle_++;
  Repeater member;
  member.handle = handle;
  member.seq = next_repeater_seq_++;
  member.fn = std::move(cb);
  member.category = category;
  ++live_repeaters_;

  const auto key = std::make_pair(period, fire_at);
  if (const auto it = pending_batches_.find(key);
      it != pending_batches_.end()) {
    // A batch with this period and phase is already ticking: coalesce.
    batches_[it->second]->members.push_back(std::move(member));
    repeater_batch_[handle] = it->second;
    return handle;
  }
  const std::size_t index = acquire_batch();
  Batch& batch = *batches_[index];
  batch.period = period;
  batch.fire_at = fire_at;
  batch.members.push_back(std::move(member));
  repeater_batch_[handle] = index;
  pending_batches_.emplace(key, index);
  queue_.push(fire_at, [this, index] { fire_batch(index); },
              batch_category());
  return handle;
}

bool Simulation::cancel(EventId id) {
  if ((id & kRepeaterBit) == 0) return queue_.cancel(id);
  const auto it = repeater_batch_.find(id);
  if (it == repeater_batch_.end()) return false;  // fired, or never issued
  Batch& batch = *batches_[it->second];
  for (Repeater& member : batch.members) {
    if (member.handle == id && !member.dead) {
      member.dead = true;
      assert(live_repeaters_ > 0);
      --live_repeaters_;
      repeater_batch_.erase(it);
      return true;
    }
  }
  assert(false && "repeater handle mapped to a batch without the member");
  repeater_batch_.erase(it);
  return false;
}

void Simulation::fire_batch(std::size_t index) {
  Batch& batch = *batches_[index];
  pending_batches_.erase({batch.period, batch.fire_at});
  // Members fire in scheduling order; a merged batch may hold interleaved
  // stamps, so order explicitly (cheap: the vector is already mostly
  // sorted, and batches are small relative to the events they replace).
  std::sort(
      batch.members.begin(), batch.members.end(),
      [](const Repeater& a, const Repeater& b) { return a.seq < b.seq; });
  std::size_t i = 0;
  for (; i < batch.members.size(); ++i) {
    if (stopped_) break;
    Repeater& member = batch.members[i];
    if (member.dead) continue;
    if (!member.fired_once) {
      // The handle's cancellation window ends at the first firing.
      member.fired_once = true;
      repeater_batch_.erase(member.handle);
    }
    ++events_processed_;
    bool again;
    if (!hooks_.empty() && ++dispatch_since_sample_ >= dispatch_stride_) {
      dispatch_since_sample_ = 0;
      const auto t0 = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
      again = member.fn();
      const auto t1 = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
      const std::int64_t wall_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      for (const DispatchHook& hook : hooks_) {
        hook(member.category, wall_ns);
      }
    } else {
      again = member.fn();
    }
    if (again) {
      // Fresh stamp: survivors of this tick order after everything
      // scheduled before them, mirroring the per-entry re-push order the
      // batch replaced.
      member.seq = next_repeater_seq_++;
    } else {
      member.dead = true;
      assert(live_repeaters_ > 0);
      --live_repeaters_;
    }
  }
  if (i < batch.members.size()) {
    // stop() landed mid-tick: the members not yet dispatched keep a queue
    // entry at this same fire_at (as the per-entry model did — each pending
    // repeater stayed in the queue), while this tick's survivors advance by
    // one period below. Nothing silently loses a firing.
    const std::size_t rest_index = acquire_batch();
    // `batch` stays valid across acquire_batch: Batch objects are
    // heap-allocated behind unique_ptr, so arena growth never moves them.
    Batch& rest = *batches_[rest_index];
    rest.period = batch.period;
    rest.fire_at = batch.fire_at;
    for (std::size_t j = i; j < batch.members.size(); ++j) {
      Repeater& member = batch.members[j];
      if (member.dead) continue;
      if (!member.fired_once) repeater_batch_[member.handle] = rest_index;
      rest.members.push_back(std::move(member));
      // Moved out, still live in `rest`: flag for the erase below without
      // touching live_repeaters_.
      member.dead = true;
    }
    if (rest.members.empty()) {
      release_batch(rest_index);
    } else {
      enqueue_batch(rest_index);
    }
  }
  std::erase_if(batch.members,
                [](const Repeater& m) { return m.dead; });
  if (batch.members.empty()) {
    release_batch(index);
    return;
  }
  batch.fire_at += batch.period;
  enqueue_batch(index);
}

void Simulation::enqueue_batch(std::size_t index) {
  Batch& batch = *batches_[index];
  const auto key = std::make_pair(batch.period, batch.fire_at);
  if (const auto it = pending_batches_.find(key);
      it != pending_batches_.end()) {
    // Another batch with the same period converged onto this phase (it was
    // created mid-cycle): merge into it instead of double-booking the tick.
    Batch& target = *batches_[it->second];
    for (Repeater& member : batch.members) {
      if (!member.fired_once) repeater_batch_[member.handle] = it->second;
      target.members.push_back(std::move(member));
    }
    batch.members.clear();
    release_batch(index);
    return;
  }
  pending_batches_.emplace(key, index);
  queue_.push(batch.fire_at, [this, index] { fire_batch(index); },
              batch_category());
}

std::size_t Simulation::acquire_batch() {
  if (!free_batches_.empty()) {
    const std::size_t index = free_batches_.back();
    free_batches_.pop_back();
    return index;
  }
  batches_.push_back(std::make_unique<Batch>());
  return batches_.size() - 1;
}

void Simulation::release_batch(std::size_t index) {
  batches_[index]->members.clear();
  free_batches_.push_back(index);
}

void Simulation::run_until(SimTime t) {
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    auto popped = queue_.pop();
    now_ = popped.time;
    if (popped.category == batch_category()) {
      // Tick batch (identity match on the reserved tag, so a user event
      // spelling the same characters is never mis-routed): per-member
      // dispatch accounting happens inside fire_batch, so the envelope
      // entry is neither counted nor timed.
      popped.callback();
      continue;
    }
    ++events_processed_;
    if (!hooks_.empty() && ++dispatch_since_sample_ >= dispatch_stride_) {
      dispatch_since_sample_ = 0;
      // Timed dispatch: only taken when an observer is attached, so the
      // common path pays one branch, not two clock reads. The clock here
      // measures host cost of the callback, not simulated time. With a
      // sampling stride > 1 only every Nth event pays the clock reads.
      const auto t0 = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
      popped.callback();
      const auto t1 = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
      const std::int64_t wall_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      for (const DispatchHook& hook : hooks_) {
        hook(popped.category, wall_ns);
      }
    } else {
      popped.callback();
    }
  }
  if (!stopped_ && now_ < t && t != std::numeric_limits<SimTime>::max()) {
    now_ = t;
  }
}

}  // namespace epajsrm::sim
