// Node power model with DVFS and RAPL-style cap clamping.
//
// Model (DESIGN.md §5):
//   P(f, u) = P_idle + u · P_dyn_ref · (f/f_ref)^alpha · v
// where u is core utilisation, v the per-node manufacturing-variability
// multiplier and alpha ≈ 2.4 (dynamic power ~ C·V²·f with V roughly linear
// in f over the DVFS range). Off / boot / sleep states use fixed draws from
// NodeConfig.
//
// A node-level power cap (RAPL [13] in-band, or Cray CAPMC out-of-band) is
// honoured by lowering the effective frequency until the model power fits
// under the cap; the resulting frequency ratio is what job-progress
// accounting uses, which reproduces the "capping slows jobs down" behaviour
// KAUST and LANL+Sandia describe.
#pragma once

#include <cstdint>

#include "platform/node.hpp"
#include "platform/pstate.hpp"

namespace epajsrm::power {

/// How a cap is translated into a frequency clamp.
enum class CapMode {
  /// RAPL: continuous frequency between P-states (hardware duty-cycling).
  kContinuous,
  /// CAPMC: snap down to the next discrete P-state.
  kDiscrete,
};

class PowerLedger;

/// Result of resolving a node's operating point.
struct OperatingPoint {
  double watts = 0.0;        ///< modelled draw
  double uncapped_watts = 0.0;  ///< draw at the selected P-state ignoring
                                ///< the cap (== watts for fixed-draw states)
  double freq_ratio = 1.0;   ///< effective f/f_ref actually achieved
  bool cap_binding = false;  ///< the power cap forced a slowdown
  bool cap_infeasible = false;  ///< cap below idle floor; cannot be met
};

/// Stateless power calculator shared by every node of a cluster.
class NodePowerModel {
 public:
  /// `alpha` is the dynamic-power frequency exponent; `min_freq_ratio`
  /// bounds how far continuous clamping may slow a core below the deepest
  /// P-state.
  explicit NodePowerModel(const platform::PstateTable& pstates,
                          double alpha = 2.4, CapMode cap_mode = CapMode::kContinuous);

  double alpha() const { return alpha_; }
  CapMode cap_mode() const { return cap_mode_; }
  void set_cap_mode(CapMode m) { cap_mode_ = m; }

  /// Attaches (or with null, detaches) the power ledger. apply() is the
  /// only writer of node power sensor caches, so attaching here makes
  /// every existing call site a ledger delta producer for free.
  void attach_ledger(PowerLedger* ledger) { ledger_ = ledger; }
  PowerLedger* ledger() const { return ledger_; }

  /// Draw at an explicit operating point for a powered-on node.
  double watts_at(const platform::NodeConfig& cfg, double freq_ratio,
                  double utilization) const;

  /// Peak draw of a node type (f_ref, fully loaded) — used for budget
  /// planning and worst-case admission.
  double peak_watts(const platform::NodeConfig& cfg) const {
    return watts_at(cfg, 1.0, 1.0);
  }

  /// Resolves the operating point of `node` from its lifecycle state,
  /// utilisation, selected P-state and power cap.
  OperatingPoint resolve(const platform::Node& node) const;

  /// Resolves and writes the cached sensor values (current_watts,
  /// effective_freq_ratio) back onto the node. Returns the point.
  OperatingPoint apply(platform::Node& node) const;

  /// Largest frequency ratio whose modelled power fits under `cap_watts`
  /// at the given utilisation (continuous solution, before mode snapping).
  double freq_ratio_for_cap(const platform::NodeConfig& cfg, double cap_watts,
                            double utilization) const;

  const platform::PstateTable& pstates() const { return pstates_; }

 private:
  const platform::PstateTable& pstates_;
  double alpha_;
  CapMode cap_mode_;
  PowerLedger* ledger_ = nullptr;
};

}  // namespace epajsrm::power
