#include "obs/exposition.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <string_view>

namespace epajsrm::obs {

namespace {

/// Shortest round-trip double rendering (std::to_chars: bit-exact on
/// re-parse, locale-independent).
void write_double(std::ostream& out, double value) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  out.write(buf, result.ptr - buf);
}

// --- JSON helpers -------------------------------------------------------------

void json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (byte < 0x20) {
      constexpr char kHex[] = "0123456789abcdef";
      out << "\\u00" << kHex[byte >> 4] << kHex[byte & 0xf];
    } else {
      out << c;
    }
  }
  out << '"';
}

/// JSON has no NaN/Inf; non-finite values render as null.
void json_number(std::ostream& out, double value) {
  if (std::isfinite(value)) {
    write_double(out, value);
  } else {
    out << "null";
  }
}

void json_quantile(std::ostream& out, const char* key,
                   const QuantileBounds& q) {
  out << '"' << key << "\":{\"lower\":";
  json_number(out, q.lower);
  out << ",\"upper\":";
  json_number(out, q.upper);
  out << '}';
}

// --- Prometheus helpers -------------------------------------------------------

/// Maps a dotted metric name onto the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* (dots and other separators become '_').
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 8);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (alpha || (digit && i > 0)) {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

void prom_value(std::ostream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
  } else {
    write_double(out, value);
  }
}

}  // namespace

void write_prometheus(const MetricsFrame& frame, std::ostream& out) {
  for (const auto& [name, value] : frame.counters) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " counter\n" << p << ' ' << value << '\n';
  }
  for (const auto& [name, value] : frame.gauges) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n" << p << ' ';
    prom_value(out, value);
    out << '\n';
  }
  for (const auto& [name, hist] : frame.histograms) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    for (const auto& [index, count] : hist.buckets) {
      cum += count;
      const double le = Histogram::bucket_upper_bound(index);
      if (std::isinf(le)) continue;  // folded into the +Inf line below
      out << p << "_bucket{le=\"";
      prom_value(out, le);
      out << "\"} " << cum << '\n';
    }
    out << p << "_bucket{le=\"+Inf\"} " << hist.count << '\n';
    out << p << "_sum ";
    prom_value(out, hist.sum());
    out << '\n' << p << "_count " << hist.count << '\n';
  }
}

void write_prometheus(const MetricsRegistry& registry, std::ostream& out) {
  write_prometheus(registry.export_frame(), out);
}

// --- RunReportBuilder: JSON ---------------------------------------------------

void RunReportBuilder::write_json(std::ostream& out) const {
  out << "{\"schema\":\"epajsrm.run_report.v1\",\"label\":";
  json_string(out, label_);

  out << ",\"scalars\":{";
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    if (i > 0) out << ',';
    json_string(out, scalars_[i].first);
    out << ':';
    json_number(out, scalars_[i].second);
  }
  out << '}';

  out << ",\"counters\":{";
  for (std::size_t i = 0; i < metrics_.counters.size(); ++i) {
    if (i > 0) out << ',';
    json_string(out, metrics_.counters[i].first);
    out << ':' << metrics_.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < metrics_.gauges.size(); ++i) {
    if (i > 0) out << ',';
    json_string(out, metrics_.gauges[i].first);
    out << ':';
    json_number(out, metrics_.gauges[i].second);
  }
  out << '}';

  out << ",\"histograms\":{";
  for (std::size_t i = 0; i < metrics_.histograms.size(); ++i) {
    const auto& [name, h] = metrics_.histograms[i];
    if (i > 0) out << ',';
    json_string(out, name);
    out << ":{\"count\":" << h.count << ",\"sum\":";
    json_number(out, h.sum());
    out << ",\"mean\":";
    json_number(out, h.mean());
    out << ",\"min\":";
    json_number(out, h.minmax_count > 0 ? h.min : 0.0);
    out << ",\"max\":";
    json_number(out, h.minmax_count > 0 ? h.max : 0.0);
    out << ',';
    json_quantile(out, "p50", h.quantile_bounds(0.5));
    out << ',';
    json_quantile(out, "p90", h.quantile_bounds(0.9));
    out << ',';
    json_quantile(out, "p99", h.quantile_bounds(0.99));
    out << ",\"buckets\":[";
    bool first = true;
    for (const auto& [index, count] : h.buckets) {
      if (!first) out << ',';
      first = false;
      out << "{\"le\":";
      json_number(out, Histogram::bucket_upper_bound(index));
      out << ",\"count\":" << count << '}';
    }
    out << "]}";
  }
  out << '}';

  out << ",\"series\":{";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const auto& [name, s] = series_[i];
    if (i > 0) out << ',';
    json_string(out, name);
    out << ":{\"budget\":" << s.budget()
        << ",\"bucket_width_us\":" << s.bucket_width()
        << ",\"coarsenings\":" << s.coarsenings()
        << ",\"total_samples\":" << s.total_samples() << ",\"min\":";
    json_number(out, s.overall_min());
    out << ",\"max\":";
    json_number(out, s.overall_max());
    out << ",\"buckets\":[";
    bool first = true;
    for (const SeriesBucket& b : s.buckets()) {
      if (!first) out << ',';
      first = false;
      out << "{\"t_us\":" << b.last_time << ",\"first_us\":" << b.first_time
          << ",\"count\":" << b.count << ",\"min\":";
      json_number(out, b.min);
      out << ",\"max\":";
      json_number(out, b.max);
      out << ",\"mean\":";
      json_number(out, b.mean());
      out << ",\"last\":";
      json_number(out, b.last);
      out << '}';
    }
    out << "]}";
  }
  out << '}';

  out << ",\"merge\":{\"merged\":" << (merged_ ? "true" : "false")
      << ",\"order\":\"fixed-shard-index\",\"shards\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ReportShard& s = shards_[i];
    if (i > 0) out << ',';
    out << "{\"label\":";
    json_string(out, s.label);
    out << ",\"seed\":" << s.seed << ",\"sim_events\":" << s.sim_events
        << ",\"metric_count\":" << s.metric_count
        << ",\"merge_order\":" << s.merge_order << '}';
  }
  out << "]}}";
  out << '\n';
}

// --- RunReportBuilder: HTML ---------------------------------------------------

namespace {

void html_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '&': out << "&amp;"; break;
      case '<': out << "&lt;"; break;
      case '>': out << "&gt;"; break;
      case '"': out << "&quot;"; break;
      default: out << c;
    }
  }
}

void html_number(std::ostream& out, double value) {
  if (std::isfinite(value)) {
    write_double(out, value);
  } else {
    out << "&ndash;";
  }
}

}  // namespace

void RunReportBuilder::write_html(std::ostream& out) const {
  out << "<!doctype html>\n<html><head><meta charset=\"utf-8\"><title>";
  html_escape(out, label_);
  out << "</title><style>body{font-family:sans-serif;margin:2em}"
         "table{border-collapse:collapse;margin:1em 0}"
         "th,td{border:1px solid #999;padding:.25em .6em;text-align:right}"
         "th{background:#eee}td:first-child,th:first-child{text-align:left}"
         "</style></head>\n<body><h1>";
  html_escape(out, label_);
  out << "</h1>\n";

  if (!scalars_.empty()) {
    out << "<h2>Summary</h2><table><tr><th>metric</th><th>value</th></tr>\n";
    for (const auto& [name, value] : scalars_) {
      out << "<tr><td>";
      html_escape(out, name);
      out << "</td><td>";
      html_number(out, value);
      out << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  if (have_metrics_ && !metrics_.counters.empty()) {
    out << "<h2>Counters</h2><table><tr><th>counter</th><th>value</th></tr>\n";
    for (const auto& [name, value] : metrics_.counters) {
      out << "<tr><td>";
      html_escape(out, name);
      out << "</td><td>" << value << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  if (have_metrics_ && !metrics_.gauges.empty()) {
    out << "<h2>Gauges</h2><table><tr><th>gauge</th><th>value</th></tr>\n";
    for (const auto& [name, value] : metrics_.gauges) {
      out << "<tr><td>";
      html_escape(out, name);
      out << "</td><td>";
      html_number(out, value);
      out << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  if (have_metrics_ && !metrics_.histograms.empty()) {
    out << "<h2>Histograms</h2><table><tr><th>histogram</th><th>count</th>"
           "<th>mean</th><th>p50 &le;</th><th>p90 &le;</th><th>p99 &le;</th>"
           "<th>max</th></tr>\n";
    for (const auto& [name, h] : metrics_.histograms) {
      out << "<tr><td>";
      html_escape(out, name);
      out << "</td><td>" << h.count << "</td><td>";
      html_number(out, h.mean());
      out << "</td><td>";
      html_number(out, h.quantile(0.5));
      out << "</td><td>";
      html_number(out, h.quantile(0.9));
      out << "</td><td>";
      html_number(out, h.quantile(0.99));
      out << "</td><td>";
      html_number(out, h.minmax_count > 0 ? h.max : 0.0);
      out << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  if (!series_.empty()) {
    out << "<h2>Series</h2><table><tr><th>series</th><th>samples</th>"
           "<th>buckets</th><th>width (s)</th><th>min</th><th>max</th>"
           "<th>last</th></tr>\n";
    for (const auto& [name, s] : series_) {
      out << "<tr><td>";
      html_escape(out, name);
      out << "</td><td>" << s.total_samples() << "</td><td>" << s.size()
          << "</td><td>";
      html_number(out, sim::to_seconds(s.bucket_width()));
      out << "</td><td>";
      html_number(out, s.overall_min());
      out << "</td><td>";
      html_number(out, s.overall_max());
      out << "</td><td>";
      html_number(out, s.latest().has_value() ? s.latest()->value : 0.0);
      out << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  if (!shards_.empty()) {
    out << "<h2>Shards (" << (merged_ ? "merged" : "single run")
        << ", fixed-shard-index order)</h2><table><tr><th>shard</th>"
           "<th>seed</th><th>sim events</th><th>metrics</th>"
           "<th>merge order</th></tr>\n";
    for (const ReportShard& s : shards_) {
      out << "<tr><td>";
      html_escape(out, s.label);
      out << "</td><td>" << s.seed << "</td><td>" << s.sim_events
          << "</td><td>" << s.metric_count << "</td><td>" << s.merge_order
          << "</td></tr>\n";
    }
    out << "</table>\n";
  }

  out << "</body></html>\n";
}

}  // namespace epajsrm::obs
