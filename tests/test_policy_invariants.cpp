// Property suite: whichever EPA policy is installed, a full run must
// preserve the system invariants — energy conservation, job timeline
// sanity, walltime enforcement, and termination. Catches policies that
// corrupt progress accounting or wedge the scheduler.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/scenario.hpp"
#include "epa/capability_window.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/energy_to_solution.hpp"
#include "epa/idle_shutdown.hpp"
#include "epa/job_power_balancer.hpp"
#include "epa/ms3_thermal.hpp"
#include "epa/overprovision.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "epa/ramp_limiter.hpp"
#include "epa/static_power_cap.hpp"

namespace epajsrm {
namespace {

struct PolicyCase {
  const char* name;
  std::function<void(core::EpaJsrmSolution&)> install;
};

class PolicyInvariantTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyInvariantTest, FullRunPreservesInvariants) {
  core::ScenarioConfig config;
  config.label = GetParam().name;
  config.nodes = 16;
  config.job_count = 35;
  config.horizon = 25 * sim::kDay;
  config.seed = 77;
  config.mix = core::WorkloadMix::kCapacity;
  core::Scenario scenario(config);
  GetParam().install(scenario.solution());
  const core::RunResult result = scenario.run();

  // 1. Termination: with a generous horizon the workload drains (policies
  // must not wedge the queue forever).
  EXPECT_TRUE(scenario.solution().workload_drained()) << GetParam().name;
  EXPECT_EQ(result.report.jobs_completed + result.report.jobs_killed, 35u);

  // 2. Energy conservation: jobs + overhead == total, exactly.
  double job_joules = 0.0;
  for (const workload::Job* job : scenario.solution().finished_jobs()) {
    job_joules += job->energy_joules();
  }
  const auto& accountant = scenario.solution().accountant();
  EXPECT_NEAR(job_joules + accountant.overhead_joules(),
              accountant.total_it_joules(),
              1e-6 * accountant.total_it_joules())
      << GetParam().name;

  // 3. Timeline sanity + walltime enforcement per job.
  for (const workload::Job* job : scenario.solution().finished_jobs()) {
    if (job->state() == workload::JobState::kCancelled) continue;
    EXPECT_GE(job->start_time(), job->submit_time()) << GetParam().name;
    EXPECT_GE(job->end_time(), job->start_time()) << GetParam().name;
    EXPECT_LE(job->end_time() - job->start_time(),
              job->spec().walltime_estimate + sim::kSecond)
        << GetParam().name << " job " << job->id();
    // 4. Completed jobs did all their work; killed jobs did not overrun.
    if (job->state() == workload::JobState::kCompleted) {
      EXPECT_NEAR(job->work_done(), job->work_total(),
                  1e-6 * job->work_total())
          << GetParam().name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariantTest,
    ::testing::Values(
        PolicyCase{"none", [](core::EpaJsrmSolution&) {}},
        PolicyCase{"static-cap",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(
                         std::make_unique<epa::StaticPowerCapPolicy>(
                             0.7, 200.0));
                   }},
        PolicyCase{"budget-dvfs",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(
                         std::make_unique<epa::PowerBudgetDvfsPolicy>(
                             16 * 220.0));
                   }},
        PolicyCase{"dyn-share",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(
                         std::make_unique<epa::DynamicPowerSharePolicy>(
                             16 * 220.0));
                   }},
        PolicyCase{"idle-shutdown",
                   [](core::EpaJsrmSolution& s) {
                     epa::IdleShutdownPolicy::Config cfg;
                     cfg.idle_timeout = 10 * sim::kMinute;
                     s.add_policy(
                         std::make_unique<epa::IdleShutdownPolicy>(cfg));
                   }},
        PolicyCase{"ms3",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(std::make_unique<epa::Ms3ThermalPolicy>());
                   }},
        PolicyCase{"balancer",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(
                         std::make_unique<epa::JobPowerBalancerPolicy>(
                             16 * 220.0));
                   }},
        PolicyCase{"ramp-limiter",
                   [](core::EpaJsrmSolution& s) {
                     epa::RampLimiterPolicy::Config cfg;
                     cfg.max_ramp_watts = 800.0;
                     s.add_policy(
                         std::make_unique<epa::RampLimiterPolicy>(cfg));
                   }},
        PolicyCase{"capability-window",
                   [](core::EpaJsrmSolution& s) {
                     epa::CapabilityWindowPolicy::Config cfg;
                     cfg.period = 2 * sim::kDay;
                     cfg.window_length = sim::kDay;
                     s.add_policy(
                         std::make_unique<epa::CapabilityWindowPolicy>(cfg));
                   }},
        PolicyCase{"energy-to-solution",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(
                         std::make_unique<epa::EnergyToSolutionPolicy>());
                   }},
        PolicyCase{"overprovision",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(std::make_unique<epa::OverprovisionPolicy>(
                         16 * 230.0));
                   }},
        PolicyCase{"stacked",
                   [](core::EpaJsrmSolution& s) {
                     s.add_policy(
                         std::make_unique<epa::PowerBudgetDvfsPolicy>(
                             16 * 230.0));
                     epa::IdleShutdownPolicy::Config idle;
                     idle.idle_timeout = 15 * sim::kMinute;
                     s.add_policy(
                         std::make_unique<epa::IdleShutdownPolicy>(idle));
                     s.add_policy(
                         std::make_unique<epa::EnergyToSolutionPolicy>());
                   }}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace epajsrm
