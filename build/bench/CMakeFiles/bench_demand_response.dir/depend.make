# Empty dependencies file for bench_demand_response.
# This may be replaced when dependencies are built.
