#include "epajsrm_analyze/scopes.hpp"

#include <algorithm>

namespace epajsrm::analyze {

namespace ts = epajsrm::toolsupport;

namespace {

struct ActiveScope {
  ScopeKind kind;
  int function_ordinal = -1;  // set for kFunction scopes
  int saved_paren_depth = 0;  // statement paren depth at entry
  int open_line = 0;
};

std::string last_token(const std::string& head) {
  std::size_t end = head.size();
  while (end > 0 && (head[end - 1] == ' ' || head[end - 1] == '\t')) --end;
  if (end == 0) return "";
  if (!ts::is_ident_char(head[end - 1])) return std::string(1, head[end - 1]);
  const std::size_t b = ts::ident_start_before(head, end);
  return head.substr(b, end - b);
}

// Identifier immediately before the first '(' — the would-be function
// name (qualified names yield the last component).
std::string name_before_paren(const std::string& head) {
  const std::size_t paren = head.find('(');
  if (paren == std::string::npos) return "";
  std::size_t end = paren;
  while (end > 0 && (head[end - 1] == ' ' || head[end - 1] == '\t')) --end;
  const std::size_t b = ts::ident_start_before(head, end);
  return head.substr(b, end - b);
}

bool is_control_keyword(const std::string& name) {
  return name == "if" || name == "for" || name == "while" ||
         name == "switch" || name == "catch" || name == "return" ||
         name == "sizeof" || name == "alignof" || name == "decltype";
}

ScopeKind classify_head(const std::string& head, bool inside_function) {
  if (head.empty()) return ScopeKind::kBlock;
  if (ts::contains_word(head, "namespace")) return ScopeKind::kNamespace;
  const bool has_paren = head.find('(') != std::string::npos;
  if (!has_paren && (ts::contains_word(head, "class") ||
                     ts::contains_word(head, "struct") ||
                     ts::contains_word(head, "union") ||
                     ts::contains_word(head, "enum"))) {
    return ScopeKind::kType;
  }
  if (has_paren) {
    const std::string callee = name_before_paren(head);
    if (is_control_keyword(callee)) return ScopeKind::kBlock;
    if (inside_function) return ScopeKind::kBlock;  // lambda / control flow
    const std::string tail = last_token(head);
    if (tail == ")" || tail == ">" || tail == "const" || tail == "noexcept" ||
        tail == "override" || tail == "final" || tail == "try" ||
        tail == "mutable") {
      return ScopeKind::kFunction;
    }
    // `Foo::Foo() : member_{` — an init brace inside a constructor
    // initializer list; the head ends with the member's identifier.
    if (!tail.empty() && ts::is_ident_char(tail.back())) {
      return ScopeKind::kInit;
    }
    return ScopeKind::kBlock;
  }
  if (head.find('=') != std::string::npos) return ScopeKind::kInit;
  const std::string tail = last_token(head);
  if (tail == "else" || tail == "do" || tail == "try") return ScopeKind::kBlock;
  if (!tail.empty() && ts::is_ident_char(tail.back())) {
    // `std::vector<int> v{` / `return Foo{` — brace initialization.
    return ScopeKind::kInit;
  }
  return ScopeKind::kBlock;
}

}  // namespace

int ScopeWalk::function_at_line(int line) const {
  int best = -1;
  int best_span = 0;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const Function& f = functions[i];
    if (line < f.first_line || (f.last_line > 0 && line > f.last_line)) {
      continue;
    }
    const int span = (f.last_line > 0 ? f.last_line : 1 << 30) - f.first_line;
    if (best < 0 || span < best_span) {
      best = static_cast<int>(i);
      best_span = span;
    }
  }
  return best;
}

ScopeWalk walk_scopes(const ts::SourceFile& sf) {
  ScopeWalk walk;
  std::vector<ActiveScope> stack;
  std::string pending;
  int pending_line = 0;
  int paren_depth = 0;
  bool in_preprocessor = false;

  const auto snapshot = [&](const std::string& head, int line) {
    ScopeWalk::Statement st;
    st.head = ts::trim(head);
    st.line = line;
    st.at_namespace_scope = true;
    for (const ActiveScope& s : stack) {
      if (s.kind != ScopeKind::kNamespace) st.at_namespace_scope = false;
      if (s.kind == ScopeKind::kInit) st.inside_initializer = true;
      if (s.kind == ScopeKind::kFunction) {
        st.function_ordinal = s.function_ordinal;
      }
    }
    st.at_type_scope = !stack.empty() && stack.back().kind == ScopeKind::kType;
    return st;
  };

  const auto append_char = [&](char c, int line) {
    if (c == ' ' || c == '\t') {
      if (!pending.empty() && pending.back() != ' ') pending += ' ';
      return;
    }
    if (pending.empty() || ts::trim(pending).empty()) pending_line = line;
    pending += c;
  };

  for (std::size_t li = 0; li < sf.code.size(); ++li) {
    const int line_no = static_cast<int>(li + 1);
    const std::string& code = sf.code[li];
    const std::string& raw = li < sf.raw.size() ? sf.raw[li] : code;

    if (in_preprocessor) {
      in_preprocessor = !raw.empty() && raw.back() == '\\';
      continue;
    }
    const std::size_t first = ts::skip_ws(code, 0);
    if (first < code.size() && code[first] == '#') {
      in_preprocessor = !raw.empty() && raw.back() == '\\';
      continue;
    }

    for (std::size_t ci = 0; ci < code.size(); ++ci) {
      const char c = code[ci];
      if (c == '(') {
        ++paren_depth;
        append_char(c, line_no);
      } else if (c == ')') {
        if (paren_depth > 0) --paren_depth;
        append_char(c, line_no);
      } else if (c == '{' && paren_depth == 0) {
        const bool inside_function = std::any_of(
            stack.begin(), stack.end(), [](const ActiveScope& s) {
              return s.kind == ScopeKind::kFunction;
            });
        const std::string head = ts::trim(pending);
        const ScopeKind kind = classify_head(head, inside_function);
        ActiveScope scope;
        scope.kind = kind;
        scope.saved_paren_depth = paren_depth;
        scope.open_line = line_no;
        if (kind == ScopeKind::kFunction) {
          ScopeWalk::Function fn;
          fn.name = name_before_paren(head);
          fn.first_line = pending_line > 0 ? pending_line : line_no;
          scope.function_ordinal = static_cast<int>(walk.functions.size());
          walk.functions.push_back(fn);
        }
        if (kind == ScopeKind::kInit && !head.empty()) {
          // Brace-initialized declarations surface as statements at the
          // scope *outside* the initializer (snapshot before push).
          walk.statements.push_back(
              snapshot(head, pending_line > 0 ? pending_line : line_no));
        }
        stack.push_back(scope);
        pending.clear();
        paren_depth = 0;
      } else if (c == '{') {
        // Brace inside parentheses (lambda argument, list in a call):
        // anonymous block; statement parens resume when it closes.
        ActiveScope scope;
        scope.kind = ScopeKind::kBlock;
        scope.saved_paren_depth = paren_depth;
        scope.open_line = line_no;
        stack.push_back(scope);
        pending.clear();
        paren_depth = 0;
      } else if (c == '}') {
        if (!stack.empty()) {
          const ActiveScope done = stack.back();
          stack.pop_back();
          if (done.kind == ScopeKind::kFunction &&
              done.function_ordinal >= 0) {
            walk.functions[static_cast<std::size_t>(done.function_ordinal)]
                .last_line = line_no;
          }
          paren_depth = done.saved_paren_depth;
        }
        pending.clear();
      } else if (c == ';' && paren_depth == 0) {
        const std::string head = ts::trim(pending);
        if (!head.empty()) {
          walk.statements.push_back(
              snapshot(head, pending_line > 0 ? pending_line : line_no));
        }
        pending.clear();
      } else {
        append_char(c, line_no);
      }
    }
    append_char(' ', line_no);
  }
  return walk;
}

}  // namespace epajsrm::analyze
