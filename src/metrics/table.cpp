#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace epajsrm::metrics {

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {

std::vector<std::string> split_lines(const std::string& cell) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : cell) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

}  // namespace

std::string AsciiTable::render() const {
  const std::size_t cols = headers_.size();
  std::vector<std::size_t> widths(cols, 0);
  const auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      for (const std::string& line : split_lines(row[c])) {
        widths[c] = std::max(widths[c], line.size());
      }
    }
  };
  measure(headers_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream out;
  const auto rule = [&](char fill) {
    out << '+';
    for (std::size_t c = 0; c < cols; ++c) {
      out << std::string(widths[c] + 2, fill) << '+';
    }
    out << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    std::vector<std::vector<std::string>> cell_lines(cols);
    std::size_t height = 1;
    for (std::size_t c = 0; c < cols; ++c) {
      cell_lines[c] = split_lines(c < row.size() ? row[c] : "");
      height = std::max(height, cell_lines[c].size());
    }
    for (std::size_t l = 0; l < height; ++l) {
      out << '|';
      for (std::size_t c = 0; c < cols; ++c) {
        const std::string& text =
            l < cell_lines[c].size() ? cell_lines[c][l] : "";
        out << ' ' << text << std::string(widths[c] - text.size(), ' ')
            << " |";
      }
      out << '\n';
    }
  };

  if (!title_.empty()) out << title_ << '\n';
  rule('-');
  emit_row(headers_);
  rule('=');
  for (const auto& row : rows_) {
    emit_row(row);
    rule('-');
  }
  return out.str();
}

std::string format_watts(double watts) {
  char buf[64];
  if (watts >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MW", watts / 1e6);
  } else if (watts >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f kW", watts / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f W", watts);
  }
  return buf;
}

std::string format_kwh(double kwh) {
  char buf[64];
  if (kwh >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f MWh", kwh / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f kWh", kwh);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %%", precision, fraction * 100.0);
  return buf;
}

}  // namespace epajsrm::metrics
