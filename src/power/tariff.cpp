#include "power/tariff.hpp"

#include <algorithm>
#include <cmath>

namespace epajsrm::power {

Tariff Tariff::flat(double price_per_kwh) {
  return Tariff({Band{0.0, 24.0, price_per_kwh}});
}

Tariff Tariff::peak_offpeak(double peak_price, double offpeak_price,
                            double peak_begin, double peak_end) {
  std::vector<Band> bands;
  if (peak_begin > 0.0) bands.push_back({0.0, peak_begin, offpeak_price});
  bands.push_back({peak_begin, peak_end, peak_price});
  if (peak_end < 24.0) bands.push_back({peak_end, 24.0, offpeak_price});
  return Tariff(std::move(bands));
}

Tariff::Tariff(std::vector<Band> bands) : bands_(std::move(bands)) {
  if (bands_.empty()) throw std::invalid_argument("tariff needs bands");
  std::sort(bands_.begin(), bands_.end(),
            [](const Band& a, const Band& b) {
              return a.begin_hour < b.begin_hour;
            });
  double cursor = 0.0;
  for (const Band& b : bands_) {
    if (b.begin_hour != cursor || b.end_hour <= b.begin_hour ||
        b.price_per_kwh < 0.0) {
      throw std::invalid_argument("tariff bands must tile [0,24)");
    }
    cursor = b.end_hour;
  }
  if (cursor != 24.0) throw std::invalid_argument("tariff must cover 24 h");
}

double Tariff::price_at(sim::SimTime t) const {
  const double hour = std::fmod(sim::to_hours(t), 24.0);
  for (const Band& b : bands_) {
    if (hour >= b.begin_hour && hour < b.end_hour) return b.price_per_kwh;
  }
  return bands_.back().price_per_kwh;  // hour == 24 boundary
}

double Tariff::cost(double watts, sim::SimTime begin, sim::SimTime end) const {
  if (end <= begin || watts <= 0.0) return 0.0;
  // Integrate band-by-band; bands are hour-aligned cycles, so walk in
  // sub-hour steps bounded by band edges.
  double total = 0.0;
  sim::SimTime cursor = begin;
  while (cursor < end) {
    const double hour = std::fmod(sim::to_hours(cursor), 24.0);
    double band_end_hour = 24.0;
    double price = bands_.back().price_per_kwh;
    for (const Band& b : bands_) {
      if (hour >= b.begin_hour && hour < b.end_hour) {
        band_end_hour = b.end_hour;
        price = b.price_per_kwh;
        break;
      }
    }
    sim::SimTime band_end = cursor + sim::from_hours(band_end_hour - hour);
    // Floating-point guard: when `cursor` sits within rounding distance of
    // a band boundary the increment can truncate to zero; force progress
    // (one microsecond of misattributed price is far below any tolerance).
    if (band_end <= cursor) band_end = cursor + 1;
    const sim::SimTime seg_end = std::min(end, band_end);
    total += watts / 1000.0 * sim::to_hours(seg_end - cursor) * price;
    cursor = seg_end;
  }
  return total;
}

sim::SimTime Tariff::cheapest_start(double watts, sim::SimTime earliest,
                                    sim::SimTime duration) const {
  sim::SimTime best = earliest;
  double best_cost = cost(watts, earliest, earliest + duration);
  for (int h = 1; h <= 24; ++h) {
    const sim::SimTime start = earliest + h * sim::kHour;
    const double c = cost(watts, start, start + duration);
    if (c < best_cost - 1e-9) {
      best_cost = c;
      best = start;
    }
  }
  return best;
}

}  // namespace epajsrm::power
