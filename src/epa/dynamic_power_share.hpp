// Dynamic power sharing of a global budget — Ellsworth et al. [17]
// (POWsched) and Bodas et al. [8]: instead of a fixed per-node cap, the
// controller periodically measures per-node demand and re-divides the
// system budget so power flows to the nodes that can use it.
#pragma once

#include "check/contract.hpp"
#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Periodic proportional re-division of a system power budget into node
/// caps.
class DynamicPowerSharePolicy final : public EpaPolicy {
 public:
  /// `budget_watts`: the global IT budget to divide. `floor_margin`: each
  /// node's cap never drops below idle_watts × (1 + floor_margin) so nodes
  /// stay responsive.
  explicit DynamicPowerSharePolicy(double budget_watts,
                                   double floor_margin = 0.02)
      : budget_(budget_watts), floor_margin_(floor_margin) {}

  std::string name() const override { return "dynamic-power-share"; }

  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime) const override { return budget_; }
  void set_budget_watts(double watts) {
    EPAJSRM_REQUIRE(watts >= 0.0, "power budget must be non-negative");
    budget_ = watts;
  }

  std::uint64_t redistributions() const { return redistributions_; }

 private:
  double budget_;
  double floor_margin_;
  std::uint64_t redistributions_ = 0;
};

}  // namespace epajsrm::epa
