// Cancellable discrete-event queue.
//
// Events are (time, sequence) ordered: ties in time fire in scheduling
// order, which makes multi-component interactions (telemetry tick before
// scheduler tick scheduled later, etc.) deterministic.
//
// Layout: events live in a slab arena (std::vector of fixed slots reused
// through a free list) and the ordering structure is a 4-ary heap of slot
// indices. Each slot knows its heap position, so cancellation is *eager*
// O(log4 n) heap surgery — no tombstones, no dead entries for next_time()
// to skip, and a cancelled event's callback is destroyed immediately.
// Callbacks are small-buffer-optimised (SmallFn): captures up to
// kInlineCallbackBytes live inside the slot, so the steady-state hot path
// performs no allocation at all. EventIds encode (slot, generation), so a
// stale id — already fired, already cancelled, or never issued — is
// rejected in O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/event_category.hpp"
#include "sim/time.hpp"

namespace epajsrm::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Sentinel for "no event" (EventId 0 is never issued).
inline constexpr EventId kNoEvent = 0;

/// A time-ordered queue of callbacks with O(log n) push/pop and eager
/// O(log n) cancellation.
class EventQueue {
 public:
  using Callback = SmallFn<void()>;

  /// Schedules `cb` to fire at absolute time `t`. Returns a handle that can
  /// be passed to cancel(). `category` tags the event for the event-loop
  /// profiler.
  EventId push(SimTime t, Callback cb,
               EventCategory category = kDefaultEventCategory);

  /// Cancels a pending event. Returns true if the event was still pending;
  /// false if it already fired, was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live events remain.
  bool empty() const { return heap_.empty(); }

  /// Number of live events.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event. Must not be called when empty().
  SimTime next_time() const;

  /// Removes and returns the earliest live event. Must not be called when
  /// empty().
  struct Popped {
    SimTime time;
    EventId id;
    Callback callback;
    EventCategory category;
  };
  Popped pop();

  /// Slots currently held by the arena (capacity diagnostics; includes
  /// free-listed slots awaiting reuse).
  std::size_t arena_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNilIndex = 0xffffffffu;

  struct Slot {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;
    /// Position in heap_, or kNilIndex when the slot is free.
    std::uint32_t heap_index = kNilIndex;
    std::uint32_t next_free = kNilIndex;
    EventCategory category = kDefaultEventCategory;
    Callback callback;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }

  /// Resolves an id to its live slot index, or kNilIndex for any stale,
  /// fired, cancelled, or never-issued id.
  std::uint32_t resolve(EventId id) const;

  bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.time != sb.time) return sa.time < sb.time;
    return sa.seq < sb.seq;
  }

  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  /// Removes the heap entry at `pos`, restoring the heap property.
  void heap_erase(std::uint32_t pos);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  std::vector<Slot> slots_;          ///< slab arena
  std::vector<std::uint32_t> heap_;  ///< 4-ary min-heap of slot indices
  std::uint32_t free_head_ = kNilIndex;
  std::uint64_t next_seq_ = 0;
};

}  // namespace epajsrm::sim
