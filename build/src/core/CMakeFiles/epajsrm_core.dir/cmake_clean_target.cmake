file(REMOVE_RECURSE
  "libepajsrm_core.a"
)
