
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/grid_demand_response.cpp" "examples/CMakeFiles/grid_demand_response.dir/grid_demand_response.cpp.o" "gcc" "examples/CMakeFiles/grid_demand_response.dir/grid_demand_response.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/epajsrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/epajsrm_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/epa/CMakeFiles/epajsrm_epa.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/epajsrm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/epajsrm_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/epajsrm_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/epajsrm_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/epajsrm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/epajsrm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/epajsrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
