// Fixture: the wall-clock rule must fire here.
#include <chrono>

long now_ns() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

long also_bad() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
