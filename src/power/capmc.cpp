#include "power/capmc.hpp"

#include <algorithm>

#include "check/contract.hpp"
#include "obs/observability.hpp"
#include "power/ledger.hpp"

namespace epajsrm::power {

void CapmcController::set_observability(obs::Observability* o) {
  obs_ = o;
  if (o == nullptr) {
    calls_counter_ = nullptr;
    retries_counter_ = nullptr;
    failures_counter_ = nullptr;
    latency_hist_ = nullptr;
    attempts_hist_ = nullptr;
    return;
  }
  calls_counter_ = &o->metrics().counter("power.capmc_calls");
  retries_counter_ = &o->metrics().counter("power.capmc_retries");
  failures_counter_ = &o->metrics().counter("power.capmc_failures");
  // Call latency is wall-clock-derived, so it only exists when wall
  // instruments are on — with them off the registry stays a pure function
  // of the simulated run (bit-identical across ensemble shards).
  latency_hist_ = o->config().wall_instruments
                      ? &o->metrics().histogram("power.capmc_call_us")
                      : nullptr;
  attempts_hist_ = &o->metrics().histogram("power.capmc_attempts");
}

bool CapmcController::rpc(const char* op) {
  if (!transport_) {
    last_call_ok_ = true;
    return true;  // ideal channel
  }

  const sim::SimTime now = transport_->now();
  if (breaker_open_) {
    if (now < breaker_until_) {
      // Fast-fail while the breaker is open; no attempts hit the channel.
      ++breaker_fast_fails_;
      ++failed_calls_;
      last_call_ok_ = false;
      if (failures_counter_ != nullptr) failures_counter_->add(1);
      return false;
    }
    // Cooldown elapsed: this call is the half-open probe.
    breaker_open_ = false;
  }

  const std::uint32_t max_attempts = std::max(1u, retry_.max_attempts);
  double call_latency_us = 0.0;
  bool delivered = false;
  std::uint32_t attempts = 0;
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    attempts = attempt;
    call_latency_us += fault::backoff_us(retry_, attempt, jitter_stream_++);
    const fault::ControlTransport::Attempt result = transport_->attempt(op);
    call_latency_us += result.latency_us;
    if (result.ok && result.latency_us <= retry_.timeout_us) {
      delivered = true;
      break;
    }
    if (attempt < max_attempts) {
      ++retries_;
      if (retries_counter_ != nullptr) retries_counter_->add(1);
    }
  }
  total_rpc_latency_us_ += call_latency_us;
  if (attempts_hist_ != nullptr) {
    attempts_hist_->observe(static_cast<double>(attempts));
  }

  last_call_ok_ = delivered;
  if (delivered) {
    consecutive_failures_ = 0;
    return true;
  }

  ++failed_calls_;
  if (failures_counter_ != nullptr) failures_counter_->add(1);
  ++consecutive_failures_;
  if (retry_.breaker_threshold > 0 &&
      consecutive_failures_ >= retry_.breaker_threshold) {
    breaker_open_ = true;
    breaker_until_ = now + retry_.breaker_cooldown;
    consecutive_failures_ = 0;
    ++breaker_opens_;
    if (obs_ != nullptr) {
      obs_->metrics().counter("power.capmc_breaker_opens").add(1);
      obs_->trace().instant("capmc", "breaker_open", -1, -1,
                            {{"cooldown_s",
                              sim::to_seconds(retry_.breaker_cooldown)}});
    }
  }
  return false;
}

void CapmcController::record_call(const char* name, std::int64_t t0_ns,
                                  std::int64_t node_id, double watts,
                                  double node_count) {
  calls_counter_->add(1);
  if (latency_hist_ != nullptr) {
    const std::int64_t dt_ns = obs_->trace().wall_now_ns() - t0_ns;
    latency_hist_->observe(static_cast<double>(dt_ns) / 1000.0);
  }
  obs_->trace().instant(
      "capmc", name, -1, node_id,
      {{"watts", watts}, {"nodes", node_count}});
}

void CapmcController::apply_node_cap(platform::NodeId node, double watts) {
  platform::Node& n = cluster_->node(node);
  n.set_power_cap_watts(watts);
  model_->apply(n);
}

bool CapmcController::set_node_cap(platform::NodeId node, double watts) {
  EPAJSRM_REQUIRE(watts >= 0.0, "node cap must be non-negative (0 clears)");
  EPAJSRM_REQUIRE(node < cluster_->node_count(), "unknown node id");
  const std::int64_t t0 = obs_ != nullptr ? obs_->trace().wall_now_ns() : 0;
  if (!rpc("node_cap")) return false;
  apply_node_cap(node, watts);
  if (obs_ != nullptr) {
    record_call("node_cap", t0, static_cast<std::int64_t>(node), watts, 1.0);
  }
  return true;
}

bool CapmcController::set_group_cap(std::span<const platform::NodeId> nodes,
                                    double watts) {
  EPAJSRM_REQUIRE(watts >= 0.0, "group cap must be non-negative (0 clears)");
  const std::int64_t t0 = obs_ != nullptr ? obs_->trace().wall_now_ns() : 0;
  if (!rpc("group_cap")) return false;
  for (platform::NodeId id : nodes) apply_node_cap(id, watts);
  if (obs_ != nullptr) {
    record_call("group_cap", t0, -1, watts,
                static_cast<double>(nodes.size()));
  }
  return true;
}

bool CapmcController::set_system_cap(double total_watts) {
  const std::uint32_t n = cluster_->node_count();
  if (n == 0) return true;
  if (total_watts <= 0.0) {
    return clear_all_caps();
  }
  const std::int64_t t0 = obs_ != nullptr ? obs_->trace().wall_now_ns() : 0;
  if (!rpc("system_cap")) return false;
  const double per_node = total_watts / n;
  double guaranteed = 0.0;
  for (platform::Node& node : cluster_->nodes()) {
    // A cap below the idle floor can never be met by DVFS; clamp to the
    // floor plus a sliver of dynamic headroom so the node stays usable.
    const double floor = node.config().idle_watts * 1.02;
    const double cap = std::max(per_node, floor);
    node.set_power_cap_watts(cap);
    model_->apply(node);
    guaranteed += cap;
  }
  system_cap_error_ = std::max(0.0, guaranteed - total_watts);
  // The evenly divided caps must guarantee at most the request plus the
  // reported clamping error — otherwise compliance metrics lie.
  EPAJSRM_ENSURE(guaranteed <= total_watts + system_cap_error_ + 1e-9,
                 "per-node caps exceed the system cap beyond reported error");
  if (obs_ != nullptr) {
    record_call("system_cap", t0, -1, total_watts, static_cast<double>(n));
  }
  return true;
}

bool CapmcController::clear_all_caps() {
  const std::int64_t t0 = obs_ != nullptr ? obs_->trace().wall_now_ns() : 0;
  if (!rpc("clear_caps")) return false;
  for (platform::Node& node : cluster_->nodes()) {
    node.set_power_cap_watts(0.0);
    model_->apply(node);
  }
  system_cap_error_ = 0.0;
  if (obs_ != nullptr) {
    record_call("clear_caps", t0, -1, 0.0,
                static_cast<double>(cluster_->node_count()));
  }
  return true;
}

double CapmcController::worst_case_watts() const {
  EPAJSRM_REQUIRE(model_->ledger() != nullptr,
                  "CAPMC worst-case read needs an attached power ledger");
  return model_->ledger()->worst_case_it_watts();
}

std::uint32_t CapmcController::capped_node_count() const {
  EPAJSRM_REQUIRE(model_->ledger() != nullptr,
                  "CAPMC cap census needs an attached power ledger");
  return model_->ledger()->capped_node_count();
}

}  // namespace epajsrm::power
