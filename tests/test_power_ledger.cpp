// Ledger-parity tests: the PowerLedger's incrementally maintained
// aggregates must match a brute-force sweep of the cluster to 1e-9 at
// arbitrary probe points of randomized fault-on runs — crashes, PDU
// trips, sensor faults, thermal excursions and control-channel outages
// all mutate power state through different producers, and none may let
// the ledger drift from ground truth. The invariant auditor's ledger
// fidelity check stays armed throughout.
#include "power/ledger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "core/scenario.hpp"
#include "core/scenario_builder.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"

namespace epajsrm::power {
namespace {

constexpr double kTol = 1e-9;

// Recomputes every externally observable aggregate from the cluster and
// compares it against the ledger's O(1) answers; also checks the
// per-node mirrors and the ledger's own internal (exact, fixed-point)
// aggregate parity.
void expect_ledger_parity(const PowerLedger& ledger,
                          const platform::Cluster& cluster,
                          const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(ledger.node_count(), cluster.node_count());
  EXPECT_EQ(ledger.audit_parity(), "");

  double it_watts = 0.0;
  double cap_sum_watts = 0.0;
  double max_temp_c = -std::numeric_limits<double>::infinity();
  std::vector<double> rack_watts(ledger.rack_count(), 0.0);
  std::vector<double> pdu_watts(ledger.pdu_count(), 0.0);
  std::vector<std::uint32_t> rack_capped(ledger.rack_count(), 0);
  std::array<std::uint32_t, 7> state_counts{};
  std::uint32_t capped = 0;

  for (const platform::Node& node : cluster.nodes()) {
    const platform::NodeId id = node.id();
    // Per-node mirrors are exact: posts store the doubles verbatim.
    EXPECT_EQ(ledger.node_watts(id), node.current_watts());
    EXPECT_EQ(ledger.node_cap_watts(id), node.power_cap_watts());
    EXPECT_EQ(ledger.node_temperature_c(id), node.temperature_c());
    EXPECT_EQ(ledger.node_state(id), node.state());
    EXPECT_EQ(ledger.node_allocated(id), !node.allocations().empty());
    EXPECT_EQ(ledger.node_cap_governed(id),
              PowerLedger::cap_governed(node.state()));

    const double w = node.current_watts();
    it_watts += w;
    rack_watts[node.rack()] += w;
    pdu_watts[node.pdu()] += w;
    max_temp_c = std::max(max_temp_c, node.temperature_c());
    ++state_counts[static_cast<std::size_t>(node.state())];
    if (node.power_cap_watts() > 0.0) {
      ++capped;
      ++rack_capped[node.rack()];
      cap_sum_watts += node.power_cap_watts();
    }
  }

  EXPECT_NEAR(ledger.it_power_watts(), it_watts, kTol);
  EXPECT_NEAR(ledger.cap_sum_watts(), cap_sum_watts, kTol);
  EXPECT_EQ(ledger.capped_node_count(), capped);
  if (cluster.node_count() > 0) {
    EXPECT_NEAR(ledger.max_temperature_c(), max_temp_c, kTol);
  }
  for (platform::RackId rack = 0; rack < ledger.rack_count(); ++rack) {
    EXPECT_NEAR(ledger.rack_power_watts(rack), rack_watts[rack], kTol);
    EXPECT_EQ(ledger.rack_capped_count(rack), rack_capped[rack]);
  }
  for (platform::PduId pdu = 0; pdu < ledger.pdu_count(); ++pdu) {
    EXPECT_NEAR(ledger.pdu_power_watts(pdu), pdu_watts[pdu], kTol);
  }
  for (std::size_t s = 0; s < state_counts.size(); ++s) {
    EXPECT_EQ(ledger.count_in_state(static_cast<platform::NodeState>(s)),
              state_counts[s])
        << "state " << s;
  }
}

core::Scenario faulty_scenario(std::uint64_t seed) {
  return core::Scenario::builder()
      .label("ledger-parity")
      .nodes(16)
      .job_count(24)
      .seed(seed)
      .horizon(sim::kDay)
      .build();
}

void install_fault_storm(core::Scenario& scenario, std::uint64_t seed) {
  fault::FailureModel model;
  model.mtbf_hours = 24.0;  // several crash/repair cycles across 16 nodes
  model.repair_time = 15 * sim::kMinute;
  fault::FaultPlan plan = model.generate(
      scenario.config().nodes, scenario.config().horizon, seed);
  plan.trip_pdu(3 * sim::kHour, 0, /*repair_after=*/40 * sim::kMinute)
      .sensor_dropout(2 * sim::kHour, sim::kHour, 0.7)
      .sensor_stuck(5 * sim::kHour, 30 * sim::kMinute)
      .sensor_noise(8 * sim::kHour, 2 * sim::kHour, 0.08)
      .thermal_excursion(6 * sim::kHour, 3, 12.0)
      .thermal_excursion(14 * sim::kHour, 7, 9.0)
      .capmc_failure(10 * sim::kHour, sim::kHour, 0.6);
  fault::FaultInjector::Config config;
  config.seed = seed;
  fault::FaultInjector::install(scenario.solution(), plan, config);
}

TEST(PowerLedgerParity, MatchesBruteForceUnderRandomizedFaultStorms) {
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    core::Scenario scenario = faulty_scenario(seed);
    install_fault_storm(scenario, seed);
    check::InvariantAuditor auditor(scenario.solution());

    // Probe parity at a cadence that lands mid-crash, mid-repair,
    // mid-dropout and mid-excursion across the day.
    for (sim::SimTime t = 20 * sim::kMinute;
         t < scenario.config().horizon; t += 20 * sim::kMinute) {
      scenario.simulation().schedule_at(t, [&scenario, t, seed] {
        expect_ledger_parity(
            scenario.solution().ledger(), scenario.cluster(),
            "seed " + std::to_string(seed) + " t=" +
                std::to_string(t / sim::kMinute) + "min");
      });
    }

    scenario.run();

    expect_ledger_parity(scenario.solution().ledger(), scenario.cluster(),
                         "seed " + std::to_string(seed) + " final");
    const PowerLedger& ledger = scenario.solution().ledger();
    EXPECT_GT(ledger.posts_applied(), 0u);
    EXPECT_GT(ledger.epoch(), 0u);
    EXPECT_EQ(auditor.violation_count(), 0u)
        << auditor.violations().front().invariant << ": "
        << auditor.violations().front().detail;
  }
}

TEST(PowerLedgerParity, AuditorDetectsAnOutOfBandPost) {
  // A post that bypasses the node sensor caches is exactly the bug class
  // the auditor's ledger fidelity check exists to catch.
  core::Scenario scenario = faulty_scenario(99);
  check::InvariantAuditor auditor(scenario.solution());
  scenario.simulation().schedule_at(sim::kHour, [&scenario] {
    PowerLedger::NodeSample bogus;
    bogus.watts = 123456.0;
    bogus.demand_watts = 123456.0;
    scenario.solution().ledger().post(0, bogus);
  });
  scenario.simulation().schedule_at(sim::kHour + sim::kMinute, [&auditor] {
    auditor.audit_now();
  });
  scenario.simulation().run_until(2 * sim::kHour);
  EXPECT_GT(auditor.violation_count(), 0u);
  bool ledger_violation = false;
  for (const check::AuditViolation& v : auditor.violations()) {
    if (std::string(v.invariant) == "ledger") ledger_violation = true;
  }
  EXPECT_TRUE(ledger_violation);
}

TEST(PowerLedgerParity, EpochAndDirtySetTrackAcceptedPostsOnly) {
  platform::NodeConfig cfg;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .node_count(4)
                                  .node_config(cfg)
                                  .nodes_per_rack(2)
                                  .build();
  PowerLedger ledger(cluster);
  const std::uint64_t epoch0 = ledger.epoch();

  PowerLedger::NodeSample sample;
  sample.watts = 150.0;
  sample.demand_watts = 180.0;
  ledger.post(1, sample);
  EXPECT_EQ(ledger.epoch(), epoch0 + 1);
  EXPECT_EQ(ledger.posts_applied(), 1u);
  ASSERT_EQ(ledger.dirty_nodes().size(), 1u);
  EXPECT_EQ(ledger.dirty_nodes()[0], 1u);

  // Re-posting identical facts is a no-op: no epoch bump, no dirty mark.
  ledger.clear_dirty();
  ledger.post(1, sample);
  EXPECT_EQ(ledger.epoch(), epoch0 + 1);
  EXPECT_EQ(ledger.posts_ignored(), 1u);
  EXPECT_TRUE(ledger.dirty_nodes().empty());

  EXPECT_NEAR(ledger.it_power_watts(), 150.0, kTol);
  EXPECT_NEAR(ledger.total_demand_watts(), 180.0, kTol);
  EXPECT_EQ(ledger.audit_parity(), "");
}

}  // namespace
}  // namespace epajsrm::power
