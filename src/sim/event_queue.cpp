#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace epajsrm::sim {

EventId EventQueue::push(SimTime t, Callback cb, const char* category) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, Stored{std::move(cb), category});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::skip_dead() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skip_dead();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  skip_dead();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.id);
  assert(it != callbacks_.end());
  Popped out{e.time, e.id, std::move(it->second.callback),
             it->second.category};
  callbacks_.erase(it);
  assert(live_ > 0);
  --live_;
  return out;
}

}  // namespace epajsrm::sim
