#include "platform/node.hpp"

#include <cassert>
#include <stdexcept>

namespace epajsrm::platform {

const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::kOff:          return "off";
    case NodeState::kBooting:      return "booting";
    case NodeState::kIdle:         return "idle";
    case NodeState::kBusy:         return "busy";
    case NodeState::kDraining:     return "draining";
    case NodeState::kShuttingDown: return "shutting-down";
    case NodeState::kSleeping:     return "sleeping";
  }
  return "?";
}

void Node::set_state(NodeState s) {
  if (!allocations_.empty() && (s == NodeState::kOff ||
                                s == NodeState::kShuttingDown ||
                                s == NodeState::kSleeping ||
                                s == NodeState::kBooting)) {
    throw std::logic_error("node " + std::to_string(id_) +
                           ": cannot power-transition with jobs allocated");
  }
  state_ = s;
}

void Node::allocate(JobId job, std::uint32_t cores, double intensity) {
  if (!schedulable()) {
    throw std::logic_error("node " + std::to_string(id_) +
                           " not schedulable (state " +
                           std::string(to_string(state_)) + ")");
  }
  if (cores == 0 || cores > cores_free()) {
    throw std::invalid_argument("node " + std::to_string(id_) +
                                ": bad core request " + std::to_string(cores) +
                                " (free " + std::to_string(cores_free()) + ")");
  }
  if (intensity <= 0.0 || intensity > 1.0) {
    throw std::invalid_argument("intensity must be in (0, 1]");
  }
  if (allocations_.contains(job)) {
    throw std::logic_error("job already allocated on node " +
                           std::to_string(id_));
  }
  allocations_.emplace(job, Allocation{cores, intensity});
  cores_in_use_ += cores;
  load_ += cores * intensity;
  state_ = NodeState::kBusy;
}

std::uint32_t Node::release(JobId job) {
  auto it = allocations_.find(job);
  if (it == allocations_.end()) return 0;
  const std::uint32_t cores = it->second.cores;
  load_ -= it->second.cores * it->second.intensity;
  if (load_ < 1e-9) load_ = 0.0;
  allocations_.erase(it);
  assert(cores_in_use_ >= cores);
  cores_in_use_ -= cores;
  if (allocations_.empty() && state_ == NodeState::kBusy) {
    state_ = NodeState::kIdle;
  }
  return cores;
}

}  // namespace epajsrm::platform
