file(REMOVE_RECURSE
  "CMakeFiles/bench_allocation_ablation.dir/bench_allocation_ablation.cpp.o"
  "CMakeFiles/bench_allocation_ablation.dir/bench_allocation_ablation.cpp.o.d"
  "bench_allocation_ablation"
  "bench_allocation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
