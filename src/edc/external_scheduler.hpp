// ExternalScheduler: makes any EDC Transport look like a normal
// sched::SchedulerPolicy.
//
// The core keeps driving its ordinary loop — decision points, coalesced
// passes — and this adapter serializes every decision point into the
// outbox, closes each pass with a scheduling_pass snapshot, exchanges the
// batch over the transport, and applies the decision replies back through
// the SchedulingContext:
//
//   start_job       -> ctx.try_start (pending lookup by id)
//   set_power_cap   -> ctx.apply_power_cap
//   hold            -> nothing (an explicit "no decision")
//   requeue         -> ctx.requeue
//
// Unknown-job or out-of-order replies are counted and skipped — a remote
// component can never corrupt core state, only waste its own decisions.
// Malformed reply lines throw edc::ProtocolError with the line number.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "edc/protocol.hpp"
#include "edc/transport.hpp"
#include "sched/scheduler.hpp"

namespace epajsrm::edc {

struct ExternalSchedulerConfig {
  /// Pass cadence mirror: must match the wants_pass behaviour of the
  /// policy running on the far side, or the two runs see different pass
  /// sequences. Energy-budget components want budget-tick passes.
  bool pass_on_budget_tick = true;
};

class ExternalScheduler final : public sched::SchedulerPolicy {
 public:
  explicit ExternalScheduler(std::shared_ptr<Transport> transport,
                             ExternalSchedulerConfig config = {});

  void schedule(sched::SchedulingContext& ctx) override;
  void on_decision_point(const sched::DecisionPoint& point,
                         sched::SchedulingContext& ctx) override;
  bool wants_pass(sched::DecisionPoint::Kind kind) const override;
  std::string name() const override;

  std::uint64_t exchanges() const { return exchanges_; }
  std::uint64_t replies_applied() const { return replies_applied_; }
  std::uint64_t replies_rejected() const { return replies_rejected_; }

 private:
  void apply_replies(const std::vector<std::string>& lines,
                     sched::SchedulingContext& ctx);
  std::vector<std::string> run_exchange(sched::SchedulingContext& ctx);

  std::shared_ptr<Transport> transport_;
  ExternalSchedulerConfig config_;
  std::vector<std::string> outbox_;
  std::uint64_t passes_ = 0;
  std::uint64_t exchanges_ = 0;
  std::uint64_t replies_applied_ = 0;
  std::uint64_t replies_rejected_ = 0;
};

}  // namespace epajsrm::edc
