// EPA policy tests: emergency response (automated + manual), demand
// response, MS3 thermal throttling.
#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "epa/demand_response.hpp"
#include "epa/emergency_response.hpp"
#include "epa/ms3_thermal.hpp"

namespace epajsrm::epa {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 8,
                               double ambient_mean = 18.0) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .ambient(platform::AmbientModel(ambient_mean, 0.0))
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0,
                           int priority = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 2;
  spec.submit_time = submit;
  spec.priority = priority;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

TEST(Emergency, AutomatedKillRestoresLimit) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  EmergencyResponsePolicy::Config cfg;
  cfg.limit_watts = 1800.0;  // full machine draws 2400
  cfg.mode = EmergencyResponsePolicy::Mode::kAutomatedKill;
  cfg.confirm_ticks = 2;
  auto policy = std::make_unique<EmergencyResponsePolicy>(cfg);
  EmergencyResponsePolicy* emergency = policy.get();
  solution.add_policy(std::move(policy));
  // 8 single-node jobs; victims should be the newest/lowest priority.
  for (workload::JobId id = 1; id <= 8; ++id) {
    solution.submit(job_spec(id, 1, 2 * sim::kHour, 0,
                             id <= 4 ? 2 : 0));  // first four urgent
  }
  solution.run_until(sim::kHour);
  EXPECT_GT(emergency->emergencies(), 0u);
  EXPECT_GT(emergency->jobs_killed(), 0u);
  EXPECT_LE(cluster.it_power_watts(), 1800.0 + 1e-6);
  // Urgent jobs survived.
  for (workload::JobId id = 1; id <= 4; ++id) {
    EXPECT_NE(solution.find_job(id)->state(),
              workload::JobState::kKilled)
        << "job " << id;
  }
  const core::RunResult result = solution.finalize();
  EXPECT_GT(result.kills_by_reason.at("emergency-power-limit"), 0u);
}

TEST(Emergency, NoBreachNoAction) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::EpaJsrmSolution solution(sim, cluster);
  EmergencyResponsePolicy::Config cfg;
  cfg.limit_watts = 10000.0;
  auto policy = std::make_unique<EmergencyResponsePolicy>(cfg);
  EmergencyResponsePolicy* emergency = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 4, sim::kHour));
  solution.run_until(3 * sim::kHour);
  EXPECT_EQ(emergency->emergencies(), 0u);
  EXPECT_EQ(emergency->jobs_killed(), 0u);
}

TEST(Emergency, ManualModeSetsCapAfterLatency) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  EmergencyResponsePolicy::Config cfg;
  cfg.limit_watts = 1800.0;
  cfg.mode = EmergencyResponsePolicy::Mode::kManualCap;
  cfg.admin_latency = 5 * sim::kMinute;
  auto policy = std::make_unique<EmergencyResponsePolicy>(cfg);
  EmergencyResponsePolicy* emergency = policy.get();
  solution.add_policy(std::move(policy));
  for (workload::JobId id = 1; id <= 8; ++id) {
    solution.submit(job_spec(id, 1, 4 * sim::kHour));
  }
  solution.run_until(sim::kHour);
  EXPECT_TRUE(emergency->manual_cap_active());
  EXPECT_EQ(emergency->jobs_killed(), 0u);  // manual mode never kills
  // The admin cap holds the draw under ~90 % of the limit.
  EXPECT_LE(cluster.it_power_watts(), 1800.0 * 0.9 + 1e-6);
}

TEST(DemandResponse, ShedsForTheWindowAndRestores) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);

  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::flat(0.10), .startup_time = 0,
                     .dispatchable = false});
  supply.add_event({.start = 2 * sim::kHour, .duration = sim::kHour,
                    .limit_watts = 1500.0, .notice = 30 * sim::kMinute,
                    .incentive_per_kwh = 0.05});
  solution.set_supply(std::move(supply));

  DemandResponsePolicy::Config cfg;
  cfg.preshed_lead = 10 * sim::kMinute;
  auto policy = std::make_unique<DemandResponsePolicy>(cfg);
  DemandResponsePolicy* dr = policy.get();
  solution.add_policy(std::move(policy));

  for (workload::JobId id = 1; id <= 8; ++id) {
    solution.submit(job_spec(id, 1, 6 * sim::kHour));
  }
  solution.start();

  sim.run_until(sim::kHour);
  EXPECT_FALSE(dr->shedding());
  const double before = cluster.it_power_watts();

  sim.run_until(2 * sim::kHour + 30 * sim::kMinute);  // mid-event
  EXPECT_TRUE(dr->shedding());
  const double during = cluster.it_power_watts();
  const double pue = cluster.facility().pue(sim.now());
  EXPECT_LE(during * pue, 1500.0 + 1e-6);
  EXPECT_LT(during, before);

  sim.run_until(4 * sim::kHour);  // after the window
  EXPECT_FALSE(dr->shedding());
  EXPECT_GT(cluster.it_power_watts(), during);
  EXPECT_EQ(dr->events_honoured(), 1u);
}

TEST(DemandResponse, BudgetReportedDuringEventOnly) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster);
  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::flat(0.10), .startup_time = 0,
                     .dispatchable = false});
  supply.add_event({.start = sim::kHour, .duration = sim::kHour,
                    .limit_watts = 600.0, .notice = 0,
                    .incentive_per_kwh = 0.0});
  solution.set_supply(std::move(supply));
  auto policy = std::make_unique<DemandResponsePolicy>();
  DemandResponsePolicy* dr = policy.get();
  solution.add_policy(std::move(policy));
  solution.start();
  EXPECT_DOUBLE_EQ(dr->power_budget_watts(0), 0.0);
  EXPECT_GT(dr->power_budget_watts(sim::kHour + sim::kMinute), 0.0);
}

TEST(Ms3, ThrottlesWhenAmbientHot) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4, /*ambient=*/36.0);  // heatwave
  core::EpaJsrmSolution solution(sim, cluster);
  Ms3ThermalPolicy::Config cfg;
  cfg.ambient_limit_c = 32.0;
  cfg.min_priority_when_hot = 2;
  auto policy = std::make_unique<Ms3ThermalPolicy>(cfg);
  Ms3ThermalPolicy* ms3 = policy.get();
  solution.add_policy(std::move(policy));

  solution.submit(job_spec(1, 1, 30 * sim::kMinute, sim::kMinute));     // normal
  solution.submit(job_spec(2, 1, 30 * sim::kMinute, sim::kMinute, 2));  // urgent
  solution.run_until(2 * sim::kHour);

  EXPECT_TRUE(ms3->throttling());
  EXPECT_GT(ms3->throttled_time(), 0);
  EXPECT_GT(ms3->vetoed_starts(), 0u);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kQueued);
  EXPECT_EQ(solution.find_job(2)->state(), workload::JobState::kCompleted);
}

TEST(Ms3, RecoversWhenCool) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4, 20.0);
  core::EpaJsrmSolution solution(sim, cluster);
  Ms3ThermalPolicy::Config cfg;
  cfg.ambient_limit_c = 32.0;
  cfg.node_temp_limit_c = 75.0;
  auto policy = std::make_unique<Ms3ThermalPolicy>(cfg);
  Ms3ThermalPolicy* ms3 = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 1, 30 * sim::kMinute));
  solution.run_until(2 * sim::kHour);
  EXPECT_FALSE(ms3->throttling());
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kCompleted);
}

TEST(Ms3, NodeOverheatTriggersPstateDeepening) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4, 20.0);
  // Make nodes run hot: big thermal resistance.
  core::SolutionConfig config;
  core::EpaJsrmSolution solution(sim, cluster, config);
  Ms3ThermalPolicy::Config cfg;
  cfg.node_temp_limit_c = 40.0;  // low limit: busy nodes cross quickly
  cfg.deepen_pstate_when_hot = true;
  auto policy = std::make_unique<Ms3ThermalPolicy>(cfg);
  Ms3ThermalPolicy* ms3 = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 4, 2 * sim::kHour));
  solution.start();
  sim.run_until(sim::kHour);
  if (ms3->throttling()) {
    EXPECT_GT(cluster.node(0).pstate(), 0u);
  }
}

}  // namespace
}  // namespace epajsrm::epa
