// EDC wire protocol: the serialized form of the scheduling decision
// boundary (DESIGN.md §13).
//
// Every decision point the core emits (sched::DecisionPoint) plus the
// scheduling-pass snapshot crosses the boundary as one line-oriented JSON
// object; the external decision component answers with decision lines
// (start_job / set_power_cap / hold / requeue). The format is
// deliberately flat and dependency-free:
//
//   {"type":"job_submitted","time":12000000,"seq":3,"job":7,
//    "submit_time":12000000,"nodes":4,"walltime":3600000000,
//    "estimated_energy_joules":1.0368e6}
//   {"type":"start_job","job":7}
//
// Doubles are printed with std::to_chars (shortest form that round-trips
// exactly) and parsed with std::from_chars, so a value survives
// serialize -> parse bit-identically — the property the internal-vs-
// loopback determinism guarantee rests on. The flat-object codec itself
// is shared project-wide (net/jsonl.hpp); this layer owns only the
// message vocabulary. Parse failures throw ProtocolError carrying the
// 1-based line number of the offending line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "platform/ids.hpp"
#include "sim/time.hpp"

namespace epajsrm::edc {

/// A malformed or out-of-contract protocol line. `line` is the 1-based
/// position within the batch that failed; the what() string repeats it.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::size_t line, const std::string& detail)
      : std::runtime_error("edc: line " + std::to_string(line) + ": " +
                           detail),
        line_(line) {}

  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Core -> external component: a decision point or a pass snapshot.
struct Message {
  enum class Type : std::uint8_t {
    kSimulationBegins,
    kJobSubmitted,
    kJobEnded,
    kBudgetTick,
    kPowerBudgetChanged,
    kSimulationEnds,
    /// The pass snapshot: sent when the core opens a scheduling pass and
    /// expects decisions back. Carries the authoritative allocatable-node
    /// count and the queue (ids, in queue order) so the component never
    /// has to mirror resource state.
    kSchedulingPass,
  };

  Type type = Type::kBudgetTick;
  sim::SimTime time = 0;
  /// DecisionPoint sequence number (kSchedulingPass carries the pass
  /// counter here instead).
  std::uint64_t seq = 0;

  // kSimulationBegins
  std::uint32_t total_nodes = 0;
  double peak_node_watts = 0.0;
  /// Per-node idle draw, for components that debit idle power from an
  /// energy allowance (EnergyBudgetConfig::charge_idle_power). Optional
  /// on the wire; absent parses as 0.
  double idle_node_watts = 0.0;

  // kJobSubmitted / kJobEnded
  platform::JobId job = platform::kNoJob;
  sim::SimTime submit_time = 0;
  std::uint32_t nodes = 0;
  sim::SimTime walltime = 0;
  double estimated_energy_joules = 0.0;  // kJobSubmitted (planning estimate)
  double energy_joules = 0.0;            // kJobEnded (actual attributed)

  // kPowerBudgetChanged
  double budget_watts = 0.0;

  // kSchedulingPass
  std::uint32_t free_nodes = 0;
  std::vector<platform::JobId> pending;
};

/// External component -> core: one decision.
struct Reply {
  enum class Type : std::uint8_t {
    kStartJob,      ///< start `job` now (base shape)
    kSetPowerCap,   ///< apply a system power cap of `watts`
    kHold,          ///< explicit no-op: keep the queue as it is
    kRequeue,       ///< kill running `job` and resubmit it at the back
  };

  Type type = Type::kHold;
  platform::JobId job = platform::kNoJob;
  double watts = 0.0;
};

const char* to_string(Message::Type type);
const char* to_string(Reply::Type type);

/// One JSON object, no trailing newline.
std::string serialize(const Message& message);
std::string serialize(const Reply& reply);

/// Parses one line. `line_number` is 1-based and only used for errors.
Message parse_message(std::string_view line, std::size_t line_number);
Reply parse_reply(std::string_view line, std::size_t line_number);

/// Shortest decimal form of `value` that std::from_chars parses back to
/// the identical bits (std::to_chars default semantics).
std::string format_double(double value);

}  // namespace epajsrm::edc
