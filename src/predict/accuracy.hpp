// Prediction-accuracy bookkeeping for the S6-PRED experiment.
#pragma once

#include <cmath>
#include <cstdint>

namespace epajsrm::predict {

/// Accumulates (actual, predicted) pairs and reports standard error
/// metrics.
class AccuracyTracker {
 public:
  void add(double actual, double predicted) {
    ++count_;
    const double err = predicted - actual;
    sum_abs_ += std::abs(err);
    sum_sq_ += err * err;
    sum_bias_ += err;
    if (actual != 0.0) {
      sum_ape_ += std::abs(err / actual);
      ++ape_count_;
    }
  }

  std::uint64_t count() const { return count_; }

  /// Mean absolute error.
  double mae() const { return count_ ? sum_abs_ / count_ : 0.0; }

  /// Root mean squared error.
  double rmse() const { return count_ ? std::sqrt(sum_sq_ / count_) : 0.0; }

  /// Mean absolute percentage error in [0, inf), e.g. 0.12 = 12 %.
  double mape() const { return ape_count_ ? sum_ape_ / ape_count_ : 0.0; }

  /// Mean signed error; > 0 means systematic over-prediction.
  double bias() const { return count_ ? sum_bias_ / count_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t ape_count_ = 0;
  double sum_abs_ = 0.0;
  double sum_sq_ = 0.0;
  double sum_ape_ = 0.0;
  double sum_bias_ = 0.0;
};

}  // namespace epajsrm::predict
