# Empty dependencies file for epajsrm_rm.
# This may be replaced when dependencies are built.
