// Experiment PERF — google-benchmark microbenchmarks of the framework's
// hot paths: event queue, simulation dispatch, allocator selection, power
// resolution, predictor math, energy accounting.
#include <benchmark/benchmark.h>

#include "center_bench.hpp"
#include "platform/cluster.hpp"
#include "power/ledger.hpp"
#include "power/node_power_model.hpp"
#include "predict/ridge.hpp"
#include "rm/allocator.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "telemetry/energy_accounting.hpp"
#include "workload/generator.hpp"

namespace {

using namespace epajsrm;

void BM_EventQueuePushPop(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::int64_t i = 0; i < n; ++i) {
      queue.push(rng.uniform_int(0, 1'000'000), [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulationDispatch(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::Simulation sim;
    std::int64_t counter = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulationDispatch)->Arg(4096);

void BM_PowerModelResolve(benchmark::State& state) {
  platform::Cluster cluster =
      platform::ClusterBuilder().node_count(256).build();
  power::NodePowerModel model(cluster.pstates());
  for (platform::Node& node : cluster.nodes()) {
    node.allocate(1, node.cores_total() / 2, 0.8);
    node.set_power_cap_watts(200.0);
  }
  for (auto _ : state) {
    double total = 0.0;
    for (platform::Node& node : cluster.nodes()) {
      total += model.apply(node).watts;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PowerModelResolve);

void BM_FirstFitAllocator(benchmark::State& state) {
  platform::Cluster cluster =
      platform::ClusterBuilder().node_count(1024).build();
  rm::FirstFitAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc.select(cluster, 64, rm::Allocator::default_eligible));
  }
}
BENCHMARK(BM_FirstFitAllocator);

void BM_TopologyAwareAllocator(benchmark::State& state) {
  platform::Cluster cluster =
      platform::ClusterBuilder()
          .node_count(512)
          .topology(std::make_unique<platform::FatTreeTopology>(8, 3))
          .build();
  rm::TopologyAwareAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc.select(cluster, static_cast<std::uint32_t>(state.range(0)),
                     rm::Allocator::default_eligible));
  }
}
BENCHMARK(BM_TopologyAwareAllocator)->Arg(16)->Arg(64);

void BM_RidgeObservePredict(benchmark::State& state) {
  workload::GeneratorConfig config;
  config.machine_nodes = 128;
  workload::WorkloadGenerator generator(
      config, workload::AppCatalog::standard(), 3);
  const auto jobs = generator.generate(512);
  for (auto _ : state) {
    predict::RidgePowerPredictor predictor(300.0);
    for (const auto& job : jobs) {
      predictor.observe(job, 150.0 + job.profile.power_intensity * 100.0);
      benchmark::DoNotOptimize(predictor.predict_node_watts(job));
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_RidgeObservePredict);

void BM_EnergyCheckpoint(benchmark::State& state) {
  platform::Cluster cluster =
      platform::ClusterBuilder().node_count(512).build();
  power::PowerLedger ledger(cluster);
  for (platform::Node& node : cluster.nodes()) {
    node.set_current_watts(200.0);
    power::PowerLedger::NodeSample sample;
    sample.watts = 200.0;
    sample.demand_watts = 200.0;
    ledger.post(node.id(), sample);
  }
  telemetry::EnergyAccountant accountant(
      cluster, ledger,
      [](workload::JobId) -> workload::Job* { return nullptr; });
  sim::SimTime t = 0;
  for (auto _ : state) {
    t += sim::kSecond;
    accountant.checkpoint(t);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_EnergyCheckpoint);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    workload::GeneratorConfig config;
    config.machine_nodes = 256;
    workload::WorkloadGenerator generator(
        config, workload::AppCatalog::standard(), 7);
    benchmark::DoNotOptimize(generator.generate(1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_WorkloadGeneration);

}  // namespace

int main(int argc, char** argv) {
  epajsrm::bench::BenchSummary summary("bench_kernel_micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
