#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace epajsrm::sim {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  }  // join
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  ThreadPool::parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  bool called = false;
  ThreadPool::parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForComputesDeterministicAggregate) {
  // Each index writes its own slot: no data race, deterministic result.
  std::vector<double> out(1000);
  ThreadPool::parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  }, 8);
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace epajsrm::sim
