#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <utility>

namespace epajsrm::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JSON string escaping (control characters, quote, backslash).
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[32];
  // %g keeps integral values integral ("3" not "3.000000"), which matters
  // for the golden-file tests and keeps exports compact.
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

void append_attrs_object(std::string& out, const TraceEvent& e) {
  out += '{';
  bool first = true;
  for (const TraceAttr& a : e.attrs) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, a.key);
    out += "\":";
    if (a.numeric) {
      append_number(out, a.num);
    } else {
      out += '"';
      append_escaped(out, a.str);
      out += '"';
    }
  }
  out += '}';
}

}  // namespace

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kInstant: return "instant";
    case TraceKind::kSpan:    return "span";
    case TraceKind::kLog:     return "log";
  }
  return "?";
}

// --- ScopedSpan ---------------------------------------------------------------

ScopedSpan::ScopedSpan(TraceRecorder* recorder, std::string component,
                       std::string name)
    : recorder_(recorder) {
  event_.kind = TraceKind::kSpan;
  event_.component = std::move(component);
  event_.name = std::move(name);
  event_.sim_time = recorder_->sim_now();
  event_.wall_ns = recorder_->wall_now_ns();
  event_.depth = recorder_->open_spans_++;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    finish();
    recorder_ = std::exchange(other.recorder_, nullptr);
    event_ = std::move(other.event_);
  }
  return *this;
}

void ScopedSpan::attr(std::string key, double value) {
  if (recorder_ != nullptr) event_.attrs.emplace_back(std::move(key), value);
}

void ScopedSpan::attr(std::string key, std::string value) {
  if (recorder_ != nullptr) {
    event_.attrs.emplace_back(std::move(key), std::move(value));
  }
}

void ScopedSpan::set_job(std::int64_t id) {
  if (recorder_ != nullptr) event_.job_id = id;
}

void ScopedSpan::set_node(std::int64_t id) {
  if (recorder_ != nullptr) event_.node_id = id;
}

void ScopedSpan::finish() {
  if (recorder_ == nullptr) return;
  event_.dur_ns = recorder_->wall_now_ns() - event_.wall_ns;
  --recorder_->open_spans_;
  recorder_->record(std::move(event_));
  recorder_ = nullptr;
}

// --- TraceRecorder ------------------------------------------------------------

TraceRecorder::TraceRecorder(std::size_t capacity, WallClock wall_clock)
    : capacity_(capacity == 0 ? 1 : capacity),
      wall_clock_(wall_clock ? std::move(wall_clock) : WallClock(steady_ns)) {
  epoch_ns_ = wall_clock_();
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

std::int64_t TraceRecorder::wall_now_ns() const {
  return wall_clock_() - epoch_ns_;
}

void TraceRecorder::record(TraceEvent event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++recorded_;
}

void TraceRecorder::instant(std::string component, std::string name,
                            std::int64_t job_id, std::int64_t node_id,
                            std::vector<TraceAttr> attrs) {
  TraceEvent e;
  e.kind = TraceKind::kInstant;
  e.sim_time = sim_now();
  e.wall_ns = wall_now_ns();
  e.depth = open_spans_;
  e.component = std::move(component);
  e.name = std::move(name);
  e.job_id = job_id;
  e.node_id = node_id;
  e.attrs = std::move(attrs);
  record(std::move(e));
}

void TraceRecorder::log_line(std::string component, std::string message,
                             std::string level) {
  TraceEvent e;
  e.kind = TraceKind::kLog;
  e.sim_time = sim_now();
  e.wall_ns = wall_now_ns();
  e.depth = open_spans_;
  e.component = std::move(component);
  e.name = "log";
  e.attrs.emplace_back("level", std::move(level));
  e.attrs.emplace_back("message", std::move(message));
  record(std::move(e));
}

ScopedSpan TraceRecorder::span(std::string component, std::string name) {
  return ScopedSpan(this, std::move(component), std::move(name));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event: when the ring has wrapped it sits at next_, otherwise at 0.
  const std::size_t start = size_ == capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

void TraceRecorder::clear() {
  ring_.clear();
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
}

void TraceRecorder::export_jsonl(std::ostream& out) const {
  std::string line;
  for (const TraceEvent& e : events()) {
    line.clear();
    char head[192];
    std::snprintf(head, sizeof(head),
                  "{\"sim_time_us\":%" PRId64 ",\"wall_ns\":%" PRId64
                  ",\"dur_ns\":%" PRId64 ",\"depth\":%d,\"kind\":\"%s\"",
                  e.sim_time, e.wall_ns, e.dur_ns, e.depth,
                  to_string(e.kind));
    line += head;
    line += ",\"component\":\"";
    append_escaped(line, e.component);
    line += "\",\"name\":\"";
    append_escaped(line, e.name);
    line += "\"";
    if (e.job_id >= 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), ",\"job_id\":%" PRId64, e.job_id);
      line += buf;
    }
    if (e.node_id >= 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), ",\"node_id\":%" PRId64, e.node_id);
      line += buf;
    }
    line += ",\"attrs\":";
    append_attrs_object(line, e);
    line += "}\n";
    out << line;
  }
}

void TraceRecorder::export_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::string line;
  bool first = true;
  for (const TraceEvent& e : events()) {
    line.clear();
    if (!first) line += ',';
    first = false;
    line += "\n{\"pid\":1,\"tid\":1,";
    char buf[160];
    if (e.kind == TraceKind::kSpan) {
      std::snprintf(buf, sizeof(buf), "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f",
                    static_cast<double>(e.wall_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0);
    } else {
      std::snprintf(buf, sizeof(buf), "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f",
                    static_cast<double>(e.wall_ns) / 1000.0);
    }
    line += buf;
    line += ",\"cat\":\"";
    append_escaped(line, e.component);
    line += "\",\"name\":\"";
    append_escaped(line, e.name);
    line += "\",\"args\":{";
    std::snprintf(buf, sizeof(buf), "\"sim_time_us\":%" PRId64, e.sim_time);
    line += buf;
    if (e.job_id >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"job_id\":%" PRId64, e.job_id);
      line += buf;
    }
    if (e.node_id >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"node_id\":%" PRId64, e.node_id);
      line += buf;
    }
    for (const TraceAttr& a : e.attrs) {
      line += ",\"";
      append_escaped(line, a.key);
      line += "\":";
      if (a.numeric) {
        append_number(line, a.num);
      } else {
        line += '"';
        append_escaped(line, a.str);
        line += '"';
      }
    }
    line += "}}";
    out << line;
  }
  out << "\n]}\n";
}

}  // namespace epajsrm::obs
