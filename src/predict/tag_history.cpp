#include "predict/tag_history.hpp"

#include <algorithm>

namespace epajsrm::predict {

double TagHistoryPowerPredictor::predict_node_watts(
    const workload::JobSpec& spec) {
  const auto it = stats_.find(spec.tag);
  if (it == stats_.end() || it->second.count == 0) return prior_;
  return it->second.mean;
}

void TagHistoryPowerPredictor::observe(const workload::JobSpec& spec,
                                       double actual_node_watts) {
  Stats& s = stats_[spec.tag];
  ++s.count;
  s.mean += (actual_node_watts - s.mean) / static_cast<double>(s.count);
}

std::uint64_t TagHistoryPowerPredictor::samples(const std::string& tag) const {
  const auto it = stats_.find(tag);
  return it == stats_.end() ? 0 : it->second.count;
}

double EwmaPowerPredictor::predict_node_watts(const workload::JobSpec& spec) {
  const auto it = ewma_.find(spec.tag);
  return it == ewma_.end() ? prior_ : it->second;
}

void EwmaPowerPredictor::observe(const workload::JobSpec& spec,
                                 double actual_node_watts) {
  auto [it, inserted] = ewma_.try_emplace(spec.tag, actual_node_watts);
  if (!inserted) {
    it->second += alpha_ * (actual_node_watts - it->second);
  }
}

sim::SimTime TagHistoryRuntimePredictor::predict_runtime(
    const workload::JobSpec& spec) {
  const auto it = stats_.find(spec.tag);
  if (it == stats_.end() || it->second.count < 3) {
    return spec.walltime_estimate;  // too little history: trust the user
  }
  // Never exceed the walltime limit (the job dies there anyway).
  return std::min(spec.walltime_estimate,
                  sim::from_seconds(it->second.mean_s));
}

void TagHistoryRuntimePredictor::observe(const workload::JobSpec& spec,
                                         sim::SimTime actual_runtime) {
  Stats& s = stats_[spec.tag];
  ++s.count;
  s.mean_s += (sim::to_seconds(actual_runtime) - s.mean_s) /
              static_cast<double>(s.count);
}

}  // namespace epajsrm::predict
