#include "edc/socket_transport.hpp"

namespace epajsrm::edc {

SocketTransport::SocketTransport(net::LineChannel channel,
                                 std::string describe)
    : channel_(std::move(channel)), describe_(std::move(describe)) {}

std::shared_ptr<SocketTransport> SocketTransport::connect_tcp(
    std::uint16_t port) {
  return std::make_shared<SocketTransport>(
      net::connect_tcp(port), "tcp:127.0.0.1:" + std::to_string(port));
}

std::shared_ptr<SocketTransport> SocketTransport::connect_unix(
    const std::string& path) {
  return std::make_shared<SocketTransport>(net::connect_unix(path),
                                           "unix:" + path);
}

std::string SocketTransport::describe() const { return describe_; }

std::vector<std::string> SocketTransport::exchange(
    const std::vector<std::string>& lines) {
  channel_.write_batch(lines);
  auto replies = channel_.read_batch();
  if (!replies.has_value()) {
    throw net::CarrierError("peer closed during exchange (" + describe_ +
                            ")");
  }
  return std::move(*replies);
}

std::size_t serve_agent(net::LineChannel& channel, Agent& agent) {
  std::size_t batches = 0;
  while (true) {
    auto batch = channel.read_batch();
    if (!batch.has_value()) return batches;  // orderly hang-up
    channel.write_batch(agent.on_messages(*batch));
    ++batches;
  }
}

std::size_t serve_one_connection(net::Listener& listener, Agent& agent) {
  auto channel = listener.accept();
  if (!channel.has_value()) return 0;
  return serve_agent(*channel, agent);
}

}  // namespace epajsrm::edc
