// Fixture: ordered container keyed by pointer — iteration order is
// address order, which ASLR changes run to run. Must trip
// pointer-key-order.
#include <map>

namespace fixture {

struct Node {
  int id;
};

struct Tracker {
  std::map<const Node*, int> pending_by_node;
};

}  // namespace fixture
