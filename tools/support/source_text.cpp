#include "support/source_text.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace epajsrm::toolsupport {

namespace {

// True when content[i] starts a raw-string literal: `R"` possibly behind
// an encoding prefix (u8R, uR, UR, LR), with no identifier character in
// front (so `FOOBAR"` never matches).
bool raw_string_starts_at(const std::string& c, std::size_t i,
                          std::size_t* quote_index) {
  std::size_t r = i;
  if (c[r] == 'u' && r + 1 < c.size() && c[r + 1] == '8') {
    r += 2;
  } else if (c[r] == 'u' || c[r] == 'U' || c[r] == 'L') {
    r += 1;
  }
  if (r >= c.size() || c[r] != 'R') return false;
  if (r + 1 >= c.size() || c[r + 1] != '"') return false;
  if (i > 0 && is_ident_char(c[i - 1])) return false;
  *quote_index = r + 1;
  return true;
}

}  // namespace

SourceFile strip_source(const std::string& content, std::string path) {
  std::string stripped = content;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_terminator;  // `)delim"` that ends the active raw string
  std::size_t i = 0;
  while (i < content.size()) {
    const char c = content[i];
    switch (state) {
      case State::kCode: {
        std::size_t quote = 0;
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kLineComment;
          stripped[i] = stripped[i + 1] = ' ';
          i += 2;
        } else if (c == '/' && i + 1 < content.size() &&
                   content[i + 1] == '*') {
          state = State::kBlockComment;
          stripped[i] = stripped[i + 1] = ' ';
          i += 2;
        } else if (raw_string_starts_at(content, i, &quote)) {
          // Collect the delimiter between `"` and `(`.
          std::size_t d = quote + 1;
          while (d < content.size() && content[d] != '(' &&
                 content[d] != '"' && content[d] != '\n') {
            ++d;
          }
          if (d < content.size() && content[d] == '(') {
            raw_terminator =
                ")" + content.substr(quote + 1, d - quote - 1) + "\"";
            state = State::kRawString;
            for (std::size_t k = i; k <= d; ++k) stripped[k] = ' ';
            i = d + 1;
          } else {
            // Malformed prefix; treat as ordinary code.
            ++i;
          }
        } else if (c == '"') {
          state = State::kString;
          stripped[i] = ' ';
          ++i;
        } else if (c == '\'' &&
                   (i == 0 || !std::isdigit(static_cast<unsigned char>(
                                  content[i - 1])))) {
          // Apostrophes inside numeric literals (1'000'000) are digit
          // separators, not char literals.
          state = State::kChar;
          stripped[i] = ' ';
          ++i;
        } else {
          ++i;
        }
        break;
      }
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          stripped[i] = ' ';
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          stripped[i] = stripped[i + 1] = ' ';
          state = State::kCode;
          i += 2;
        } else {
          if (c != '\n') stripped[i] = ' ';
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < content.size()) {
          stripped[i] = ' ';
          if (content[i + 1] != '\n') stripped[i + 1] = ' ';
          i += 2;
        } else if (c == quote || c == '\n') {
          // Unterminated-at-newline closes too: keeps a stray quote in a
          // macro from swallowing the rest of the file.
          if (c != '\n') stripped[i] = ' ';
          state = State::kCode;
          ++i;
        } else {
          if (c != '\n') stripped[i] = ' ';
          ++i;
        }
        break;
      }
      case State::kRawString:
        if (c == ')' &&
            content.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t k = i; k < i + raw_terminator.size(); ++k) {
            stripped[k] = ' ';
          }
          i += raw_terminator.size();
          state = State::kCode;
        } else {
          if (c != '\n') stripped[i] = ' ';
          ++i;
        }
        break;
    }
  }

  SourceFile out;
  out.path = std::move(path);
  out.ok = true;
  std::istringstream raw_in(content);
  std::istringstream code_in(stripped);
  std::string line;
  while (std::getline(raw_in, line)) out.raw.push_back(line);
  while (std::getline(code_in, line)) out.code.push_back(line);
  // getline drops a final unterminated line pair-wise, so the two views
  // always have equal length.
  return out;
}

SourceFile load_source(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SourceFile bad;
    bad.path = path.string();
    return bad;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return strip_source(buffer.str(), path.string());
}

std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t from) {
  if (word.empty()) return std::string::npos;
  std::size_t pos = from;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    ++pos;
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return i;
}

std::size_t ident_start_before(const std::string& s, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && is_ident_char(s[b - 1])) --b;
  return b;
}

std::string ident_at(const std::string& s, std::size_t i) {
  if (i >= s.size() || !is_ident_char(s[i]) ||
      std::isdigit(static_cast<unsigned char>(s[i]))) {
    return "";
  }
  std::size_t e = i;
  while (e < s.size() && is_ident_char(s[e])) ++e;
  return s.substr(i, e - i);
}

bool has_allow_marker(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("lint:allow(" + rule + ")") != std::string::npos;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, s.find_last_not_of(" \t") - b + 1);
}

}  // namespace epajsrm::toolsupport
