#include "epajsrm_analyze/config.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

#include "support/source_text.hpp"

namespace epajsrm::analyze {

namespace ts = epajsrm::toolsupport;

namespace {

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// Depth-first cycle check over the declared layer deps (crosscut modules
// are outside the DAG by design).
bool declared_dag_has_cycle(const LayerConfig& config,
                            std::vector<std::string>* cycle) {
  std::map<std::string, int> state;  // 0 unseen, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& module) {
        state[module] = 1;
        stack.push_back(module);
        const auto it = config.layers.find(module);
        if (it != config.layers.end()) {
          for (const std::string& dep : it->second) {
            if (config.crosscut.count(dep) > 0) continue;
            const int s = state[dep];
            if (s == 1) {
              const auto at =
                  std::find(stack.begin(), stack.end(), dep);
              cycle->assign(at, stack.end());
              cycle->push_back(dep);
              return true;
            }
            if (s == 0 && visit(dep)) return true;
          }
        }
        stack.pop_back();
        state[module] = 2;
        return false;
      };
  for (const auto& [module, deps] : config.layers) {
    (void)deps;
    if (state[module] == 0 && visit(module)) return true;
  }
  return false;
}

}  // namespace

bool parse_layer_config(const std::string& text, LayerConfig* config,
                        std::vector<std::string>* errors) {
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = ts::trim(line);
    if (line.empty()) continue;

    const std::vector<std::string> head = split_ws(line);
    const std::string& directive = head[0];
    if (directive == "layer") {
      const std::size_t colon = line.find(':');
      std::string name_part =
          colon == std::string::npos ? line.substr(5) : line.substr(5, colon - 5);
      const std::vector<std::string> names = split_ws(name_part);
      if (names.size() != 1) {
        errors->push_back("layers.conf:" + std::to_string(line_no) +
                          ": expected `layer <name> [: deps...]`");
        continue;
      }
      std::set<std::string>& deps = (*config).layers[names[0]];
      if (colon != std::string::npos) {
        for (const std::string& dep : split_ws(line.substr(colon + 1))) {
          deps.insert(dep);
        }
      }
    } else if (directive == "crosscut") {
      if (head.size() != 2) {
        errors->push_back("layers.conf:" + std::to_string(line_no) +
                          ": expected `crosscut <name>`");
        continue;
      }
      config->crosscut.insert(head[1]);
    } else if (directive == "allow") {
      // allow <from> -> <to>
      if (head.size() != 4 || head[2] != "->") {
        errors->push_back("layers.conf:" + std::to_string(line_no) +
                          ": expected `allow <from> -> <to>`");
        continue;
      }
      config->allowed_edges.insert({head[1], head[3]});
    } else if (directive == "sanction-shared-state") {
      if (head.size() != 2) {
        errors->push_back("layers.conf:" + std::to_string(line_no) +
                          ": expected `sanction-shared-state <prefix>`");
        continue;
      }
      config->shared_state_sanctions.push_back(head[1]);
    } else if (directive == "root-module") {
      if (head.size() != 2) {
        errors->push_back("layers.conf:" + std::to_string(line_no) +
                          ": expected `root-module <name>`");
        continue;
      }
      config->root_module = head[1];
    } else {
      errors->push_back("layers.conf:" + std::to_string(line_no) +
                        ": unknown directive `" + directive + "`");
    }
  }

  // Validate: deps and exception endpoints must name declared modules.
  for (const auto& [module, deps] : config->layers) {
    for (const std::string& dep : deps) {
      if (!config->declared(dep)) {
        errors->push_back("layers.conf: layer `" + module +
                          "` depends on undeclared module `" + dep + "`");
      }
    }
  }
  for (const auto& [from, to] : config->allowed_edges) {
    if (!config->declared(from) || !config->declared(to)) {
      errors->push_back("layers.conf: allow edge `" + from + " -> " + to +
                        "` names an undeclared module");
    }
  }
  std::vector<std::string> cycle;
  if (errors->empty() && declared_dag_has_cycle(*config, &cycle)) {
    std::string path;
    for (const std::string& m : cycle) {
      if (!path.empty()) path += " -> ";
      path += m;
    }
    errors->push_back("layers.conf: declared layer deps form a cycle: " +
                      path);
  }
  return errors->empty();
}

bool load_layer_config(const std::string& path, LayerConfig* config,
                       std::vector<std::string>* errors) {
  std::ifstream in(path);
  if (!in) {
    errors->push_back("cannot read layer config: " + path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_layer_config(buffer.str(), config, errors);
}

}  // namespace epajsrm::analyze
