// The contract macros and the contracts threaded through the subsystem
// call sites: violated preconditions throw ContractViolation with a
// precise diagnostic, honoured ones cost nothing observable.
#include "check/contract.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "platform/cluster.hpp"
#include "power/capmc.hpp"
#include "power/node_power_model.hpp"

namespace epajsrm {
namespace {

#if !defined(EPAJSRM_ENABLE_CHECKS)

TEST(ContractMacros, CompiledOut) {
  // Release deployment builds strip the checks entirely; the macros must
  // still compile and do nothing.
  EPAJSRM_REQUIRE(false, "never evaluated");
  EPAJSRM_ENSURE(false, "never evaluated");
  EPAJSRM_INVARIANT(false, "never evaluated");
  SUCCEED();
}

#else  // checks enabled (the default in every test configuration)

TEST(ContractMacros, PassingConditionIsSilent) {
  EXPECT_NO_THROW(EPAJSRM_REQUIRE(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(EPAJSRM_ENSURE(true, ""));
  EXPECT_NO_THROW(EPAJSRM_INVARIANT(true, ""));
}

TEST(ContractMacros, FailingConditionThrowsWithDiagnostics) {
  try {
    EPAJSRM_REQUIRE(2 < 1, "impossible ordering");
    FAIL() << "EPAJSRM_REQUIRE did not throw";
  } catch (const check::ContractViolation& v) {
    EXPECT_EQ(v.kind(), check::ContractKind::kRequire);
    EXPECT_STREQ(v.expr(), "2 < 1");
    EXPECT_GT(v.line(), 0);
    const std::string what = v.what();
    EXPECT_NE(what.find("precondition failed"), std::string::npos);
    EXPECT_NE(what.find("impossible ordering"), std::string::npos);
    EXPECT_NE(what.find("test_check_contracts.cpp"), std::string::npos);
  }
}

TEST(ContractMacros, KindsAreDistinguished) {
  try {
    EPAJSRM_ENSURE(false, "");
    FAIL();
  } catch (const check::ContractViolation& v) {
    EXPECT_EQ(v.kind(), check::ContractKind::kEnsure);
  }
  try {
    EPAJSRM_INVARIANT(false, "");
    FAIL();
  } catch (const check::ContractViolation& v) {
    EXPECT_EQ(v.kind(), check::ContractKind::kInvariant);
  }
  EXPECT_STREQ(check::to_string(check::ContractKind::kEnsure),
               "postcondition");
}

TEST(ContractMacros, ViolationIsALogicError) {
  EXPECT_THROW(EPAJSRM_REQUIRE(false, "x"), std::logic_error);
}

// --- contracts at real call sites ------------------------------------------

class ContractSiteTest : public ::testing::Test {
 protected:
  ContractSiteTest() {
    core::ScenarioConfig config;
    config.nodes = 4;
    config.job_count = 1;
    scenario_ = std::make_unique<core::Scenario>(config);
  }

  std::unique_ptr<core::Scenario> scenario_;
};

TEST_F(ContractSiteTest, NegativeNodeCapIsRejected) {
  power::NodePowerModel model(scenario_->cluster().pstates());
  power::CapmcController capmc(scenario_->cluster(), model);
  EXPECT_THROW(capmc.set_node_cap(0, -10.0), check::ContractViolation);
}

TEST_F(ContractSiteTest, UnknownNodeCapTargetIsRejected) {
  power::NodePowerModel model(scenario_->cluster().pstates());
  power::CapmcController capmc(scenario_->cluster(), model);
  EXPECT_THROW(capmc.set_node_cap(999, 200.0), check::ContractViolation);
}

TEST_F(ContractSiteTest, NegativeGroupCapIsRejected) {
  power::NodePowerModel model(scenario_->cluster().pstates());
  power::CapmcController capmc(scenario_->cluster(), model);
  const platform::NodeId ids[] = {0, 1};
  EXPECT_THROW(capmc.set_group_cap(ids, -1.0), check::ContractViolation);
}

TEST(ContractSites, NegativePolicyBudgetIsRejected) {
  epa::PowerBudgetDvfsPolicy budget_policy(1000.0);
  EXPECT_THROW(budget_policy.set_budget_watts(-5.0),
               check::ContractViolation);
  epa::DynamicPowerSharePolicy share_policy(1000.0);
  EXPECT_THROW(share_policy.set_budget_watts(-5.0),
               check::ContractViolation);
}

#endif  // EPAJSRM_ENABLE_CHECKS

}  // namespace
}  // namespace epajsrm
