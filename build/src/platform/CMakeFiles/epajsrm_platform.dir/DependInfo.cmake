
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cluster.cpp" "src/platform/CMakeFiles/epajsrm_platform.dir/cluster.cpp.o" "gcc" "src/platform/CMakeFiles/epajsrm_platform.dir/cluster.cpp.o.d"
  "/root/repo/src/platform/facility.cpp" "src/platform/CMakeFiles/epajsrm_platform.dir/facility.cpp.o" "gcc" "src/platform/CMakeFiles/epajsrm_platform.dir/facility.cpp.o.d"
  "/root/repo/src/platform/node.cpp" "src/platform/CMakeFiles/epajsrm_platform.dir/node.cpp.o" "gcc" "src/platform/CMakeFiles/epajsrm_platform.dir/node.cpp.o.d"
  "/root/repo/src/platform/pstate.cpp" "src/platform/CMakeFiles/epajsrm_platform.dir/pstate.cpp.o" "gcc" "src/platform/CMakeFiles/epajsrm_platform.dir/pstate.cpp.o.d"
  "/root/repo/src/platform/topology.cpp" "src/platform/CMakeFiles/epajsrm_platform.dir/topology.cpp.o" "gcc" "src/platform/CMakeFiles/epajsrm_platform.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
