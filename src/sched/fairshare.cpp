#include "sched/fairshare.hpp"

#include <algorithm>
#include <cmath>

namespace epajsrm::sched {

double FairShareTracker::decayed(double value, sim::SimTime from,
                                 sim::SimTime to) const {
  if (to <= from || half_life_ <= 0) return value;
  const double halves = static_cast<double>(to - from) /
                        static_cast<double>(half_life_);
  return value * std::pow(0.5, halves);
}

void FairShareTracker::record_usage(const std::string& user,
                                    double core_seconds, sim::SimTime now) {
  Entry& e = usage_[user];
  e.core_seconds = decayed(e.core_seconds, e.as_of, now) + core_seconds;
  e.as_of = now;
}

double FairShareTracker::usage(const std::string& user,
                               sim::SimTime now) const {
  const auto it = usage_.find(user);
  if (it == usage_.end()) return 0.0;
  return decayed(it->second.core_seconds, it->second.as_of, now);
}

double FairShareTracker::usage_factor(const std::string& user,
                                      sim::SimTime now) const {
  double max_usage = 0.0;
  for (const auto& [name, entry] : usage_) {
    max_usage = std::max(max_usage, decayed(entry.core_seconds, entry.as_of, now));
  }
  if (max_usage <= 0.0) return 0.0;
  return usage(user, now) / max_usage;
}

double effective_priority(int job_priority, double usage_factor,
                          double weight) {
  return static_cast<double>(job_priority) - weight * usage_factor;
}

}  // namespace epajsrm::sched
