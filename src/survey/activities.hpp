// Tables I and II of the paper as queryable data: every activity each
// center reported, classified by maturity column and technique category,
// and mapped to the framework module that models it.
#pragma once

#include <string>
#include <vector>

namespace epajsrm::survey {

/// The three maturity columns of Tables I/II.
enum class Maturity {
  kResearch,
  kTechDevelopment,  ///< "Technology Development with Intent to Deploy"
  kProduction,
};

const char* to_string(Maturity m);

/// Technique taxonomy distilled from Section VI + the table cells.
enum class Technique {
  kPowerCapping,
  kDynamicPowerSharing,
  kDvfsScheduling,
  kNodeShutdown,
  kEnergyReporting,
  kPowerPrediction,
  kEmergencyResponse,
  kSourceSelection,
  kLayoutAware,
  kThermalAware,
  kCostAwareOrdering,
  kMoldableJobs,
  kMonitoring,
  kInterSystemCapping,
  kVmSplitting,
};

const char* to_string(Technique t);

/// One table cell item.
struct Activity {
  std::string center;       ///< CenterProfile::short_name
  Maturity maturity;
  Technique technique;
  std::string description;  ///< abridged cell text from the paper
  /// Framework module that models the technique ("" when it is outside
  /// the simulation scope, e.g. pure organisational work).
  std::string module;
};

/// Every activity of Tables I and II, center by center.
const std::vector<Activity>& all_activities();

/// Filtered views.
std::vector<Activity> activities_of(const std::string& center);
std::vector<Activity> activities_of(const std::string& center, Maturity m);
std::vector<Activity> activities_with(Technique t);

/// Count of centers that reported `t` at `m` (the cross-site commonality
/// analysis the paper defers to future work).
std::size_t centers_with(Technique t, Maturity m);

}  // namespace epajsrm::survey
