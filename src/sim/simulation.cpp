#include "sim/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

namespace epajsrm::sim {

EventId Simulation::schedule_at(SimTime t, Callback cb,
                                const char* category) {
  return queue_.push(std::max(t, now_), std::move(cb), category);
}

EventId Simulation::schedule_every(SimTime period, std::function<bool()> cb,
                                   const char* category) {
  // Each firing reschedules a fresh value copy of itself; the shared
  // callback must not be captured by its own closure (a self-referencing
  // shared_ptr cycle would leak every still-pending repeater at teardown).
  // Capturing `this` is safe because the queue lives inside the Simulation.
  struct Repeater {
    Simulation* sim;
    SimTime period;
    std::shared_ptr<std::function<bool()>> cb;
    const char* category;
    void operator()() const {
      if ((*cb)()) sim->schedule_in(period, *this, category);
    }
  };
  auto shared_cb = std::make_shared<std::function<bool()>>(std::move(cb));
  return schedule_in(period,
                     Repeater{this, period, std::move(shared_cb), category},
                     category);
}

void Simulation::run_until(SimTime t) {
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    auto popped = queue_.pop();
    now_ = popped.time;
    ++events_processed_;
    if (!hooks_.empty()) {
      // Timed dispatch: only taken when an observer is attached, so the
      // common path pays one branch, not two clock reads. The clock here
      // measures host cost of the callback, not simulated time.
      const auto t0 = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
      popped.callback();
      const auto t1 = std::chrono::steady_clock::now();  // lint:allow(wall-clock)
      const std::int64_t wall_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      for (const DispatchHook& hook : hooks_) {
        hook(popped.category, wall_ns);
      }
    } else {
      popped.callback();
    }
  }
  if (!stopped_ && now_ < t && t != std::numeric_limits<SimTime>::max()) {
    now_ = t;
  }
}

}  // namespace epajsrm::sim
