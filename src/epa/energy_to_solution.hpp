// Per-application frequency characterisation — LRZ's production capability
// (LoadLeveler energy-aware scheduling, since ported to LSF [24], studied
// on SuperMUC in Auweter et al. [4]):
//   "First time new app runs: characterized for frequency, runtime and
//    energy. Administrator selects job scheduling goal, energy to solution
//    or best performance."
//
// The first run of each tag executes at reference frequency and records
// the measured per-node draw. Later runs are planned at the P-state that
// minimises predicted energy-to-solution, E(f) = P(f) · T(f), using the
// job's phase mix (the site's characterisation database) — unless the
// administrator has selected the performance goal.
#pragma once

#include <string>
#include <unordered_map>

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// LRZ-style characterise-then-optimise frequency selection.
class EnergyToSolutionPolicy final : public EpaPolicy {
 public:
  enum class Goal { kEnergyToSolution, kBestPerformance };

  /// `max_slowdown`: cap on acceptable runtime stretch when minimising
  /// energy (admins rarely accept arbitrarily slow "optimal" points).
  explicit EnergyToSolutionPolicy(Goal goal = Goal::kEnergyToSolution,
                                  double max_slowdown = 1.3)
      : goal_(goal), max_slowdown_(max_slowdown) {}

  std::string name() const override { return "energy-to-solution"; }

  bool plan_start(StartPlan& plan) override;
  void on_job_end(const workload::Job& job) override;

  /// Administrator goal switch.
  void set_goal(Goal goal) { goal_ = goal; }
  Goal goal() const { return goal_; }

  bool characterized(const std::string& tag) const {
    return characterization_.contains(tag);
  }
  std::uint64_t optimized_starts() const { return optimized_; }

 private:
  struct AppCharacterization {
    double measured_node_watts = 0.0;
    double beta = 0.7;  ///< frequency-sensitive fraction from the profile
    double mean_runtime_s = 0.0;  ///< measured reference-frequency runtime
  };

  Goal goal_;
  double max_slowdown_;
  std::unordered_map<std::string, AppCharacterization> characterization_;
  std::uint64_t optimized_ = 0;
};

}  // namespace epajsrm::epa
