// Power-budget admission with DVFS degradation — the Etinski [18][19]
// power-budget scheduler and the shape of SLURM's Dynamic Power Management
// that KAUST co-developed with SchedMD, and of CEA+BULL's power-adaptive
// SLURM scheduling.
//
// A system IT-power budget is enforced at admission: a job starts at the
// highest P-state whose predicted incremental draw fits the remaining
// headroom; if even the deepest P-state does not fit, the job waits.
#pragma once

#include <memory>

#include "epa/budget_source.hpp"
#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Budgeted admission with per-job DVFS selection. The budget is a
/// BudgetSource, so the admission ceiling follows tariff windows and
/// facility-coordinator shares without bespoke setters.
class PowerBudgetDvfsPolicy final : public EpaPolicy {
 public:
  /// `source`: the IT power budget over time. `allow_dvfs`: when false the
  /// policy only admits at full frequency (pure power-aware admission, no
  /// frequency trading — the Bodas [8] variant).
  explicit PowerBudgetDvfsPolicy(std::shared_ptr<BudgetSource> source,
                                 bool allow_dvfs = true)
      : budget_(std::move(source)), allow_dvfs_(allow_dvfs) {}

  /// Convenience: a fixed `budget_watts` budget that set_budget_watts may
  /// still mutate (wrapped in a MutableBudgetSource).
  explicit PowerBudgetDvfsPolicy(double budget_watts, bool allow_dvfs = true)
      : PowerBudgetDvfsPolicy(
            std::make_shared<MutableBudgetSource>(budget_watts), allow_dvfs) {
  }

  std::string name() const override { return "power-budget-dvfs"; }

  bool plan_start(StartPlan& plan) override;

  /// Tracks BudgetSource movements (tariff-window crossings) so the core
  /// fires a prompt pass when the admission ceiling moves.
  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime now) const override {
    return budget_.watts_at(now);
  }

  /// Deprecated: construct from a MutableBudgetSource and call its
  /// set_watts instead (see budget_source.hpp migration notes). Kept for
  /// the double-constructor path (and the facility coordinator's share
  /// pushes); throws std::logic_error when the policy was built from an
  /// explicit non-mutable source.
  void set_budget_watts(double watts);

  std::uint64_t dvfs_degraded_starts() const { return degraded_; }
  std::uint64_t vetoed_starts() const { return vetoed_; }

 private:
  BudgetTracker budget_;
  bool allow_dvfs_;
  std::uint64_t degraded_ = 0;
  std::uint64_t vetoed_ = 0;
};

}  // namespace epajsrm::epa
