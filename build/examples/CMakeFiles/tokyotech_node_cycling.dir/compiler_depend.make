# Empty compiler generated dependencies file for tokyotech_node_cycling.
# This may be replaced when dependencies are built.
