# Empty dependencies file for epajsrm_sim.
# This may be replaced when dependencies are built.
