// The out-of-process EDC proof: a run whose scheduling boundary crosses a
// real socket (agent served on the far side of a TCP or unix connection)
// is bit-identical to the same policy run internally. This is the carrier
// upgrade of the loopback proof in test_edc_loopback.cpp — the same
// serialized lines, now actually leaving the process boundary.
#include "edc/socket_transport.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/scenario_builder.hpp"
#include "core/solution.hpp"
#include "edc/energy_budget_agent.hpp"
#include "epa/energy_budget.hpp"
#include "net/carrier.hpp"
#include "sim/time.hpp"

namespace epajsrm {
namespace {

epa::EnergyBudgetConfig study_budget(bool charge_idle) {
  epa::EnergyBudgetConfig eb;
  eb.mode = epa::EnergyBudgetMode::kReducePowerCap;
  eb.window_budget_joules = 5.0e6;
  eb.window = sim::kHour;
  eb.initial_fraction = 0.0;
  eb.emergency_timeout = 20 * sim::kMinute;
  eb.cap_floor_fraction = 0.85;
  eb.charge_idle_power = charge_idle;
  return eb;
}

core::ScenarioConfig study_config(std::uint64_t seed, bool charge_idle) {
  auto b = core::Scenario::builder()
               .label("edc-socket")
               .nodes(16)
               .job_count(16)
               .seed(seed)
               .horizon(sim::kDay)
               .energy_budget(study_budget(charge_idle))
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = false;
               });
  return std::move(b).take_config();
}

// Exact equality on the result fields that summarize every layer of the
// run: schedule shape, event count, energy, and the per-job breakdown.
// Any divergence anywhere upstream lands in at least one of these.
void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.scheduling_passes, b.scheduling_passes);
  EXPECT_EQ(a.report.jobs_completed, b.report.jobs_completed);
  EXPECT_EQ(a.report.jobs_killed, b.report.jobs_killed);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.wait_minutes.mean, b.report.wait_minutes.mean);
  EXPECT_EQ(a.report.total_it_kwh, b.report.total_it_kwh);
  EXPECT_EQ(a.report.total_facility_kwh, b.report.total_facility_kwh);
  EXPECT_EQ(a.total_it_kwh_exact, b.total_it_kwh_exact);
  EXPECT_EQ(a.kills_by_reason, b.kills_by_reason);
  ASSERT_EQ(a.job_reports.size(), b.job_reports.size());
  for (std::size_t i = 0; i < a.job_reports.size(); ++i) {
    EXPECT_EQ(a.job_reports[i].job, b.job_reports[i].job);
    EXPECT_EQ(a.job_reports[i].energy_kwh, b.job_reports[i].energy_kwh);
    EXPECT_EQ(a.job_reports[i].node_hours, b.job_reports[i].node_hours);
  }
}

// Runs the scenario with the agent on the far side of `listener`, served
// by a background thread. The transport closes when the scenario is
// destroyed, which ends serve_one_connection and lets the thread join.
core::RunResult run_over_socket(net::Listener listener,
                                std::shared_ptr<edc::SocketTransport> transport,
                                std::uint64_t seed, bool charge_idle,
                                std::size_t* batches_served) {
  std::thread server([&listener, charge_idle, batches_served] {
    edc::EnergyBudgetAgent agent(study_budget(charge_idle));
    *batches_served = edc::serve_one_connection(listener, agent);
  });
  core::RunResult result;
  {
    core::ScenarioConfig config = study_config(seed, charge_idle);
    config.external_transport = std::move(transport);
    core::Scenario scenario(std::move(config));
    result = scenario.run();
  }
  server.join();
  return result;
}

TEST(EdcSocket, TcpServedAgentIsBitIdenticalToInternalRun) {
  core::Scenario internal(study_config(42, false));
  const core::RunResult a = internal.run();
  ASSERT_GT(a.report.jobs_completed, 0u);
  ASSERT_GT(a.scheduling_passes, 0u);

  net::Listener listener = net::Listener::tcp(0);
  auto transport = edc::SocketTransport::connect_tcp(listener.port());
  EXPECT_NE(transport->describe().find("tcp"), std::string::npos);
  std::size_t batches = 0;
  const core::RunResult b =
      run_over_socket(std::move(listener), std::move(transport), 42, false,
                      &batches);
  EXPECT_GT(batches, 0u);
  expect_identical(a, b);
}

TEST(EdcSocket, UnixServedAgentIsBitIdenticalToInternalRun) {
  const std::string path =
      ::testing::TempDir() + "epajsrm_edc_socket_test.sock";
  core::Scenario internal(study_config(7, false));
  const core::RunResult a = internal.run();

  net::Listener listener = net::Listener::unix_path(path);
  auto transport = edc::SocketTransport::connect_unix(path);
  std::size_t batches = 0;
  const core::RunResult b = run_over_socket(
      std::move(listener), std::move(transport), 7, false, &batches);
  EXPECT_GT(batches, 0u);
  expect_identical(a, b);
  std::remove(path.c_str());
}

// The idle-power debit is pass-state both sides reconstruct from the same
// wire inputs, so the _IDLE variant must survive the socket boundary too.
TEST(EdcSocket, IdleChargeVariantSurvivesTheSocketBoundary) {
  core::Scenario internal(study_config(13, true));
  const core::RunResult a = internal.run();
  ASSERT_GT(a.report.jobs_completed, 0u);

  net::Listener listener = net::Listener::tcp(0);
  auto transport = edc::SocketTransport::connect_tcp(listener.port());
  std::size_t batches = 0;
  const core::RunResult b = run_over_socket(
      std::move(listener), std::move(transport), 13, true, &batches);
  EXPECT_GT(batches, 0u);
  expect_identical(a, b);

  // And the debit is not inert: the idle-charged run differs from the
  // uncharged one (otherwise this test proves nothing).
  core::Scenario uncharged(study_config(13, false));
  const core::RunResult c = uncharged.run();
  EXPECT_NE(a.report.wait_minutes.mean, c.report.wait_minutes.mean);
}

}  // namespace
}  // namespace epajsrm
