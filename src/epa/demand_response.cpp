#include "epa/demand_response.hpp"

#include <algorithm>

namespace epajsrm::epa {

double DemandResponsePolicy::it_limit_for_event(
    const power::DemandResponseEvent& event, sim::SimTime t) const {
  // The DR limit binds the *grid* draw; dispatchable on-site generation
  // (RIKEN's gas turbines) can keep carrying load on top of it.
  double facility_limit = event.limit_watts;
  if (const power::SupplyPortfolio* supply = host_->supply()) {
    for (const power::EnergySource& s : supply->sources()) {
      if (s.dispatchable && s.capacity_watts > 0.0) {
        facility_limit += s.capacity_watts;
      }
    }
  }
  const double pue = host_->cluster().facility().pue(t);
  return facility_limit / pue * (1.0 - config_.safety_margin);
}

double DemandResponsePolicy::power_budget_watts(sim::SimTime now) const {
  if (host_ == nullptr) return 0.0;
  power::SupplyPortfolio* supply = host_->supply();
  if (supply == nullptr) return 0.0;
  if (const power::DemandResponseEvent* e = supply->active_event(now)) {
    return it_limit_for_event(*e, now);
  }
  return 0.0;
}

void DemandResponsePolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr) return;
  power::SupplyPortfolio* supply = host_->supply();
  if (supply == nullptr) return;

  const power::DemandResponseEvent* active = supply->active_event(now);
  const power::DemandResponseEvent* next = supply->next_event(now);

  const bool should_shed =
      active != nullptr ||
      (next != nullptr && next->start - now <= config_.preshed_lead);

  if (should_shed && !shedding_) {
    const power::DemandResponseEvent& event =
        active != nullptr ? *active : *next;
    host_->set_system_cap(it_limit_for_event(event, event.start));
    shedding_ = true;
    ++events_honoured_;
  } else if (!should_shed && shedding_) {
    host_->set_system_cap(0.0);
    shedding_ = false;
    host_->request_schedule();
  }
}

}  // namespace epajsrm::epa
