#include "sim/skew_barrier.hpp"

#include "check/contract.hpp"

namespace epajsrm::sim {

SkewBarrier::SkewBarrier(std::uint32_t partitions, SimTime window)
    : window_(window), horizon_(partitions, 0) {
  EPAJSRM_REQUIRE(partitions > 0, "a barrier needs at least one partition");
  EPAJSRM_REQUIRE(window >= 0, "skew windows are non-negative");
}

bool SkewBarrier::peers_reached(std::uint32_t p, SimTime floor) const {
  for (std::uint32_t q = 0; q < horizon_.size(); ++q) {
    if (q != p && horizon_[q] < floor) return false;
  }
  return true;
}

void SkewBarrier::acquire(std::uint32_t p, SimTime horizon) {
  std::unique_lock lock(mutex_);
  EPAJSRM_REQUIRE(p < horizon_.size(), "unknown partition");
  EPAJSRM_REQUIRE(horizon >= horizon_[p],
                  "published horizons must be monotone");
  horizon_[p] = horizon;
  advanced_.notify_all();
  if (horizon_.size() == 1) return;
  // floor may go negative when horizon < window; every start-of-run
  // horizon (0) satisfies it, as it must.
  const SimTime floor = horizon - window_;
  if (!peers_reached(p, floor)) {
    ++waits_;
    advanced_.wait(lock, [&] { return peers_reached(p, floor); });
  }
}

void SkewBarrier::publish(std::uint32_t p, SimTime horizon) {
  {
    std::unique_lock lock(mutex_);
    EPAJSRM_REQUIRE(p < horizon_.size(), "unknown partition");
    if (horizon <= horizon_[p]) return;  // error path may lag; keep monotone
    horizon_[p] = horizon;
  }
  advanced_.notify_all();
}

SimTime SkewBarrier::horizon(std::uint32_t p) const {
  std::unique_lock lock(mutex_);
  EPAJSRM_REQUIRE(p < horizon_.size(), "unknown partition");
  return horizon_[p];
}

std::uint64_t SkewBarrier::waits() const {
  std::unique_lock lock(mutex_);
  return waits_;
}

}  // namespace epajsrm::sim
