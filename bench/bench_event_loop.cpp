// Event-loop throughput bench: drives sim::Simulation through the event
// shapes the framework's hot paths actually produce and reports dispatched
// events per wall second (the BenchSummary JSON line; README "Performance"
// quotes these numbers).
//
// Workloads:
//   cascade    — chains of self-rescheduling one-shot events (arrival ->
//                completion -> arrival ... shape; pure push/pop churn);
//   cancel     — every step schedules a guard event and cancels it before
//                it fires (the walltime-limit pattern: most guards die);
//   repeaters  — many same-period periodic callbacks ticking together
//                (telemetry sensors / control loops; the batched path);
//   mixed      — all three interleaved in one simulation.
//
// Flags:
//   --events=N   approximate dispatched events per workload (default 2M)
//   --smoke      tiny sizes for CI smoke runs (overrides --events)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_summary.hpp"
#include "sim/simulation.hpp"

namespace {

using epajsrm::sim::EventId;
using epajsrm::sim::Simulation;
using epajsrm::sim::SimTime;

/// Chains of one-shot events: `chains` concurrent chains, each link
/// scheduling the next until `total` events have fired.
std::uint64_t run_cascade(std::uint64_t total, std::uint64_t chains) {
  Simulation sim;
  std::uint64_t budget = total;
  struct Chain {
    Simulation* sim;
    std::uint64_t* budget;
    SimTime stride;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      sim->schedule_in(stride, *this, "bench.cascade");
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    sim.schedule_at(static_cast<SimTime>(c),
                    Chain{&sim, &budget, static_cast<SimTime>(1 + c % 7)},
                    "bench.cascade");
  }
  sim.run();
  return sim.events_processed();
}

/// The walltime-guard pattern: each fired event schedules a far-future
/// guard and cancels the guard scheduled two steps ago.
std::uint64_t run_cancel(std::uint64_t total) {
  Simulation sim;
  std::uint64_t budget = total;
  std::vector<EventId> guards;
  guards.reserve(total + 2);
  struct Step {
    Simulation* sim;
    std::uint64_t* budget;
    std::vector<EventId>* guards;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      guards->push_back(
          sim->schedule_in(1'000'000, [] {}, "bench.guard"));
      if (guards->size() >= 2) {
        const EventId victim = (*guards)[guards->size() - 2];
        sim->cancel(victim);
      }
      sim->schedule_in(3, *this, "bench.cancel");
    }
  };
  sim.schedule_at(0, Step{&sim, &budget, &guards}, "bench.cancel");
  sim.run();
  // Drain: the last guard plus the final no-op step still fire.
  return sim.events_processed();
}

/// Many same-phase periodic callbacks: `sensors` repeaters with one shared
/// period, ticking until each has fired `ticks` times.
std::uint64_t run_repeaters(std::uint64_t sensors, std::uint64_t ticks) {
  Simulation sim;
  std::vector<std::uint64_t> fired(sensors, 0);
  for (std::uint64_t s = 0; s < sensors; ++s) {
    sim.schedule_every(
        10,
        [&fired, s, ticks]() -> bool { return ++fired[s] < ticks; },
        "bench.sensor");
  }
  sim.run();
  return sim.events_processed();
}

/// All three shapes sharing one queue.
std::uint64_t run_mixed(std::uint64_t total) {
  Simulation sim;
  std::uint64_t budget = total / 2;
  std::vector<EventId> guards;
  guards.reserve(budget + 2);
  struct Step {
    Simulation* sim;
    std::uint64_t* budget;
    std::vector<EventId>* guards;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      guards->push_back(sim->schedule_in(500'000, [] {}, "bench.guard"));
      if (guards->size() >= 2) {
        sim->cancel((*guards)[guards->size() - 2]);
      }
      sim->schedule_in(2, *this, "bench.mixed");
    }
  };
  sim.schedule_at(0, Step{&sim, &budget, &guards}, "bench.mixed");
  const std::uint64_t sensors = 64;
  const std::uint64_t ticks = total / 2 / sensors;
  std::vector<std::uint64_t> fired(sensors, 0);
  for (std::uint64_t s = 0; s < sensors; ++s) {
    sim.schedule_every(
        7, [&fired, s, ticks]() -> bool { return ++fired[s] < ticks; },
        "bench.sensor");
  }
  sim.run();
  return sim.events_processed();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--events=", 9) == 0) {
      events = std::strtoull(argv[i] + 9, nullptr, 10);
      if (events == 0) {
        std::fprintf(stderr, "--events needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      events = 20'000;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  epajsrm::bench::BenchSummary summary("event_loop");
  struct Row {
    const char* name;
    std::uint64_t dispatched;
    double wall_ms;
  };
  std::vector<Row> rows;
  const auto timed = [&](const char* name, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t n = fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    rows.push_back({name, n, ms});
    summary.add_events(n);
  };

  timed("cascade", [&] { return run_cascade(events, 64); });
  timed("cancel", [&] { return run_cancel(events / 2); });
  timed("repeaters", [&] { return run_repeaters(256, events / 256); });
  timed("mixed", [&] { return run_mixed(events); });

  std::printf("%-12s %14s %10s %14s\n", "workload", "events", "wall ms",
              "events/sec");
  for (const Row& r : rows) {
    const double eps = r.wall_ms > 0.0 ? r.dispatched / (r.wall_ms / 1e3) : 0.0;
    std::printf("%-12s %14llu %10.1f %14.0f\n", r.name,
                static_cast<unsigned long long>(r.dispatched), r.wall_ms, eps);
  }
  return 0;
}
