#include "survey/activities.hpp"
#include "survey/centers.hpp"
#include "survey/questionnaire.hpp"

#include <gtest/gtest.h>

#include <set>

namespace epajsrm::survey {
namespace {

TEST(Centers, NineCentersInPaperOrder) {
  const auto& centers = all_centers();
  ASSERT_EQ(centers.size(), 9u);
  EXPECT_EQ(centers[0].short_name, "RIKEN");
  EXPECT_EQ(centers[1].short_name, "TokyoTech");
  EXPECT_EQ(centers[2].short_name, "CEA");
  EXPECT_EQ(centers[3].short_name, "KAUST");
  EXPECT_EQ(centers[4].short_name, "LRZ");
  EXPECT_EQ(centers[5].short_name, "STFC");
  EXPECT_EQ(centers[6].short_name, "Trinity");
  EXPECT_EQ(centers[7].short_name, "CINECA");
  EXPECT_EQ(centers[8].short_name, "JCAHPC");
}

TEST(Centers, RegionsSpanAsiaEuropeAmerica) {
  std::set<Region> regions;
  for (const auto& c : all_centers()) regions.insert(c.region);
  EXPECT_TRUE(regions.contains(Region::kAsia));
  EXPECT_TRUE(regions.contains(Region::kEurope));
  EXPECT_TRUE(regions.contains(Region::kNorthAmerica));
}

TEST(Centers, ProfilesArePhysical) {
  for (const auto& c : all_centers()) {
    EXPECT_GT(c.machine_nodes, 0u) << c.short_name;
    EXPECT_GT(c.cores_per_node, 0u) << c.short_name;
    EXPECT_GT(c.node_peak_watts, c.node_idle_watts) << c.short_name;
    EXPECT_GT(c.sim_nodes, 0u) << c.short_name;
    EXPECT_LE(c.sim_nodes, c.machine_nodes) << c.short_name;
    EXPECT_GE(c.latitude, -90.0);
    EXPECT_LE(c.latitude, 90.0);
    EXPECT_GE(c.longitude, -180.0);
    EXPECT_LE(c.longitude, 180.0);
    EXPECT_GE(c.site_power_capacity_mw, c.peak_system_mw) << c.short_name;
  }
}

TEST(Centers, LookupByName) {
  EXPECT_EQ(center("KAUST").country, "Saudi Arabia");
  EXPECT_THROW(center("Hogwarts"), std::out_of_range);
}

TEST(Centers, DistancesSane) {
  const auto& riken = center("RIKEN");
  const auto& tokyo = center("TokyoTech");
  const auto& trinity = center("Trinity");
  EXPECT_DOUBLE_EQ(distance_km(riken, riken), 0.0);
  EXPECT_NEAR(distance_km(riken, tokyo), 420.0, 100.0);  // Kobe-Tokyo
  EXPECT_GT(distance_km(riken, trinity), 8000.0);        // Japan-NM
  EXPECT_NEAR(distance_km(riken, trinity), distance_km(trinity, riken),
              1e-9);
}

TEST(Centers, AsciiMapMarksAllNine) {
  const std::string map = ascii_map();
  for (char c = '1'; c <= '9'; ++c) {
    EXPECT_NE(map.find(c), std::string::npos) << "marker " << c;
  }
  EXPECT_NE(map.find("RIKEN"), std::string::npos);
}

TEST(Activities, EveryCenterHasProductionDeployment) {
  // Section V: "all sites have some type of production deployment".
  for (const auto& c : all_centers()) {
    EXPECT_FALSE(activities_of(c.short_name, Maturity::kProduction).empty())
        << c.short_name;
  }
}

TEST(Activities, EveryActivityNamesAKnownCenter) {
  for (const auto& a : all_activities()) {
    EXPECT_NO_THROW(center(a.center)) << a.description;
  }
}

TEST(Activities, KnownTableFacts) {
  // Spot-check cells against the paper.
  const auto kaust_prod = activities_of("KAUST", Maturity::kProduction);
  bool found_static_cap = false;
  for (const auto& a : kaust_prod) {
    found_static_cap |= a.technique == Technique::kPowerCapping &&
                        a.description.find("270") != std::string::npos;
  }
  EXPECT_TRUE(found_static_cap);

  const auto riken_prod = activities_of("RIKEN", Maturity::kProduction);
  bool found_emergency = false;
  for (const auto& a : riken_prod) {
    found_emergency |= a.technique == Technique::kEmergencyResponse;
  }
  EXPECT_TRUE(found_emergency);
}

TEST(Activities, TechniqueQueriesCrossCenters) {
  // Energy reporting is in production at Tokyo Tech and JCAHPC.
  EXPECT_GE(centers_with(Technique::kEnergyReporting, Maturity::kProduction),
            2u);
  const auto reports = activities_with(Technique::kEnergyReporting);
  EXPECT_GE(reports.size(), 3u);
}

TEST(Activities, ModulesMappedForProductionTechniques) {
  for (const auto& a : all_activities()) {
    if (a.maturity == Maturity::kProduction) {
      EXPECT_FALSE(a.module.empty()) << a.center << ": " << a.description;
    }
  }
}

TEST(Activities, EnumNamesRender) {
  EXPECT_STREQ(to_string(Maturity::kResearch), "Research");
  EXPECT_STREQ(to_string(Maturity::kProduction), "Production");
  EXPECT_STREQ(to_string(Technique::kPowerCapping), "power capping");
  EXPECT_STREQ(to_string(Technique::kVmSplitting), "VM node splitting");
}

TEST(Questionnaire, EightQuestionsInOrder) {
  const auto& qs = questionnaire();
  ASSERT_EQ(qs.size(), 8u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(qs[i].id, "Q" + std::to_string(i + 1));
    EXPECT_FALSE(qs[i].text.empty());
    EXPECT_FALSE(qs[i].rationale.empty());
  }
}

TEST(Questionnaire, SubItemsMatchPaper) {
  EXPECT_EQ(question("Q2").sub_items.size(), 3u);
  EXPECT_EQ(question("Q3").sub_items.size(), 5u);
  EXPECT_EQ(question("Q5").sub_items.size(), 3u);
  EXPECT_EQ(question("Q8").sub_items.size(), 2u);
  EXPECT_TRUE(question("Q1").sub_items.empty());
}

TEST(Questionnaire, LookupAndFormat) {
  EXPECT_THROW(question("Q9"), std::out_of_range);
  const std::string text = format_questionnaire();
  EXPECT_NE(text.find("Q4"), std::string::npos);
  EXPECT_NE(text.find("topology-aware"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm::survey
