// Experiment TD-INTER — Tokyo Tech's technology-development row:
// "Inter-system power capping. TSUBAME2 and TSUBAME3 will need to share
// the facility power budget" (and CEA's manual budget shifting between
// systems).
//
// Two machines share one facility IT budget that cannot power both at
// full tilt. Their workloads are phase-shifted (system A loaded first,
// system B later). Compare a static 50/50 split against the
// FacilityCoordinator's demand-following division.
#include <cstdio>

#include <memory>

#include "center_bench.hpp"
#include "core/facility_coordinator.hpp"
#include "core/solution.hpp"
#include "metrics/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace epajsrm;

platform::Cluster make_machine(const std::string& name) {
  platform::NodeConfig node;
  node.cores = 16;
  node.idle_watts = 100.0;
  node.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .name(name)
      .node_count(24)
      .node_config(node)
      .pstates(platform::PstateTable::linear(2.6, 1.2, 8))
      .build();
}

std::vector<workload::JobSpec> phase_workload(sim::SimTime phase_start,
                                              std::uint64_t seed) {
  workload::AppCatalog catalog = workload::AppCatalog::capacity(24);
  workload::GeneratorConfig gen;
  gen.machine_nodes = 24;
  gen.arrival_rate_per_hour = 7.0;  // fills its machine at full budget
  workload::WorkloadGenerator generator(gen, std::move(catalog), seed);
  return generator.generate_until(phase_start, phase_start + 8 * sim::kHour);
}

struct TwoSystemOutcome {
  core::RunResult a;
  core::RunResult b;
  sim::SimTime total_makespan() const {
    return std::max(a.report.makespan, b.report.makespan);
  }
};

TwoSystemOutcome run_shared(bool coordinated) {
  sim::Simulation sim;
  platform::Cluster cluster_a = make_machine("system-A");
  platform::Cluster cluster_b = make_machine("system-B");
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution_a(sim, cluster_a, config);
  core::EpaJsrmSolution solution_b(sim, cluster_b, config);
  solution_a.metrics_collector().set_label("system-A");
  solution_b.metrics_collector().set_label("system-B");

  // Facility budget: enough for one busy machine plus one idle one
  // (each peaks at 24*300 = 7.2 kW; idle floor 2.4 kW).
  const double facility_budget = 7200.0 + 3000.0;

  core::FacilityCoordinator::Config coord_config;
  coord_config.total_budget_watts = facility_budget;
  coord_config.period = sim::kMinute;
  core::FacilityCoordinator coordinator(sim, coord_config);
  if (coordinated) {
    coordinator.add_member(solution_a, 2600.0);
    coordinator.add_member(solution_b, 2600.0);
  } else {
    // Static halves enforced the same way (admission + hard cap).
    solution_a.add_policy(std::make_unique<epa::PowerBudgetDvfsPolicy>(
        facility_budget / 2));
    solution_b.add_policy(std::make_unique<epa::PowerBudgetDvfsPolicy>(
        facility_budget / 2));
  }

  // Phase-shifted load: A busy hours 0-8, B busy hours 30-38 — disjoint
  // campaigns, so a demand-following division can lend nearly the whole
  // surplus to whichever machine is active.
  solution_a.submit_all(phase_workload(0, 61));
  solution_b.submit_all(phase_workload(30 * sim::kHour, 62));

  solution_a.start();
  solution_b.start();
  if (coordinated) {
    coordinator.start();
  } else {
    solution_a.set_system_cap(facility_budget / 2);
    solution_b.set_system_cap(facility_budget / 2);
  }

  while (sim.now() < 15 * sim::kDay &&
         !(solution_a.workload_drained() && solution_b.workload_drained())) {
    sim.run_until(sim.now() + sim::kHour);
  }

  TwoSystemOutcome outcome;
  outcome.a = solution_a.finalize();
  outcome.b = solution_b.finalize();
  return outcome;
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_intersystem_cap");
  const TwoSystemOutcome fixed = run_shared(false);
  const TwoSystemOutcome coordinated = run_shared(true);
  for (const TwoSystemOutcome* o : {&fixed, &coordinated}) {
    summary.add_run(o->a);
    summary.add_run(o->b);
  }

  metrics::AsciiTable table({"division", "system", "p50 wait (min)",
                             "p50 runtime (min)", "makespan (h)", "energy",
                             "jobs done"});
  table.set_title(
      "TD-INTER: two machines, phase-shifted load, one facility budget "
      "(10.2 kW for 14.4 kW of combined peak)");
  const auto add = [&](const char* division, const core::RunResult& r) {
    table.add_row({division, r.report.label,
                   metrics::format_double(r.report.wait_minutes.median, 1),
                   metrics::format_double(r.report.job_runtime_minutes.median, 1),
                   metrics::format_double(sim::to_hours(r.report.makespan), 1),
                   metrics::format_kwh(r.total_it_kwh_exact),
                   std::to_string(r.report.jobs_completed)});
  };
  add("static-50/50", fixed.a);
  add("static-50/50", fixed.b);
  add("coordinated", coordinated.a);
  add("coordinated", coordinated.b);
  std::printf("%s\n", table.render().c_str());

  std::printf("campaign finished after %.1f h (static) vs %.1f h "
              "(coordinated): the budget follows the load between "
              "machines.\n",
              sim::to_hours(fixed.total_makespan()),
              sim::to_hours(coordinated.total_makespan()));
  return 0;
}
