// Demand-response handling — the ESP-SC interaction of Bates et al. [6] /
// Patki et al. [36] that motivated the whole EPA JSRM effort: the
// electricity service provider requests the site to hold its draw under a
// limit for a window; the site sheds load ahead of the window and restores
// afterwards.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Sheds IT load for announced DR windows via system capping.
class DemandResponsePolicy final : public EpaPolicy {
 public:
  struct Config {
    /// Start shedding this long before the event (ramping down takes time
    /// because running jobs only slow, not stop).
    sim::SimTime preshed_lead = 10 * sim::kMinute;
    /// Facility-to-IT conversion uses the facility PUE at event time; this
    /// extra margin covers PUE drift during the window.
    double safety_margin = 0.05;
  };

  DemandResponsePolicy() = default;
  explicit DemandResponsePolicy(Config config) : config_(config) {}

  std::string name() const override { return "demand-response"; }

  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime now) const override;

  bool shedding() const { return shedding_; }
  std::uint64_t events_honoured() const { return events_honoured_; }

 private:
  /// IT watts that keep facility draw within the event limit at time t.
  double it_limit_for_event(const power::DemandResponseEvent& event,
                            sim::SimTime t) const;

  Config config_{};
  bool shedding_ = false;
  std::uint64_t events_honoured_ = 0;
};

}  // namespace epajsrm::epa
