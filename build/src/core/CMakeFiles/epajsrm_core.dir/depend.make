# Empty dependencies file for epajsrm_core.
# This may be replaced when dependencies are built.
