#include "epajsrm_analyze/include_graph.hpp"

#include <algorithm>
#include <functional>

namespace epajsrm::analyze {

namespace fs = std::filesystem;
namespace ts = epajsrm::toolsupport;

namespace {

// Lexically normalizes `a/b/../c` style paths without touching the
// filesystem (the joined relative spelling may mix `..` with plain
// segments).
std::string normalize_rel(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  const auto flush = [&] {
    if (cur.empty() || cur == ".") {
      // skip
    } else if (cur == "..") {
      if (!parts.empty()) parts.pop_back();
    } else {
      parts.push_back(cur);
    }
    cur.clear();
  };
  for (const char c : path) {
    if (c == '/') {
      flush();
    } else {
      cur += c;
    }
  }
  flush();
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::string dir_of(const std::string& rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash);
}

}  // namespace

bool analyzable_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> collect_tree(const fs::path& root) {
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && analyzable_file(entry.path())) {
      files.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::map<std::string, ts::SourceFile> load_tree(
    const fs::path& root, const std::vector<std::string>& rel_paths) {
  std::map<std::string, ts::SourceFile> out;
  for (const std::string& rel : rel_paths) {
    out.emplace(rel, ts::load_source(root / rel));
  }
  return out;
}

IncludeGraph build_include_graph(
    const std::map<std::string, ts::SourceFile>& sources) {
  IncludeGraph graph;
  for (const auto& [rel, sf] : sources) graph.files.push_back(rel);

  const auto exists = [&](const std::string& rel) {
    return sources.count(rel) > 0;
  };

  for (const auto& [rel, sf] : sources) {
    std::vector<IncludeEdge>& edges = graph.edges[rel];
    for (std::size_t i = 0; i < sf.raw.size(); ++i) {
      // Directives survive in the raw text; the spelled path is a string
      // literal, so the stripped view cannot be used here.
      const std::string& line = sf.raw[i];
      std::size_t p = ts::skip_ws(line, 0);
      if (p >= line.size() || line[p] != '#') continue;
      p = ts::skip_ws(line, p + 1);
      if (line.compare(p, 7, "include") != 0) continue;
      p = ts::skip_ws(line, p + 7);
      if (p >= line.size()) continue;
      const char open = line[p];
      const char close = open == '<' ? '>' : '"';
      if (open != '<' && open != '"') continue;
      const std::size_t end = line.find(close, p + 1);
      if (end == std::string::npos) continue;
      const std::string spelled = line.substr(p + 1, end - p - 1);

      std::string resolved;
      if (exists(spelled)) {
        resolved = spelled;  // canonical root-relative spelling
      } else if (open == '"') {
        const std::string sibling =
            normalize_rel(dir_of(rel).empty() ? spelled
                                              : dir_of(rel) + "/" + spelled);
        if (exists(sibling)) resolved = sibling;
      }
      if (resolved.empty()) continue;  // external header
      edges.push_back(IncludeEdge{resolved, spelled,
                                  static_cast<int>(i + 1), open == '<'});
    }
  }
  return graph;
}

std::set<std::string> IncludeGraph::reachable_from(
    const std::string& file) const {
  std::set<std::string> seen;
  std::vector<std::string> stack{file};
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    const auto it = edges.find(cur);
    if (it == edges.end()) continue;
    for (const IncludeEdge& e : it->second) {
      if (seen.insert(e.to).second) stack.push_back(e.to);
    }
  }
  seen.erase(file);
  return seen;
}

void find_include_cycles(const IncludeGraph& graph, Findings* findings) {
  // Iterative DFS with colors; each back edge closes one cycle. Cycles
  // are canonicalized (rotated to the smallest member) and deduplicated.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::set<std::vector<std::string>> reported;

  std::function<void(const std::string&)> visit = [&](const std::string& f) {
    color[f] = 1;
    path.push_back(f);
    const auto it = graph.edges.find(f);
    if (it != graph.edges.end()) {
      for (const IncludeEdge& e : it->second) {
        const int c = color[e.to];
        if (c == 0) {
          visit(e.to);
        } else if (c == 1) {
          const auto at = std::find(path.begin(), path.end(), e.to);
          std::vector<std::string> cycle(at, path.end());
          const auto smallest =
              std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          if (reported.insert(cycle).second) {
            std::string chain;
            for (const std::string& m : cycle) chain += m + " -> ";
            chain += cycle.front();
            findings->push_back(Finding{f, e.line, "include-cycle",
                                        "include cycle: " + chain});
          }
        }
      }
    }
    path.pop_back();
    color[f] = 2;
  };

  for (const std::string& f : graph.files) {
    if (color[f] == 0) visit(f);
  }
}

std::string module_of(const std::string& rel_path,
                      const std::string& root_module) {
  const std::size_t slash = rel_path.find('/');
  if (slash == std::string::npos) return root_module;
  return rel_path.substr(0, slash);
}

}  // namespace epajsrm::analyze
