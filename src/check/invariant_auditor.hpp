// InvariantAuditor: whole-system invariant checking during a run.
//
// Where the contract macros (contract.hpp) guard individual call sites,
// the auditor cross-checks *global* properties that no single call site
// can see — after every simulator event (or every Nth, configurable) it
// verifies:
//
//   * energy conservation — the accountant's total IT energy equals the
//     per-job attributions plus the overhead bucket, and equals the sum
//     of per-node integrals; totals never decrease;
//   * power-cap compliance — every capped node that is in a cap-governed
//     lifecycle state draws at most its cap (or, when the cap sits below
//     the idle floor and is flagged infeasible, at most the best-effort
//     draw at the deepest P-state);
//   * lifecycle legality — node state changes follow the documented
//     state machine (platform::NodeState), including compound edges that
//     can occur within one event cascade;
//   * budget sanity — installed policies report non-negative, finite
//     power budgets, and a watched FacilityCoordinator hands out
//     non-negative slices;
//   * ledger fidelity — the PowerLedger's per-node facts match the node
//     sensor caches verbatim, its incremental fixed-point aggregates
//     survive an exact brute-force recompute (audit_parity), and the
//     cluster total agrees with a double-precision sweep to within the
//     quantization bound.
//
// The auditor attaches to the Simulation's dispatch-hook chain (it
// coexists with the event-loop profiler) and must therefore outlive the
// run it watches. Violations are recorded (bounded) and counted; set
// `throw_on_violation` to fail fast in tests.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/node.hpp"
#include "sim/time.hpp"

namespace epajsrm::core {
class EpaJsrmSolution;
class FacilityCoordinator;
class PartitionDomain;
}  // namespace epajsrm::core

namespace epajsrm::check {

/// Thrown by the auditor when `throw_on_violation` is set.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Tunables of the auditor.
struct AuditorConfig {
  /// Audit after every Nth dispatched event (1 = every event). The
  /// lifecycle-legality check still observes every audited snapshot pair,
  /// so raising this trades thoroughness for speed on long runs.
  std::uint64_t check_every_events = 1;
  /// Absolute slack on cap compliance (actuation happens in doubles).
  double cap_epsilon_watts = 1e-6;
  /// Relative slack on energy conservation, scaled by max(1 J, total).
  double energy_epsilon_rel = 1e-9;
  /// Throw AuditFailure at the first violation instead of recording it.
  bool throw_on_violation = false;
  /// Retain at most this many violation records (all are still counted).
  std::size_t max_recorded = 64;
  /// Excuse lifecycle edges caused by injected faults (a crash legally
  /// yanks a Busy/Idle/Draining node straight to Off). Each injected crash
  /// leaves one consumable mark on the solution, so a *genuine* illegal
  /// edge on the same node still trips the auditor.
  bool excuse_fault_edges = true;
};

/// One observed invariant violation.
struct AuditViolation {
  sim::SimTime sim_time = 0;
  std::string invariant;  ///< "energy", "cap", "lifecycle", "budget"
  std::string detail;
};

/// Attaches to a solution's simulation and audits system invariants.
class InvariantAuditor {
 public:
  /// Registers a dispatch hook on `solution`'s simulation. The auditor
  /// must outlive the simulation run it observes.
  explicit InvariantAuditor(core::EpaJsrmSolution& solution,
                            AuditorConfig config = {});

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// Additionally audits a facility coordinator's budget division.
  void watch(core::FacilityCoordinator& coordinator);

  /// Additionally audits cross-partition conservation after every merged
  /// coupling epoch of a lax-sync partitioned run (DESIGN.md §15): the
  /// ledger's incremental aggregates must survive an exact brute-force
  /// recompute right after the temperature-shard merge, and the domain's
  /// per-partition core census must fold to the same integers — and
  /// therefore the bit-identical utilization — as the cluster's O(N)
  /// sweep. Registers an epoch observer; the auditor must outlive the
  /// domain's run.
  void watch(core::PartitionDomain& domain);

  /// Runs every check immediately (also called from the dispatch hook).
  void audit_now();

  /// Dispatched events seen on the hook so far.
  std::uint64_t events_seen() const { return events_seen_; }
  /// Full audit passes executed.
  std::uint64_t audits() const { return audits_; }
  /// Coupling-epoch conservation audits executed (watched domains only).
  std::uint64_t epoch_audits() const { return epoch_audits_; }
  /// Total violations observed (recorded or not).
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<AuditViolation>& violations() const { return recorded_; }

  const AuditorConfig& config() const { return config_; }

 private:
  void on_event();
  void check_partition_epoch(const core::PartitionDomain& domain);
  void check_energy();
  void check_caps();
  void check_lifecycle();
  void check_budgets();
  void check_ledger();
  void record(const char* invariant, std::string detail);

  core::EpaJsrmSolution* solution_;
  core::FacilityCoordinator* coordinator_ = nullptr;
  AuditorConfig config_;

  std::vector<platform::NodeState> last_states_;
  double last_total_joules_ = 0.0;

  std::uint64_t events_seen_ = 0;
  std::uint64_t audits_ = 0;
  std::uint64_t epoch_audits_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<AuditViolation> recorded_;
};

}  // namespace epajsrm::check
