// ThreadPool race-audit stress suite. These tests are shaped to make
// ThreadSanitizer's life easy: heavy submit contention, wait_idle racing
// live submitters, destruction under load, and a full parallel simulation
// ensemble. They pass functionally everywhere and must stay data-race
// free under the tsan preset (ctest -L tsan-stress in build-tsan).
#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/scenario.hpp"

namespace epajsrm {
namespace {

TEST(ThreadPoolStress, ManyConcurrentSubmitters) {
  sim::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sum] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kSubmitters) * kTasksEach);
}

TEST(ThreadPoolStress, WaitIdleRacesLiveSubmitter) {
  sim::ThreadPool pool(3);
  std::atomic<std::uint64_t> done{0};
  constexpr std::uint64_t kTasks = 4000;

  // One thread feeds the pool while another repeatedly drains it; every
  // wait_idle return must observe a consistent pool, and nothing may race.
  std::thread feeder([&pool, &done] {
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  while (done.load(std::memory_order_relaxed) < kTasks) {
    pool.wait_idle();
  }
  feeder.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStress, DestructorDrainsUnderLoad) {
  std::atomic<std::uint64_t> executed{0};
  constexpr int kTasks = 2000;
  {
    sim::ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must complete every pending task.
  }
  EXPECT_EQ(executed.load(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPoolStress, RepeatedConstructionTeardown) {
  std::atomic<std::uint64_t> executed{0};
  for (int cycle = 0; cycle < 50; ++cycle) {
    sim::ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(executed.load(), 50u * 20u);
}

TEST(ThreadPoolStress, ParallelForCoversEveryIndexOnce) {
  constexpr std::size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  sim::ThreadPool::parallel_for(
      kN,
      [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      4);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStress, ParallelSimulationEnsembleIsIndependent) {
  // The pool's actual production use: independent replications in
  // parallel. Each task owns its whole simulation stack; TSan verifies
  // nothing is shared by accident.
  constexpr std::size_t kReplications = 6;
  std::vector<double> energy_kwh(kReplications, 0.0);
  sim::ThreadPool::parallel_for(
      kReplications,
      [&energy_kwh](std::size_t i) {
        core::ScenarioConfig config;
        config.nodes = 4;
        config.job_count = 6;
        config.horizon = 1 * sim::kDay;
        config.seed = 100 + i;
        core::Scenario scenario(config);
        const core::RunResult result = scenario.run();
        energy_kwh[i] = result.total_it_kwh_exact;
      },
      3);
  for (std::size_t i = 0; i < kReplications; ++i) {
    EXPECT_GT(energy_kwh[i], 0.0) << "replication " << i;
  }
  // Identical seeds produce identical energy; distinct seeds should not
  // all collide (sanity that the runs were truly independent).
  core::ScenarioConfig config;
  config.nodes = 4;
  config.job_count = 6;
  config.horizon = 1 * sim::kDay;
  config.seed = 100;
  core::Scenario replay(config);
  EXPECT_DOUBLE_EQ(replay.run().total_it_kwh_exact, energy_kwh[0]);
}

}  // namespace
}  // namespace epajsrm
