// Job-order-only energy/cost-aware scheduling — the line of work the
// survey cites as [4][7][28][29]: no hardware knobs, no frequency changes;
// the scheduler only reorders (delays) deferrable work into cheap
// electricity hours under a time-of-use tariff.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Delays deferrable jobs while electricity is expensive.
class EnergyCostOrderPolicy final : public EpaPolicy {
 public:
  struct Config {
    /// Jobs are deferred while price_now > cheapest_daily_price ×
    /// (1 + premium_threshold).
    double premium_threshold = 0.25;
    /// Never defer when the job could miss its deadline (slack below the
    /// walltime × safety factor).
    double deadline_safety = 1.5;
  };

  EnergyCostOrderPolicy() = default;
  explicit EnergyCostOrderPolicy(Config config) : config_(config) {}

  std::string name() const override { return "energy-cost-order"; }

  void reorder_queue(std::vector<workload::Job*>& pending,
                     sim::SimTime now) override;
  bool plan_start(StartPlan& plan) override;

  std::uint64_t deferrals() const { return deferrals_; }

 private:
  /// True when prices are currently at a premium vs. the daily minimum.
  bool price_premium(sim::SimTime now) const;
  /// True when the job must run now to make its deadline.
  bool deadline_pressure(const workload::Job& job, sim::SimTime now) const;

  Config config_{};
  std::uint64_t deferrals_ = 0;
};

}  // namespace epajsrm::epa
