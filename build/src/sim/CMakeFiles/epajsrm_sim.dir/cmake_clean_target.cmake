file(REMOVE_RECURSE
  "libepajsrm_sim.a"
)
