#include "sim/logger.hpp"

#include <cstdio>

namespace epajsrm::sim {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < threshold_) return;
  const std::string stamp = clock_ ? format_hms(clock_()) : "--:--:--";
  std::string line = "[" + stamp + "] [" + to_string(level) + "] [" +
                     component + "] " + message;
  if (sink_) {
    sink_(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace epajsrm::sim
