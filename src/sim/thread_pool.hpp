// Fixed-size thread pool used to run independent simulation replications
// and benchmark parameter sweeps in parallel.
//
// The simulator itself is single-threaded for determinism; parallelism in
// this framework is across replications (different seeds / parameter
// points), which is the standard HPC "embarrassingly parallel ensemble"
// pattern.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace epajsrm::sim {

/// A minimal work-queue thread pool.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 → hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for i in [0, n) across the pool and blocks until all
  /// iterations are done. Exceptions escaping `body` terminate (tasks must
  /// handle their own errors — kernel-level policy, keeps the pool simple).
  static void parallel_for(std::size_t n,
                           const std::function<void(std::size_t)>& body,
                           std::size_t threads = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace epajsrm::sim
