// Power ramp-rate limiting.
//
// The paper's introduction names "an increase in both the rate of change
// and magnitude of system power fluctuations" as a core motivation, and
// Bates et al. [6] show electricity providers care about ramps as much as
// levels (large synchronous job starts/stops look like grid faults).
//
// Two mechanisms bound the upward slope:
//  * start metering — jobs whose incremental draw exceeds the remaining
//    window headroom wait;
//  * soft starts — a job whose *own* step is larger than the whole limit
//    launches at the P-state that fits, then the policy raises its
//    frequency one step per tick as window headroom frees up.
#pragma once

#include <deque>
#include <set>

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Bounds dP/dt by metering and soft-starting job launches.
class RampLimiterPolicy final : public EpaPolicy {
 public:
  struct Config {
    /// Maximum allowed increase of IT power within the window.
    double max_ramp_watts = 0.0;
    /// Trailing observation window.
    sim::SimTime window = 5 * sim::kMinute;
  };

  explicit RampLimiterPolicy(Config config) : config_(config) {}

  std::string name() const override { return "ramp-limiter"; }

  void install(PolicyHost& host) override;
  void on_tick(sim::SimTime now) override;
  bool plan_start(StartPlan& plan) override;
  void on_job_end(const workload::Job& job) override;

  std::uint64_t deferred_starts() const { return deferred_; }
  std::uint64_t soft_starts() const { return soft_starts_; }
  /// Largest upward ramp observed within any window (diagnostics).
  double worst_observed_ramp() const { return worst_ramp_; }

 private:
  /// Minimum draw within the trailing window (the ramp base).
  double window_min() const;
  /// Remaining upward headroom in the current window.
  double headroom() const;
  /// Dynamic draw the job adds at P-state `p` (watts).
  double job_delta(const StartPlan& plan, std::uint32_t p) const;

  Config config_;
  std::deque<std::pair<sim::SimTime, double>> samples_;
  /// Jobs launched below full frequency by this policy, still ramping up.
  std::set<workload::JobId> ramping_jobs_;
  std::uint64_t deferred_ = 0;
  std::uint64_t soft_starts_ = 0;
  double worst_ramp_ = 0.0;
};

}  // namespace epajsrm::epa
