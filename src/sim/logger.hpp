// Lightweight leveled logger prefixed with simulation time.
//
// The logger is deliberately minimal: synchronous, stdio-backed, filterable
// by level, and silenceable for benchmarks. Components log through a
// Logger& so tests can capture output via a custom sink.
#pragma once

#include <functional>
#include <string>

#include "sim/time.hpp"

namespace epajsrm::sim {

/// Log severity, ordered; messages below the threshold are dropped.
enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Human-readable name of a level ("TRACE".."ERROR").
const char* to_string(LogLevel level);

/// Sim-time-stamped leveled logger.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Creates a logger reading timestamps from `clock` (the Simulation's
  /// now(), injected as a callable to avoid a dependency cycle).
  explicit Logger(std::function<SimTime()> clock, LogLevel threshold = LogLevel::kWarn)
      : clock_(std::move(clock)), threshold_(threshold) {}

  /// Creates a clockless logger (timestamps rendered as "--:--:--").
  Logger() : threshold_(LogLevel::kWarn) {}

  /// Sets the minimum severity that is emitted.
  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  /// Replaces the output sink (default: stderr). The sink receives the
  /// fully formatted line.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Emits a message at `level` tagged with `component`.
  void log(LogLevel level, const std::string& component,
           const std::string& message);

  void trace(const std::string& c, const std::string& m) { log(LogLevel::kTrace, c, m); }
  void debug(const std::string& c, const std::string& m) { log(LogLevel::kDebug, c, m); }
  void info(const std::string& c, const std::string& m) { log(LogLevel::kInfo, c, m); }
  void warn(const std::string& c, const std::string& m) { log(LogLevel::kWarn, c, m); }
  void error(const std::string& c, const std::string& m) { log(LogLevel::kError, c, m); }

 private:
  std::function<SimTime()> clock_;
  LogLevel threshold_;
  Sink sink_;
};

}  // namespace epajsrm::sim
