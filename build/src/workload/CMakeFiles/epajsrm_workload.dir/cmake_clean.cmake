file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_workload.dir/app_catalog.cpp.o"
  "CMakeFiles/epajsrm_workload.dir/app_catalog.cpp.o.d"
  "CMakeFiles/epajsrm_workload.dir/generator.cpp.o"
  "CMakeFiles/epajsrm_workload.dir/generator.cpp.o.d"
  "CMakeFiles/epajsrm_workload.dir/job.cpp.o"
  "CMakeFiles/epajsrm_workload.dir/job.cpp.o.d"
  "CMakeFiles/epajsrm_workload.dir/swf.cpp.o"
  "CMakeFiles/epajsrm_workload.dir/swf.cpp.o.d"
  "libepajsrm_workload.a"
  "libepajsrm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
