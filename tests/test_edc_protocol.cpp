// EDC wire protocol: serialize -> parse round-trips for every message and
// reply type (bit-exact doubles included), and line-numbered rejection of
// malformed input.
#include "edc/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace epajsrm::edc {
namespace {

// --- round trips: every message type ----------------------------------------

TEST(EdcProtocol, SimulationBeginsRoundTrips) {
  Message m;
  m.type = Message::Type::kSimulationBegins;
  m.time = 0;
  m.seq = 0;
  m.total_nodes = 64;
  m.peak_node_watts = 270.0;
  const Message back = parse_message(serialize(m), 1);
  EXPECT_EQ(back.type, Message::Type::kSimulationBegins);
  EXPECT_EQ(back.time, m.time);
  EXPECT_EQ(back.seq, m.seq);
  EXPECT_EQ(back.total_nodes, m.total_nodes);
  EXPECT_EQ(back.peak_node_watts, m.peak_node_watts);
}

TEST(EdcProtocol, JobSubmittedRoundTripsBitExactDoubles) {
  Message m;
  m.type = Message::Type::kJobSubmitted;
  m.time = 12'345'678;
  m.seq = 42;
  m.job = 7;
  m.submit_time = 12'345'678;
  m.nodes = 4;
  m.walltime = 2 * sim::kHour;
  // A value with no short decimal form: the shortest-round-trip printer
  // must still bring the identical bits back.
  m.estimated_energy_joules = 1.0368e6 * (1.0 / 3.0);
  const Message back = parse_message(serialize(m), 1);
  EXPECT_EQ(back.type, Message::Type::kJobSubmitted);
  EXPECT_EQ(back.job, m.job);
  EXPECT_EQ(back.submit_time, m.submit_time);
  EXPECT_EQ(back.nodes, m.nodes);
  EXPECT_EQ(back.walltime, m.walltime);
  EXPECT_EQ(back.estimated_energy_joules, m.estimated_energy_joules);
}

TEST(EdcProtocol, JobEndedRoundTrips) {
  Message m;
  m.type = Message::Type::kJobEnded;
  m.time = 99;
  m.seq = 3;
  m.job = 12;
  m.energy_joules = 987654.321;
  const Message back = parse_message(serialize(m), 1);
  EXPECT_EQ(back.type, Message::Type::kJobEnded);
  EXPECT_EQ(back.job, m.job);
  EXPECT_EQ(back.energy_joules, m.energy_joules);
}

TEST(EdcProtocol, BudgetTickRoundTrips) {
  Message m;
  m.type = Message::Type::kBudgetTick;
  m.time = 10 * sim::kSecond;
  m.seq = 5;
  const Message back = parse_message(serialize(m), 1);
  EXPECT_EQ(back.type, Message::Type::kBudgetTick);
  EXPECT_EQ(back.time, m.time);
  EXPECT_EQ(back.seq, m.seq);
}

TEST(EdcProtocol, PowerBudgetChangedRoundTrips) {
  Message m;
  m.type = Message::Type::kPowerBudgetChanged;
  m.time = 1;
  m.seq = 9;
  m.budget_watts = 12345.6789;
  const Message back = parse_message(serialize(m), 1);
  EXPECT_EQ(back.type, Message::Type::kPowerBudgetChanged);
  EXPECT_EQ(back.budget_watts, m.budget_watts);
}

TEST(EdcProtocol, SimulationEndsRoundTrips) {
  Message m;
  m.type = Message::Type::kSimulationEnds;
  m.time = 4 * sim::kDay;
  m.seq = 1000;
  const Message back = parse_message(serialize(m), 1);
  EXPECT_EQ(back.type, Message::Type::kSimulationEnds);
  EXPECT_EQ(back.time, m.time);
}

TEST(EdcProtocol, SchedulingPassRoundTripsPendingIds) {
  Message m;
  m.type = Message::Type::kSchedulingPass;
  m.time = 30 * sim::kSecond;
  m.seq = 2;
  m.free_nodes = 17;
  m.pending = {5, 3, 9, 1};
  const Message back = parse_message(serialize(m), 1);
  EXPECT_EQ(back.type, Message::Type::kSchedulingPass);
  EXPECT_EQ(back.free_nodes, m.free_nodes);
  EXPECT_EQ(back.pending, m.pending);  // order preserved
}

TEST(EdcProtocol, EmptyPendingArrayRoundTrips) {
  Message m;
  m.type = Message::Type::kSchedulingPass;
  m.free_nodes = 0;
  const Message back = parse_message(serialize(m), 1);
  EXPECT_TRUE(back.pending.empty());
}

// --- round trips: every reply type -------------------------------------------

TEST(EdcProtocol, StartJobReplyRoundTrips) {
  Reply r;
  r.type = Reply::Type::kStartJob;
  r.job = 77;
  const Reply back = parse_reply(serialize(r), 1);
  EXPECT_EQ(back.type, Reply::Type::kStartJob);
  EXPECT_EQ(back.job, r.job);
}

TEST(EdcProtocol, SetPowerCapReplyRoundTripsBitExact) {
  Reply r;
  r.type = Reply::Type::kSetPowerCap;
  r.watts = 17280.0 * std::sqrt(2.0);
  const Reply back = parse_reply(serialize(r), 1);
  EXPECT_EQ(back.type, Reply::Type::kSetPowerCap);
  EXPECT_EQ(back.watts, r.watts);
}

TEST(EdcProtocol, HoldReplyRoundTrips) {
  Reply r;
  r.type = Reply::Type::kHold;
  const Reply back = parse_reply(serialize(r), 1);
  EXPECT_EQ(back.type, Reply::Type::kHold);
}

TEST(EdcProtocol, RequeueReplyRoundTrips) {
  Reply r;
  r.type = Reply::Type::kRequeue;
  r.job = 8;
  const Reply back = parse_reply(serialize(r), 1);
  EXPECT_EQ(back.type, Reply::Type::kRequeue);
  EXPECT_EQ(back.job, r.job);
}

// --- double exactness ---------------------------------------------------------

TEST(EdcProtocol, FormatDoubleIsShortestExactForm) {
  const double values[] = {0.0,    1.0,        0.1,    1.0 / 3.0,
                           2.5e-9, 1.7976e308, 1e-300, 123456.789};
  for (const double v : values) {
    const std::string text = format_double(v);
    Message m;
    m.type = Message::Type::kJobEnded;
    m.job = 1;
    m.energy_joules = v;
    const Message back = parse_message(serialize(m), 1);
    EXPECT_EQ(back.energy_joules, v) << "via " << text;
  }
}

// --- malformed input: line-numbered rejection ---------------------------------

TEST(EdcProtocol, MalformedJsonReportsLineNumber) {
  try {
    parse_reply("{\"type\":\"start_job\",\"job\":", 7);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.line(), 7u);
    EXPECT_NE(std::string(e.what()).find("line 7"), std::string::npos);
  }
}

TEST(EdcProtocol, UnknownMessageTypeRejected) {
  EXPECT_THROW(
      parse_message("{\"type\":\"launch_missiles\",\"time\":0,\"seq\":0}", 2),
      ProtocolError);
}

TEST(EdcProtocol, UnknownReplyTypeRejected) {
  EXPECT_THROW(parse_reply("{\"type\":\"abort\"}", 1), ProtocolError);
}

TEST(EdcProtocol, MissingRequiredFieldRejected) {
  // start_job without a job id.
  EXPECT_THROW(parse_reply("{\"type\":\"start_job\"}", 1), ProtocolError);
  // job_submitted without its energy estimate.
  EXPECT_THROW(
      parse_message("{\"type\":\"job_submitted\",\"time\":0,\"seq\":0,"
                    "\"job\":1,\"submit_time\":0,\"nodes\":1,\"walltime\":1}",
                    1),
      ProtocolError);
}

TEST(EdcProtocol, WrongFieldTypeRejected) {
  EXPECT_THROW(parse_reply("{\"type\":\"start_job\",\"job\":\"seven\"}", 1),
               ProtocolError);
}

TEST(EdcProtocol, BadNumberRejected) {
  EXPECT_THROW(parse_reply("{\"type\":\"set_power_cap\",\"watts\":1.2.3}", 1),
               ProtocolError);
}

TEST(EdcProtocol, NegativeCapRejected) {
  EXPECT_THROW(parse_reply("{\"type\":\"set_power_cap\",\"watts\":-5}", 1),
               ProtocolError);
}

TEST(EdcProtocol, NoJobSentinelRejectedInReplies) {
  EXPECT_THROW(parse_reply("{\"type\":\"start_job\",\"job\":0}", 1),
               ProtocolError);
  EXPECT_THROW(parse_reply("{\"type\":\"requeue\",\"job\":0}", 1),
               ProtocolError);
}

TEST(EdcProtocol, TrailingGarbageRejected) {
  EXPECT_THROW(parse_reply("{\"type\":\"hold\"} extra", 3), ProtocolError);
}

TEST(EdcProtocol, WhitespaceTolerated) {
  const Reply r = parse_reply("  { \"type\" : \"hold\" }  ", 1);
  EXPECT_EQ(r.type, Reply::Type::kHold);
}

}  // namespace
}  // namespace epajsrm::edc
