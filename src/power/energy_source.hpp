// Electricity supply: grid feed, on-site generation, and demand-response
// events from the electricity service provider (ESP).
//
// Models the RIKEN research line ("integrating job scheduler info with the
// decision to use grid vs. gas turbine energy") and the ESP-SC interaction
// of Bates [6] / Patki [36]: the ESP can ask the site to shed load for a
// window; the site can split its draw across sources with different costs
// and capacities.
#pragma once

#include <string>
#include <vector>

#include "power/tariff.hpp"
#include "sim/time.hpp"

namespace epajsrm::power {

/// One electricity source (grid feed or on-site generator).
struct EnergySource {
  std::string name;
  /// Maximum deliverable power in watts (0 = unlimited).
  double capacity_watts = 0.0;
  /// Pricing. Grid sources use a time-of-use tariff; generators typically a
  /// flat fuel cost.
  Tariff tariff = Tariff::flat(0.10);
  /// Generators need spin-up lead time before they can carry load.
  sim::SimTime startup_time = 0;
  /// True for dispatchable on-site generation (gas turbine), false for the
  /// grid feed.
  bool dispatchable = false;
};

/// An ESP demand-response request: hold facility draw at or below
/// `limit_watts` during [start, start+duration).
struct DemandResponseEvent {
  sim::SimTime start = 0;
  sim::SimTime duration = 0;
  double limit_watts = 0.0;
  /// Advance notice the ESP gives before `start`.
  sim::SimTime notice = 30 * sim::kMinute;
  /// Payment per avoided kWh for honouring the request.
  double incentive_per_kwh = 0.0;

  sim::SimTime end() const { return start + duration; }
  bool active_at(sim::SimTime t) const { return t >= start && t < end(); }
};

/// A portfolio of sources plus the DR calendar; answers "how should this
/// facility load be split right now, and what does it cost?".
class SupplyPortfolio {
 public:
  /// Adds a source; the first added source is the default (grid).
  void add_source(EnergySource source);
  const std::vector<EnergySource>& sources() const { return sources_; }

  /// Registers a future demand-response event.
  void add_event(DemandResponseEvent event);
  const std::vector<DemandResponseEvent>& events() const { return events_; }

  /// The DR event active at time t, or nullptr.
  const DemandResponseEvent* active_event(sim::SimTime t) const;

  /// The next event with start >= t, or nullptr.
  const DemandResponseEvent* next_event(sim::SimTime t) const;

  /// Result of dispatching a facility load across sources.
  struct Dispatch {
    /// Watts drawn per source, parallel to sources().
    std::vector<double> watts;
    /// Marginal cost per kWh of the last watt served.
    double marginal_price = 0.0;
    /// Load that no source could carry (capacity exhausted).
    double unserved_watts = 0.0;
  };

  /// Splits `facility_watts` across sources in ascending price-at-t order
  /// (merit order), respecting capacities. A DR event caps the *grid*
  /// (non-dispatchable) contribution at its limit, pushing overflow to
  /// dispatchable sources.
  Dispatch dispatch(double facility_watts, sim::SimTime t) const;

  /// Cost per hour of a dispatch at time t.
  double cost_per_hour(const Dispatch& d, sim::SimTime t) const;

  /// Grid watts the site may draw at time t (capacity or DR limit).
  double grid_limit_watts(sim::SimTime t) const;

 private:
  std::vector<EnergySource> sources_;
  std::vector<DemandResponseEvent> events_;
};

}  // namespace epajsrm::power
