#include "obs/series.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::obs {
namespace {

TEST(DownsamplingSeries, RejectsBadConstructionAndInput) {
  EXPECT_THROW(DownsamplingSeries(1), std::invalid_argument);
  EXPECT_THROW(DownsamplingSeries(8, 0), std::invalid_argument);
  DownsamplingSeries s(8);
  EXPECT_THROW(s.record(-1, 1.0), std::invalid_argument);
  s.record(5 * sim::kSecond, 1.0);
  // Time must be non-decreasing (the simulator clock is monotone).
  EXPECT_THROW(s.record(4 * sim::kSecond, 1.0), std::invalid_argument);
}

TEST(DownsamplingSeries, ExactUntilBudgetForcesCoarsening) {
  DownsamplingSeries s(8, sim::kSecond);
  for (int i = 0; i < 8; ++i) {
    s.record(i * sim::kSecond, static_cast<double>(i));
  }
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.coarsenings(), 0u);
  EXPECT_EQ(s.bucket_width(), sim::kSecond);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.bucket(i).count, 1u);
    EXPECT_DOUBLE_EQ(s.bucket(i).mean(), static_cast<double>(i));
  }
}

TEST(DownsamplingSeries, CountNeverExceedsBudget) {
  DownsamplingSeries s(16, sim::kSecond);
  for (int i = 0; i < 100000; ++i) {
    s.record(i * sim::kSecond, static_cast<double>(i % 777));
    ASSERT_LE(s.size(), 16u);
  }
  EXPECT_EQ(s.total_samples(), 100000u);
  EXPECT_GT(s.coarsenings(), 0u);
}

TEST(DownsamplingSeries, CoarseningPreservesCountSumMinMaxExactly) {
  DownsamplingSeries s(8, sim::kSecond);
  double sum = 0.0, lo = 1e300, hi = -1e300;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>((i * 37) % 211) - 50.0;
    s.record(i * sim::kSecond, v);
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::uint64_t bucket_count = 0;
  double bucket_sum = 0.0;
  double bucket_min = 1e300, bucket_max = -1e300;
  for (const SeriesBucket& b : s.buckets()) {
    bucket_count += b.count;
    bucket_sum += b.sum;
    bucket_min = std::min(bucket_min, b.min);
    bucket_max = std::max(bucket_max, b.max);
  }
  EXPECT_EQ(bucket_count, 1000u);
  EXPECT_NEAR(bucket_sum, sum, 1e-9);
  // min/max survive coarsening exactly — peaks are never averaged away.
  EXPECT_DOUBLE_EQ(bucket_min, lo);
  EXPECT_DOUBLE_EQ(bucket_max, hi);
  EXPECT_DOUBLE_EQ(s.overall_min(), lo);
  EXPECT_DOUBLE_EQ(s.overall_max(), hi);
}

TEST(DownsamplingSeries, LatestIsExactAfterCoarsening) {
  DownsamplingSeries s(4, sim::kSecond);
  for (int i = 0; i <= 500; ++i) {
    s.record(i * sim::kSecond, 3.0 * i);
  }
  ASSERT_TRUE(s.latest().has_value());
  EXPECT_EQ(s.latest()->time, 500 * sim::kSecond);
  EXPECT_DOUBLE_EQ(s.latest()->value, 1500.0);
}

TEST(DownsamplingSeries, DeterministicUnderReplay) {
  // Same input stream → identical bucket layout, bit for bit. The bucket
  // grid is anchored at absolute t=0 (index = t / width), so replays and
  // shards agree regardless of when the first sample landed.
  const auto run = [] {
    DownsamplingSeries s(16, sim::kSecond);
    for (int i = 0; i < 5000; ++i) {
      s.record(i * 700 * sim::kMillisecond,
               static_cast<double>((i * 13) % 97));
    }
    return s;
  };
  const DownsamplingSeries a = run();
  const DownsamplingSeries b = run();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.bucket_width(), b.bucket_width());
  EXPECT_EQ(a.coarsenings(), b.coarsenings());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.bucket(i).index, b.bucket(i).index);
    EXPECT_EQ(a.bucket(i).count, b.bucket(i).count);
    EXPECT_EQ(a.bucket(i).first_time, b.bucket(i).first_time);
    EXPECT_EQ(a.bucket(i).last_time, b.bucket(i).last_time);
    EXPECT_DOUBLE_EQ(a.bucket(i).min, b.bucket(i).min);
    EXPECT_DOUBLE_EQ(a.bucket(i).max, b.bucket(i).max);
    EXPECT_DOUBLE_EQ(a.bucket(i).sum, b.bucket(i).sum);
    EXPECT_DOUBLE_EQ(a.bucket(i).last, b.bucket(i).last);
  }
}

TEST(DownsamplingSeries, SamplesInTheSameBucketMerge) {
  DownsamplingSeries s(8, sim::kSecond);
  s.record(100, 10.0);  // all three land in bucket [0, 1s)
  s.record(200, 30.0);
  s.record(300, 20.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.bucket(0).count, 3u);
  EXPECT_DOUBLE_EQ(s.bucket(0).min, 10.0);
  EXPECT_DOUBLE_EQ(s.bucket(0).max, 30.0);
  EXPECT_DOUBLE_EQ(s.bucket(0).mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.bucket(0).last, 20.0);
  EXPECT_EQ(s.bucket(0).first_time, 100);
  EXPECT_EQ(s.bucket(0).last_time, 300);
}

TEST(DownsamplingSeries, WindowStatsAggregateTheRequestedRange) {
  DownsamplingSeries s(100, sim::kSecond);
  for (int i = 0; i < 60; ++i) {
    s.record(i * sim::kSecond, static_cast<double>(i));
  }
  const DownsamplingSeries::WindowStats w =
      s.window_stats(50 * sim::kSecond, 59 * sim::kSecond);
  EXPECT_EQ(w.count, 10u);
  EXPECT_DOUBLE_EQ(w.min, 50.0);
  EXPECT_DOUBLE_EQ(w.max, 59.0);
  EXPECT_DOUBLE_EQ(w.mean, 54.5);
  // Trailing window [49s, 59s] is inclusive at both ends: 11 samples.
  EXPECT_DOUBLE_EQ(s.trailing_mean(10 * sim::kSecond), 54.0);
}

TEST(DownsamplingSeries, EmptySeriesIsWellDefined) {
  DownsamplingSeries s(8);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.latest().has_value());
  EXPECT_DOUBLE_EQ(s.overall_min(), 0.0);
  EXPECT_DOUBLE_EQ(s.overall_max(), 0.0);
  EXPECT_EQ(s.window_stats(0, sim::kHour).count, 0u);
  EXPECT_DOUBLE_EQ(s.trailing_mean(sim::kMinute), 0.0);
  EXPECT_THROW(s.bucket(0), std::out_of_range);
}

TEST(DownsamplingSeries, ManualCoarsenToAlignsWidths) {
  DownsamplingSeries s(64, sim::kSecond);
  for (int i = 0; i < 32; ++i) {
    s.record(i * sim::kSecond, 1.0);
  }
  s.coarsen_to(4 * sim::kSecond);
  EXPECT_EQ(s.bucket_width(), 4 * sim::kSecond);
  EXPECT_EQ(s.size(), 8u);
  for (const SeriesBucket& b : s.buckets()) EXPECT_EQ(b.count, 4u);
}

}  // namespace
}  // namespace epajsrm::obs
