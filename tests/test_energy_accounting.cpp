#include "telemetry/energy_accounting.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

namespace epajsrm::telemetry {
namespace {

class AccountingTest : public ::testing::Test {
 protected:
  AccountingTest()
      : cluster_(platform::ClusterBuilder().node_count(4).build()),
        ledger_(cluster_),
        accountant_(cluster_, ledger_, [this](workload::JobId id) {
          const auto it = jobs_.find(id);
          return it == jobs_.end() ? nullptr : it->second.get();
        }) {}

  workload::Job& add_job(workload::JobId id) {
    workload::JobSpec spec;
    spec.id = id;
    jobs_.emplace(id, std::make_unique<workload::Job>(spec));
    return *jobs_[id];
  }

  /// Sets a node's draw the way the power model would: cache + ledger post.
  void set_watts(platform::NodeId id, double watts) {
    platform::Node& node = cluster_.node(id);
    node.set_current_watts(watts);
    power::PowerLedger::NodeSample sample;
    sample.watts = watts;
    sample.demand_watts = watts;
    sample.cap_watts = node.power_cap_watts();
    sample.state = node.state();
    sample.allocated = !node.allocations().empty();
    ledger_.post(id, sample);
  }

  platform::Cluster cluster_;
  power::PowerLedger ledger_;
  std::unordered_map<workload::JobId, std::unique_ptr<workload::Job>> jobs_;
  EnergyAccountant accountant_;
};

TEST_F(AccountingTest, IntegratesConstantPower) {
  for (platform::NodeId id = 0; id < cluster_.node_count(); ++id) {
    set_watts(id, 100.0);
  }
  accountant_.checkpoint(10 * sim::kSecond);
  EXPECT_NEAR(accountant_.total_it_joules(), 4 * 100.0 * 10.0, 1e-9);
}

TEST_F(AccountingTest, EmptyNodesAreOverhead) {
  for (platform::NodeId id = 0; id < cluster_.node_count(); ++id) {
    set_watts(id, 50.0);
  }
  accountant_.checkpoint(sim::kSecond);
  EXPECT_NEAR(accountant_.overhead_joules(), 200.0, 1e-9);
}

TEST_F(AccountingTest, AttributesByCoreShare) {
  workload::Job& job = add_job(1);
  platform::Node& node = cluster_.node(0);
  node.allocate(1, node.cores_total() / 2);  // half the node
  set_watts(0, 200.0);
  accountant_.checkpoint(10 * sim::kSecond);
  EXPECT_NEAR(job.energy_joules(), 200.0 * 10.0 / 2, 1e-9);
  // Other half of node 0 (1000 J) + 3 idle nodes (0 W) are overhead.
  EXPECT_NEAR(accountant_.overhead_joules(), 1000.0, 1e-9);
}

TEST_F(AccountingTest, MultipleJobsSplitNode) {
  workload::Job& a = add_job(1);
  workload::Job& b = add_job(2);
  platform::Node& node = cluster_.node(0);
  const std::uint32_t cores = node.cores_total();
  node.allocate(1, cores / 4);
  node.allocate(2, 3 * cores / 4);
  set_watts(0, 400.0);
  accountant_.checkpoint(sim::kSecond);
  EXPECT_NEAR(a.energy_joules(), 100.0, 1e-9);
  EXPECT_NEAR(b.energy_joules(), 300.0, 1e-9);
}

TEST_F(AccountingTest, PiecewiseConstantAcrossChanges) {
  set_watts(0, 100.0);
  accountant_.checkpoint(5 * sim::kSecond);
  set_watts(0, 300.0);
  accountant_.checkpoint(10 * sim::kSecond);
  EXPECT_NEAR(accountant_.node_joules(0), 100.0 * 5 + 300.0 * 5, 1e-9);
}

TEST_F(AccountingTest, BackwardCheckpointIsNoop) {
  set_watts(0, 100.0);
  accountant_.checkpoint(10 * sim::kSecond);
  const double before = accountant_.total_it_joules();
  accountant_.checkpoint(5 * sim::kSecond);  // ignored
  EXPECT_DOUBLE_EQ(accountant_.total_it_joules(), before);
}

TEST_F(AccountingTest, UntrackedJobFallsToOverhead) {
  platform::Node& node = cluster_.node(0);
  node.allocate(999, node.cores_total());  // job id with no Job record
  set_watts(0, 100.0);
  accountant_.checkpoint(sim::kSecond);
  EXPECT_NEAR(accountant_.overhead_joules(), 100.0, 1e-9);
}

TEST(EnergyReport, GradesAgainstReference) {
  workload::JobSpec spec;
  spec.id = 1;
  spec.user = "alice";
  spec.tag = "cfd";
  workload::Job job(spec);
  job.set_allocated_nodes({0, 1});
  job.set_cores_per_node_allocated(32);
  job.set_start_time(0);
  job.set_end_time(sim::kHour);
  // 2 nodes for 1 h at 250 W/node -> 0.5 kWh, 500 J/s.
  job.add_energy_joules(2 * 250.0 * 3600.0);

  const JobEnergyReport c = make_energy_report(job, 250.0);
  EXPECT_EQ(c.grade, 'C');
  EXPECT_NEAR(c.energy_kwh, 0.5, 1e-9);
  EXPECT_NEAR(c.average_watts, 500.0, 1e-9);
  EXPECT_NEAR(c.node_hours, 2.0, 1e-9);

  const JobEnergyReport a = make_energy_report(job, 600.0);
  EXPECT_EQ(a.grade, 'A');
  const JobEnergyReport e = make_energy_report(job, 150.0);
  EXPECT_EQ(e.grade, 'E');
}

TEST(EnergyReport, FormatsKeyFields) {
  workload::JobSpec spec;
  spec.id = 42;
  spec.user = "bob";
  spec.tag = "qcd";
  workload::Job job(spec);
  job.set_allocated_nodes({0});
  job.set_start_time(0);
  job.set_end_time(30 * sim::kMinute);
  job.add_energy_joules(3.6e5);

  const std::string text = format_energy_report(make_energy_report(job, 200.0));
  EXPECT_NE(text.find("Job 42"), std::string::npos);
  EXPECT_NE(text.find("bob"), std::string::npos);
  EXPECT_NE(text.find("qcd"), std::string::npos);
  EXPECT_NE(text.find("kWh"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm::telemetry
