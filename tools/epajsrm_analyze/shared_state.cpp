#include "epajsrm_analyze/shared_state.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "epajsrm_analyze/scopes.hpp"

namespace epajsrm::analyze {

namespace ts = epajsrm::toolsupport;

namespace {

const char* kDeclBlacklist[] = {
    "using",    "typedef",  "template", "friend",  "static_assert",
    "return",   "if",       "for",      "while",   "switch",
    "case",     "break",    "continue", "goto",    "else",
    "do",       "public",   "private",  "protected", "namespace",
    "struct",   "class",    "union",    "enum",    "extern",
    "operator", "delete",   "new",      "throw",   "co_return",
};

bool first_token_blacklisted(const std::string& head) {
  std::size_t i = ts::skip_ws(head, 0);
  std::string first = ts::ident_at(head, i);
  if (first == "static" || first == "inline" || first == "thread_local") {
    // Storage-class specifiers precede the part that decides.
    i = ts::skip_ws(head, i + first.size());
    first = ts::ident_at(head, i);
    if (first == "static" || first == "inline" || first == "thread_local") {
      i = ts::skip_ws(head, i + first.size());
      first = ts::ident_at(head, i);
    }
  }
  if (first.empty()) return true;  // starts with punctuation: not a decl
  for (const char* kw : kDeclBlacklist) {
    if (first == kw) return true;
  }
  return false;
}

// True for statement heads that declare a named variable. Function
// declarations/definitions carry parentheses and are excluded; so are
// expression fragments.
bool looks_like_variable_decl(const std::string& head) {
  if (head.empty()) return false;
  if (head.find('(') != std::string::npos) return false;
  if (first_token_blacklisted(head)) return false;
  // Require at least two identifier tokens (type + name).
  int idents = 0;
  for (std::size_t i = 0; i < head.size();) {
    const std::string id = ts::ident_at(head, i);
    if (!id.empty()) {
      ++idents;
      i += id.size();
    } else {
      ++i;
    }
  }
  return idents >= 2;
}

std::string declared_variable_name(const std::string& head) {
  std::size_t end = head.find('=');
  if (end == std::string::npos) end = head.size();
  while (end > 0 && (head[end - 1] == ' ' || head[end - 1] == '\t')) --end;
  // Skip a trailing array extent `[...]`.
  if (end > 0 && head[end - 1] == ']') {
    const std::size_t open = head.rfind('[', end - 1);
    if (open != std::string::npos) {
      end = open;
      while (end > 0 && (head[end - 1] == ' ' || head[end - 1] == '\t')) {
        --end;
      }
    }
  }
  const std::size_t b = ts::ident_start_before(head, end);
  return b < end ? head.substr(b, end - b) : "";
}

bool declares_const(const std::string& head) {
  return ts::contains_word(head, "const") ||
         ts::contains_word(head, "constexpr") ||
         ts::contains_word(head, "constinit");
}

bool starts_with_static(const std::string& head) {
  std::size_t i = ts::skip_ws(head, 0);
  std::string first = ts::ident_at(head, i);
  if (first == "inline") {
    i = ts::skip_ws(head, i + first.size());
    first = ts::ident_at(head, i);
  }
  return first == "static";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Minimal `"key": <int>` extraction — the baseline file is written by
// this tool, so the shape is fixed.
bool extract_int(const std::string& text, const std::string& key, int* out) {
  const std::size_t at = text.find("\"" + key + "\"");
  if (at == std::string::npos) return false;
  std::size_t i = text.find(':', at);
  if (i == std::string::npos) return false;
  ++i;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  int value = 0;
  bool any = false;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + (text[i] - '0');
    any = true;
    ++i;
  }
  if (!any) return false;
  *out = value;
  return true;
}

}  // namespace

int SharedStateInventory::mutable_count() const {
  return static_cast<int>(
      std::count_if(entries.begin(), entries.end(),
                    [](const SharedStateEntry& e) { return e.is_mutable; }));
}

int SharedStateInventory::flagged_count() const {
  return static_cast<int>(std::count_if(
      entries.begin(), entries.end(), [](const SharedStateEntry& e) {
        return e.is_mutable && !e.sanctioned && !e.suppressed;
      }));
}

SharedStateInventory audit_shared_state(
    const std::map<std::string, ts::SourceFile>& sources,
    const LayerConfig& config, Findings* findings) {
  SharedStateInventory inventory;
  for (const auto& [rel, sf] : sources) {
    const ScopeWalk walk = walk_scopes(sf);
    for (const ScopeWalk::Statement& st : walk.statements) {
      if (st.inside_initializer) continue;

      SharedStateEntry entry;
      if (st.at_namespace_scope) {
        if (!looks_like_variable_decl(st.head)) continue;
        entry.scope = "namespace";
      } else if (st.at_type_scope && st.function_ordinal < 0) {
        if (!starts_with_static(st.head) ||
            !looks_like_variable_decl(st.head)) {
          continue;
        }
        entry.scope = "static-member";
      } else if (st.function_ordinal >= 0) {
        if (!starts_with_static(st.head) ||
            !looks_like_variable_decl(st.head)) {
          continue;
        }
        entry.scope = "function-local";
      } else {
        continue;
      }

      entry.file = rel;
      entry.line = st.line;
      entry.name = declared_variable_name(st.head);
      if (entry.name.empty()) continue;
      entry.declaration = st.head;
      entry.is_mutable = !declares_const(st.head);
      entry.sanctioned = config.shared_state_sanctioned(rel);
      const std::string rule =
          entry.scope == "function-local" ? "local-static" : "mutable-global";
      const std::size_t raw_index = static_cast<std::size_t>(st.line - 1);
      entry.suppressed = raw_index < sf.raw.size() &&
                         ts::has_allow_marker(sf.raw[raw_index], rule);
      inventory.entries.push_back(entry);

      if (entry.is_mutable && !entry.sanctioned && !entry.suppressed) {
        findings->push_back(Finding{
            rel, st.line, rule,
            (entry.scope == "function-local"
                 ? "mutable function-local static `"
                 : "mutable " + entry.scope + "-scope variable `") +
                entry.name +
                "` is partition-unsafe shared state; confine it to a "
                "per-partition object, make it const, or sanction it "
                "explicitly (lint:allow(" + rule + ") with justification)"});
      }
    }
  }
  std::sort(inventory.entries.begin(), inventory.entries.end(),
            [](const SharedStateEntry& a, const SharedStateEntry& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.name < b.name;
            });
  return inventory;
}

std::string shared_state_json(const SharedStateInventory& inventory,
                              const std::string& root_label) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"epajsrm_analyze\",\n";
  out << "  \"root\": \"" << json_escape(root_label) << "\",\n";
  out << "  \"total\": " << inventory.total() << ",\n";
  out << "  \"mutable\": " << inventory.mutable_count() << ",\n";
  out << "  \"flagged\": " << inventory.flagged_count() << ",\n";
  out << "  \"entries\": [\n";
  for (std::size_t i = 0; i < inventory.entries.size(); ++i) {
    const SharedStateEntry& e = inventory.entries[i];
    out << "    {\"file\": \"" << json_escape(e.file) << "\", \"line\": "
        << e.line << ", \"name\": \"" << json_escape(e.name)
        << "\", \"scope\": \"" << e.scope << "\", \"mutable\": "
        << (e.is_mutable ? "true" : "false") << ", \"sanctioned\": "
        << (e.sanctioned ? "true" : "false") << ", \"suppressed\": "
        << (e.suppressed ? "true" : "false") << ", \"declaration\": \""
        << json_escape(e.declaration) << "\"}"
        << (i + 1 < inventory.entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

bool check_shared_state_baseline(const SharedStateInventory& inventory,
                                 const std::string& baseline_path,
                                 std::string* message) {
  std::ifstream in(baseline_path);
  if (!in) {
    *message = "cannot read shared-state baseline: " + baseline_path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  int want_total = 0;
  int want_mutable = 0;
  if (!extract_int(text, "total", &want_total) ||
      !extract_int(text, "mutable", &want_mutable)) {
    *message = "malformed shared-state baseline (need \"total\" and "
               "\"mutable\" integer fields): " + baseline_path;
    return false;
  }
  if (inventory.total() == want_total &&
      inventory.mutable_count() == want_mutable) {
    return true;
  }
  std::ostringstream msg;
  msg << "shared-state inventory drifted from baseline: total "
      << inventory.total() << " (baseline " << want_total << "), mutable "
      << inventory.mutable_count() << " (baseline " << want_mutable
      << "). New mutable globals/statics need review: either remove the "
         "shared state, sanction it, or refresh " << baseline_path
      << " with the new counts in the same change that justifies them.";
  *message = msg.str();
  return false;
}

}  // namespace epajsrm::analyze
