#include "core/facility_coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"

namespace epajsrm::core {

void FacilityCoordinator::add_member(EpaJsrmSolution& solution,
                                     double min_budget_watts, double weight) {
  if (started_) throw std::logic_error("coordinator already started");
  if (weight <= 0.0) throw std::invalid_argument("weight must be positive");
  auto policy =
      std::make_unique<epa::PowerBudgetDvfsPolicy>(min_budget_watts);
  Member member;
  member.solution = &solution;
  member.budget_policy = policy.get();
  member.min_budget = min_budget_watts;
  member.weight = weight;
  member.current_budget = min_budget_watts;
  solution.add_policy(std::move(policy));
  members_.push_back(member);
}

double FacilityCoordinator::member_demand(EpaJsrmSolution& solution) const {
  // Demand is what the machine *wants* to draw, not what its current cap
  // lets it draw — otherwise a hard-capped busy machine reads as idle and
  // starves permanently (positive feedback).
  // The ledger's demand aggregate is exactly that: uncapped draw at the
  // selected P-state for cap-governed nodes, actual fixed draw otherwise.
  double demand = solution.ledger().total_demand_watts();
  std::size_t counted = 0;
  for (const workload::Job* job : solution.pending()) {
    if (counted++ >= config_.queue_depth) break;
    const double node_watts = solution.predict_node_watts(job->spec());
    demand += config_.queue_pressure_weight * node_watts *
              job->spec().nodes;
  }
  return demand;
}

void FacilityCoordinator::rebalance() {
  if (members_.empty()) return;
  double floor_total = 0.0;
  double weighted_surplus_demand = 0.0;
  for (Member& member : members_) {
    member.last_demand = member_demand(*member.solution);
    floor_total += member.min_budget;
    weighted_surplus_demand +=
        member.weight *
        std::max(0.0, member.last_demand - member.min_budget);
  }

  const double surplus =
      std::max(0.0, config_.total_budget_watts - floor_total);
  for (Member& member : members_) {
    double share = 0.0;
    if (weighted_surplus_demand > 0.0) {
      share = surplus * member.weight *
              std::max(0.0, member.last_demand - member.min_budget) /
              weighted_surplus_demand;
    } else {
      share = surplus / static_cast<double>(members_.size());
    }
    member.current_budget = member.min_budget + share;
    EPAJSRM_ENSURE(member.current_budget >= 0.0,
                   "member budget must stay non-negative");
    EPAJSRM_ENSURE(member.current_budget >= member.min_budget,
                   "member budget must respect the guaranteed floor");
    member.budget_policy->set_budget_watts(member.current_budget);
    if (config_.hard_enforce) {
      member.solution->set_system_cap(member.current_budget);
    }
    member.solution->metrics_collector().set_budget_watts(
        member.current_budget);
  }
  ++rebalances_;
}

void FacilityCoordinator::start() {
  if (started_) return;
  started_ = true;
  rebalance();
  sim_->schedule_every(
      config_.period,
      [this]() -> bool {
        rebalance();
        return true;
      },
      "core.facility");
}

double FacilityCoordinator::budget_of(std::size_t i) const {
  EPAJSRM_REQUIRE(i < members_.size(), "member index out of range");
  return members_[i].current_budget;
}

double FacilityCoordinator::demand_of(std::size_t i) const {
  EPAJSRM_REQUIRE(i < members_.size(), "member index out of range");
  return members_[i].last_demand;
}

}  // namespace epajsrm::core
