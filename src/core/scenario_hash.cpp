#include "core/scenario_hash.hpp"

#include <stdexcept>
#include <type_traits>

#include "net/jsonl.hpp"

namespace epajsrm::core {

namespace {

/// Appends `key=value` lines; one writer per serialization so the order is
/// exactly the call order below.
class CanonicalWriter {
 public:
  void field(const char* key, const std::string& value) {
    out_ += key;
    out_ += '=';
    out_ += value;
    out_ += '\n';
  }
  void field(const char* key, const char* value) {
    field(key, std::string(value));
  }
  void field(const char* key, double value) {
    field(key, net::format_double(value));
  }
  void field(const char* key, bool value) {
    field(key, value ? "1" : "0");
  }
  // One template covers every integer width (SimTime, size_t, uint32_t...)
  // without the duplicate-overload trap of platform-dependent typedefs.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void field(const char* key, T value) {
    field(key, std::to_string(value));
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

const char* mix_name(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kStandard:
      return "standard";
    case WorkloadMix::kCapability:
      return "capability";
    case WorkloadMix::kCapacity:
      return "capacity";
  }
  return "?";
}

const char* cap_mode_name(power::CapMode mode) {
  switch (mode) {
    case power::CapMode::kContinuous:
      return "continuous";
    case power::CapMode::kDiscrete:
      return "discrete";
  }
  return "?";
}

void write_node(CanonicalWriter& w, const platform::NodeConfig& node) {
  w.field("node.cores", node.cores);
  w.field("node.memory_gib", node.memory_gib);
  w.field("node.idle_watts", node.idle_watts);
  w.field("node.dynamic_watts", node.dynamic_watts);
  w.field("node.sleep_watts", node.sleep_watts);
  w.field("node.off_watts", node.off_watts);
  w.field("node.boot_watts", node.boot_watts);
  w.field("node.boot_time", node.boot_time);
  w.field("node.shutdown_time", node.shutdown_time);
  w.field("node.sleep_time", node.sleep_time);
  w.field("node.wake_time", node.wake_time);
  w.field("node.variability", node.variability);
  w.field("node.thermal_resistance", node.thermal_resistance);
  w.field("node.thermal_capacitance", node.thermal_capacitance);
}

void write_facility(CanonicalWriter& w,
                    const platform::Facility::Config& facility,
                    const platform::AmbientModel& ambient) {
  w.field("facility.site_power_capacity_watts",
          facility.site_power_capacity_watts);
  w.field("facility.cooling_capacity_watts", facility.cooling_capacity_watts);
  w.field("facility.base_pue", facility.base_pue);
  w.field("facility.pue_slope_per_c", facility.pue_slope_per_c);
  w.field("facility.free_cooling_threshold_c",
          facility.free_cooling_threshold_c);
  w.field("ambient.mean_c", ambient.mean_c());
  w.field("ambient.daily_swing_c", ambient.daily_swing_c());
  w.field("ambient.peak_hour", ambient.peak_hour());
}

void write_solution(CanonicalWriter& w, const SolutionConfig& solution) {
  w.field("solution.control_period", solution.control_period);
  w.field("solution.reschedule_period", solution.reschedule_period);
  w.field("solution.enforce_walltime", solution.enforce_walltime);
  w.field("solution.power_alpha", solution.power_alpha);
  w.field("solution.cap_mode", cap_mode_name(solution.cap_mode));
  w.field("solution.fairshare_weight", solution.fairshare_weight);
  w.field("solution.enable_thermal", solution.enable_thermal);
  w.field("solution.record_decision_log", solution.record_decision_log);

  w.field("tariff.set", solution.tariff.has_value());
  if (solution.tariff.has_value()) {
    const power::Tariff& tariff = *solution.tariff;
    w.field("tariff.bands", tariff.bands().size());
    for (std::size_t i = 0; i < tariff.bands().size(); ++i) {
      const power::Tariff::Band& band = tariff.bands()[i];
      const std::string prefix = "tariff.band" + std::to_string(i);
      w.field((prefix + ".begin_hour").c_str(), band.begin_hour);
      w.field((prefix + ".end_hour").c_str(), band.end_hour);
      w.field((prefix + ".price_per_kwh").c_str(), band.price_per_kwh);
    }
    w.field("tariff.demand_charge_per_kw", tariff.demand_charge_per_kw);
  }

  const obs::ObsConfig& obs = solution.obs;
  w.field("obs.enabled", obs.enabled);
  w.field("obs.trace_capacity", obs.trace_capacity);
  w.field("obs.profile_event_loop", obs.profile_event_loop);
  w.field("obs.trace_log_lines", obs.trace_log_lines);
  w.field("obs.wall_instruments", obs.wall_instruments);
  w.field("obs.profile_sample_stride", obs.profile_sample_stride);
  w.field("obs.sampler_budget", obs.sampler_budget);

  const ResilienceConfig& res = solution.resilience;
  w.field("resilience.requeue_on_crash", res.requeue_on_crash);
  w.field("resilience.checkpoint_interval", res.checkpoint_interval);
  w.field("resilience.restart_overhead", res.restart_overhead);
  w.field("resilience.flap_threshold", res.flap_threshold);
  w.field("resilience.flap_window", res.flap_window);
  w.field("resilience.quarantine_duration", res.quarantine_duration);
  w.field("resilience.telemetry_safety_margin", res.telemetry_safety_margin);
}

void write_energy_budget(CanonicalWriter& w,
                         const std::optional<epa::EnergyBudgetConfig>& eb) {
  w.field("energy_budget.set", eb.has_value());
  if (!eb.has_value()) return;
  w.field("energy_budget.mode", epa::to_string(eb->mode));
  w.field("energy_budget.window_budget_joules", eb->window_budget_joules);
  w.field("energy_budget.window", eb->window);
  w.field("energy_budget.accrual_rate_watts", eb->accrual_rate_watts);
  w.field("energy_budget.initial_fraction", eb->initial_fraction);
  w.field("energy_budget.emergency_timeout", eb->emergency_timeout);
  w.field("energy_budget.power_cap_watts", eb->power_cap_watts);
  w.field("energy_budget.cap_floor_fraction", eb->cap_floor_fraction);
  w.field("energy_budget.charge_idle_power", eb->charge_idle_power);
}

}  // namespace

std::string canonical_serialize(const ScenarioConfig& config) {
  if (config.external_transport) {
    throw std::invalid_argument(
        "canonical_serialize: config holds an external_transport; live "
        "handles have no canonical value form and cannot key a cache");
  }
  CanonicalWriter w;
  // Version tag: bump when the canonical form changes so stale persisted
  // hashes can never alias a new field layout.
  w.field("epajsrm.scenario", "v1");
  w.field("label", config.label);
  w.field("nodes", config.nodes);
  write_node(w, config.node_config);
  w.field("variability_sigma", config.variability_sigma);
  write_facility(w, config.facility, config.ambient);
  w.field("pstate_steps", config.pstate_steps);
  w.field("top_ghz", config.top_ghz);
  w.field("bottom_ghz", config.bottom_ghz);
  w.field("nodes_per_rack", config.nodes_per_rack);
  w.field("racks_per_pdu", config.racks_per_pdu);
  w.field("racks_per_cooling_loop", config.racks_per_cooling_loop);
  w.field("mix", mix_name(config.mix));
  w.field("job_count", config.job_count);
  w.field("target_utilization", config.target_utilization);
  w.field("arrival_rate_per_hour", config.arrival_rate_per_hour);
  w.field("seed", config.seed);
  write_solution(w, config.solution);
  write_energy_budget(w, config.energy_budget);
  w.field("horizon", config.horizon);
  return w.take();
}

std::uint64_t scenario_fingerprint(const ScenarioConfig& config) {
  const std::string canonical = canonical_serialize(config);
  // FNV-1a 64-bit: stable across platforms, no dependence on size_t width.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string scenario_hash(const ScenarioConfig& config) {
  std::uint64_t h = scenario_fingerprint(config);
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = "0123456789abcdef"[h & 0xf];
    h >>= 4;
  }
  return hex;
}

}  // namespace epajsrm::core
