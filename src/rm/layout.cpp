#include "rm/layout.hpp"

#include <set>

namespace epajsrm::rm {

std::vector<platform::NodeId> LayoutService::blocked_nodes() const {
  std::vector<platform::NodeId> out;
  for (const platform::Node& node : cluster_->nodes()) {
    if (!plant_ok(node)) out.push_back(node.id());
  }
  return out;
}

std::uint32_t LayoutService::draining_job_count() const {
  std::set<platform::JobId> jobs;
  for (const platform::Node& node : cluster_->nodes()) {
    if (plant_ok(node)) continue;
    for (const auto& [job, alloc] : node.allocations()) jobs.insert(job);
  }
  return static_cast<std::uint32_t>(jobs.size());
}

}  // namespace epajsrm::rm
