file(REMOVE_RECURSE
  "libepajsrm_epa.a"
)
