file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_survey.dir/activities.cpp.o"
  "CMakeFiles/epajsrm_survey.dir/activities.cpp.o.d"
  "CMakeFiles/epajsrm_survey.dir/centers.cpp.o"
  "CMakeFiles/epajsrm_survey.dir/centers.cpp.o.d"
  "CMakeFiles/epajsrm_survey.dir/questionnaire.cpp.o"
  "CMakeFiles/epajsrm_survey.dir/questionnaire.cpp.o.d"
  "CMakeFiles/epajsrm_survey.dir/report.cpp.o"
  "CMakeFiles/epajsrm_survey.dir/report.cpp.o.d"
  "libepajsrm_survey.a"
  "libepajsrm_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
