#include "epa/dynamic_power_share.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/observability.hpp"
#include "obs/wall.hpp"

namespace epajsrm::epa {

void DynamicPowerSharePolicy::set_budget_watts(double watts) {
  auto* mutable_source = dynamic_cast<MutableBudgetSource*>(&budget_.source());
  if (mutable_source == nullptr) {
    throw std::logic_error(
        "dynamic-power-share: budget is source-driven; mutate the "
        "BudgetSource instead of calling the deprecated setter");
  }
  mutable_source->set_watts(watts);
  if (host_ != nullptr) host_->notify_power_budget_changed(watts);
}

void DynamicPowerSharePolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr) return;
  const double budget_watts = budget_.refresh(now, host_);
  if (budget_watts <= 0.0) return;
  obs::Observability* o = host_->observability();
  // Rebalance latency is wall-clock-derived: only measured when wall
  // instruments are on, so metric frames stay shard-merge deterministic.
  const bool timed = o != nullptr && o->config().wall_instruments;
  const std::int64_t t0 = timed ? obs::wall_now_ns() : 0;
  obs::ScopedSpan span = obs::span_of(o, "epa", "power_rebalance");
  platform::Cluster& cluster = host_->cluster();
  const power::PowerLedger& ledger = host_->ledger();

  // Demand = what each powered-on node would draw uncapped at its selected
  // P-state and current load; off/sleeping nodes keep their fixed draws and
  // consume part of the budget off the top. The ledger maintains both
  // incrementally (fixed = non-governed draw; per-node uncapped demand is
  // posted by the power model on every change), so no cluster sweep.
  const double fixed = ledger.fixed_power_watts();
  const double total_demand = ledger.total_demand_watts() - fixed;

  const double distributable = std::max(0.0, budget_watts - fixed);
  for (platform::NodeId id = 0; id < cluster.node_count(); ++id) {
    // Setting caps inside the loop is safe: caps never change a node's
    // uncapped demand, so the shares stay fixed while we distribute.
    if (!ledger.node_cap_governed(id)) continue;
    const double demand = ledger.node_demand_watts(id);
    if (demand <= 0.0) continue;
    const double floor =
        cluster.node(id).config().idle_watts * (1.0 + floor_margin_);
    double cap = total_demand > 0.0 ? distributable * demand / total_demand
                                    : floor;
    cap = std::max(cap, floor);
    // Give idle nodes only their floor; the freed watts implicitly flow to
    // busy nodes on the next tick (their demand share grows).
    host_->set_node_cap(id, cap);
  }
  ++redistributions_;
  if (span.active()) {
    span.attr("budget_watts", budget_watts);
    span.attr("fixed_watts", fixed);
    span.attr("total_demand_watts", total_demand);
    host_->observability()->metrics().counter("epa.rebalances").add(1);
  }
  if (timed) {
    o->metrics().histogram("epa.rebalance_us")
        .observe(static_cast<double>(obs::wall_now_ns() - t0) / 1000.0);
  }
}

}  // namespace epajsrm::epa
