#include "metrics/collector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace epajsrm::metrics {
namespace {

workload::Job finished_job(workload::JobId id, sim::SimTime submit,
                           sim::SimTime start, sim::SimTime end,
                           workload::JobState state,
                           std::uint32_t nodes = 2) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.submit_time = submit;
  workload::Job job(spec);
  std::vector<platform::NodeId> ids;
  for (std::uint32_t i = 0; i < nodes; ++i) ids.push_back(i);
  job.set_allocated_nodes(ids);
  job.set_cores_per_node_allocated(32);
  job.set_start_time(start);
  job.set_end_time(end);
  job.set_state(state);
  return job;
}

TEST(Collector, CountsOutcomes) {
  MetricsCollector c;
  workload::JobSpec spec;
  c.on_job_submitted(spec);
  c.on_job_submitted(spec);
  c.on_job_submitted(spec);
  const auto done = finished_job(1, 0, sim::kMinute, sim::kHour,
                                 workload::JobState::kCompleted);
  const auto dead = finished_job(2, 0, sim::kMinute, sim::kHour,
                                 workload::JobState::kKilled);
  c.on_job_finished(done);
  c.on_job_finished(dead);
  const RunReport r = c.finalize(2 * sim::kHour);
  EXPECT_EQ(r.jobs_submitted, 3u);
  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_EQ(r.jobs_killed, 1u);
}

TEST(Collector, WaitAndSlowdownFromCompletedJobs) {
  MetricsCollector c;
  // Wait 30 min, run 60 min -> slowdown (30+60)/60 = 1.5.
  const auto job = finished_job(1, 0, 30 * sim::kMinute, 90 * sim::kMinute,
                                workload::JobState::kCompleted);
  c.on_job_finished(job);
  const RunReport r = c.finalize(2 * sim::kHour);
  EXPECT_NEAR(r.wait_minutes.median, 30.0, 1e-9);
  EXPECT_NEAR(r.bounded_slowdown.median, 1.5, 1e-9);
  EXPECT_NEAR(r.job_runtime_minutes.median, 60.0, 1e-9);
}

TEST(Collector, BoundedSlowdownUsesTenMinuteFloor) {
  MetricsCollector c;
  // 1-minute job waits 10 minutes: slowdown bounded by the 10-min tau.
  const auto job = finished_job(1, 0, 10 * sim::kMinute, 11 * sim::kMinute,
                                workload::JobState::kCompleted);
  c.on_job_finished(job);
  const RunReport r = c.finalize(sim::kHour);
  EXPECT_NEAR(r.bounded_slowdown.median, 1.1, 1e-9);
}

TEST(Collector, PowerIntegrationPiecewise) {
  MetricsCollector c;
  c.on_power_sample(0, 1000.0, 1500.0, 0.5);
  c.on_power_sample(sim::kHour, 2000.0, 3000.0, 0.7);
  const RunReport r = c.finalize(2 * sim::kHour);
  // 1 kW for 1 h + 2 kW for 1 h = 3 kWh IT.
  EXPECT_NEAR(r.total_it_kwh, 3.0, 1e-9);
  EXPECT_NEAR(r.total_facility_kwh, 4.5, 1e-9);
  EXPECT_NEAR(r.mean_it_watts, 1500.0, 1e-9);
  EXPECT_NEAR(r.max_it_watts, 2000.0, 1e-9);
}

TEST(Collector, ViolationsAgainstBudget) {
  MetricsCollector c(1500.0);
  c.on_power_sample(0, 1000.0, 1200.0, 0.5);             // under
  c.on_power_sample(sim::kHour, 2000.0, 2400.0, 0.9);    // over by 500
  c.on_power_sample(2 * sim::kHour, 1400.0, 1700.0, 0.6);  // under
  const RunReport r = c.finalize(3 * sim::kHour);
  EXPECT_EQ(r.violation_samples, 1u);
  EXPECT_NEAR(r.violation_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.worst_violation_watts, 500.0, 1e-9);
  // 500 W over for 1 h = 0.5 kWh above the line.
  EXPECT_NEAR(r.violation_kwh, 0.5, 1e-9);
}

TEST(Collector, NoBudgetNoViolations) {
  MetricsCollector c(0.0);
  c.on_power_sample(0, 99999.0, 99999.0, 1.0);
  c.on_power_sample(sim::kHour, 99999.0, 99999.0, 1.0);
  const RunReport r = c.finalize(sim::kHour);
  EXPECT_EQ(r.violation_samples, 0u);
  EXPECT_DOUBLE_EQ(r.violation_kwh, 0.0);
}

TEST(Collector, CostUsesTariff) {
  const power::Tariff tariff = power::Tariff::flat(0.20);
  MetricsCollector c(0.0, &tariff);
  c.on_power_sample(0, 1000.0, 2000.0, 0.5);
  c.on_power_sample(sim::kHour, 1000.0, 2000.0, 0.5);
  const RunReport r = c.finalize(sim::kHour);
  // 2 kW facility for 1 h at 0.20 = 0.40.
  EXPECT_NEAR(r.electricity_cost, 0.40, 1e-9);
}

TEST(Collector, ThroughputPerDay) {
  MetricsCollector c;
  c.on_power_sample(0, 0.0, 0.0, 0.0);
  for (int i = 1; i <= 12; ++i) {
    c.on_job_finished(finished_job(static_cast<workload::JobId>(i), 0, 0,
                                   sim::kHour,
                                   workload::JobState::kCompleted));
  }
  const RunReport r = c.finalize(12 * sim::kHour);
  EXPECT_NEAR(r.throughput_jobs_per_day, 24.0, 1e-9);
}

TEST(Collector, ZeroSpanThroughputIsZeroNotNan) {
  MetricsCollector c;
  // Finalizing at the first-sample instant: the observed span is zero, so
  // throughput must be reported as 0 rather than dividing by zero.
  c.on_power_sample(sim::kHour, 100.0, 150.0, 0.5);
  c.on_job_finished(finished_job(1, 0, 0, sim::kHour,
                                 workload::JobState::kCompleted));
  const RunReport r = c.finalize(sim::kHour);
  EXPECT_DOUBLE_EQ(r.throughput_jobs_per_day, 0.0);
  EXPECT_FALSE(std::isnan(r.throughput_jobs_per_day));
}

TEST(Collector, AttachedRegistryReceivesSeries) {
  obs::MetricsRegistry registry;
  MetricsCollector c(1000.0);
  c.attach_registry(&registry);
  workload::JobSpec spec;
  c.on_job_submitted(spec);
  c.on_power_sample(0, 1200.0, 1500.0, 0.5);  // over budget
  c.on_job_finished(finished_job(1, 0, sim::kMinute, sim::kHour,
                                 workload::JobState::kCompleted));

  EXPECT_EQ(registry.counter("jobs.submitted").value(), 1u);
  EXPECT_EQ(registry.counter("jobs.completed").value(), 1u);
  EXPECT_EQ(registry.counter("power.violation_samples").value(), 1u);
  EXPECT_EQ(registry.histogram("sched.wait_minutes").count(), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("power.it_watts").value(), 1200.0);
  // The registry counter is the single source of truth once attached.
  EXPECT_EQ(c.violation_samples(), 1u);
  const RunReport r = c.finalize(sim::kHour);
  EXPECT_EQ(r.violation_samples, 1u);
}

TEST(Collector, CancelledJobsOnlyCountSubmitted) {
  MetricsCollector c;
  auto job = finished_job(1, 0, -1, -1, workload::JobState::kCancelled);
  c.on_job_finished(job);
  const RunReport r = c.finalize(sim::kHour);
  EXPECT_EQ(r.jobs_completed, 0u);
  EXPECT_EQ(r.jobs_killed, 0u);
}

TEST(Collector, FormatReportContainsLabel) {
  MetricsCollector c;
  c.set_label("my-run");
  const RunReport r = c.finalize(sim::kHour);
  EXPECT_NE(format_report(r).find("my-run"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm::metrics
