// CAPMC-style out-of-band power control plane (Cray Advanced Platform
// Monitoring and Control), the production capping mechanism at KAUST and
// LANL+Sandia (Tables I/II). Provides administrator-facing system-wide and
// node-level caps, translated into per-node cap values that the
// NodePowerModel honours.
//
// The control channel is lossy in production; when a fault::ControlTransport
// is attached every public call runs as one logical RPC under a
// fault::RetryPolicy — timeout, bounded exponential backoff with
// deterministic jitter, and a circuit breaker after N consecutive call
// failures. A failed call applies nothing and returns false; degraded()
// surfaces the channel state so policies can react instead of silently
// assuming their caps landed.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/control_transport.hpp"
#include "fault/retry.hpp"
#include "platform/cluster.hpp"
#include "power/node_power_model.hpp"

namespace epajsrm::obs {
class Observability;
class Counter;
class Histogram;
}

namespace epajsrm::power {

/// Out-of-band capping controller over a cluster.
class CapmcController {
 public:
  CapmcController(platform::Cluster& cluster, const NodePowerModel& model)
      : cluster_(&cluster), model_(&model) {}

  /// Attaches (or with null, detaches) the observability plane. Every
  /// public control entry point then records one `power.capmc_calls`
  /// increment, its wall latency into `power.capmc_call_us`, and a trace
  /// instant — modelling the out-of-band control path's cost.
  void set_observability(obs::Observability* o);

  /// Attaches a control transport; calls then run through the retry
  /// machinery. Null restores the ideal (always-succeeding) channel.
  void set_transport(std::shared_ptr<fault::ControlTransport> transport) {
    transport_ = std::move(transport);
  }

  void set_retry_policy(const fault::RetryPolicy& policy) {
    retry_ = policy;
  }
  const fault::RetryPolicy& retry_policy() const { return retry_; }

  /// Sets (or clears, with watts == 0) a node-level cap. Returns false
  /// when the control RPC failed (no cap was applied).
  bool set_node_cap(platform::NodeId node, double watts);

  /// Sets the same cap on a set of nodes — JCAHPC's "power caps for groups
  /// of nodes via the resource manager".
  bool set_group_cap(std::span<const platform::NodeId> nodes, double watts);

  /// Distributes a system-wide IT cap evenly across all nodes
  /// (administrator "system-wide power cap" in the LANL+Sandia row).
  /// Caps below a node's idle floor are clamped to the floor so the cap is
  /// always individually feasible; the residual error is reported by
  /// system_cap_error().
  bool set_system_cap(double total_watts);

  /// Clears every node cap.
  bool clear_all_caps();

  /// Sum of active node caps (0-capped nodes contribute their model peak),
  /// i.e. the guaranteed worst-case system draw.
  double worst_case_watts() const;

  /// Number of nodes with an active cap.
  std::uint32_t capped_node_count() const;

  /// Difference between the last requested system cap and what the evenly
  /// divided per-node caps actually guarantee (> 0 when idle floors forced
  /// clamping).
  double system_cap_error() const { return system_cap_error_; }

  // --- channel health -------------------------------------------------------

  /// True while the channel is unhealthy: the breaker is open, or the most
  /// recent call failed. Always false on the ideal channel.
  bool degraded() const {
    return breaker_open_ || !last_call_ok_;
  }
  bool last_call_ok() const { return last_call_ok_; }
  bool breaker_open() const { return breaker_open_; }

  std::uint64_t retries() const { return retries_; }
  std::uint64_t failed_calls() const { return failed_calls_; }
  std::uint64_t breaker_opens() const { return breaker_opens_; }
  std::uint64_t breaker_fast_fails() const { return breaker_fast_fails_; }
  /// Modelled RPC latency accumulated over all attempts (µs of simulated
  /// control-plane time; not added to the event clock — control RPCs are
  /// fast relative to the control period).
  double total_rpc_latency_us() const { return total_rpc_latency_us_; }

 private:
  void apply_node_cap(platform::NodeId node, double watts);
  /// Runs the retry loop for one logical call; true = the channel
  /// delivered it (or no transport is attached).
  bool rpc(const char* op);
  /// Records one control call (counter + latency + trace instant).
  void record_call(const char* name, std::int64_t t0_ns,
                   std::int64_t node_id, double watts, double node_count);

  platform::Cluster* cluster_;
  const NodePowerModel* model_;
  double system_cap_error_ = 0.0;

  std::shared_ptr<fault::ControlTransport> transport_;
  fault::RetryPolicy retry_;
  bool last_call_ok_ = true;
  bool breaker_open_ = false;
  sim::SimTime breaker_until_ = 0;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failed_calls_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_fast_fails_ = 0;
  std::uint64_t jitter_stream_ = 0;
  double total_rpc_latency_us_ = 0.0;

  obs::Observability* obs_ = nullptr;
  obs::Counter* calls_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  obs::Histogram* attempts_hist_ = nullptr;
};

}  // namespace epajsrm::power
