// Experiment T1 — reproduction of Table I ("Part 1 of the summary of the
// answers from each center"): RIKEN, Tokyo Tech, CEA, KAUST, LRZ.
//
// Output 1 is the qualitative activity matrix (the table's literal
// content, from the survey data model). Output 2 backs each center's
// production techniques with simulation: the same workload run with and
// without the production EPA JSRM stack on the center's scaled replica.
#include <cstdio>

#include "center_bench.hpp"
#include "sim/thread_pool.hpp"

int main() {
  using namespace epajsrm;
  const std::vector<std::string> centers = {"RIKEN", "TokyoTech", "CEA",
                                            "KAUST", "LRZ"};

  std::printf("%s\n",
              bench::activity_matrix(
                  centers,
                  "TABLE I (reproduced): summary of the answers, part 1")
                  .c_str());

  bench::BenchSummary summary("bench_table1");
  std::vector<bench::CenterRow> rows(centers.size());
  sim::ThreadPool::parallel_for(centers.size(), [&](std::size_t i) {
    rows[i] = bench::run_center(centers[i]);
  });
  for (const bench::CenterRow& row : rows) {
    summary.add_run(row.baseline);
    summary.add_run(row.epa);
  }

  std::printf("%s\n",
              bench::quantitative_table(
                  rows,
                  "TABLE I (simulation): production EPA techniques vs. "
                  "baseline on each center's scaled replica")
                  .c_str());
  return 0;
}
