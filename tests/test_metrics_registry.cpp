#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/profiler.hpp"
#include "sim/time.hpp"

namespace epajsrm::obs {
namespace {

TEST(MetricsRegistry, CounterIsStableAndMonotonic) {
  MetricsRegistry reg;
  Counter& c = reg.counter("sched.jobs_started");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("sched.jobs_started"), &c);
  EXPECT_EQ(reg.metric_count(), 1u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("sim.queue_depth");
  g.set(10.0);
  g.set(3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
}

// --- histogram ---------------------------------------------------------------

TEST(Histogram, CountsSumMinMaxAreExact) {
  Histogram h;
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  EXPECT_DOUBLE_EQ(h.mean(), 34.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, BucketGeometryCoversValuesTightly) {
  // Every observable positive value must land in a bucket whose bounds
  // contain it, with relative width <= 1/kSubBuckets.
  for (const double v : {1e-5, 0.37, 1.0, 4.0, 6.0, 1000.0, 3.7e9}) {
    const std::size_t i = Histogram::bucket_index(v);
    const double lo = Histogram::bucket_lower_bound(i);
    const double hi = Histogram::bucket_upper_bound(i);
    EXPECT_LE(lo, v) << v;
    EXPECT_GT(hi, v) << v;
    EXPECT_LE((hi - lo) / lo,
              1.0 / static_cast<double>(Histogram::kSubBuckets) + 1e-12)
        << v;
  }
}

TEST(Histogram, NonPositiveAndNanLandInUnderflowInfinityInOverflow) {
  Histogram h;
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_counts().front(), 3u);  // 0, -5, NaN
  EXPECT_EQ(h.bucket_counts().back(), 1u);   // +inf
  // NaN never pollutes min/max; the finite observations define them.
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_TRUE(std::isinf(h.max()));
}

TEST(Histogram, QuantileBoundsBracketTheTrueQuantile) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  for (const double q : {0.5, 0.9, 0.99}) {
    const QuantileBounds b = h.quantile_bounds(q);
    const double truth = q * 1000.0;  // uniform 1..1000
    EXPECT_LE(b.lower, truth + 1.0) << q;
    EXPECT_GE(b.upper, truth - 1.0) << q;
    // Exact-bound guarantee: bracket width <= one bucket's width.
    EXPECT_LE(b.upper / b.lower, 1.0 + 1.0 / Histogram::kSubBuckets + 1e-12);
  }
  // p100 is the exact max, p0 clamps to the exact min.
  EXPECT_DOUBLE_EQ(h.quantile_bounds(1.0).upper, 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile_bounds(0.0).lower, 1.0);
}

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, MergeMatchesDirectObservationBitExactly) {
  Histogram direct, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = 0.1 * i * i + 0.3;
    direct.observe(v);
    (i % 2 == 0 ? a : b).observe(v);
  }
  Histogram merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.sum_quanta_bits(), direct.sum_quanta_bits());
  EXPECT_EQ(merged.bucket_counts(), direct.bucket_counts());
  EXPECT_DOUBLE_EQ(merged.min(), direct.min());
  EXPECT_DOUBLE_EQ(merged.max(), direct.max());
}

TEST(MetricsRegistry, DisabledRegistryHandsOutScratchAndStaysEmpty) {
  MetricsRegistry reg(false);
  EXPECT_FALSE(reg.enabled());
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");
  EXPECT_EQ(&a, &b);  // shared scratch, nothing registered
  a.add(100);
  EXPECT_EQ(reg.metric_count(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_TRUE(reg.export_frame().empty());
  EXPECT_EQ(&reg.gauge("g1"), &reg.gauge("g2"));
  EXPECT_EQ(&reg.histogram("h1"), &reg.histogram("h2"));
}

TEST(MetricsRegistry, SnapshotIsSortedAndExpandsHistograms) {
  MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.gauge("a.gauge").set(1.5);
  Histogram& h = reg.histogram("m.lat");
  h.observe(4.0);
  h.observe(6.0);

  const auto snap = reg.snapshot();
  // 1 counter + 1 gauge + 7 histogram scalars.
  ASSERT_EQ(snap.size(), 9u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_DOUBLE_EQ(snap[0].value, 1.5);
  EXPECT_EQ(snap[1].name, "m.lat.count");
  EXPECT_DOUBLE_EQ(snap[1].value, 2.0);
  EXPECT_EQ(snap[2].name, "m.lat.max");
  EXPECT_DOUBLE_EQ(snap[2].value, 6.0);
  EXPECT_EQ(snap[3].name, "m.lat.mean");
  EXPECT_DOUBLE_EQ(snap[3].value, 5.0);
  EXPECT_EQ(snap[4].name, "m.lat.p50");
  EXPECT_DOUBLE_EQ(snap[4].value, 4.25);  // upper bound of 4.0's bucket
  EXPECT_EQ(snap[5].name, "m.lat.p90");
  EXPECT_DOUBLE_EQ(snap[5].value, 6.0);  // bucket bound clamped to max
  EXPECT_EQ(snap[6].name, "m.lat.p99");
  EXPECT_DOUBLE_EQ(snap[6].value, 6.0);
  EXPECT_EQ(snap[7].name, "m.lat.sum");
  EXPECT_DOUBLE_EQ(snap[7].value, 10.0);
  EXPECT_EQ(snap[8].name, "z.count");
  EXPECT_DOUBLE_EQ(snap[8].value, 2.0);
}

TEST(MetricsRegistry, SnapshotIsACopyNotALiveView) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(1);
  const auto snap = reg.snapshot();
  c.add(10);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.0);
}

// --- frames and cross-shard merge -------------------------------------------

TEST(MetricsFrame, ExportRoundTripsRegistryState) {
  MetricsRegistry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(2.5);
  reg.histogram("h").observe(12.0);

  const MetricsFrame frame = reg.export_frame();
  ASSERT_EQ(frame.counters.size(), 1u);
  EXPECT_EQ(frame.counters[0].first, "c");
  EXPECT_EQ(frame.counters[0].second, 7u);
  ASSERT_EQ(frame.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(frame.gauges[0].second, 2.5);
  ASSERT_EQ(frame.histograms.size(), 1u);
  const FrameHistogram& fh = frame.histograms[0].second;
  EXPECT_EQ(fh.count, 1u);
  EXPECT_DOUBLE_EQ(fh.sum(), 12.0);
  ASSERT_EQ(fh.buckets.size(), 1u);  // sparse: only the hit bucket travels
  EXPECT_EQ(fh.buckets[0].first, Histogram::bucket_index(12.0));
}

TEST(MetricsFrame, MergeSumsCountersOverwritesGaugesAddsHistograms) {
  MetricsRegistry a, b;
  a.counter("shared").add(3);
  a.counter("only_a").add(1);
  a.gauge("g").set(1.0);
  a.histogram("h").observe(2.0);
  b.counter("shared").add(4);
  b.gauge("g").set(9.0);
  b.histogram("h").observe(8.0);

  MetricsFrame merged = a.export_frame();
  merge_frame(merged, b.export_frame());

  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].first, "only_a");
  EXPECT_EQ(merged.counters[0].second, 1u);
  EXPECT_EQ(merged.counters[1].second, 7u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges[0].second, 9.0);  // src (later shard) wins
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].second.count, 2u);
  EXPECT_DOUBLE_EQ(merged.histograms[0].second.sum(), 10.0);
  EXPECT_DOUBLE_EQ(merged.histograms[0].second.min, 2.0);
  EXPECT_DOUBLE_EQ(merged.histograms[0].second.max, 8.0);
}

TEST(MetricsFrame, MergeIsAssociativeBitExactly) {
  // Three shards, two bracketings: (A+B)+C must equal A+(B+C) bit-for-bit
  // — the property that makes the ensemble merge thread-count invariant.
  const auto make_shard = [](int salt) {
    MetricsRegistry reg;
    reg.counter("events").add(static_cast<std::uint64_t>(salt) * 11u);
    reg.gauge("last").set(salt * 0.75);
    Histogram& h = reg.histogram("lat");
    for (int i = 0; i < 50; ++i) {
      h.observe(0.013 * static_cast<double>((i * salt) % 97 + 1));
    }
    return reg.export_frame();
  };
  const MetricsFrame s1 = make_shard(1);
  const MetricsFrame s2 = make_shard(2);
  const MetricsFrame s3 = make_shard(3);

  MetricsFrame left = s1;
  merge_frame(left, s2);
  merge_frame(left, s3);

  MetricsFrame right_tail = s2;
  merge_frame(right_tail, s3);
  MetricsFrame right = s1;
  merge_frame(right, right_tail);

  EXPECT_EQ(left, right);
  ASSERT_EQ(left.histograms.size(), 1u);
  EXPECT_EQ(left.histograms[0].second.sum_quanta_bits,
            right.histograms[0].second.sum_quanta_bits);
}

// --- sampler -----------------------------------------------------------------

TEST(MetricsSampler, WritesTimeSeriesCsv) {
  MetricsRegistry reg;
  MetricsSampler sampler(reg);
  reg.gauge("power.it_watts").set(1000.0);
  sampler.sample(0);
  reg.gauge("power.it_watts").set(1500.0);
  // A metric registered after the first sample gets empty earlier cells.
  reg.counter("sched.jobs_started").add(3);
  sampler.sample(2 * sim::kSecond);
  EXPECT_EQ(sampler.row_count(), 2u);

  std::ostringstream out;
  sampler.write_csv(out);
  EXPECT_EQ(out.str(),
            "time_s,power.it_watts,sched.jobs_started\n"
            "0.000,1000,\n"
            "2.000,1500,3\n");
}

TEST(MetricsSampler, EscapesMetricNamesInCsvHeader) {
  MetricsRegistry reg;
  MetricsSampler sampler(reg);
  reg.gauge("watts,\"cab 1\"").set(5.0);
  reg.gauge("plain").set(1.0);
  sampler.sample(0);

  std::ostringstream out;
  sampler.write_csv(out);
  // RFC 4180: the comma-carrying name is quoted, inner quotes doubled;
  // columns are sorted by raw name.
  EXPECT_EQ(out.str(),
            "time_s,plain,\"watts,\"\"cab 1\"\"\"\n"
            "0.000,1,5\n");
}

TEST(MetricsSampler, MemoryStaysBoundedUnderManySamples) {
  MetricsRegistry reg;
  MetricsSampler sampler(reg, /*budget_per_metric=*/16);
  Gauge& g = reg.gauge("g");
  for (int i = 0; i < 10000; ++i) {
    g.set(static_cast<double>(i));
    sampler.sample(static_cast<sim::SimTime>(i) * sim::kSecond);
  }
  EXPECT_EQ(sampler.row_count(), 10000u);
  const DownsamplingSeries* series = sampler.series("g");
  ASSERT_NE(series, nullptr);
  EXPECT_LE(series->size(), 16u);
  EXPECT_GT(series->coarsenings(), 0u);
  // The newest value survives coarsening exactly.
  EXPECT_DOUBLE_EQ(series->latest()->value, 9999.0);
  std::ostringstream out;
  sampler.write_csv(out);
  // Bounded output too: at most budget rows + header.
  std::size_t rows = 0;
  for (const char c : out.str()) rows += c == '\n' ? 1 : 0;
  EXPECT_LE(rows, 17u);
}

TEST(MetricsSampler, OverheadCounterBillsSampling) {
  MetricsRegistry reg;
  MetricsSampler sampler(reg);
  Counter& overhead = reg.counter("obs.overhead_ns");
  sampler.set_overhead_counter(&overhead);
  reg.gauge("g").set(1.0);
  for (int i = 0; i < 50; ++i) {
    sampler.sample(static_cast<sim::SimTime>(i) * sim::kSecond);
  }
  EXPECT_GT(overhead.value(), 0u);
}

TEST(MetricsSampler, DisabledRegistrySamplesNothing) {
  MetricsRegistry reg(false);
  MetricsSampler sampler(reg);
  sampler.sample(sim::kSecond);
  EXPECT_EQ(sampler.row_count(), 0u);
  std::ostringstream out;
  sampler.write_csv(out);
  EXPECT_EQ(out.str(), "time_s\n");
}

// --- loop profiler -----------------------------------------------------------

TEST(LoopProfiler, AggregatesPerCategory) {
  LoopProfiler p;
  constexpr sim::EventCategory kTick{"core.control"};
  p.record(kTick, 100);
  p.record(kTick, 300);
  p.record("sched.pass", 50);
  EXPECT_EQ(p.total_events(), 3u);
  EXPECT_EQ(p.total_wall_ns(), 450);

  const auto report = p.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].category, "core.control");  // most time first
  EXPECT_EQ(report[0].count, 2u);
  EXPECT_EQ(report[0].total_ns, 400);
  EXPECT_EQ(report[0].max_ns, 300);
  EXPECT_EQ(report[1].category, "sched.pass");
  EXPECT_GT(p.events_per_sec(), 0.0);
}

TEST(LoopProfiler, MergesEqualContentCategoriesByName) {
  LoopProfiler p;
  // Distinct pointers with equal content must merge at report time (the
  // hot path keys by pointer; literals can differ across TUs).
  static constexpr char a[] = "sim.tick";
  static constexpr char b[] = "sim.tick";
  p.record(sim::EventCategory(a), 10);
  p.record(sim::EventCategory(b), 20);
  const auto report = p.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].count, 2u);
  EXPECT_EQ(report[0].total_ns, 30);
}

TEST(LoopProfiler, ResetClearsEverything) {
  LoopProfiler p;
  p.record("x", 5);
  p.reset();
  EXPECT_EQ(p.total_events(), 0u);
  EXPECT_DOUBLE_EQ(p.events_per_sec(), 0.0);
  EXPECT_TRUE(p.report().empty());
}

TEST(LoopProfiler, FormatReportListsCategoriesAndTotals) {
  LoopProfiler p;
  p.record("core.control", 1000);
  const std::string text = p.format_report();
  EXPECT_NE(text.find("core.control"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(LoopProfiler, SampledStrideIsReported) {
  LoopProfiler p;
  p.set_sample_stride(64);
  EXPECT_EQ(p.sample_stride(), 64u);
  p.record("core.control", 100);
  EXPECT_NE(p.format_report().find("every 64-th"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm::obs
