// epajsrmd — the scenario-as-a-service daemon (DESIGN.md §14).
//
// Binds the svc server on a carrier endpoint and serves until a client
// sends a shutdown request (or the process is killed). All scheduling,
// batching, caching and admission logic lives in src/svc; this binary is
// only flag parsing around svc::Server.
//
//   epajsrmd [--endpoint tcp:PORT|unix:PATH] [--prom-out FILE]
//            [--port-file FILE] [--max-batch N] [--cache N]
//            [--max-queue N] [--max-inflight N] [--threads N]
//
// --port-file writes the bound TCP port (one line) after listen succeeds
// so scripts can bind tcp:0 and discover the ephemeral port race-free.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "svc/server.hpp"

namespace {

[[noreturn]] void usage(int exit_code) {
  std::cerr
      << "usage: epajsrmd [--endpoint tcp:PORT|unix:PATH] [--prom-out FILE]\n"
         "                [--port-file FILE] [--max-batch N] [--cache N]\n"
         "                [--max-queue N] [--max-inflight N] [--threads N]\n";
  std::exit(exit_code);
}

std::uint64_t parse_count(const std::string& flag, const std::string& text) {
  if (text.empty()) usage(2);
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      std::cerr << "epajsrmd: " << flag << " wants a number, got '" << text
                << "'\n";
      std::exit(2);
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  epajsrm::svc::ServiceConfig service_config;
  epajsrm::svc::ServerConfig server_config;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--endpoint") {
      server_config.endpoint = value();
    } else if (arg == "--prom-out") {
      server_config.prom_out = value();
    } else if (arg == "--port-file") {
      port_file = value();
    } else if (arg == "--max-batch") {
      service_config.max_batch =
          static_cast<std::size_t>(parse_count(arg, value()));
    } else if (arg == "--cache") {
      service_config.cache_capacity =
          static_cast<std::size_t>(parse_count(arg, value()));
    } else if (arg == "--max-queue") {
      service_config.admission.max_queue =
          static_cast<std::size_t>(parse_count(arg, value()));
    } else if (arg == "--max-inflight") {
      service_config.admission.max_inflight_per_tenant =
          static_cast<std::size_t>(parse_count(arg, value()));
    } else if (arg == "--threads") {
      service_config.ensemble_threads =
          static_cast<std::size_t>(parse_count(arg, value()));
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "epajsrmd: unknown flag '" << arg << "'\n";
      usage(2);
    }
  }

  try {
    epajsrm::svc::Server server(service_config, server_config);
    if (!port_file.empty()) {
      std::ofstream out(port_file, std::ios::trunc);
      out << server.port() << "\n";
    }
    std::printf("epajsrmd: listening on %s\n", server.describe().c_str());
    std::fflush(stdout);
    server.serve();
    std::printf("epajsrmd: shut down\n");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "epajsrmd: " << e.what() << "\n";
    return 1;
  }
}
