#pragma once

namespace fixture::sim {
struct Ok {};
}  // namespace fixture::sim
