// Quickstart: build a small cluster, run a synthetic workload under an
// energy/power-aware stack, and print the run report plus a user-facing
// job energy report — the smallest end-to-end tour of the public API.
//
// Observability flags:
//   --trace-out=<path>    write a Chrome trace_event JSON (Perfetto /
//                         chrome://tracing loadable) of the run
//   --metrics-out=<path>  write the periodic metrics snapshots as CSV
//   --report-out=<path>   write the self-contained run report (.html gets
//                         the rendered page, anything else the JSON)
//   --prom-out=<path>     write the final metrics in Prometheus text format
//   --log-level=<level>   logger threshold (trace..error, off)
// Passing any output flag enables the observability plane; without them
// the run is exactly the zero-overhead disabled configuration.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "epajsrm.hpp"
#include "obs/exposition.hpp"

namespace {

bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epajsrm;

  std::string trace_out;
  std::string metrics_out;
  std::string report_out;
  std::string prom_out;
  std::string log_level;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--trace-out=", &trace_out)) continue;
    if (flag_value(argv[i], "--metrics-out=", &metrics_out)) continue;
    if (flag_value(argv[i], "--report-out=", &report_out)) continue;
    if (flag_value(argv[i], "--prom-out=", &prom_out)) continue;
    if (flag_value(argv[i], "--log-level=", &log_level)) continue;
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  // 1. Describe the experiment: a 64-node machine, ~75 % loaded, EASY
  //    backfilling (the default scheduler).
  core::Scenario scenario =
      core::Scenario::builder()
          .label("quickstart")
          .nodes(64)
          .job_count(0)  // fill the horizon
          .seed(7)
          .observability(!trace_out.empty() || !metrics_out.empty() ||
                         !report_out.empty() || !prom_out.empty())
          .build();

  if (!log_level.empty()) {
    const auto level = sim::parse_log_level(log_level);
    if (!level) {
      std::fprintf(stderr, "unknown log level: %s\n", log_level.c_str());
      return 2;
    }
    scenario.solution().logger().set_threshold(*level);
  }

  // 2. Make it energy/power aware: a 22 kW IT power budget enforced at
  //    admission with DVFS degradation, plus idle-node shutdown.
  scenario.solution().add_policy(
      std::make_unique<epa::PowerBudgetDvfsPolicy>(22'000.0));
  scenario.solution().add_policy(std::make_unique<epa::IdleShutdownPolicy>());

  // 3. Run to completion and report.
  const core::RunResult result = scenario.run();

  std::printf("%s\n", metrics::format_report(result.report).c_str());
  std::printf("exact IT energy: %.1f kWh (overhead %.1f kWh)\n",
              result.total_it_kwh_exact, result.overhead_kwh);
  std::printf("node boots: %llu, shutdowns: %llu, scheduling passes: %llu\n",
              static_cast<unsigned long long>(result.node_boots),
              static_cast<unsigned long long>(result.node_shutdowns),
              static_cast<unsigned long long>(result.scheduling_passes));

  // 4. The per-job energy report users get at job end (Tokyo Tech /
  //    JCAHPC production capability).
  if (!result.job_reports.empty()) {
    std::printf("\nSample end-of-job report (of %zu):\n%s",
                result.job_reports.size(),
                telemetry::format_energy_report(result.job_reports.front())
                    .c_str());
  }

  // 5. Export the observability artifacts when requested.
  if (obs::Observability* o = scenario.solution().observability()) {
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open trace output: %s\n",
                     trace_out.c_str());
        return 1;
      }
      // A .jsonl path selects the line-oriented export; anything else gets
      // the Perfetto-loadable Chrome trace.
      if (trace_out.size() >= 6 &&
          trace_out.compare(trace_out.size() - 6, 6, ".jsonl") == 0) {
        o->trace().export_jsonl(out);
      } else {
        o->trace().export_chrome_trace(out);
      }
      std::printf("\ntrace: %llu events recorded (%llu retained) -> %s\n",
                  static_cast<unsigned long long>(o->trace().recorded()),
                  static_cast<unsigned long long>(o->trace().size()),
                  trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open metrics output: %s\n",
                     metrics_out.c_str());
        return 1;
      }
      o->sampler().write_csv(out);
      std::printf("metrics: %zu instruments, %zu rows -> %s\n",
                  o->metrics().metric_count(), o->sampler().row_count(),
                  metrics_out.c_str());
    }
    if (!report_out.empty()) {
      std::ofstream out(report_out);
      if (!out) {
        std::fprintf(stderr, "cannot open report output: %s\n",
                     report_out.c_str());
        return 1;
      }
      obs::RunReportBuilder report("quickstart");
      report.add_scalar("total_it_kwh_exact", result.total_it_kwh_exact);
      report.add_scalar("overhead_kwh", result.overhead_kwh);
      report.add_scalar("total_facility_kwh", result.report.total_facility_kwh);
      report.add_scalar("mean_it_watts", result.report.mean_it_watts);
      report.add_scalar("mean_core_utilization",
                        result.report.mean_core_utilization);
      report.add_scalar("jobs_completed",
                        static_cast<double>(result.report.jobs_completed));
      const telemetry::MonitoringService& mon = scenario.solution().monitor();
      report.add_series("power.it_watts", mon.machine_power());
      report.add_series("power.facility_watts", mon.facility_power());
      report.add_series("utilization", mon.utilization());
      report.add_series("energy.it_joules",
                        scenario.solution().accountant().energy_series());
      report.set_metrics(o->metrics().export_frame());
      // A single run is its own (sole) shard: merged stays false but the
      // provenance block still records seed and event count.
      report.set_merged(false);
      report.add_shard({"quickstart", 7, result.sim_events,
                        o->metrics().metric_count(), 0});
      const bool html = report_out.size() >= 5 &&
                        report_out.compare(report_out.size() - 5, 5,
                                           ".html") == 0;
      if (html) {
        report.write_html(out);
      } else {
        report.write_json(out);
      }
      std::printf("run report (%s) -> %s\n", html ? "html" : "json",
                  report_out.c_str());
    }
    if (!prom_out.empty()) {
      std::ofstream out(prom_out);
      if (!out) {
        std::fprintf(stderr, "cannot open prometheus output: %s\n",
                     prom_out.c_str());
        return 1;
      }
      obs::write_prometheus(o->metrics(), out);
      std::printf("prometheus metrics (%zu instruments) -> %s\n",
                  o->metrics().metric_count(), prom_out.c_str());
    }
    std::printf("%s", o->profiler().format_report().c_str());
  }
  return 0;
}
