// Scheduling-policy interface.
//
// The scheduler sees the queue and the machine through a SchedulingContext
// provided by the JSRM core on every scheduling pass (job arrival, job
// completion, periodic tick, power-budget change). Policies decide *order
// and timing*; allocation, power admission and job launching are the
// resource manager's business and are reached through the context — the
// same split the survey's Figure 1 draws between job scheduler and
// resource manager.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace epajsrm::obs {
class Observability;
}

namespace epajsrm::sched {

/// The core's services exposed to a scheduling policy during one pass.
class SchedulingContext {
 public:
  virtual ~SchedulingContext() = default;

  virtual sim::SimTime now() const = 0;

  /// Queued jobs in queue order (effective priority desc, submit asc).
  /// Pointers stay valid for the duration of the pass.
  virtual const std::vector<workload::Job*>& pending() const = 0;

  /// Currently running (or starting) jobs.
  virtual const std::vector<workload::Job*>& running() const = 0;

  virtual const platform::Cluster& cluster() const = 0;

  /// Nodes an allocation could use right now (idle or booting-toward-idle
  /// are not counted; whole-node allocations).
  virtual std::uint32_t allocatable_nodes() const = 0;

  /// True when starting `job` with `nodes` nodes now would keep the system
  /// inside the active power budget (per the installed EPA policy and
  /// power predictor). Does not start anything. Non-const because the
  /// probe consults the power predictor and the policy chain, which keep
  /// internal state; the job itself is only read (the plan runs dry).
  virtual bool power_feasible(workload::Job& job, std::uint32_t nodes) = 0;

  /// Attempts to start `job` now, optionally with a moldable shape
  /// (nullptr = base shape). Performs power admission, node allocation and
  /// launch. Returns false (and changes nothing) when it cannot.
  virtual bool try_start(workload::Job& job,
                         const workload::MoldableConfig* shape) = 0;

  /// Planning-time end estimate of a running job (start + walltime limit,
  /// or the runtime predictor's value when the solution uses one).
  virtual sim::SimTime planned_end(const workload::Job& job) const = 0;

  /// Earliest time any admission policy would let `job` start (>= now()).
  /// Backfilling schedulers anchor the job's reservation here.
  virtual sim::SimTime earliest_admission(const workload::Job& job) const = 0;

  /// The run's observability plane (trace + metrics), or null when
  /// observability is disabled — policies must treat null as "record
  /// nothing".
  virtual obs::Observability* observability() const { return nullptr; }
};

/// A scheduling policy: orders and places the queue.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// One scheduling pass. Implementations call ctx.try_start for each job
  /// they decide to launch now.
  virtual void schedule(SchedulingContext& ctx) = 0;

  virtual std::string name() const = 0;
};

/// Future node-availability profile built from running jobs' planned ends;
/// the planning substrate for backfilling.
class AvailabilityTimeline {
 public:
  /// Builds from the context: `free_now` nodes available immediately plus
  /// each running job's nodes at its planned end.
  AvailabilityTimeline(std::uint32_t free_now,
                       const std::vector<workload::Job*>& running,
                       const SchedulingContext& ctx);

  /// Earliest time >= `from` at which at least `nodes` nodes are free for
  /// the contiguous duration `duration` given current reservations.
  sim::SimTime earliest_start(std::uint32_t nodes, sim::SimTime duration,
                              sim::SimTime from) const;

  /// Nodes free throughout [start, start+duration).
  std::uint32_t min_free(sim::SimTime start, sim::SimTime duration) const;

  /// Blocks `nodes` nodes during [start, start+duration) (a reservation).
  void reserve(std::uint32_t nodes, sim::SimTime start, sim::SimTime duration);

 private:
  // Piecewise-constant free-node count as breakpoints; last segment
  // extends to infinity.
  struct Point {
    sim::SimTime time;
    std::int64_t free;
  };
  std::vector<Point> points_;

  std::int64_t free_at(sim::SimTime t) const;
};

}  // namespace epajsrm::sched
