#include "edc/protocol.hpp"

#include "net/jsonl.hpp"

namespace epajsrm::edc {

const char* to_string(Message::Type type) {
  switch (type) {
    case Message::Type::kSimulationBegins:
      return "simulation_begins";
    case Message::Type::kJobSubmitted:
      return "job_submitted";
    case Message::Type::kJobEnded:
      return "job_ended";
    case Message::Type::kBudgetTick:
      return "budget_tick";
    case Message::Type::kPowerBudgetChanged:
      return "power_budget_changed";
    case Message::Type::kSimulationEnds:
      return "simulation_ends";
    case Message::Type::kSchedulingPass:
      return "scheduling_pass";
  }
  return "?";
}

const char* to_string(Reply::Type type) {
  switch (type) {
    case Reply::Type::kStartJob:
      return "start_job";
    case Reply::Type::kSetPowerCap:
      return "set_power_cap";
    case Reply::Type::kHold:
      return "hold";
    case Reply::Type::kRequeue:
      return "requeue";
  }
  return "?";
}

std::string format_double(double value) { return net::format_double(value); }

std::string serialize(const Message& message) {
  net::LineWriter w;
  w.field("type", to_string(message.type));
  w.field("time", static_cast<std::int64_t>(message.time));
  w.field("seq", message.seq);
  switch (message.type) {
    case Message::Type::kSimulationBegins:
      w.field("total_nodes", static_cast<std::uint64_t>(message.total_nodes));
      w.field("peak_node_watts", message.peak_node_watts);
      w.field("idle_node_watts", message.idle_node_watts);
      break;
    case Message::Type::kJobSubmitted:
      w.field("job", message.job);
      w.field("submit_time", static_cast<std::int64_t>(message.submit_time));
      w.field("nodes", static_cast<std::uint64_t>(message.nodes));
      w.field("walltime", static_cast<std::int64_t>(message.walltime));
      w.field("estimated_energy_joules", message.estimated_energy_joules);
      break;
    case Message::Type::kJobEnded:
      w.field("job", message.job);
      w.field("energy_joules", message.energy_joules);
      break;
    case Message::Type::kPowerBudgetChanged:
      w.field("budget_watts", message.budget_watts);
      break;
    case Message::Type::kSchedulingPass:
      w.field("free_nodes", static_cast<std::uint64_t>(message.free_nodes));
      w.field("pending", message.pending);
      break;
    case Message::Type::kBudgetTick:
    case Message::Type::kSimulationEnds:
      break;
  }
  return w.finish();
}

std::string serialize(const Reply& reply) {
  net::LineWriter w;
  w.field("type", to_string(reply.type));
  switch (reply.type) {
    case Reply::Type::kStartJob:
    case Reply::Type::kRequeue:
      w.field("job", reply.job);
      break;
    case Reply::Type::kSetPowerCap:
      w.field("watts", reply.watts);
      break;
    case Reply::Type::kHold:
      break;
  }
  return w.finish();
}

Message parse_message(std::string_view line, std::size_t line_number) {
  try {
    const net::LineParser p(line, line_number);
    const std::string& type = p.get_string("type");
    Message m;
    m.time = p.get_i64("time");
    m.seq = p.get_u64("seq");
    if (type == "simulation_begins") {
      m.type = Message::Type::kSimulationBegins;
      m.total_nodes = p.get_u32("total_nodes");
      m.peak_node_watts = p.get_double("peak_node_watts");
      // Optional for wire compatibility with pre-idle-accrual senders.
      m.idle_node_watts = p.get_double_or("idle_node_watts", 0.0);
    } else if (type == "job_submitted") {
      m.type = Message::Type::kJobSubmitted;
      m.job = p.get_u64("job");
      m.submit_time = p.get_i64("submit_time");
      m.nodes = p.get_u32("nodes");
      m.walltime = p.get_i64("walltime");
      m.estimated_energy_joules = p.get_double("estimated_energy_joules");
    } else if (type == "job_ended") {
      m.type = Message::Type::kJobEnded;
      m.job = p.get_u64("job");
      m.energy_joules = p.get_double("energy_joules");
    } else if (type == "budget_tick") {
      m.type = Message::Type::kBudgetTick;
    } else if (type == "power_budget_changed") {
      m.type = Message::Type::kPowerBudgetChanged;
      m.budget_watts = p.get_double("budget_watts");
    } else if (type == "simulation_ends") {
      m.type = Message::Type::kSimulationEnds;
    } else if (type == "scheduling_pass") {
      m.type = Message::Type::kSchedulingPass;
      m.free_nodes = p.get_u32("free_nodes");
      m.pending = p.get_id_array("pending");
    } else {
      p.fail("unknown message type \"" + type + "\"");
    }
    return m;
  } catch (const net::LineError& e) {
    throw ProtocolError(e.line(), e.detail());
  }
}

Reply parse_reply(std::string_view line, std::size_t line_number) {
  try {
    const net::LineParser p(line, line_number);
    const std::string& type = p.get_string("type");
    Reply r;
    if (type == "start_job") {
      r.type = Reply::Type::kStartJob;
      r.job = p.get_u64("job");
      if (r.job == platform::kNoJob) {
        p.fail("start_job: job 0 is the no-job sentinel");
      }
    } else if (type == "set_power_cap") {
      r.type = Reply::Type::kSetPowerCap;
      r.watts = p.get_double("watts");
      if (!(r.watts >= 0.0)) p.fail("set_power_cap: watts must be >= 0");
    } else if (type == "hold") {
      r.type = Reply::Type::kHold;
    } else if (type == "requeue") {
      r.type = Reply::Type::kRequeue;
      r.job = p.get_u64("job");
      if (r.job == platform::kNoJob) {
        p.fail("requeue: job 0 is the no-job sentinel");
      }
    } else {
      p.fail("unknown reply type \"" + type + "\"");
    }
    return r;
  } catch (const net::LineError& e) {
    throw ProtocolError(e.line(), e.detail());
  }
}

}  // namespace epajsrm::edc
