// Common finding record for all epajsrm_analyze passes.
#pragma once

#include <string>
#include <vector>

namespace epajsrm::analyze {

// Rule identifiers (also the SARIF ruleId and the `lint:allow(<rule>)`
// suppression key):
//
//   layer-violation        pass 1: include edge not permitted by the
//                          declared layer DAG in layers.conf
//   undeclared-layer       pass 1: src/ subdirectory missing from
//                          layers.conf
//   include-cycle          pass 1: cyclic include chain (full path
//                          reported)
//   unordered-iter         pass 2: iteration over an unordered container
//                          in a function that emits output, aggregates,
//                          or schedules events — hash order is not part
//                          of the replay contract
//   float-accum-unordered  pass 2: floating-point accumulation inside a
//                          loop over an unordered container (FP addition
//                          is not associative; order changes bits)
//   pointer-key-order      pass 2: std::map/std::set keyed by pointer —
//                          iteration order is address order, which ASLR
//                          reshuffles run to run
//   mutable-global         pass 3: mutable namespace-scope variable
//                          (partition-unsafe shared state)
//   local-static           pass 3: mutable function-local static
//                          (hidden shared state across calls/partitions)
struct Finding {
  std::string file;     // path relative to the analyzed root
  int line = 0;         // 1-based
  std::string rule;
  std::string message;
};

inline bool finding_before(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

using Findings = std::vector<Finding>;

}  // namespace epajsrm::analyze
