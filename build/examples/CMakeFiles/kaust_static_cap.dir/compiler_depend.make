# Empty compiler generated dependencies file for kaust_static_cap.
# This may be replaced when dependencies are built.
