// Ridge-regression power predictor over job submission features.
//
// The Sîrbu & Babaoglu [41] / Shoukourian [40] approach: regress measured
// per-node power on features known at submission (size, requested time,
// application behaviour hints). Online: the model keeps the normal-equation
// accumulators (XᵀX, Xᵀy) and re-solves lazily, so observe() is O(d²) and
// predict O(d) with a cached weight vector.
#pragma once

#include <array>
#include <cstdint>

#include "predict/predictor.hpp"

namespace epajsrm::predict {

/// Online ridge regression y ≈ wᵀx with L2 penalty lambda.
class RidgePowerPredictor final : public PowerPredictor {
 public:
  /// Feature dimension: bias, log nodes, log walltime-estimate hours,
  /// frequency-sensitive fraction, comm fraction, power intensity.
  static constexpr std::size_t kDim = 6;

  /// `prior_node_watts` is used until `min_samples` observations arrive.
  RidgePowerPredictor(double prior_node_watts, double lambda = 1.0,
                      std::uint64_t min_samples = 8)
      : prior_(prior_node_watts), lambda_(lambda), min_samples_(min_samples) {
    xtx_.fill(0.0);
    xty_.fill(0.0);
    weights_.fill(0.0);
  }

  double predict_node_watts(const workload::JobSpec& spec) override;
  void observe(const workload::JobSpec& spec,
               double actual_node_watts) override;
  std::string name() const override { return "ridge"; }

  std::uint64_t samples() const { return samples_; }

  /// Current weight vector (for tests / introspection). Solves lazily.
  std::array<double, kDim> weights();

  /// True when the last solve could not factor the normal matrix even with
  /// a boosted penalty (degenerate data, e.g. lambda 0 with a constant
  /// feature column); predictions then fall back to the prior.
  bool degenerate() const { return degenerate_; }

 private:
  static std::array<double, kDim> features(const workload::JobSpec& spec);
  void solve();
  /// One Cholesky attempt at penalty `lambda`; returns false (leaving
  /// weights_ untouched) if a pivot collapses instead of dividing by zero.
  bool try_solve(double lambda);

  double prior_;
  double lambda_;
  std::uint64_t min_samples_;
  std::uint64_t samples_ = 0;
  bool dirty_ = false;
  bool degenerate_ = false;

  std::array<double, kDim * kDim> xtx_;
  std::array<double, kDim> xty_;
  std::array<double, kDim> weights_;
};

}  // namespace epajsrm::predict
