file(REMOVE_RECURSE
  "CMakeFiles/survey_corpus.dir/survey_corpus.cpp.o"
  "CMakeFiles/survey_corpus.dir/survey_corpus.cpp.o.d"
  "survey_corpus"
  "survey_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
