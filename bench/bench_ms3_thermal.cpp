// Experiment S6-THERM — MS3 [11]: "do less when it's too hot". A
// Mediterranean heatwave (hot afternoons, overloaded chillers) with and
// without the thermal-aware policy: MS3 trades some throughput during the
// siesta for bounded node temperatures.
#include <cstdio>

#include <memory>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "epa/ms3_thermal.hpp"
#include "metrics/table.hpp"

namespace {

using namespace epajsrm;

struct ThermalOutcome {
  core::RunResult result;
  double max_temp_c = 0.0;
  double hot_sample_fraction = 0.0;  ///< samples with hottest node > limit
  sim::SimTime throttled = 0;
};

ThermalOutcome run_case(bool ms3_enabled, const std::string& label) {
  constexpr double kTempLimit = 80.0;

  core::ScenarioConfig config;
  config.label = label;
  config.nodes = 32;
  config.job_count = 100;
  config.horizon = 30 * sim::kDay;
  config.seed = 17;
  config.mix = core::WorkloadMix::kCapacity;
  config.target_utilization = 0.85;
  // Heatwave: 34 C mean, 8 C swing -> 42 C afternoons.
  config.ambient = platform::AmbientModel(34.0, 8.0);
  // Undersized cooling: loops overload when the machine runs hot.
  platform::NodeConfig node;
  node.idle_watts = 90.0;
  node.dynamic_watts = 200.0;
  // Marginal thermal design: full load reaches ~85 C once the overloaded
  // loop pushes the inlet up — the regime Eurora actually operated in.
  node.thermal_resistance = 66.0 / 290.0;
  config.node_config = node;
  core::Scenario scenario(config);
  for (auto& loop : scenario.cluster().facility().cooling_loops()) {
    loop.heat_capacity_watts =
        290.0 * 32.0 / scenario.cluster().facility().cooling_loops().size() *
        0.75;
  }

  epa::Ms3ThermalPolicy* ms3_p = nullptr;
  if (ms3_enabled) {
    epa::Ms3ThermalPolicy::Config cfg;
    cfg.node_temp_limit_c = kTempLimit;
    cfg.ambient_limit_c = 41.0;
    auto policy = std::make_unique<epa::Ms3ThermalPolicy>(cfg);
    ms3_p = policy.get();
    scenario.solution().add_policy(std::move(policy));
  }

  // Watch the hottest node through the monitoring series.
  const auto* monitor = &scenario.solution().monitor();
  ThermalOutcome outcome;
  std::size_t hot_samples = 0, samples = 0;
  scenario.solution().monitor().add_observer([&](sim::SimTime) {
    const double t = monitor->max_temperature().latest()->value;
    outcome.max_temp_c = std::max(outcome.max_temp_c, t);
    ++samples;
    if (t > kTempLimit) ++hot_samples;
  });

  outcome.result = scenario.run();
  outcome.hot_sample_fraction =
      samples ? static_cast<double>(hot_samples) / samples : 0.0;
  if (ms3_p != nullptr) outcome.throttled = ms3_p->throttled_time();
  return outcome;
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_ms3_thermal");
  const ThermalOutcome off = run_case(false, "no-thermal-policy");
  const ThermalOutcome on = run_case(true, "ms3");
  summary.add_run(off.result);
  summary.add_run(on.result);

  metrics::AsciiTable table({"policy", "hottest node (C)",
                             "time over 80 C", "throttled time (h)",
                             "p50 wait (min)", "makespan (h)", "jobs done"});
  table.set_title(
      "S6-THERM: heatwave week (42 C afternoons, 75 %-sized chillers), "
      "MS3 vs. no thermal policy");
  for (const auto& [label, o] :
       {std::pair{"no-thermal-policy", &off}, {"ms3", &on}}) {
    table.add_row(
        {label, metrics::format_double(o->max_temp_c, 1),
         metrics::format_percent(o->hot_sample_fraction),
         metrics::format_double(sim::to_hours(o->throttled), 1),
         metrics::format_double(o->result.report.wait_minutes.median, 1),
         metrics::format_double(sim::to_hours(o->result.report.makespan), 1),
         std::to_string(o->result.report.jobs_completed)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: MS3 bounds thermal excursions (time over the limit "
      "shrinks) at the cost of longer waits during hot hours.\n");
  return 0;
}
