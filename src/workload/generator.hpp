// Synthetic workload generation.
//
// Produces job streams with the statistical structure the survey's Q3
// probes: Poisson arrivals, archetype-driven sizes and runtimes, user
// walltime overestimation (Mu'alem & Feitelson [35]), a tunable
// capability/capacity balance, priorities and deferrable work.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "workload/app_catalog.hpp"
#include "workload/job.hpp"

namespace epajsrm::workload {

/// Knobs of the synthetic stream.
struct GeneratorConfig {
  /// Mean job arrivals per hour (Poisson process).
  double arrival_rate_per_hour = 20.0;
  /// Node count the generated sizes are clamped to.
  std::uint32_t machine_nodes = 64;
  /// Users cycled through round-robin-with-noise.
  std::uint32_t user_count = 12;
  /// Walltime estimate = true runtime × U(1, 1 + overestimate_max).
  /// Feitelson-style: users pad heavily (default up to 4×).
  double overestimate_max = 3.0;
  /// Fraction of jobs flagged deferrable (cost-aware ordering material);
  /// deferrable jobs get a deadline a few multiples of their runtime out.
  double deferrable_fraction = 0.2;
  /// Fraction of jobs that carry moldable alternatives (Patki/RMAP).
  double moldable_fraction = 0.15;
  /// Priority classes 0..2 sampled with decreasing probability.
  double high_priority_fraction = 0.1;
};

/// Deterministic (seeded) job-stream generator.
class WorkloadGenerator {
 public:
  WorkloadGenerator(GeneratorConfig config, AppCatalog catalog,
                    std::uint64_t seed = 1);

  /// Generates `count` jobs with arrivals starting at `start`. Job ids are
  /// assigned sequentially from the generator's counter (never reused).
  std::vector<JobSpec> generate(std::size_t count, sim::SimTime start = 0);

  /// Generates jobs until arrivals pass `end` (open-ended count).
  std::vector<JobSpec> generate_until(sim::SimTime start, sim::SimTime end);

  const GeneratorConfig& config() const { return config_; }
  const AppCatalog& catalog() const { return catalog_; }

 private:
  JobSpec make_job(sim::SimTime submit);

  GeneratorConfig config_;
  AppCatalog catalog_;
  sim::Rng rng_;
  JobId next_id_ = 1;
};

}  // namespace epajsrm::workload
