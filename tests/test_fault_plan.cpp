// FaultPlan model: fluent construction, the line-oriented spec parser, the
// stochastic FailureModel, and the retry/backoff policy math.
#include "fault/fault_plan.hpp"
#include "fault/retry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace epajsrm::fault {
namespace {

TEST(FaultKindNames, RoundTripThroughParser) {
  for (const FaultKind kind :
       {FaultKind::kNodeCrash, FaultKind::kNodeHang, FaultKind::kPduTrip,
        FaultKind::kSensorDropout, FaultKind::kSensorStuck,
        FaultKind::kSensorNoise, FaultKind::kThermalExcursion,
        FaultKind::kCapmcFailure, FaultKind::kCapmcLatency}) {
    EXPECT_EQ(parse_fault_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_fault_kind("meteor-strike"), std::invalid_argument);
}

TEST(FaultPlan, FluentAddersRecordKindAndTarget) {
  FaultPlan plan;
  plan.crash_node(sim::kHour, 3, 10 * sim::kMinute)
      .sensor_dropout(2 * sim::kHour, sim::kHour, 0.5)
      .capmc_latency(3 * sim::kHour, sim::kMinute, 900.0);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events()[0].target, 3);
  EXPECT_EQ(plan.events()[0].duration, 10 * sim::kMinute);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kSensorDropout);
  EXPECT_DOUBLE_EQ(plan.events()[1].magnitude, 0.5);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kCapmcLatency);
  EXPECT_DOUBLE_EQ(plan.events()[2].magnitude, 900.0);
}

TEST(FaultPlan, RejectsNegativeTimeAndDuration) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash_node(-1, 0), std::invalid_argument);
  EXPECT_THROW(plan.add({sim::kHour, FaultKind::kNodeCrash, 0, 0.0, -5}),
               std::invalid_argument);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, SortedIsStableByTime) {
  FaultPlan plan;
  plan.crash_node(2 * sim::kHour, 1)
      .crash_node(sim::kHour, 2)
      .sensor_stuck(sim::kHour, sim::kMinute);  // same instant as node 2
  const auto sorted = plan.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].target, 2);  // earliest first
  EXPECT_EQ(sorted[1].kind, FaultKind::kSensorStuck);  // plan order kept
  EXPECT_EQ(sorted[2].target, 1);
}

TEST(FaultPlan, MergeConcatenates) {
  FaultPlan a;
  a.crash_node(sim::kHour, 0);
  FaultPlan b;
  b.trip_pdu(2 * sim::kHour, 1);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.events()[1].kind, FaultKind::kPduTrip);
}

TEST(FaultPlanParse, ReadsSpecWithCommentsAndDefaults) {
  const FaultPlan plan = FaultPlan::parse_string(
      "# storm scenario\n"
      "; alt comment style\n"
      "\n"
      "3600 node-crash 12 0 1800\n"
      "7200 capmc-failure -1 0.5 600\n"
      "100.5 thermal-excursion 2 7.5\n");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].at, 3600 * sim::kSecond);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events()[0].target, 12);
  EXPECT_EQ(plan.events()[0].duration, 1800 * sim::kSecond);
  EXPECT_DOUBLE_EQ(plan.events()[1].magnitude, 0.5);
  // Magnitude given, duration defaulted.
  EXPECT_DOUBLE_EQ(plan.events()[2].magnitude, 7.5);
  EXPECT_EQ(plan.events()[2].duration, 0);
}

TEST(FaultPlanParse, MalformedLinesThrowWithLineNumber) {
  try {
    FaultPlan::parse_string("# ok\n3600 node-crash\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(FaultPlan::parse_string("10 bogus-kind 0\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_string("-5 node-crash 0\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_string("5 node-crash 0 0 -1\n"),
               std::invalid_argument);
}

TEST(FaultPlanParse, RelativeOffsetsAndUnitSuffixes) {
  const FaultPlan plan = FaultPlan::parse_string(
      "30m node-crash 3 0 1800\n"   // absolute with a unit suffix
      "+90m sensor-stuck -1 0 60\n" // 30m + 90m = 2h
      "+6h pdu-trip 0\n"            // 2h + 6h = 8h
      "+45s capmc-failure -1 1.0 30\n"
      "10 thermal-excursion 1 5.0\n");  // absolute resets the clock
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan.events()[0].at, 30 * sim::kMinute);
  EXPECT_EQ(plan.events()[1].at, 2 * sim::kHour);
  EXPECT_EQ(plan.events()[2].at, 8 * sim::kHour);
  EXPECT_EQ(plan.events()[3].at, 8 * sim::kHour + 45 * sim::kSecond);
  EXPECT_EQ(plan.events()[4].at, 10 * sim::kSecond);
}

TEST(FaultPlanParse, RelativeOffsetOnFirstLineIsFromZero) {
  const FaultPlan plan = FaultPlan::parse_string("+2h node-crash 0\n");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.events()[0].at, 2 * sim::kHour);
}

TEST(FaultPlanParse, BadTimeTokensThrowWithLineNumber) {
  try {
    FaultPlan::parse_string("0 node-crash 1\n+90x node-crash 2\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("+90x"), std::string::npos);
  }
  try {
    FaultPlan::parse_string("# header\n\n+ node-crash 0\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  // A negative offset cannot rewind the clock.
  EXPECT_THROW(FaultPlan::parse_string("3600 node-crash 0\n+-60 pdu-trip 0\n"),
               std::invalid_argument);
  // Suffix without a number.
  EXPECT_THROW(FaultPlan::parse_string("m node-crash 0\n"),
               std::invalid_argument);
}

TEST(FaultPlanParse, EveryExpandsPeriodicRepetitions) {
  const FaultPlan plan = FaultPlan::parse_string(
      "every 30m 1h sensor-noise -1 0.05 600 until 2h\n");
  // 1h, 1h30, 2h — the bound is inclusive.
  ASSERT_EQ(plan.size(), 3u);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.kind, FaultKind::kSensorNoise);
    EXPECT_DOUBLE_EQ(e.magnitude, 0.05);
    EXPECT_EQ(e.duration, 600 * sim::kSecond);
  }
  EXPECT_EQ(plan.events()[0].at, sim::kHour);
  EXPECT_EQ(plan.events()[1].at, sim::kHour + 30 * sim::kMinute);
  EXPECT_EQ(plan.events()[2].at, 2 * sim::kHour);
}

TEST(FaultPlanParse, EveryComposesWithRelativeOffsets) {
  const FaultPlan plan = FaultPlan::parse_string(
      "2h node-crash 5\n"
      "every 1h +30m pdu-trip 0 0 60 until +2h\n"  // first at 2h30
      "+1h capmc-failure -1 1.0 30\n");            // chains from 2h30
  ASSERT_EQ(plan.size(), 5u);
  // The cadence starts relative to the previous line...
  EXPECT_EQ(plan.events()[1].at, 2 * sim::kHour + 30 * sim::kMinute);
  // ...its `until +2h` bounds relative to its own first occurrence...
  EXPECT_EQ(plan.events()[3].at, 4 * sim::kHour + 30 * sim::kMinute);
  // ...and the next line chains from the first occurrence, not the last.
  EXPECT_EQ(plan.events()[4].kind, FaultKind::kCapmcFailure);
  EXPECT_EQ(plan.events()[4].at, 3 * sim::kHour + 30 * sim::kMinute);
}

TEST(FaultPlanParse, EveryWithoutUntilStopsAtTheRepeatHorizon) {
  const FaultPlan plan = FaultPlan::parse_string(
      "every 1h 0 sensor-stuck -1 0 60\n", /*repeat_horizon=*/4 * sim::kHour);
  ASSERT_EQ(plan.size(), 5u);  // 0..4h inclusive
  EXPECT_EQ(plan.events()[4].at, 4 * sim::kHour);
}

TEST(FaultPlanParse, EveryErrorsCarryLineNumbers) {
  // Zero or relative periods are rejected.
  try {
    FaultPlan::parse_string("0 node-crash 1\nevery 0m 1h node-crash 2\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("> 0"), std::string::npos);
  }
  EXPECT_THROW(FaultPlan::parse_string("every +30m 1h node-crash 0\n"),
               std::invalid_argument);
  // `until` must not precede the first occurrence.
  EXPECT_THROW(
      FaultPlan::parse_string("every 30m 2h node-crash 0 0 0 until 1h\n"),
      std::invalid_argument);
  // `until` without `every` is meaningless.
  try {
    FaultPlan::parse_string("1h node-crash 0 0 60 until 2h\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("every"), std::string::npos);
  }
  // Trailing junk fails loudly instead of silently dropping.
  EXPECT_THROW(
      FaultPlan::parse_string("every 30m 1h node-crash 0 0 60 until 2h x\n"),
      std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_string("every 30m 1h node-crash 0 until\n"),
               std::invalid_argument);
}

TEST(FaultPlanParse, MissingFileThrows) {
  EXPECT_THROW(FaultPlan::parse_file("/nonexistent/faults.spec"),
               std::invalid_argument);
}

TEST(FailureModel, DeterministicFromSeed) {
  FailureModel model;
  model.mtbf_hours = 50.0;
  const FaultPlan a = model.generate(16, 30 * sim::kDay, 7);
  const FaultPlan b = model.generate(16, 30 * sim::kDay, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
  }
  const FaultPlan c = model.generate(16, 30 * sim::kDay, 8);
  EXPECT_NE(a.size(), 0u);
  // A different seed must not reproduce the same schedule.
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(FailureModel, EventsStayInHorizonAndRespectRepair) {
  FailureModel model;
  model.mtbf_hours = 10.0;
  model.repair_time = sim::kHour;
  const sim::SimTime horizon = 10 * sim::kDay;
  const FaultPlan plan = model.generate(4, horizon, 3);
  ASSERT_FALSE(plan.empty());
  sim::SimTime last_per_node[4] = {-1, -1, -1, -1};
  for (const FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.kind, FaultKind::kNodeCrash);
    EXPECT_LE(e.at, horizon);
    EXPECT_EQ(e.duration, sim::kHour);
    ASSERT_GE(e.target, 0);
    ASSERT_LT(e.target, 4);
    // A node cannot fail again while it is still being repaired.
    if (last_per_node[e.target] >= 0) {
      EXPECT_GE(e.at, last_per_node[e.target] + model.repair_time);
    }
    last_per_node[e.target] = e.at;
  }
}

TEST(FailureModel, WeibullMeanRoughlyMatchesMtbf) {
  FailureModel model;
  model.distribution = FailureModel::Distribution::kWeibull;
  model.mtbf_hours = 24.0;
  model.weibull_shape = 1.5;
  model.repair_time = 0;
  // 64 nodes over 100 days at MTBF 24 h: expect ~100 failures per node,
  // loose 25 % band on the aggregate count.
  const FaultPlan plan = model.generate(64, 100 * sim::kDay, 11);
  const double expected = 64.0 * 100.0 * 24.0 / 24.0;
  EXPECT_GT(static_cast<double>(plan.size()), expected * 0.75);
  EXPECT_LT(static_cast<double>(plan.size()), expected * 1.25);
}

TEST(FailureModel, RejectsNonPositiveParameters) {
  FailureModel model;
  model.mtbf_hours = 0.0;
  EXPECT_THROW(model.generate(4, sim::kDay, 1), std::invalid_argument);
  model.mtbf_hours = 10.0;
  model.weibull_shape = 0.0;
  EXPECT_THROW(model.generate(4, sim::kDay, 1), std::invalid_argument);
}

TEST(RetryPolicy, FirstAttemptHasNoBackoff) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(backoff_us(policy, 0, 42), 0.0);
  EXPECT_DOUBLE_EQ(backoff_us(policy, 1, 42), 0.0);
}

TEST(RetryPolicy, BackoffGrowsAndStaysBounded) {
  RetryPolicy policy;
  policy.backoff_base_us = 100.0;
  policy.backoff_max_us = 5000.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(backoff_us(policy, 2, 1), 100.0);
  EXPECT_DOUBLE_EQ(backoff_us(policy, 3, 1), 200.0);
  EXPECT_DOUBLE_EQ(backoff_us(policy, 4, 1), 400.0);
  // Far attempts clamp to the max instead of overflowing.
  EXPECT_DOUBLE_EQ(backoff_us(policy, 40, 1), 5000.0);
  EXPECT_DOUBLE_EQ(backoff_us(policy, 200, 1), 5000.0);
}

TEST(RetryPolicy, JitterIsDeterministicAndCentered) {
  RetryPolicy policy;
  policy.backoff_base_us = 1000.0;
  policy.jitter_fraction = 0.5;
  const double a = backoff_us(policy, 2, 7);
  const double b = backoff_us(policy, 2, 7);
  EXPECT_DOUBLE_EQ(a, b);  // same stream value, same jitter
  EXPECT_NE(backoff_us(policy, 2, 8), a);
  // jitter 0.5 maps into [0.75, 1.25] x base.
  EXPECT_GE(a, 750.0);
  EXPECT_LE(a, 1250.0);
}

}  // namespace
}  // namespace epajsrm::fault
