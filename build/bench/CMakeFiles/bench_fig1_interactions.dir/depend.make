# Empty dependencies file for bench_fig1_interactions.
# This may be replaced when dependencies are built.
