file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/epajsrm_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/epajsrm_sim.dir/logger.cpp.o"
  "CMakeFiles/epajsrm_sim.dir/logger.cpp.o.d"
  "CMakeFiles/epajsrm_sim.dir/simulation.cpp.o"
  "CMakeFiles/epajsrm_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/epajsrm_sim.dir/thread_pool.cpp.o"
  "CMakeFiles/epajsrm_sim.dir/thread_pool.cpp.o.d"
  "CMakeFiles/epajsrm_sim.dir/time.cpp.o"
  "CMakeFiles/epajsrm_sim.dir/time.cpp.o.d"
  "libepajsrm_sim.a"
  "libepajsrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
