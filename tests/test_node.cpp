#include "platform/node.hpp"

#include <gtest/gtest.h>

namespace epajsrm::platform {
namespace {

Node make_node(std::uint32_t cores = 32) {
  NodeConfig cfg;
  cfg.cores = cores;
  return Node(0, cfg, /*rack=*/0, /*pdu=*/0, /*loop=*/0);
}

TEST(Node, StartsIdleAndFree) {
  Node n = make_node();
  EXPECT_EQ(n.state(), NodeState::kIdle);
  EXPECT_EQ(n.cores_free(), 32u);
  EXPECT_TRUE(n.schedulable());
  EXPECT_DOUBLE_EQ(n.utilization(), 0.0);
}

TEST(Node, AllocateMovesToBusy) {
  Node n = make_node();
  n.allocate(1, 16);
  EXPECT_EQ(n.state(), NodeState::kBusy);
  EXPECT_EQ(n.cores_in_use(), 16u);
  EXPECT_EQ(n.cores_free(), 16u);
}

TEST(Node, UtilizationWeightsIntensity) {
  Node n = make_node();
  n.allocate(1, 16, 0.5);
  EXPECT_DOUBLE_EQ(n.utilization(), 0.25);  // 16 * 0.5 / 32
  n.allocate(2, 16, 1.0);
  EXPECT_DOUBLE_EQ(n.utilization(), 0.75);
}

TEST(Node, ReleaseRestoresIdle) {
  Node n = make_node();
  n.allocate(1, 32);
  EXPECT_EQ(n.release(1), 32u);
  EXPECT_EQ(n.state(), NodeState::kIdle);
  EXPECT_DOUBLE_EQ(n.utilization(), 0.0);
}

TEST(Node, ReleaseUnknownJobReturnsZero) {
  Node n = make_node();
  EXPECT_EQ(n.release(99), 0u);
}

TEST(Node, MultipleJobsShareNode) {
  Node n = make_node();
  n.allocate(1, 8);
  n.allocate(2, 8);
  n.allocate(3, 16);
  EXPECT_EQ(n.cores_free(), 0u);
  n.release(2);
  EXPECT_EQ(n.cores_free(), 8u);
  EXPECT_EQ(n.state(), NodeState::kBusy);  // others remain
}

TEST(Node, OverAllocationThrows) {
  Node n = make_node();
  n.allocate(1, 30);
  EXPECT_THROW(n.allocate(2, 4), std::invalid_argument);
}

TEST(Node, ZeroCoreAllocationThrows) {
  Node n = make_node();
  EXPECT_THROW(n.allocate(1, 0), std::invalid_argument);
}

TEST(Node, DuplicateJobAllocationThrows) {
  Node n = make_node();
  n.allocate(1, 4);
  EXPECT_THROW(n.allocate(1, 4), std::logic_error);
}

TEST(Node, BadIntensityThrows) {
  Node n = make_node();
  EXPECT_THROW(n.allocate(1, 4, 0.0), std::invalid_argument);
  EXPECT_THROW(n.allocate(1, 4, 1.5), std::invalid_argument);
}

TEST(Node, AllocateOnOffNodeThrows) {
  Node n = make_node();
  n.set_state(NodeState::kOff);
  EXPECT_FALSE(n.schedulable());
  EXPECT_THROW(n.allocate(1, 4), std::logic_error);
}

TEST(Node, PowerTransitionWithJobsThrows) {
  Node n = make_node();
  n.allocate(1, 4);
  EXPECT_THROW(n.set_state(NodeState::kOff), std::logic_error);
  EXPECT_THROW(n.set_state(NodeState::kShuttingDown), std::logic_error);
  // Draining with jobs is legal (finish-then-maintain semantics).
  EXPECT_NO_THROW(n.set_state(NodeState::kDraining));
}

TEST(Node, CapSetterClampsNegative) {
  Node n = make_node();
  n.set_power_cap_watts(-5.0);
  EXPECT_DOUBLE_EQ(n.power_cap_watts(), 0.0);
  n.set_power_cap_watts(250.0);
  EXPECT_DOUBLE_EQ(n.power_cap_watts(), 250.0);
}

TEST(NodeState, ToStringCoversAll) {
  EXPECT_STREQ(to_string(NodeState::kOff), "off");
  EXPECT_STREQ(to_string(NodeState::kBooting), "booting");
  EXPECT_STREQ(to_string(NodeState::kIdle), "idle");
  EXPECT_STREQ(to_string(NodeState::kBusy), "busy");
  EXPECT_STREQ(to_string(NodeState::kDraining), "draining");
  EXPECT_STREQ(to_string(NodeState::kShuttingDown), "shutting-down");
  EXPECT_STREQ(to_string(NodeState::kSleeping), "sleeping");
}

}  // namespace
}  // namespace epajsrm::platform
