// Scenario: one self-contained simulation experiment — cluster + solution
// + synthetic workload — buildable from an explicit config or from a
// surveyed center's profile. The bench and example programs are thin
// layers over this.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/solution.hpp"
#include "edc/transport.hpp"
#include "epa/energy_budget.hpp"
#include "platform/cluster.hpp"
#include "sim/simulation.hpp"
#include "survey/centers.hpp"
#include "workload/generator.hpp"

namespace epajsrm::core {

/// Workload mixes per the survey's Q3(d) capability/capacity distinction.
enum class WorkloadMix { kStandard, kCapability, kCapacity };

/// Everything needed to run one experiment.
struct ScenarioConfig {
  std::string label = "scenario";

  // Cluster.
  std::uint32_t nodes = 64;
  platform::NodeConfig node_config{};
  double variability_sigma = 0.0;
  platform::Facility::Config facility{};
  platform::AmbientModel ambient{};
  std::uint32_t pstate_steps = 8;
  double top_ghz = 2.6;
  double bottom_ghz = 1.2;
  std::uint32_t nodes_per_rack = 16;
  std::uint32_t racks_per_pdu = 2;
  std::uint32_t racks_per_cooling_loop = 4;

  // Workload.
  WorkloadMix mix = WorkloadMix::kStandard;
  /// Jobs to generate; 0 = generate arrivals across 80 % of the horizon
  /// (utilisation-driven experiments).
  std::size_t job_count = 0;
  /// Target mean core utilisation the arrival rate is derived for (the
  /// explicit arrival_rate overrides when > 0).
  double target_utilization = 0.75;
  double arrival_rate_per_hour = 0.0;
  std::uint64_t seed = 1;

  // Solution.
  SolutionConfig solution{};

  /// Energy-budget scheduling: when set, the scenario installs an
  /// epa::EnergyBudgetScheduler with this config instead of the default
  /// EASY backfill (prefer ScenarioBuilder::energy_budget).
  std::optional<epa::EnergyBudgetConfig> energy_budget;

  /// External decision component: when set, the scenario installs an
  /// edc::ExternalScheduler over this transport as the scheduling policy
  /// (prefer ScenarioBuilder::external_scheduler). Takes precedence over
  /// `energy_budget` — set both to drive the energy-budget family through
  /// the loopback boundary.
  std::shared_ptr<edc::Transport> external_transport;

  /// Wall-clock horizon; the run also ends when the workload drains.
  sim::SimTime horizon = 4 * sim::kDay;

  // Partitioned execution (lax-sync core, DESIGN.md §15). Execution
  // knobs only: results are bit-identical for every setting, so none of
  // these enter the canonical hash (scenario_hash.cpp) — the service
  // cache hits across differing partition counts by construction.

  /// Rack/PDU partitions the single simulation fans out across; 1 (the
  /// default) is the classic single-threaded engine.
  std::uint32_t partitions = 1;
  /// Worker threads for the partition phase; 0 = min(partitions,
  /// hardware). The ensemble engine clamps this per cell so replication-
  /// and partition-level parallelism compose without oversubscription.
  std::size_t partition_workers = 0;
  /// Bounded clock-skew window within an epoch; 0 = one control period.
  sim::SimTime skew_window = 0;
};

/// Rejects configs that cannot form a runnable experiment (zero nodes,
/// zero-size rack/PDU groupings, non-positive horizon, inverted DVFS
/// ladder) with std::invalid_argument naming the offending field. Called
/// by the Scenario constructor, so ScenarioBuilder::build() validates too.
void validate(const ScenarioConfig& config);

/// Derives a Poisson arrival rate that loads `nodes` nodes to roughly
/// `utilization` given the catalog's mean job size and runtime.
double arrival_rate_for_utilization(const workload::AppCatalog& catalog,
                                    std::uint32_t nodes, double utilization);

/// Builds the workload catalog for a mix on a machine of `nodes` nodes.
workload::AppCatalog catalog_for(WorkloadMix mix, std::uint32_t nodes);

class ScenarioBuilder;

/// A runnable experiment. Construction builds the cluster and solution;
/// callers may then customise (policies, scheduler, supply) before run().
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  /// Fluent alternative to filling a ScenarioConfig by hand; see
  /// core/scenario_builder.hpp (defined there — include it, or the
  /// epajsrm.hpp umbrella, to call this).
  static ScenarioBuilder builder();

  /// A replica of a surveyed center: its scaled node counts, per-node
  /// power envelope, facility capacity (scaled) and workload orientation.
  static ScenarioConfig center_config(const survey::CenterProfile& profile,
                                      std::size_t job_count = 300,
                                      std::uint64_t seed = 1);

  sim::Simulation& simulation() { return sim_; }
  platform::Cluster& cluster() { return cluster_; }
  EpaJsrmSolution& solution() { return *solution_; }
  /// The lax-sync partition domain, or null when partitions == 1.
  PartitionDomain* partition_domain() { return domain_.get(); }
  const ScenarioConfig& config() const { return config_; }

  /// Generates the workload (deterministic from the seed), submits it,
  /// runs to drain-or-horizon and finalises. Call once.
  RunResult run();

 private:
  ScenarioConfig config_;
  sim::Simulation sim_;
  platform::Cluster cluster_;
  std::unique_ptr<EpaJsrmSolution> solution_;
  /// Declared after solution_: the domain shards the solution's ledger,
  /// so it must be destroyed first.
  std::unique_ptr<PartitionDomain> domain_;
  bool ran_ = false;
};

}  // namespace epajsrm::core
