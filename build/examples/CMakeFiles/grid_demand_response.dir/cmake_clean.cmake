file(REMOVE_RECURSE
  "CMakeFiles/grid_demand_response.dir/grid_demand_response.cpp.o"
  "CMakeFiles/grid_demand_response.dir/grid_demand_response.cpp.o.d"
  "grid_demand_response"
  "grid_demand_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_demand_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
