// Cancellable discrete-event queue.
//
// Events are (time, sequence) ordered: ties in time fire in scheduling
// order, which makes multi-component interactions (telemetry tick before
// scheduler tick scheduled later, etc.) deterministic. Cancellation is
// lazy: a cancelled id stays in the heap but its callback is dropped, so
// cancel is O(log n) amortised over pops rather than O(n) heap surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Sentinel for "no event" (EventId 0 is never issued).
inline constexpr EventId kNoEvent = 0;

/// Default category tag for events scheduled without one.
inline constexpr const char* kDefaultEventCategory = "sim.event";

/// A time-ordered queue of callbacks with O(log n) push/pop and lazy
/// cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `t`. Returns a handle that can
  /// be passed to cancel(). `category` tags the event for the event-loop
  /// profiler and must be a static string (literals; never freed).
  EventId push(SimTime t, Callback cb,
               const char* category = kDefaultEventCategory);

  /// Cancels a pending event. Returns true if the event was still pending;
  /// false if it already fired, was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Must not be called when empty().
  SimTime next_time() const;

  /// Removes and returns the earliest live event. Must not be called when
  /// empty().
  struct Popped {
    SimTime time;
    EventId id;
    Callback callback;
    const char* category;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the heap top so next_time()/pop() see a
  /// live event.
  void skip_dead() const;

  struct Stored {
    Callback callback;
    const char* category;
  };

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Stored> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace epajsrm::sim
