#include "epa/static_power_cap.hpp"

#include <algorithm>
#include <vector>

namespace epajsrm::epa {

void StaticPowerCapPolicy::install(PolicyHost& host) {
  EpaPolicy::install(host);
  platform::Cluster& cluster = host.cluster();
  const std::uint32_t total = cluster.node_count();
  capped_nodes_ = static_cast<std::uint32_t>(
      std::clamp(fraction_, 0.0, 1.0) * total);

  std::vector<platform::NodeId> capped;
  capped.reserve(capped_nodes_);
  for (platform::NodeId id = 0; id < capped_nodes_; ++id) {
    capped.push_back(id);
  }
  host.set_group_cap(capped, cap_watts_);

  budget_ = 0.0;
  for (const platform::Node& node : cluster.nodes()) {
    budget_ += node.power_cap_watts() > 0.0
                   ? node.power_cap_watts()
                   : host.power_model().peak_watts(node.config());
  }
}

}  // namespace epajsrm::epa
