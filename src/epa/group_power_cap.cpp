#include "epa/group_power_cap.hpp"

#include <algorithm>

namespace epajsrm::epa {

void GroupPowerCapPolicy::apply_source_caps(PolicyHost& host,
                                            double budget_watts) {
  const auto& pdus = host.cluster().facility().pdus();
  double total_peak = 0.0;
  for (const platform::Pdu& pdu : pdus) {
    total_peak += host.ledger().pdu_peak_watts(pdu.id);
  }
  for (const platform::Pdu& pdu : pdus) {
    if (pdu.nodes.empty()) continue;
    const double pdu_peak = host.ledger().pdu_peak_watts(pdu.id);
    // Budget 0 = uncapped: restore every node to its peak.
    const double group_watts =
        budget_watts > 0.0 && total_peak > 0.0
            ? budget_watts * pdu_peak / total_peak
            : pdu_peak;
    host.set_group_cap(pdu.nodes,
                       group_watts / static_cast<double>(pdu.nodes.size()));
  }
  applied_source_watts_ = budget_watts;
}

void GroupPowerCapPolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr || !source_.has_value()) return;
  const double budget_watts = source_->refresh(now, host_);
  if (budget_watts != applied_source_watts_) {
    apply_source_caps(*host_, budget_watts);
  }
}

void GroupPowerCapPolicy::install(PolicyHost& host) {
  EpaPolicy::install(host);
  platform::Cluster& cluster = host.cluster();
  const auto& pdus = cluster.facility().pdus();

  if (source_.has_value()) {
    const double budget_watts =
        source_->refresh(host.simulation().now(), nullptr);
    apply_source_caps(host, budget_watts);
    return;
  }

  budget_ = 0.0;
  for (const platform::Pdu& pdu : pdus) {
    // Per-PDU peak sums are static; the ledger keeps them precomputed.
    const double pdu_peak = host.ledger().pdu_peak_watts(pdu.id);
    double cap = 0.0;
    if (uniform_fraction_ > 0.0) {
      cap = pdu_peak * uniform_fraction_;
    } else if (pdu.id < group_caps_.size()) {
      cap = group_caps_[pdu.id];
    }
    if (cap > 0.0 && !pdu.nodes.empty()) {
      host.set_group_cap(pdu.nodes,
                         cap / static_cast<double>(pdu.nodes.size()));
      budget_ += cap;
    } else {
      budget_ += pdu_peak;
    }
  }
}

void GroupPowerCapPolicy::set_group_cap(PolicyHost& host,
                                        platform::PduId group, double watts) {
  const platform::Pdu& pdu = host.cluster().facility().pdu(group);
  if (pdu.nodes.empty()) return;
  host.set_group_cap(pdu.nodes,
                     watts > 0.0
                         ? watts / static_cast<double>(pdu.nodes.size())
                         : 0.0);
}

}  // namespace epajsrm::epa
