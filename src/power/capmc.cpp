#include "power/capmc.hpp"

#include <algorithm>

namespace epajsrm::power {

void CapmcController::set_node_cap(platform::NodeId node, double watts) {
  platform::Node& n = cluster_->node(node);
  n.set_power_cap_watts(watts);
  model_->apply(n);
}

void CapmcController::set_group_cap(std::span<const platform::NodeId> nodes,
                                    double watts) {
  for (platform::NodeId id : nodes) set_node_cap(id, watts);
}

void CapmcController::set_system_cap(double total_watts) {
  const std::uint32_t n = cluster_->node_count();
  if (n == 0) return;
  if (total_watts <= 0.0) {
    clear_all_caps();
    return;
  }
  const double per_node = total_watts / n;
  double guaranteed = 0.0;
  for (platform::Node& node : cluster_->nodes()) {
    // A cap below the idle floor can never be met by DVFS; clamp to the
    // floor plus a sliver of dynamic headroom so the node stays usable.
    const double floor = node.config().idle_watts * 1.02;
    const double cap = std::max(per_node, floor);
    node.set_power_cap_watts(cap);
    model_->apply(node);
    guaranteed += cap;
  }
  system_cap_error_ = std::max(0.0, guaranteed - total_watts);
}

void CapmcController::clear_all_caps() {
  for (platform::Node& node : cluster_->nodes()) {
    node.set_power_cap_watts(0.0);
    model_->apply(node);
  }
  system_cap_error_ = 0.0;
}

double CapmcController::worst_case_watts() const {
  double total = 0.0;
  for (const platform::Node& node : cluster_->nodes()) {
    const double cap = node.power_cap_watts();
    total += cap > 0.0 ? cap : model_->peak_watts(node.config());
  }
  return total;
}

std::uint32_t CapmcController::capped_node_count() const {
  return static_cast<std::uint32_t>(std::count_if(
      cluster_->nodes().begin(), cluster_->nodes().end(),
      [](const platform::Node& n) { return n.power_cap_watts() > 0.0; }));
}

}  // namespace epajsrm::power
