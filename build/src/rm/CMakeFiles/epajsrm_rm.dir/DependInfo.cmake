
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rm/allocator.cpp" "src/rm/CMakeFiles/epajsrm_rm.dir/allocator.cpp.o" "gcc" "src/rm/CMakeFiles/epajsrm_rm.dir/allocator.cpp.o.d"
  "/root/repo/src/rm/layout.cpp" "src/rm/CMakeFiles/epajsrm_rm.dir/layout.cpp.o" "gcc" "src/rm/CMakeFiles/epajsrm_rm.dir/layout.cpp.o.d"
  "/root/repo/src/rm/node_lifecycle.cpp" "src/rm/CMakeFiles/epajsrm_rm.dir/node_lifecycle.cpp.o" "gcc" "src/rm/CMakeFiles/epajsrm_rm.dir/node_lifecycle.cpp.o.d"
  "/root/repo/src/rm/resource_manager.cpp" "src/rm/CMakeFiles/epajsrm_rm.dir/resource_manager.cpp.o" "gcc" "src/rm/CMakeFiles/epajsrm_rm.dir/resource_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/epajsrm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/epajsrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
