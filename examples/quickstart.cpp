// Quickstart: build a small cluster, run a synthetic workload under an
// energy/power-aware stack, and print the run report plus a user-facing
// job energy report — the smallest end-to-end tour of the public API.
//
// Observability flags:
//   --trace-out=<path>    write a Chrome trace_event JSON (Perfetto /
//                         chrome://tracing loadable) of the run
//   --metrics-out=<path>  write the periodic metrics snapshots as CSV
//   --log-level=<level>   logger threshold (trace..error, off)
// Passing either output flag enables the observability plane; without
// them the run is exactly the zero-overhead disabled configuration.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "epajsrm.hpp"

namespace {

bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epajsrm;

  std::string trace_out;
  std::string metrics_out;
  std::string log_level;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--trace-out=", &trace_out)) continue;
    if (flag_value(argv[i], "--metrics-out=", &metrics_out)) continue;
    if (flag_value(argv[i], "--log-level=", &log_level)) continue;
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  // 1. Describe the experiment: a 64-node machine, ~75 % loaded, EASY
  //    backfilling (the default scheduler).
  core::Scenario scenario =
      core::Scenario::builder()
          .label("quickstart")
          .nodes(64)
          .job_count(0)  // fill the horizon
          .seed(7)
          .observability(!trace_out.empty() || !metrics_out.empty())
          .build();

  if (!log_level.empty()) {
    const auto level = sim::parse_log_level(log_level);
    if (!level) {
      std::fprintf(stderr, "unknown log level: %s\n", log_level.c_str());
      return 2;
    }
    scenario.solution().logger().set_threshold(*level);
  }

  // 2. Make it energy/power aware: a 22 kW IT power budget enforced at
  //    admission with DVFS degradation, plus idle-node shutdown.
  scenario.solution().add_policy(
      std::make_unique<epa::PowerBudgetDvfsPolicy>(22'000.0));
  scenario.solution().add_policy(std::make_unique<epa::IdleShutdownPolicy>());

  // 3. Run to completion and report.
  const core::RunResult result = scenario.run();

  std::printf("%s\n", metrics::format_report(result.report).c_str());
  std::printf("exact IT energy: %.1f kWh (overhead %.1f kWh)\n",
              result.total_it_kwh_exact, result.overhead_kwh);
  std::printf("node boots: %llu, shutdowns: %llu, scheduling passes: %llu\n",
              static_cast<unsigned long long>(result.node_boots),
              static_cast<unsigned long long>(result.node_shutdowns),
              static_cast<unsigned long long>(result.scheduling_passes));

  // 4. The per-job energy report users get at job end (Tokyo Tech /
  //    JCAHPC production capability).
  if (!result.job_reports.empty()) {
    std::printf("\nSample end-of-job report (of %zu):\n%s",
                result.job_reports.size(),
                telemetry::format_energy_report(result.job_reports.front())
                    .c_str());
  }

  // 5. Export the observability artifacts when requested.
  if (obs::Observability* o = scenario.solution().observability()) {
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open trace output: %s\n",
                     trace_out.c_str());
        return 1;
      }
      // A .jsonl path selects the line-oriented export; anything else gets
      // the Perfetto-loadable Chrome trace.
      if (trace_out.size() >= 6 &&
          trace_out.compare(trace_out.size() - 6, 6, ".jsonl") == 0) {
        o->trace().export_jsonl(out);
      } else {
        o->trace().export_chrome_trace(out);
      }
      std::printf("\ntrace: %llu events recorded (%llu retained) -> %s\n",
                  static_cast<unsigned long long>(o->trace().recorded()),
                  static_cast<unsigned long long>(o->trace().size()),
                  trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open metrics output: %s\n",
                     metrics_out.c_str());
        return 1;
      }
      o->sampler().write_csv(out);
      std::printf("metrics: %zu instruments, %zu rows -> %s\n",
                  o->metrics().metric_count(), o->sampler().row_count(),
                  metrics_out.c_str());
    }
    std::printf("%s", o->profiler().format_report().c_str());
  }
  return 0;
}
