#include "telemetry/power_api.hpp"

#include <gtest/gtest.h>

#include "power/ledger.hpp"
#include "power/node_power_model.hpp"

namespace epajsrm::telemetry {
namespace {

class PowerApiTest : public ::testing::Test {
 protected:
  PowerApiTest()
      : cluster_(platform::ClusterBuilder()
                     .name("plat")
                     .node_count(8)
                     .nodes_per_rack(4)
                     .build()),
        model_(cluster_.pstates()), ledger_(cluster_),
        capmc_(cluster_, model_),
        ctx_(cluster_, ledger_, &capmc_,
             [this](platform::NodeId id) { return 100.0 * (id + 1); }) {
    model_.attach_ledger(&ledger_);
    ledger_.prime(cluster_, model_);
  }

  platform::Cluster cluster_;
  power::NodePowerModel model_;
  power::PowerLedger ledger_;
  power::CapmcController capmc_;
  PowerApiContext ctx_;
};

TEST_F(PowerApiTest, HierarchyNavigation) {
  const PwrObject root = ctx_.entry_point();
  EXPECT_EQ(root.type, PwrObjType::kPlatform);
  EXPECT_EQ(root.name, "plat");

  const auto cabinets = ctx_.children(root);
  ASSERT_EQ(cabinets.size(), 2u);
  EXPECT_EQ(cabinets[0].type, PwrObjType::kCabinet);

  const auto nodes = ctx_.children(cabinets[1]);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].type, PwrObjType::kNode);
  EXPECT_EQ(nodes[0].index, 4u);
  EXPECT_TRUE(ctx_.children(nodes[0]).empty());

  EXPECT_EQ(ctx_.parent(nodes[0]).index, 1u);
  EXPECT_EQ(ctx_.parent(cabinets[0]).type, PwrObjType::kPlatform);
  EXPECT_EQ(ctx_.parent(root).type, PwrObjType::kPlatform);
  EXPECT_EQ(ctx_.object_count(), 1u + 2u + 8u);
}

TEST_F(PowerApiTest, PowerAggregatesUpTheTree) {
  const double idle = cluster_.node(0).config().idle_watts;
  const PwrObject root = ctx_.entry_point();
  EXPECT_NEAR(ctx_.attr_get(root, PwrAttr::kPower), 8 * idle, 1e-9);
  const auto cabinets = ctx_.children(root);
  EXPECT_NEAR(ctx_.attr_get(cabinets[0], PwrAttr::kPower), 4 * idle, 1e-9);
  const auto nodes = ctx_.children(cabinets[0]);
  EXPECT_NEAR(ctx_.attr_get(nodes[0], PwrAttr::kPower), idle, 1e-9);
}

TEST_F(PowerApiTest, NodeOnlyAttributes) {
  const PwrObject root = ctx_.entry_point();
  const auto node = ctx_.children(ctx_.children(root)[0])[0];
  EXPECT_GT(ctx_.attr_get(node, PwrAttr::kTemp), 0.0);
  EXPECT_NEAR(ctx_.attr_get(node, PwrAttr::kFreq),
              cluster_.pstates().freq_ghz(0), 1e-9);
  EXPECT_THROW(ctx_.attr_get(root, PwrAttr::kTemp), PwrNotImplemented);
  EXPECT_THROW(ctx_.attr_get(root, PwrAttr::kFreq), PwrNotImplemented);
}

TEST_F(PowerApiTest, EnergyUsesMeter) {
  const PwrObject root = ctx_.entry_point();
  // Meter returns 100*(id+1): platform total = 100*(1+..+8) = 3600.
  EXPECT_NEAR(ctx_.attr_get(root, PwrAttr::kEnergy), 3600.0, 1e-9);
  PowerApiContext no_meter(cluster_, ledger_, &capmc_);
  EXPECT_THROW(no_meter.attr_get(root, PwrAttr::kEnergy),
               PwrNotImplemented);
}

TEST_F(PowerApiTest, NodeCapWrite) {
  const auto node = ctx_.children(ctx_.children(ctx_.entry_point())[0])[2];
  ctx_.attr_set(node, PwrAttr::kPowerLimitMax, 150.0);
  EXPECT_DOUBLE_EQ(cluster_.node(node.index).power_cap_watts(), 150.0);
  EXPECT_DOUBLE_EQ(ctx_.attr_get(node, PwrAttr::kPowerLimitMax), 150.0);
}

TEST_F(PowerApiTest, CabinetCapDividesAcrossMembers) {
  const auto cabinet = ctx_.children(ctx_.entry_point())[1];
  ctx_.attr_set(cabinet, PwrAttr::kPowerLimitMax, 800.0);
  for (platform::NodeId id = 4; id < 8; ++id) {
    EXPECT_NEAR(cluster_.node(id).power_cap_watts(), 200.0, 1e-9);
  }
  EXPECT_NEAR(ctx_.attr_get(cabinet, PwrAttr::kPowerLimitMax), 800.0, 1e-9);
}

TEST_F(PowerApiTest, PlatformCapIsSystemWide) {
  ctx_.attr_set(ctx_.entry_point(), PwrAttr::kPowerLimitMax, 1600.0);
  EXPECT_EQ(capmc_.capped_node_count(), 8u);
}

TEST_F(PowerApiTest, AggregateLimitZeroWhenAnyUncapped) {
  const auto cabinet = ctx_.children(ctx_.entry_point())[0];
  EXPECT_DOUBLE_EQ(ctx_.attr_get(cabinet, PwrAttr::kPowerLimitMax), 0.0);
}

TEST_F(PowerApiTest, WritesRejectedWithoutController) {
  PowerApiContext read_only(cluster_, ledger_);
  EXPECT_THROW(
      read_only.attr_set(read_only.entry_point(), PwrAttr::kPowerLimitMax,
                         1000.0),
      std::logic_error);
}

TEST_F(PowerApiTest, OnlyCapIsWritable) {
  const auto node = ctx_.children(ctx_.children(ctx_.entry_point())[0])[0];
  EXPECT_THROW(ctx_.attr_set(node, PwrAttr::kPower, 1.0),
               PwrNotImplemented);
  EXPECT_THROW(ctx_.attr_set(node, PwrAttr::kTemp, 1.0), PwrNotImplemented);
}

TEST(PowerApiNames, EnumStrings) {
  EXPECT_STREQ(to_string(PwrObjType::kPlatform), "platform");
  EXPECT_STREQ(to_string(PwrAttr::kPowerLimitMax),
               "PWR_ATTR_POWER_LIMIT_MAX");
}

}  // namespace
}  // namespace epajsrm::telemetry
