#include "epa/energy_cost_order.hpp"

#include <algorithm>
#include <limits>

namespace epajsrm::epa {

bool EnergyCostOrderPolicy::price_premium(sim::SimTime now) const {
  power::SupplyPortfolio* s = host_->supply();
  if (s == nullptr || s->sources().empty()) return false;
  const power::Tariff& tariff = s->sources().front().tariff;
  double cheapest = std::numeric_limits<double>::max();
  for (const power::Tariff::Band& band : tariff.bands()) {
    cheapest = std::min(cheapest, band.price_per_kwh);
  }
  const double now_price = tariff.price_at(now);
  return now_price > cheapest * (1.0 + config_.premium_threshold);
}

bool EnergyCostOrderPolicy::deadline_pressure(const workload::Job& job,
                                              sim::SimTime now) const {
  const workload::JobSpec& spec = job.spec();
  if (spec.deadline <= 0) return false;
  const sim::SimTime slack = spec.deadline - now;
  return slack < static_cast<sim::SimTime>(
                     static_cast<double>(spec.walltime_estimate) *
                     config_.deadline_safety);
}

void EnergyCostOrderPolicy::reorder_queue(
    std::vector<workload::Job*>& pending, sim::SimTime now) {
  if (host_ == nullptr || !price_premium(now)) return;
  // Stable partition: non-deferrable (or deadline-pressured) work first,
  // deferrable work to the back of the queue.
  std::stable_partition(pending.begin(), pending.end(),
                        [this, now](const workload::Job* job) {
                          return !job->spec().deferrable ||
                                 deadline_pressure(*job, now);
                        });
}

bool EnergyCostOrderPolicy::plan_start(StartPlan& plan) {
  if (host_ == nullptr || plan.job == nullptr) return true;
  const workload::Job& job = *plan.job;
  const sim::SimTime now = host_->simulation().now();
  if (job.spec().deferrable && price_premium(now) &&
      !deadline_pressure(job, now)) {
    if (!plan.dry_run) ++deferrals_;
    return false;  // hold until prices drop (or deadline pressure builds)
  }
  return true;
}

}  // namespace epajsrm::epa
