// Fixture: iterating an unordered container in a function whose effects
// are order-sensitive (streamed output). Must trip unordered-iter.
#include <iostream>
#include <string>
#include <unordered_map>

namespace fixture {

class Report {
 public:
  void dump() const {
    for (const auto& [node, watts] : draw_) {
      std::cout << node << " " << watts << "\n";
    }
  }

 private:
  std::unordered_map<std::string, int> draw_;
};

}  // namespace fixture
