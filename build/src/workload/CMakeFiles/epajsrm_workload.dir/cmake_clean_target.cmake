file(REMOVE_RECURSE
  "libepajsrm_workload.a"
)
