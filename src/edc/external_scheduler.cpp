#include "edc/external_scheduler.hpp"

#include <stdexcept>

#include "obs/observability.hpp"
#include "obs/wall.hpp"
#include "workload/job.hpp"

namespace epajsrm::edc {

ExternalScheduler::ExternalScheduler(std::shared_ptr<Transport> transport,
                                     ExternalSchedulerConfig config)
    : transport_(std::move(transport)), config_(config) {
  if (!transport_) {
    throw std::invalid_argument("external scheduler needs a transport");
  }
}

std::string ExternalScheduler::name() const {
  return "edc:" + transport_->describe();
}

bool ExternalScheduler::wants_pass(sched::DecisionPoint::Kind kind) const {
  switch (kind) {
    case sched::DecisionPoint::Kind::kJobSubmitted:
    case sched::DecisionPoint::Kind::kJobEnded:
    case sched::DecisionPoint::Kind::kPowerBudgetChanged:
      return true;
    case sched::DecisionPoint::Kind::kBudgetTick:
      return config_.pass_on_budget_tick;
    case sched::DecisionPoint::Kind::kSimulationBegins:
    case sched::DecisionPoint::Kind::kSimulationEnds:
      return false;
  }
  return false;
}

void ExternalScheduler::on_decision_point(const sched::DecisionPoint& point,
                                          sched::SchedulingContext& ctx) {
  Message m;
  m.time = point.time;
  m.seq = point.seq;
  switch (point.kind) {
    case sched::DecisionPoint::Kind::kSimulationBegins: {
      m.type = Message::Type::kSimulationBegins;
      const platform::Cluster& cluster = ctx.cluster();
      const platform::NodeConfig& node = cluster.node(0).config();
      m.total_nodes = cluster.node_count();
      m.peak_node_watts = node.idle_watts + node.dynamic_watts;
      m.idle_node_watts = node.idle_watts;
      break;
    }
    case sched::DecisionPoint::Kind::kJobSubmitted: {
      m.type = Message::Type::kJobSubmitted;
      m.job = point.job;
      // The job is in the queue at this decision point by construction;
      // its spec fills the submission record.
      for (const workload::Job* job : ctx.pending()) {
        if (job->id() == point.job) {
          m.submit_time = job->submit_time();
          m.nodes = job->spec().nodes;
          m.walltime = job->spec().walltime_estimate;
          break;
        }
      }
      m.estimated_energy_joules = point.energy_joules;
      break;
    }
    case sched::DecisionPoint::Kind::kJobEnded:
      m.type = Message::Type::kJobEnded;
      m.job = point.job;
      m.energy_joules = point.energy_joules;
      break;
    case sched::DecisionPoint::Kind::kBudgetTick:
      m.type = Message::Type::kBudgetTick;
      break;
    case sched::DecisionPoint::Kind::kPowerBudgetChanged:
      m.type = Message::Type::kPowerBudgetChanged;
      m.budget_watts = point.budget_watts;
      break;
    case sched::DecisionPoint::Kind::kSimulationEnds:
      m.type = Message::Type::kSimulationEnds;
      break;
  }
  outbox_.push_back(serialize(m));
  if (obs::Observability* obs = ctx.observability()) {
    obs->metrics().counter("edc.messages_sent").add(1);
  }

  // The final decision point cannot provoke a pass, so flush the batch
  // here; the component sees a complete event stream for the run. Any
  // replies are necessarily too late to apply.
  if (point.kind == sched::DecisionPoint::Kind::kSimulationEnds) {
    std::vector<std::string> batch;
    batch.swap(outbox_);
    const std::vector<std::string> replies = transport_->exchange(batch);
    ++exchanges_;
    replies_rejected_ += replies.size();
    if (obs::Observability* obs = ctx.observability()) {
      if (!replies.empty()) {
        obs->metrics().counter("edc.replies_rejected").add(replies.size());
      }
    }
  }
}

std::vector<std::string> ExternalScheduler::run_exchange(
    sched::SchedulingContext& ctx) {
  Message pass;
  pass.type = Message::Type::kSchedulingPass;
  pass.time = ctx.now();
  pass.seq = passes_++;
  pass.free_nodes = ctx.allocatable_nodes();
  pass.pending.reserve(ctx.pending().size());
  for (const workload::Job* job : ctx.pending()) {
    pass.pending.push_back(job->id());
  }
  outbox_.push_back(serialize(pass));

  std::vector<std::string> batch;
  batch.swap(outbox_);

  obs::Observability* obs = ctx.observability();
  const bool timed = obs != nullptr && obs->config().wall_instruments;
  const std::int64_t t0 = timed ? obs::wall_now_ns() : 0;
  std::vector<std::string> replies = transport_->exchange(batch);
  ++exchanges_;
  if (obs != nullptr) {
    obs->metrics().counter("edc.messages_sent").add(1);  // the pass line
    obs->metrics().counter("edc.exchanges").add(1);
    if (timed) {
      // Decision latency: the wall cost of one full round trip (serialize
      // is already done; this times transport + remote decision + reply).
      obs->metrics()
          .histogram("edc.decision_latency_us")
          .observe(static_cast<double>(obs::wall_now_ns() - t0) / 1000.0);
    }
  }
  return replies;
}

void ExternalScheduler::apply_replies(const std::vector<std::string>& lines,
                                      sched::SchedulingContext& ctx) {
  obs::Observability* obs = ctx.observability();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Reply reply = parse_reply(lines[i], i + 1);
    bool applied = false;
    switch (reply.type) {
      case Reply::Type::kStartJob:
        for (workload::Job* job : ctx.pending()) {
          if (job->id() == reply.job) {
            applied = ctx.try_start(*job, nullptr);
            break;
          }
        }
        break;
      case Reply::Type::kSetPowerCap:
        applied = ctx.apply_power_cap(reply.watts);
        break;
      case Reply::Type::kHold:
        applied = true;
        break;
      case Reply::Type::kRequeue:
        applied = ctx.requeue(reply.job) != platform::kNoJob;
        break;
    }
    if (applied) {
      ++replies_applied_;
    } else {
      // Unknown job, job no longer pending/running, or a cap the context
      // cannot actuate: reject quietly — external lag must not be able to
      // corrupt core state.
      ++replies_rejected_;
    }
    if (obs != nullptr) {
      obs->metrics()
          .counter(applied ? "edc.replies_applied" : "edc.replies_rejected")
          .add(1);
    }
  }
}

void ExternalScheduler::schedule(sched::SchedulingContext& ctx) {
  const std::vector<std::string> replies = run_exchange(ctx);
  apply_replies(replies, ctx);
}

}  // namespace epajsrm::edc
