#include "core/solution.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "obs/wall.hpp"
#include "predict/tag_history.hpp"
#include "sched/fcfs.hpp"

namespace epajsrm::core {

namespace {
/// Reference per-node draw used to centre energy-report grades: a typical
/// well-utilised node (70 % effective load at full frequency).
double reference_watts(const power::NodePowerModel& model,
                       const platform::NodeConfig& cfg) {
  return model.watts_at(cfg, 1.0, 0.7);
}
}  // namespace

EpaJsrmSolution::EpaJsrmSolution(sim::Simulation& sim,
                                 platform::Cluster& cluster,
                                 SolutionConfig config)
    : sim_(&sim), cluster_(&cluster), config_(config),
      logger_([&sim] { return sim.now(); }),
      model_(cluster.pstates(), config.power_alpha, config.cap_mode),
      capmc_(cluster, model_), thermal_(), ledger_(cluster) {
  // Attach the ledger before anything applies the model: from here on
  // every NodePowerModel::apply (lifecycle, allocation, cap, P-state) and
  // every thermal step posts its delta into the ledger, and all read
  // paths below consume O(1) aggregates instead of sweeping the cluster.
  model_.attach_ledger(&ledger_);
  thermal_.attach_ledger(&ledger_);
  ledger_.prime(cluster, model_);

  rm_ = std::make_unique<rm::ResourceManager>(
      sim, cluster, model_, std::make_unique<rm::FirstFitAllocator>());
  monitor_ = std::make_unique<telemetry::MonitoringService>(
      sim, cluster, ledger_, config_.control_period);
  accountant_ = std::make_unique<telemetry::EnergyAccountant>(
      cluster, ledger_, [this](workload::JobId id) { return find_job(id); });
  metrics_ = std::make_unique<metrics::MetricsCollector>(
      0.0, config_.tariff ? &*config_.tariff : nullptr);
  scheduler_ = std::make_unique<sched::EasyBackfillScheduler>();
  power_predictor_ = std::make_unique<predict::TagHistoryPowerPredictor>(
      model_.peak_watts(cluster.node(0).config()));

  rm_->set_quarantine_policy(config_.resilience.flap_threshold,
                             config_.resilience.flap_window,
                             config_.resilience.quarantine_duration);
  monitor_->set_stale_safety_margin(
      config_.resilience.telemetry_safety_margin);

  rm_->lifecycle().set_pre_power_change([this] { checkpoint_energy(); });
  rm_->lifecycle().set_post_power_change([this](platform::NodeId id) {
    platform::Node& node = cluster_->node(id);
    model_.apply(node);
    if (node.state() == platform::NodeState::kIdle) request_schedule();
  });

  obs_ = obs::Observability::create_if(config_.obs);
  if (obs_ != nullptr) {
    obs_->trace().set_sim_clock([&sim] { return sim.now(); });
    // Event-loop profiling reads the wall clock per dispatched event, so
    // it is a wall instrument too: under wall_instruments=false the hook
    // never attaches and the dispatch loop keeps its untimed fast path.
    if (obs_->config().profile_event_loop &&
        obs_->config().wall_instruments) {
      sim_->set_dispatch_sample_stride(obs_->config().profile_sample_stride);
      obs_->profiler().set_sample_stride(sim_->dispatch_sample_stride());
      sim_->set_dispatch_hook(
          [this](sim::EventCategory category, std::int64_t wall_ns) {
            obs_->profiler().record(category, wall_ns);
            dispatch_ns_hist_->observe(static_cast<double>(wall_ns));
          });
    }
    if (obs_->config().trace_log_lines) {
      logger_.set_event_sink([this](sim::LogLevel level, sim::SimTime,
                                    const std::string& component,
                                    const std::string& message) {
        obs_->trace().log_line(component, message, sim::to_string(level));
      });
    }
    capmc_.set_observability(obs_.get());
    rm_->set_observability(obs_.get());
    metrics_->attach_registry(&obs_->metrics());
    monitor_->attach_registry(&obs_->metrics());

    obs::MetricsRegistry& reg = obs_->metrics();
    jobs_started_counter_ = &reg.counter("sched.jobs_started");
    cap_actuations_counter_ = &reg.counter("epa.cap_actuations");
    pstate_changes_counter_ = &reg.counter("epa.pstate_changes");
    queue_depth_gauge_ = &reg.gauge("sim.queue_depth");
    pending_gauge_ = &reg.gauge("sched.pending_jobs");
    running_gauge_ = &reg.gauge("sched.running_jobs");
    if (obs_->config().wall_instruments) {
      dispatch_ns_hist_ = &reg.histogram("sim.dispatch_ns");
      pass_us_hist_ = &reg.histogram("sched.pass_us");
      ledger_.set_post_latency_histogram(
          &reg.histogram("power.ledger_post_ns"));
    }
  }
}

EpaJsrmSolution::~EpaJsrmSolution() = default;

void EpaJsrmSolution::set_scheduler(
    std::unique_ptr<sched::SchedulerPolicy> scheduler) {
  if (!scheduler) throw std::invalid_argument("scheduler required");
  scheduler_ = std::move(scheduler);
}

void EpaJsrmSolution::set_allocator(std::unique_ptr<rm::Allocator> allocator) {
  rm_->set_allocator(std::move(allocator));
}

void EpaJsrmSolution::add_policy(std::unique_ptr<epa::EpaPolicy> policy) {
  if (!policy) throw std::invalid_argument("policy required");
  policies_.push_back(std::move(policy));
  if (started_) policies_.back()->install(*this);
}

void EpaJsrmSolution::set_power_predictor(
    std::unique_ptr<predict::PowerPredictor> p) {
  if (!p) throw std::invalid_argument("predictor required");
  power_predictor_ = std::move(p);
}

void EpaJsrmSolution::set_runtime_predictor(
    std::unique_ptr<predict::RuntimePredictor> p) {
  runtime_predictor_ = std::move(p);
}

// --- workload ----------------------------------------------------------------

void EpaJsrmSolution::submit(workload::JobSpec spec) {
  if (spec.id == platform::kNoJob) {
    throw std::invalid_argument("job needs an id");
  }
  if (jobs_.contains(spec.id)) {
    throw std::invalid_argument("duplicate job id");
  }
  const sim::SimTime arrival = spec.submit_time;
  const workload::JobId id = spec.id;
  auto job = std::make_unique<workload::Job>(std::move(spec));
  jobs_.emplace(id, std::move(job));
  ++arrivals_outstanding_;
  sim_->schedule_at(arrival, [this, id] { on_arrival(id); }, "core.arrival");
}

void EpaJsrmSolution::submit_all(std::vector<workload::JobSpec> specs) {
  for (auto& spec : specs) submit(std::move(spec));
}

void EpaJsrmSolution::on_arrival(workload::JobId id) {
  workload::Job* job = find_job(id);
  assert(job != nullptr);
  assert(arrivals_outstanding_ > 0);
  --arrivals_outstanding_;
  pending_.push_back(job);
  // Freeze the planning-time energy estimate at submission: predicted
  // per-node draw × nodes × the walltime limit. Energy-budget admission
  // ranks and charges against this number, and the EDC job_submitted
  // message carries it verbatim so external planners see the same value.
  job->set_estimated_energy_joules(
      predict_node_watts(job->spec()) *
      static_cast<double>(job->spec().nodes) *
      sim::to_seconds(job->spec().walltime_estimate));
  metrics_->on_job_submitted(job->spec());
  emit_decision_point(sched::DecisionPoint::Kind::kJobSubmitted, id, 0.0,
                      job->estimated_energy_joules());
}

// --- execution -----------------------------------------------------------------

void EpaJsrmSolution::attach_partition_domain(PartitionDomain* domain) {
  EPAJSRM_REQUIRE(!started_, "attach the partition domain before start()");
  domain_ = domain;
  if (domain_ != nullptr) {
    EPAJSRM_REQUIRE(domain_->map().total_nodes() == cluster_->node_count(),
                    "partition domain maps a different machine");
    // The folded census replaces the monitor's O(N) utilization sweep:
    // exact integers, identical double (PartitionDomain docs).
    monitor_->set_utilization_provider(
        [domain] { return domain->core_utilization(); });
  } else {
    monitor_->set_utilization_provider({});
  }
}

void EpaJsrmSolution::start() {
  if (started_) return;
  started_ = true;

  // Prime the power model so idle draws are accounted from t = 0.
  for (platform::Node& node : cluster_->nodes()) model_.apply(node);

  for (auto& policy : policies_) policy->install(*this);

  sim_->schedule_every(
      config_.control_period,
      [this]() -> bool {
        if (stopping_) return false;
        control_tick();
        return true;
      },
      "core.control");
  sim_->schedule_every(
      config_.reschedule_period,
      [this]() -> bool {
        if (stopping_) return false;
        request_schedule();
        return true;
      },
      "core.reschedule");
  emit_decision_point(sched::DecisionPoint::Kind::kSimulationBegins);
  request_schedule();
}

void EpaJsrmSolution::run_until(sim::SimTime until) {
  start();
  // Run in hour-granular slices so a drained workload ends the run early.
  while (sim_->now() < until && !workload_drained()) {
    sim_->run_until(std::min(until, sim_->now() + sim::kHour));
  }
}

RunResult EpaJsrmSolution::finalize() {
  // stopping_ first: the final decision point is delivered (external
  // schedulers flush their last exchange on it) but can no longer provoke
  // a pass.
  stopping_ = true;
  emit_decision_point(sched::DecisionPoint::Kind::kSimulationEnds);
  checkpoint_energy();

  RunResult result;
  result.report = metrics_->finalize(sim_->now());
  result.total_it_kwh_exact = accountant_->total_it_joules() / 3.6e6;
  result.overhead_kwh = accountant_->overhead_joules() / 3.6e6;
  result.node_boots = rm_->lifecycle().boots();
  result.node_shutdowns = rm_->lifecycle().shutdowns();
  result.scheduling_passes = passes_;
  result.sim_events = sim_->events_processed();
  result.job_reports = job_reports_;
  result.kills_by_reason = kills_by_reason_;
  result.node_crashes = node_crashes_;
  result.pdu_trips = pdu_trips_;
  result.jobs_requeued_on_fault = jobs_requeued_on_fault_;
  result.jobs_lost_on_fault = jobs_lost_on_fault_;
  result.node_quarantines = rm_->quarantines();
  result.capmc_retries = capmc_.retries();
  result.capmc_failed_calls = capmc_.failed_calls();
  result.telemetry_dropped_samples = monitor_->dropped_samples();
  return result;
}

workload::Job* EpaJsrmSolution::find_job(workload::JobId id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

// --- SchedulingContext ------------------------------------------------------

sim::SimTime EpaJsrmSolution::now() const { return sim_->now(); }

std::uint32_t EpaJsrmSolution::allocatable_nodes() const {
  return rm_->allocatable_nodes();
}

bool EpaJsrmSolution::run_plan(epa::StartPlan& plan) {
  for (const auto& policy : policies_) {
    if (!policy->plan_start(plan)) return false;
  }
  return true;
}

bool EpaJsrmSolution::power_feasible(workload::Job& job,
                                     std::uint32_t nodes) {
  epa::StartPlan plan;
  plan.job = &job;
  plan.nodes = nodes;
  plan.dry_run = true;
  plan.predicted_node_watts = predict_node_watts(job.spec());
  return run_plan(plan);
}

bool EpaJsrmSolution::try_start(workload::Job& job,
                                const workload::MoldableConfig* shape) {
  if (job.state() != workload::JobState::kQueued) return false;

  epa::StartPlan plan;
  plan.job = &job;
  plan.nodes = shape != nullptr ? shape->nodes : job.spec().nodes;
  plan.runtime_scale = shape != nullptr ? shape->runtime_scale : 1.0;
  plan.predicted_node_watts = predict_node_watts(job.spec());
  if (!run_plan(plan)) return false;
  if (plan.nodes == 0) return false;

  if (rm_->allocatable_nodes() < plan.nodes) return false;

  checkpoint_energy();
  const std::vector<platform::NodeId> nodes = rm_->allocate(job, plan.nodes);
  if (nodes.empty()) return false;

  for (platform::NodeId id : nodes) {
    platform::Node& node = cluster_->node(id);
    node.set_pstate(plan.pstate);
    if (plan.node_cap_watts > 0.0) {
      node.set_power_cap_watts(plan.node_cap_watts);
    }
    model_.apply(node);
  }

  job.set_runtime_scale(plan.runtime_scale);
  pending_.erase(std::find(pending_.begin(), pending_.end(), &job));
  running_.push_back(&job);

  job.begin_execution(sim_->now(), min_freq_ratio(job));
  schedule_completion(job);

  if (config_.enforce_walltime) {
    const workload::JobId id = job.id();
    const sim::SimTime started = job.start_time();
    sim_->schedule_in(
        job.spec().walltime_estimate,
        [this, id, started] {
          workload::Job* j = find_job(id);
          if (j != nullptr && j->state() == workload::JobState::kRunning &&
              j->start_time() == started) {
            finish_job(*j, workload::JobState::kKilled, "walltime-limit");
          }
        },
        "core.walltime");
  }

  // Co-resident jobs on shared nodes may have changed speed (utilisation
  // affects capped frequency).
  refresh_jobs_on_nodes(nodes);

  for (auto& policy : policies_) policy->on_job_start(job);
  if (obs_ != nullptr) {
    jobs_started_counter_->add(1);
    obs_->trace().instant(
        "sched", "job_start", static_cast<std::int64_t>(job.id()), -1,
        {{"nodes", static_cast<double>(nodes.size())},
         {"pstate", static_cast<double>(plan.pstate)},
         {"wait_s", sim::to_seconds(sim_->now() - job.submit_time())}});
  }
  logger_.debug("core", "started job " + std::to_string(job.id()) + " on " +
                            std::to_string(nodes.size()) + " nodes");
  return true;
}

sim::SimTime EpaJsrmSolution::planned_end(const workload::Job& job) const {
  sim::SimTime horizon = job.spec().walltime_estimate;
  if (runtime_predictor_ != nullptr) {
    horizon = std::min(
        horizon, runtime_predictor_->predict_runtime(job.spec()));
  }
  const sim::SimTime anchor =
      job.start_time() >= 0 ? job.start_time() : sim_->now();
  return anchor + horizon;
}

sim::SimTime EpaJsrmSolution::earliest_admission(
    const workload::Job& job) const {
  sim::SimTime earliest = sim_->now();
  for (const auto& policy : policies_) {
    earliest = std::max(earliest,
                        policy->earliest_start_hint(job, sim_->now()));
  }
  return earliest;
}

// --- PolicyHost ---------------------------------------------------------------

double EpaJsrmSolution::predict_node_watts(const workload::JobSpec& spec) {
  return power_predictor_->predict_node_watts(spec);
}

void EpaJsrmSolution::set_node_cap(platform::NodeId node, double watts) {
  checkpoint_energy();
  capmc_.set_node_cap(node, watts);
  refresh_jobs_on_nodes({&node, 1});
  if (obs_ != nullptr) cap_actuations_counter_->add(1);
}

void EpaJsrmSolution::set_group_cap(std::span<const platform::NodeId> nodes,
                                    double watts) {
  EPAJSRM_REQUIRE(!in_partition_local_phase(),
                  "group caps actuate only at coupling-epoch boundaries");
  checkpoint_energy();
  capmc_.set_group_cap(nodes, watts);
  refresh_jobs_on_nodes(nodes);
  if (obs_ != nullptr) cap_actuations_counter_->add(1);
}

void EpaJsrmSolution::set_system_cap(double watts) {
  EPAJSRM_REQUIRE(!in_partition_local_phase(),
                  "system caps actuate only at coupling-epoch boundaries");
  checkpoint_energy();
  capmc_.set_system_cap(watts);
  for (workload::Job* job : std::vector<workload::Job*>(running_)) {
    refresh_job(*job);
  }
  if (obs_ != nullptr) cap_actuations_counter_->add(1);
}

void EpaJsrmSolution::set_node_pstate(platform::NodeId node,
                                      std::uint32_t pstate) {
  checkpoint_energy();
  platform::Node& n = cluster_->node(node);
  n.set_pstate(pstate);
  model_.apply(n);
  refresh_jobs_on_nodes({&node, 1});
  if (obs_ != nullptr) {
    pstate_changes_counter_->add(1);
    obs_->trace().instant("epa", "node_pstate", -1,
                          static_cast<std::int64_t>(node),
                          {{"pstate", static_cast<double>(pstate)}});
  }
}

void EpaJsrmSolution::set_job_pstate(workload::JobId job_id,
                                     std::uint32_t pstate) {
  workload::Job* job = find_job(job_id);
  if (job == nullptr || job->state() != workload::JobState::kRunning) return;
  checkpoint_energy();
  for (platform::NodeId id : job->allocated_nodes()) {
    platform::Node& node = cluster_->node(id);
    node.set_pstate(pstate);
    model_.apply(node);
  }
  refresh_jobs_on_nodes(job->allocated_nodes());
  if (obs_ != nullptr) {
    pstate_changes_counter_->add(1);
    obs_->trace().instant(
        "epa", "job_pstate", static_cast<std::int64_t>(job_id), -1,
        {{"pstate", static_cast<double>(pstate)},
         {"nodes", static_cast<double>(job->allocated_nodes().size())}});
  }
}

bool EpaJsrmSolution::power_off_node(platform::NodeId node) {
  return rm_->lifecycle().power_off(node);
}

bool EpaJsrmSolution::power_on_node(platform::NodeId node) {
  return rm_->lifecycle().power_on(node);
}

void EpaJsrmSolution::kill_job(workload::JobId job_id,
                               const std::string& reason) {
  workload::Job* job = find_job(job_id);
  if (job == nullptr) return;
  if (job->state() == workload::JobState::kRunning) {
    finish_job(*job, workload::JobState::kKilled, reason);
  } else if (job->state() == workload::JobState::kQueued) {
    pending_.erase(std::find(pending_.begin(), pending_.end(), job));
    job->set_state(workload::JobState::kCancelled);
    job->set_end_time(sim_->now());
    finished_.push_back(job);
    ++kills_by_reason_[reason];
    metrics_->on_job_finished(*job);
    // A cancellation ends the job's scheduling life too: external
    // decision components must see it leave the queue.
    emit_decision_point(sched::DecisionPoint::Kind::kJobEnded, job_id, 0.0,
                        job->energy_joules());
  }
}

workload::JobId EpaJsrmSolution::requeue_job(workload::JobId job_id,
                                             const std::string& reason) {
  workload::Job* job = find_job(job_id);
  if (job == nullptr || job->state() != workload::JobState::kRunning) {
    return platform::kNoJob;
  }
  // Clone the spec under a fresh id; the copy arrives now, with queue
  // position at the back (its submit time is the requeue instant).
  workload::JobSpec spec = job->spec();
  spec.id = next_synthetic_id();
  spec.submit_time = sim_->now();
  finish_job(*job, workload::JobState::kKilled, reason);
  const workload::JobId new_id = spec.id;
  submit(std::move(spec));
  return new_id;
}

// --- fault handling -----------------------------------------------------------

void EpaJsrmSolution::requeue_after_crash(workload::Job& job,
                                          const std::string& reason) {
  workload::JobSpec spec = job.spec();
  spec.id = next_synthetic_id();
  spec.submit_time = sim_->now();
  // Bank progress up to the crash instant before reading work_done();
  // finish_job would do this too, but only after we have sized the clone.
  job.update_speed(sim_->now(), min_freq_ratio(job));
  // Checkpoint/restart model: progress up to the last completed
  // checkpoint survives; the clone pays the restart overhead on top of
  // the remaining hidden runtime. Without checkpointing everything is
  // redone from scratch (still plus the restart overhead).
  const sim::SimTime ckpt = config_.resilience.checkpoint_interval;
  double saved_fraction = 0.0;
  if (ckpt > 0 && job.work_total() > 0.0) {
    const double ckpt_work_s = sim::to_seconds(ckpt);
    const double saved_work_s =
        std::floor(job.work_done() / ckpt_work_s) * ckpt_work_s;
    saved_fraction =
        std::clamp(saved_work_s / job.work_total(), 0.0, 1.0);
  }
  const double remaining_ref_s =
      sim::to_seconds(spec.runtime_ref) * (1.0 - saved_fraction);
  spec.runtime_ref = sim::from_seconds(remaining_ref_s) +
                     config_.resilience.restart_overhead;
  spec.runtime_ref = std::max<sim::SimTime>(spec.runtime_ref, sim::kSecond);
  // Keep the walltime limit achievable for the restarted copy.
  spec.walltime_estimate =
      std::max(spec.walltime_estimate, spec.runtime_ref);
  finish_job(job, workload::JobState::kKilled, reason);
  submit(std::move(spec));
}

bool EpaJsrmSolution::fail_node(platform::NodeId id,
                                const std::string& reason) {
  // Faults (including every node of a PDU trip) are cross-partition
  // events; the injector delivers them between epochs.
  EPAJSRM_REQUIRE(!in_partition_local_phase(),
                  "faults are coupling-epoch events");
  if (id >= cluster_->node_count()) return false;
  platform::Node& node = cluster_->node(id);
  using NS = platform::NodeState;
  const NS state = node.state();
  // Nodes mid-transition or already down are out of scope: the lifecycle
  // driver owns their pending completion events, and a dead node cannot
  // die again.
  if (state != NS::kIdle && state != NS::kBusy && state != NS::kDraining) {
    return false;
  }

  // Drain the node's jobs first; each finish_job checkpoints energy and
  // releases the job's whole allocation (possibly spanning other nodes).
  std::vector<workload::JobId> victims;
  victims.reserve(node.allocations().size());
  for (const auto& [job_id, alloc] : node.allocations()) {
    victims.push_back(job_id);
  }
  for (workload::JobId job_id : victims) {
    workload::Job* job = find_job(job_id);
    if (job == nullptr || job->state() != workload::JobState::kRunning) {
      continue;
    }
    if (config_.resilience.requeue_on_crash) {
      requeue_after_crash(*job, reason);
      ++jobs_requeued_on_fault_;
      if (obs_ != nullptr) {
        obs_->metrics().counter("fault.jobs_requeued").add(1);
      }
    } else {
      finish_job(*job, workload::JobState::kKilled, reason);
      ++jobs_lost_on_fault_;
      if (obs_ != nullptr) {
        obs_->metrics().counter("fault.jobs_lost").add(1);
      }
    }
  }

  checkpoint_energy();
  node.set_state(NS::kOff);  // hard power loss: no shutdown sequence
  model_.apply(node);
  ++crash_marks_[id];
  ++node_crashes_;
  rm_->record_crash(id, sim_->now());
  if (obs_ != nullptr) {
    obs_->metrics().counter("fault.node_crashes").add(1);
    obs_->trace().instant(
        "fault", "node_crash", -1, static_cast<std::int64_t>(id),
        {{"jobs", static_cast<double>(victims.size())}});
  }
  logger_.warn("fault", "node " + std::to_string(id) + " crashed (" +
                            reason + "), " + std::to_string(victims.size()) +
                            " job(s) affected");
  request_schedule();
  return true;
}

bool EpaJsrmSolution::restore_node(platform::NodeId id) {
  if (id >= cluster_->node_count()) return false;
  return rm_->lifecycle().power_on(id);
}

std::uint32_t EpaJsrmSolution::trip_pdu(platform::PduId pdu,
                                        const std::string& reason) {
  std::uint32_t downed = 0;
  if (pdu < cluster_->facility().pdus().size()) {
    // The facility's membership list is the PDU's node set; no need to
    // scan the whole machine for matches.
    const std::vector<platform::NodeId> members =
        cluster_->facility().pdu(pdu).nodes;
    for (platform::NodeId id : members) {
      if (fail_node(id, reason)) ++downed;
    }
  }
  ++pdu_trips_;
  if (obs_ != nullptr) {
    obs_->metrics().counter("fault.pdu_trips").add(1);
    obs_->trace().instant("fault", "pdu_trip", -1,
                          static_cast<std::int64_t>(pdu),
                          {{"nodes", static_cast<double>(downed)}});
  }
  logger_.warn("fault", "PDU " + std::to_string(pdu) + " tripped (" +
                            reason + "), " + std::to_string(downed) +
                            " node(s) down");
  return downed;
}

std::uint32_t EpaJsrmSolution::restore_pdu(platform::PduId pdu) {
  std::uint32_t booting = 0;
  if (pdu >= cluster_->facility().pdus().size()) return booting;
  for (platform::NodeId id : cluster_->facility().pdu(pdu).nodes) {
    if (cluster_->node(id).state() == platform::NodeState::kOff &&
        rm_->lifecycle().power_on(id)) {
      ++booting;
    }
  }
  return booting;
}

bool EpaJsrmSolution::take_crash_mark(platform::NodeId node) {
  const auto it = crash_marks_.find(node);
  if (it == crash_marks_.end()) return false;
  if (--it->second == 0) crash_marks_.erase(it);
  return true;
}

void EpaJsrmSolution::request_schedule() {
  if (pass_requested_ || stopping_) return;
  pass_requested_ = true;
  sim_->schedule_at(
      sim_->now(),
      [this] {
        pass_requested_ = false;
        schedule_pass();
      },
      "sched.pass");
}

void EpaJsrmSolution::emit_decision_point(sched::DecisionPoint::Kind kind,
                                          workload::JobId job,
                                          double budget_watts,
                                          double energy_joules) {
  sched::DecisionPoint point;
  point.kind = kind;
  point.time = sim_->now();
  point.seq = decision_seq_++;
  point.job = job;
  point.budget_watts = budget_watts;
  point.energy_joules = energy_joules;
  if (config_.record_decision_log) decision_log_.push_back(point);
  if (obs_ != nullptr) {
    obs_->metrics()
        .counter(std::string("sched.decision_points.") +
                 sched::to_string(kind))
        .add(1);
  }
  scheduler_->on_decision_point(point, *this);
  if (scheduler_->wants_pass(kind)) request_schedule();
}

void EpaJsrmSolution::notify_power_budget_changed(double watts) {
  // Dedup on value: re-applying an identical cap is not a decision point,
  // which is also what makes cap-change -> pass -> same-cap loops reach a
  // fixpoint instead of recursing forever.
  if (watts == last_emitted_budget_watts_) return;
  last_emitted_budget_watts_ = watts;
  emit_decision_point(sched::DecisionPoint::Kind::kPowerBudgetChanged,
                      platform::kNoJob, watts);
}

bool EpaJsrmSolution::apply_power_cap(double watts) {
  set_system_cap(watts);
  notify_power_budget_changed(watts);
  return true;
}

workload::JobId EpaJsrmSolution::requeue(workload::JobId job) {
  return requeue_job(job, "edc-requeue");
}

// --- internals ------------------------------------------------------------------

void EpaJsrmSolution::checkpoint_energy() {
  accountant_->checkpoint(sim_->now());
}

void EpaJsrmSolution::sort_pending() {
  const sim::SimTime t = sim_->now();
  std::stable_sort(
      pending_.begin(), pending_.end(),
      [this, t](const workload::Job* a, const workload::Job* b) {
        const double pa = sched::effective_priority(
            a->spec().priority,
            fairshare_.usage_factor(a->spec().user, t),
            config_.fairshare_weight);
        const double pb = sched::effective_priority(
            b->spec().priority,
            fairshare_.usage_factor(b->spec().user, t),
            config_.fairshare_weight);
        if (pa != pb) return pa > pb;
        if (a->submit_time() != b->submit_time()) {
          return a->submit_time() < b->submit_time();
        }
        return a->id() < b->id();
      });
}

void EpaJsrmSolution::schedule_pass() {
  EPAJSRM_REQUIRE(!in_partition_local_phase(),
                  "scheduling passes are coupling-epoch decision points");
  if (in_pass_ || stopping_) return;
  in_pass_ = true;
  ++passes_;
  const std::int64_t t0 =
      pass_us_hist_ != nullptr ? obs::wall_now_ns() : 0;
  obs::ScopedSpan span = obs::span_of(obs_.get(), "core", "schedule_pass");
  const std::size_t pending_before = pending_.size();
  sort_pending();
  for (auto& policy : policies_) policy->reorder_queue(pending_, sim_->now());
  scheduler_->schedule(*this);
  if (span.active()) {
    span.attr("pending", static_cast<double>(pending_before));
    span.attr("started", static_cast<double>(pending_before) -
                             static_cast<double>(pending_.size()));
  }
  if (pass_us_hist_ != nullptr) {
    pass_us_hist_->observe(
        static_cast<double>(obs::wall_now_ns() - t0) / 1000.0);
  }
  in_pass_ = false;
}

double EpaJsrmSolution::min_freq_ratio(const workload::Job& job) const {
  double ratio = 1.0;
  for (platform::NodeId id : job.allocated_nodes()) {
    ratio = std::min(ratio, cluster_->node(id).effective_freq_ratio());
  }
  return ratio;
}

void EpaJsrmSolution::schedule_completion(workload::Job& job) {
  const std::uint64_t gen = job.bump_completion_generation();
  const workload::JobId id = job.id();
  const sim::SimTime at = sim_->now() + job.remaining_time(sim_->now());
  sim_->schedule_at(
      at,
      [this, id, gen] {
        workload::Job* j = find_job(id);
        if (j != nullptr && j->state() == workload::JobState::kRunning &&
            j->completion_generation() == gen) {
          finish_job(*j, workload::JobState::kCompleted);
        }
      },
      "core.completion");
}

void EpaJsrmSolution::refresh_job(workload::Job& job) {
  if (job.state() != workload::JobState::kRunning) return;
  job.update_speed(sim_->now(), min_freq_ratio(job));
  schedule_completion(job);
}

void EpaJsrmSolution::refresh_jobs_on_nodes(
    std::span<const platform::NodeId> nodes) {
  std::vector<workload::JobId> affected;
  for (platform::NodeId id : nodes) {
    for (const auto& [job_id, alloc] : cluster_->node(id).allocations()) {
      if (std::find(affected.begin(), affected.end(), job_id) ==
          affected.end()) {
        affected.push_back(job_id);
      }
    }
  }
  for (workload::JobId id : affected) {
    workload::Job* job = find_job(id);
    if (job != nullptr) refresh_job(*job);
  }
}

void EpaJsrmSolution::finish_job(workload::Job& job,
                                 workload::JobState final_state,
                                 const std::string& kill_reason) {
  checkpoint_energy();
  // Bank the remaining progress before the nodes disappear.
  job.update_speed(sim_->now(), min_freq_ratio(job));
  const std::vector<platform::NodeId> nodes = job.allocated_nodes();
  rm_->release(job);

  job.set_end_time(sim_->now());
  job.set_state(final_state);
  running_.erase(std::find(running_.begin(), running_.end(), &job));
  finished_.push_back(&job);

  const sim::SimTime elapsed = job.end_time() - job.start_time();
  const double core_seconds =
      sim::to_seconds(elapsed) *
      static_cast<double>(job.allocated_nodes().size()) *
      job.cores_per_node_allocated();
  fairshare_.record_usage(job.spec().user, core_seconds, sim_->now());

  metrics_->on_job_finished(job);

  const double ref =
      reference_watts(model_, cluster_->node(0).config());
  job_reports_.push_back(telemetry::make_energy_report(job, ref));

  if (final_state == workload::JobState::kCompleted && elapsed > 0 &&
      !job.allocated_nodes().empty()) {
    const double avg_node_watts =
        job.energy_joules() / sim::to_seconds(elapsed) /
        static_cast<double>(job.allocated_nodes().size());
    power_predictor_->observe(job.spec(), avg_node_watts);
    if (runtime_predictor_ != nullptr) {
      runtime_predictor_->observe(job.spec(), elapsed);
    }
  }
  if (final_state == workload::JobState::kKilled) {
    ++kills_by_reason_[kill_reason.empty() ? "killed" : kill_reason];
    if (obs_ != nullptr) {
      obs_->trace().instant(
          "core", "job_killed", static_cast<std::int64_t>(job.id()), -1,
          {{"reason", kill_reason.empty() ? std::string("killed")
                                          : kill_reason}});
    }
  }

  for (auto& policy : policies_) policy->on_job_end(job);

  // Shared nodes' utilisation changed.
  refresh_jobs_on_nodes(nodes);
  // Energy is exact here (checkpointed on entry, banked through release),
  // so the decision point carries the job's final attributed joules.
  emit_decision_point(sched::DecisionPoint::Kind::kJobEnded, job.id(), 0.0,
                      job.energy_joules());
}

double EpaJsrmSolution::tightest_budget(sim::SimTime t) const {
  double budget = 0.0;
  for (const auto& policy : policies_) {
    const double b = policy->power_budget_watts(t);
    if (b > 0.0 && (budget == 0.0 || b < budget)) budget = b;
  }
  return budget;
}

void EpaJsrmSolution::control_tick() {
  const sim::SimTime t = sim_->now();
  if (domain_ != nullptr) {
    // Partition-local phase: thermal stepping + core census fan out
    // across the partitions' own engines and merge in partition-index
    // order — bit-identical to the inline sweep below, O(N/P) wall time.
    // Runs inside the tick so the coordinator events of this instant
    // (walltime kills precede the control batch) stay classically
    // ordered against it.
    domain_->run_epoch(t);
  } else if (config_.enable_thermal) {
    thermal_.step_cluster(*cluster_, config_.control_period);
  }
  monitor_->tick(t);  // sample + external observers
  for (auto& policy : policies_) policy->on_tick(t);

  // The periodic budget-accrual decision point. Classic schedulers ignore
  // it (wants_pass false keeps today's cadence); budget-aware schedulers
  // take a pass here so newly accrued joules admit promptly. Policies may
  // have moved the budget above (BudgetTracker window crossings) — that
  // emission happened first, in the same deterministic order both the
  // internal and the EDC-driven run observe.
  emit_decision_point(sched::DecisionPoint::Kind::kBudgetTick);

  // Policies provide the compliance budget; a manually set reporting
  // budget (baseline runs) is kept when no policy declares one.
  const double budget = tightest_budget(t);
  if (budget > 0.0) metrics_->set_budget_watts(budget);
  const double it_watts = ledger_.it_power_watts();
  metrics_->on_power_sample(t, it_watts,
                            cluster_->facility().facility_watts(it_watts, t),
                            domain_ != nullptr ? domain_->core_utilization()
                                               : cluster_->core_utilization());

  if (obs_ != nullptr) {
    queue_depth_gauge_->set(static_cast<double>(sim_->pending_events()));
    pending_gauge_->set(static_cast<double>(pending_.size()));
    running_gauge_->set(static_cast<double>(running_.size()));
    obs_->sampler().sample(t);
  }
}

}  // namespace epajsrm::core
