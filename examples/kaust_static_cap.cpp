// KAUST scenario: Shaheen II-style static power capping.
//
// Reproduces the Table I production row: "Static power capping via Cray
// CAPMC. 30% of nodes run uncapped, 70% run with 270 W power cap", with
// SLURM Dynamic Power Management admission on top. Shows how the capped
// pool runs slower but the machine's worst-case draw becomes predictable.
#include <cstdio>

#include "epajsrm.hpp"

int main() {
  using namespace epajsrm;

  const survey::CenterProfile& kaust = survey::center("KAUST");
  std::printf("Site: %s — %s (%u nodes, ~%.1f MW)\n", kaust.full_name.c_str(),
              kaust.machine_name.c_str(), kaust.machine_nodes,
              kaust.peak_system_mw);
  std::printf("Replica: %u nodes at %.0f–%.0f W each\n\n", kaust.sim_nodes,
              kaust.node_idle_watts, kaust.node_peak_watts);

  const auto run_variant = [&](bool capped) {
    core::Scenario scenario =
        core::ScenarioBuilder::from_center(kaust, /*job_count=*/150,
                                           /*seed=*/3)
            .label(capped ? "kaust-capped" : "kaust-uncapped")
            .horizon(30 * sim::kDay)
            .build();
    if (capped) {
      scenario.solution().add_policy(
          std::make_unique<epa::StaticPowerCapPolicy>(0.7, 270.0));
      const double budget =
          scenario.solution().capmc().worst_case_watts();
      scenario.solution().add_policy(
          std::make_unique<epa::PowerBudgetDvfsPolicy>(budget));
    }
    return scenario.run();
  };

  const core::RunResult uncapped = run_variant(false);
  const core::RunResult capped = run_variant(true);

  metrics::AsciiTable table({"variant", "max power", "mean power", "energy",
                             "p50 runtime (min)", "p50 wait (min)",
                             "jobs done"});
  table.set_title("Shaheen-style 70/30 static capping, same workload");
  for (const core::RunResult* r : {&uncapped, &capped}) {
    table.add_row(
        {r->report.label, metrics::format_watts(r->report.max_it_watts),
         metrics::format_watts(r->report.mean_it_watts),
         metrics::format_kwh(r->total_it_kwh_exact),
         metrics::format_double(r->report.job_runtime_minutes.median, 1),
         metrics::format_double(r->report.wait_minutes.median, 1),
         std::to_string(r->report.jobs_completed)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The cap bounds the machine's worst case (procurement-relevant) at "
      "the cost of longer runtimes on the capped pool.\n");
  return 0;
}
