#include "rm/node_lifecycle.hpp"

#include "check/contract.hpp"

namespace epajsrm::rm {

void NodeLifecycle::transition(platform::NodeId id,
                               platform::NodeState during,
                               platform::NodeState after,
                               sim::SimTime delay) {
  EPAJSRM_REQUIRE(delay >= 0, "transition latency cannot be negative");
  if (pre_) pre_();
  platform::Node& node = cluster_->node(id);
  node.set_state(during);
  ++in_transition_;
  if (post_) post_(id);

  sim_->schedule_in(
      delay,
      [this, id, during, after] {
        platform::Node& n = cluster_->node(id);
        // A transition can only be completed by the schedule that started
        // it; state changes in between (not allowed by the callers) would
        // be bugs.
        if (n.state() != during) return;
        EPAJSRM_INVARIANT(in_transition_ > 0,
                          "completing a transition nobody started");
        if (pre_) pre_();
        n.set_state(after);
        --in_transition_;
        if (post_) post_(id);
      },
      "rm.transition");
}

bool NodeLifecycle::power_off(platform::NodeId id) {
  platform::Node& node = cluster_->node(id);
  if (node.state() != platform::NodeState::kIdle) return false;
  ++shutdowns_;
  transition(id, platform::NodeState::kShuttingDown,
             platform::NodeState::kOff, node.config().shutdown_time);
  return true;
}

bool NodeLifecycle::power_on(platform::NodeId id) {
  platform::Node& node = cluster_->node(id);
  if (node.state() != platform::NodeState::kOff) return false;
  ++boots_;
  transition(id, platform::NodeState::kBooting, platform::NodeState::kIdle,
             node.config().boot_time);
  return true;
}

bool NodeLifecycle::sleep(platform::NodeId id) {
  platform::Node& node = cluster_->node(id);
  if (node.state() != platform::NodeState::kIdle) return false;
  ++sleeps_;
  // Sleep entry is fast enough to model as instantaneous draw change after
  // sleep_time spent in shutdown-like transition.
  transition(id, platform::NodeState::kShuttingDown,
             platform::NodeState::kSleeping, node.config().sleep_time);
  return true;
}

bool NodeLifecycle::wake(platform::NodeId id) {
  platform::Node& node = cluster_->node(id);
  if (node.state() != platform::NodeState::kSleeping) return false;
  ++wakes_;
  transition(id, platform::NodeState::kBooting, platform::NodeState::kIdle,
             node.config().wake_time);
  return true;
}

}  // namespace epajsrm::rm
