# Empty compiler generated dependencies file for epajsrm_epa.
# This may be replaced when dependencies are built.
