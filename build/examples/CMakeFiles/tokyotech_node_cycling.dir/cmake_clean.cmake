file(REMOVE_RECURSE
  "CMakeFiles/tokyotech_node_cycling.dir/tokyotech_node_cycling.cpp.o"
  "CMakeFiles/tokyotech_node_cycling.dir/tokyotech_node_cycling.cpp.o.d"
  "tokyotech_node_cycling"
  "tokyotech_node_cycling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokyotech_node_cycling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
