#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hpp"

namespace epajsrm::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:        return "node-crash";
    case FaultKind::kNodeHang:         return "node-hang";
    case FaultKind::kPduTrip:          return "pdu-trip";
    case FaultKind::kSensorDropout:    return "sensor-dropout";
    case FaultKind::kSensorStuck:      return "sensor-stuck";
    case FaultKind::kSensorNoise:      return "sensor-noise";
    case FaultKind::kThermalExcursion: return "thermal-excursion";
    case FaultKind::kCapmcFailure:     return "capmc-failure";
    case FaultKind::kCapmcLatency:     return "capmc-latency";
  }
  return "?";
}

namespace {

// Parses the spec's time field. Plain numbers are absolute seconds; an
// optional s/m/h/d unit suffix scales the value; a leading '+' makes it
// an offset from the previous event's (absolute) time, so storm scripts
// read as a cadence: "+90m sensor-stuck ...". Throws std::invalid_argument
// without the line prefix — the caller adds the line number.
sim::SimTime parse_time_token(const std::string& token,
                              sim::SimTime previous) {
  std::string body = token;
  const bool relative = !body.empty() && body[0] == '+';
  if (relative) body.erase(0, 1);

  double unit_s = 1.0;
  if (!body.empty()) {
    switch (body.back()) {
      case 's': unit_s = 1.0;       body.pop_back(); break;
      case 'm': unit_s = 60.0;      body.pop_back(); break;
      case 'h': unit_s = 3600.0;    body.pop_back(); break;
      case 'd': unit_s = 86400.0;   body.pop_back(); break;
      default: break;
    }
  }

  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(body, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;  // fall through to the shared error
  }
  if (consumed != body.size() || body.empty()) {
    throw std::invalid_argument("bad time '" + token +
                                "' (want <seconds> or [+]<n>[s|m|h|d])");
  }
  if (value < 0.0) {
    throw std::invalid_argument(relative ? "offset must be >= 0"
                                         : "time must be >= 0");
  }
  const sim::SimTime t = sim::from_seconds(value * unit_s);
  return relative ? previous + t : t;
}

}  // namespace

FaultKind parse_fault_kind(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kNodeCrash, FaultKind::kNodeHang, FaultKind::kPduTrip,
        FaultKind::kSensorDropout, FaultKind::kSensorStuck,
        FaultKind::kSensorNoise, FaultKind::kThermalExcursion,
        FaultKind::kCapmcFailure, FaultKind::kCapmcLatency}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown fault kind: " + name);
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  if (event.at < 0) throw std::invalid_argument("fault time must be >= 0");
  if (event.duration < 0) {
    throw std::invalid_argument("fault duration must be >= 0");
  }
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::crash_node(sim::SimTime at, std::int64_t node,
                                 sim::SimTime repair_after) {
  return add({at, FaultKind::kNodeCrash, node, 0.0, repair_after});
}

FaultPlan& FaultPlan::hang_node(sim::SimTime at, std::int64_t node,
                                sim::SimTime repair_after) {
  return add({at, FaultKind::kNodeHang, node, 0.0, repair_after});
}

FaultPlan& FaultPlan::trip_pdu(sim::SimTime at, std::int64_t pdu,
                               sim::SimTime repair_after) {
  return add({at, FaultKind::kPduTrip, pdu, 0.0, repair_after});
}

FaultPlan& FaultPlan::sensor_dropout(sim::SimTime at, sim::SimTime duration,
                                     double drop_probability) {
  return add({at, FaultKind::kSensorDropout, -1, drop_probability, duration});
}

FaultPlan& FaultPlan::sensor_stuck(sim::SimTime at, sim::SimTime duration) {
  return add({at, FaultKind::kSensorStuck, -1, 0.0, duration});
}

FaultPlan& FaultPlan::sensor_noise(sim::SimTime at, sim::SimTime duration,
                                   double sigma) {
  return add({at, FaultKind::kSensorNoise, -1, sigma, duration});
}

FaultPlan& FaultPlan::thermal_excursion(sim::SimTime at, std::int64_t node,
                                        double delta_c) {
  return add({at, FaultKind::kThermalExcursion, node, delta_c, 0});
}

FaultPlan& FaultPlan::capmc_failure(sim::SimTime at, sim::SimTime duration,
                                    double failure_probability) {
  return add({at, FaultKind::kCapmcFailure, -1, failure_probability,
              duration});
}

FaultPlan& FaultPlan::capmc_latency(sim::SimTime at, sim::SimTime duration,
                                    double added_us) {
  return add({at, FaultKind::kCapmcLatency, -1, added_us, duration});
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  return *this;
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  sim::SimTime previous = 0;  // base for '+' relative offsets
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#' || line[first] == ';') continue;

    std::istringstream fields(line);
    std::string time_token;
    std::string kind_name;
    std::int64_t target = -1;
    if (!(fields >> time_token >> kind_name >> target)) {
      throw std::invalid_argument("fault spec line " +
                                  std::to_string(line_no) +
                                  ": need <time> <kind> <target>");
    }
    FaultEvent event;
    try {
      event.kind = parse_fault_kind(kind_name);
      event.at = parse_time_token(time_token, previous);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("fault spec line " +
                                  std::to_string(line_no) + ": " + e.what());
    }
    event.target = target;
    double magnitude = 0.0;
    double duration_s = 0.0;
    if (fields >> magnitude) event.magnitude = magnitude;
    if (fields >> duration_s) {
      if (duration_s < 0.0) {
        throw std::invalid_argument("fault spec line " +
                                    std::to_string(line_no) +
                                    ": duration must be >= 0");
      }
      event.duration = sim::from_seconds(duration_s);
    }
    plan.add(event);
    previous = event.at;
  }
  return plan;
}

FaultPlan FaultPlan::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

FaultPlan FaultPlan::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open fault spec: " + path);
  return parse(in);
}

FaultPlan FailureModel::generate(std::uint32_t nodes, sim::SimTime horizon,
                                 std::uint64_t seed) const {
  if (mtbf_hours <= 0.0) {
    throw std::invalid_argument("mtbf_hours must be positive");
  }
  if (weibull_shape <= 0.0) {
    throw std::invalid_argument("weibull_shape must be positive");
  }
  FaultPlan plan;
  const double mtbf_s = mtbf_hours * 3600.0;
  // Weibull scale such that the mean stays the MTBF:
  // mean = scale * Gamma(1 + 1/k).
  const double scale_s =
      mtbf_s / std::tgamma(1.0 + 1.0 / weibull_shape);
  for (std::uint32_t node = 0; node < nodes; ++node) {
    // Per-node stream, decorrelated from neighbours and stable under
    // changes to any other node's draw count.
    sim::Rng rng(sim::splitmix64(seed + 0x9e37u) ^
                 sim::splitmix64(node + 1));
    sim::SimTime t = 0;
    while (true) {
      const double gap_s =
          distribution == Distribution::kExponential
              ? rng.exponential(mtbf_s)
              : std::weibull_distribution<double>(weibull_shape,
                                                  scale_s)(rng.engine());
      t += sim::from_seconds(std::max(1.0, gap_s));
      // A node under repair cannot fail again before it is back.
      if (t > horizon) break;
      plan.crash_node(t, node, repair_time);
      t += repair_time;
    }
  }
  return plan;
}

}  // namespace epajsrm::fault
