// SmallFn (the event queue's small-buffer callback) and EventCategory.
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "sim/callback.hpp"
#include "sim/event_category.hpp"

namespace epajsrm {
namespace {

TEST(SmallFn, EmptyByDefaultAndComparableToNullptr) {
  sim::SmallFn<int()> fn;
  EXPECT_FALSE(fn);
  EXPECT_TRUE(fn == nullptr);
  fn = [] { return 42; };
  EXPECT_TRUE(fn);
  EXPECT_TRUE(fn != nullptr);
  EXPECT_EQ(fn(), 42);
}

TEST(SmallFn, SmallCapturesStayInline) {
  std::uint64_t a = 1, b = 2, c = 3;
  sim::SmallFn<std::uint64_t()> fn = [a, b, c] { return a + b + c; };
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 6u);
}

TEST(SmallFn, OversizedCapturesFallBackToHeap) {
  struct Big {
    char bytes[sim::kInlineCallbackBytes + 1] = {};
  };
  Big big;
  big.bytes[0] = 'x';
  sim::SmallFn<char()> fn = [big] { return big.bytes[0]; };
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 'x');
}

TEST(SmallFn, MoveTransfersOwnershipAndState) {
  auto counter = std::make_shared<int>(0);
  sim::SmallFn<void()> fn = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);

  sim::SmallFn<void()> moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move): contract under test
  EXPECT_TRUE(moved);
  moved();
  EXPECT_EQ(*counter, 1);

  moved = nullptr;
  EXPECT_EQ(counter.use_count(), 1);  // capture destroyed on reset
}

TEST(SmallFn, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(7);
  sim::SmallFn<int()> fn = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(fn(), 7);
  sim::SmallFn<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 7);
}

TEST(SmallFn, ArgumentsAndReturnValuesPassThrough) {
  sim::SmallFn<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(EventCategory, DefaultsAndLiteralConstruction) {
  constexpr sim::EventCategory def;
  EXPECT_STREQ(def.name(), "sim.event");
  EXPECT_EQ(def, sim::kDefaultEventCategory);

  constexpr sim::EventCategory tick{"core.control"};
  EXPECT_STREQ(tick.name(), "core.control");
  EXPECT_NE(tick, def);
  // Identity is the literal's address: copies compare equal.
  constexpr sim::EventCategory copy = tick;
  EXPECT_EQ(copy, tick);
}

}  // namespace
}  // namespace epajsrm
