// Pass 3: shared-state audit.
//
// The lax-sync partitioned core can only run cluster partitions
// concurrently if no mutable state hides outside the per-partition
// objects and the sanctioned coupling points. This pass inventories
// every namespace-scope variable, static class data member, and
// function-local static in the tree, flags the mutable ones
// (`mutable-global` / `local-static`), and emits the full inventory as
// machine-readable JSON — the refactor's worklist.
//
// Sanctions: files under a `sanction-shared-state` prefix from
// layers.conf (the obs registries) are inventoried but not flagged, as
// are entries carrying a `lint:allow(<rule>)` marker with a
// justification comment. Const/constexpr entries are recorded with
// `mutable: false` and never flagged.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "epajsrm_analyze/config.hpp"
#include "epajsrm_analyze/finding.hpp"
#include "support/source_text.hpp"

namespace epajsrm::analyze {

struct SharedStateEntry {
  std::string file;
  int line = 0;
  std::string name;
  std::string declaration;  // collapsed statement head
  std::string scope;        // "namespace" | "static-member" | "function-local"
  bool is_mutable = false;
  bool sanctioned = false;  // directory sanction from layers.conf
  bool suppressed = false;  // lint:allow marker on the line
};

struct SharedStateInventory {
  std::vector<SharedStateEntry> entries;  // sorted by (file, line)
  int total() const { return static_cast<int>(entries.size()); }
  int mutable_count() const;
  int flagged_count() const;  // mutable, unsanctioned, unsuppressed
};

/// Audits the tree; appends findings for flagged entries and returns
/// the full inventory.
SharedStateInventory audit_shared_state(
    const std::map<std::string, toolsupport::SourceFile>& sources,
    const LayerConfig& config, Findings* findings);

/// Serializes the inventory as pretty-printed JSON.
std::string shared_state_json(const SharedStateInventory& inventory,
                              const std::string& root_label);

/// Compares the inventory against a checked-in baseline file
/// (`{"total": N, "mutable": M}`). Returns true when counts match;
/// otherwise fills `message` with a diff and refresh instructions.
bool check_shared_state_baseline(const SharedStateInventory& inventory,
                                 const std::string& baseline_path,
                                 std::string* message);

}  // namespace epajsrm::analyze
