#include "epajsrm_analyze/layer_check.hpp"

#include <set>

namespace epajsrm::analyze {

namespace ts = epajsrm::toolsupport;

void check_layers(const IncludeGraph& graph,
                  const std::map<std::string, ts::SourceFile>& sources,
                  const LayerConfig& config, Findings* findings) {
  std::set<std::string> undeclared_reported;
  for (const std::string& file : graph.files) {
    const std::string from = module_of(file, config.root_module);
    if (!config.declared(from) && undeclared_reported.insert(from).second) {
      findings->push_back(
          Finding{file, 1, "undeclared-layer",
                  "module `" + from +
                      "` is not declared in layers.conf; add a `layer " +
                      from + ": ...` (or `crosscut`) entry"});
    }
    const auto eit = graph.edges.find(file);
    if (eit == graph.edges.end()) continue;
    const auto sit = sources.find(file);
    for (const IncludeEdge& edge : eit->second) {
      const std::string to = module_of(edge.to, config.root_module);
      if (config.edge_allowed(from, to)) continue;
      if (sit != sources.end() && edge.line >= 1 &&
          static_cast<std::size_t>(edge.line) <= sit->second.raw.size() &&
          ts::has_allow_marker(sit->second.raw[edge.line - 1],
                               "layer-violation")) {
        continue;
      }
      std::string allowed;
      const auto lit = config.layers.find(from);
      if (lit != config.layers.end()) {
        for (const std::string& dep : lit->second) {
          if (!allowed.empty()) allowed += ", ";
          allowed += dep;
        }
      }
      findings->push_back(Finding{
          file, edge.line, "layer-violation",
          "`" + from + "` may not include `" + to + "` (edge " + file +
              " -> " + edge.to + "); declared deps of `" + from + "`: [" +
              (allowed.empty() ? "none" : allowed) +
              "] — restructure, or add an `allow " + from + " -> " + to +
              "` exception with justification to layers.conf"});
    }
  }
}

}  // namespace epajsrm::analyze
