// Tests for the ramp limiter policy and the replication harness.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/solution.hpp"
#include "epa/ramp_limiter.hpp"

namespace epajsrm {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 8) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 3;
  spec.submit_time = submit;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

TEST(RampLimiter, BoundsSimultaneousStartRamp) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  epa::RampLimiterPolicy::Config cfg;
  cfg.max_ramp_watts = 500.0;  // each 2-node job adds 400 W dynamic
  cfg.window = 5 * sim::kMinute;
  auto policy = std::make_unique<epa::RampLimiterPolicy>(cfg);
  epa::RampLimiterPolicy* ramp = policy.get();
  solution.add_policy(std::move(policy));

  // Four jobs arrive together: unthrottled, the machine would jump
  // 1.6 kW at once. Start metering + soft starts keep every 5-minute
  // window under the 500 W bound.
  for (workload::JobId id = 1; id <= 4; ++id) {
    solution.submit(job_spec(id, 2, sim::kHour));
  }
  solution.run_until(12 * sim::kHour);

  EXPECT_GT(ramp->deferred_starts() + ramp->soft_starts(), 0u);
  for (workload::JobId id = 1; id <= 4; ++id) {
    EXPECT_EQ(solution.find_job(id)->state(),
              workload::JobState::kCompleted);
  }
  EXPECT_LE(ramp->worst_observed_ramp(), 500.0 + 1e-6);
}

TEST(RampLimiter, SoftStartsOversizedJobAndRampsItUp) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  epa::RampLimiterPolicy::Config cfg;
  // A whole-machine job adds 1600 W dynamic — far over the 320 W limit;
  // only a soft start can admit it (deepest-state step is ~303 W).
  cfg.max_ramp_watts = 320.0;
  cfg.window = 2 * sim::kMinute;
  auto policy = std::make_unique<epa::RampLimiterPolicy>(cfg);
  epa::RampLimiterPolicy* ramp = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 8, sim::kHour));
  solution.start();

  sim.run_until(sim::kMinute);
  const workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kRunning);
  EXPECT_EQ(ramp->soft_starts(), 1u);
  EXPECT_GT(cluster.node(0).pstate(), 0u);  // launched slow

  // The tick loop raises the frequency back to full over time.
  sim.run_until(2 * sim::kHour);
  if (solution.find_job(1)->state() == workload::JobState::kRunning) {
    EXPECT_EQ(cluster.node(0).pstate(), 0u);
  }
  EXPECT_LE(ramp->worst_observed_ramp(), 320.0 + 1e-6);
  sim.run_until(12 * sim::kHour);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kCompleted);
}

TEST(RampLimiter, NoLimitNoInterference) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  epa::RampLimiterPolicy::Config cfg;
  cfg.max_ramp_watts = 0.0;  // disabled
  auto policy = std::make_unique<epa::RampLimiterPolicy>(cfg);
  epa::RampLimiterPolicy* ramp = policy.get();
  solution.add_policy(std::move(policy));
  for (workload::JobId id = 1; id <= 4; ++id) {
    solution.submit(job_spec(id, 2, sim::kHour));
  }
  solution.run_until(4 * sim::kHour);
  EXPECT_EQ(ramp->deferred_starts(), 0u);
  std::set<sim::SimTime> start_times;
  for (workload::JobId id = 1; id <= 4; ++id) {
    start_times.insert(solution.find_job(id)->start_time());
  }
  EXPECT_EQ(start_times.size(), 1u);  // all started together
}

TEST(Replication, AggregatesAcrossSeeds) {
  const core::ReplicatedResult result = core::run_replicated(
      [](std::uint64_t) {
        core::ScenarioConfig config;
        config.label = "repl";
        config.nodes = 16;
        config.job_count = 25;
        config.horizon = 20 * sim::kDay;
        config.mix = core::WorkloadMix::kCapacity;
        config.solution.enable_thermal = false;
        return config;
      },
      nullptr, /*replications=*/4, /*base_seed=*/500);
  EXPECT_EQ(result.replications, 4u);
  EXPECT_EQ(result.total_kwh.count, 4u);
  EXPECT_GT(result.total_kwh.min, 0.0);
  // Different seeds produce different workloads.
  EXPECT_LT(result.total_kwh.min, result.total_kwh.max);
  // All replications drained their 25 jobs (completed + killed = 25, and
  // kills are rare here, so completed is near 25 for every seed).
  EXPECT_GE(result.jobs_completed.min, 20.0);
  EXPECT_LE(result.jobs_completed.max, 25.0);
}

TEST(Replication, CustomizeHookInstallsPolicies) {
  const core::ReplicatedResult result = core::run_replicated(
      [](std::uint64_t) {
        core::ScenarioConfig config;
        config.label = "repl-cap";
        config.nodes = 8;
        config.job_count = 10;
        config.horizon = 10 * sim::kDay;
        config.mix = core::WorkloadMix::kCapacity;
        config.solution.enable_thermal = false;
        return config;
      },
      [](core::Scenario& scenario) {
        scenario.solution().start();
        scenario.solution().set_system_cap(8 * 180.0);
      },
      /*replications=*/3, /*base_seed=*/900);
  EXPECT_EQ(result.replications, 3u);
  // The hard cap bounds energy rate: utilisation still positive.
  EXPECT_GT(result.mean_utilization.min, 0.0);
}

TEST(Replication, FormatShowsSpread) {
  metrics::DistributionSummary s = metrics::summarize(
      std::vector<double>{1.0, 2.0, 3.0});
  const std::string text = core::ReplicatedResult::format(s, 1);
  EXPECT_NE(text.find("2.0"), std::string::npos);
  EXPECT_NE(text.find("[1.0..3.0]"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm
