// Deterministic random-number utilities for workload generation and model
// noise. Every stochastic component takes an explicit Rng (or a seed) so a
// whole simulation replays bit-identically from one seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace epajsrm::sim {

/// SplitMix64 mixing step (Steele/Lea/Flood). Used to derive independent
/// seed streams from a base seed: successive applications decorrelate even
/// adjacent inputs, so grid cells and replications get unrelated streams
/// no matter how the caller enumerates them.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seedable pseudo-random generator wrapping std::mt19937_64 with the
/// distributions the framework needs. Not thread-safe; use one Rng per
/// replication (see ThreadPool::parallel_for).
class Rng {
 public:
  /// Constructs with an explicit seed; identical seeds replay identically.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Returns a double uniformly distributed in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Returns an integer uniformly distributed in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Returns true with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normally distributed value.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normally distributed value parameterised by the *underlying*
  /// normal's mu/sigma (the standard parameterisation; median = exp(mu)).
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// All weights must be >= 0 and at least one must be > 0.
  std::size_t weighted_index(std::span<const double> weights) {
    assert(!weights.empty());
    std::discrete_distribution<std::size_t> dist(weights.begin(),
                                                 weights.end());
    return dist(engine_);
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  /// Derives an independent child generator; used to give each replication
  /// or each workload stream its own deterministic stream.
  Rng fork() { return Rng(engine_()); }

  /// Direct access for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace epajsrm::sim
