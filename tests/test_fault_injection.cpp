// End-to-end resilience-plane tests: the FaultInjector driving node
// crashes, PDU trips, hangs, sensor faults and CAPMC control-RPC faults
// through a live EpaJsrmSolution, and the stack degrading gracefully —
// requeues, quarantine, telemetry fallback, retry/breaker — with the
// invariant auditor watching for false positives.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "check/invariant_auditor.hpp"
#include "core/solution.hpp"
#include "fault/fault_plan.hpp"

namespace epajsrm::fault {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 4) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .nodes_per_rack(4)
      .racks_per_pdu(1)
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 3;
  spec.submit_time = submit;
  spec.profile.freq_sensitive_fraction = 0.5;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

core::SolutionConfig no_thermal() {
  core::SolutionConfig config;
  config.enable_thermal = false;
  return config;
}

TEST(FaultInjection, NodeCrashRequeuesVictimAndRerunsIt) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());
  check::InvariantAuditor auditor(solution);
  solution.submit(job_spec(1, 2, 30 * sim::kMinute));

  FaultPlan plan;
  plan.crash_node(10 * sim::kMinute, 0, /*repair_after=*/10 * sim::kMinute);
  auto injector = FaultInjector::install(solution, plan);

  solution.run_until(6 * sim::kHour);
  const core::RunResult result = solution.finalize();

  EXPECT_EQ(injector->injected(), 1u);
  EXPECT_EQ(result.node_crashes, 1u);
  EXPECT_EQ(result.jobs_requeued_on_fault, 1u);
  EXPECT_EQ(result.jobs_lost_on_fault, 0u);
  EXPECT_EQ(result.kills_by_reason.at("node-crash"), 1u);
  // The original is killed; its clone completes the work.
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kKilled);
  const auto& finished = solution.finished_jobs();
  const auto completed =
      std::count_if(finished.begin(), finished.end(),
                    [](const workload::Job* j) {
                      return j->state() == workload::JobState::kCompleted;
                    });
  EXPECT_EQ(completed, 1);
  // The crash edge is excused via its crash mark; nothing else may trip.
  EXPECT_EQ(auditor.violation_count(), 0u)
      << auditor.violations().front().invariant << ": "
      << auditor.violations().front().detail;
}

TEST(FaultInjection, CrashWithoutRequeueLosesTheJob) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config = no_thermal();
  config.resilience.requeue_on_crash = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  solution.submit(job_spec(1, 2, 30 * sim::kMinute));

  FaultPlan plan;
  plan.crash_node(10 * sim::kMinute, 0);
  FaultInjector::install(solution, plan);

  solution.run_until(6 * sim::kHour);
  const core::RunResult result = solution.finalize();
  EXPECT_EQ(result.jobs_requeued_on_fault, 0u);
  EXPECT_EQ(result.jobs_lost_on_fault, 1u);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kKilled);
}

TEST(FaultInjection, CheckpointRestartShortensTheRerun) {
  // Same crash at 20 min into a 30 min job; the checkpointing run saves
  // 20 min of work and must finish strictly earlier.
  const auto run_makespan = [](sim::SimTime checkpoint_interval) {
    sim::Simulation sim;
    platform::Cluster cluster = test_cluster(4);
    core::SolutionConfig config;
    config.enable_thermal = false;
    config.resilience.checkpoint_interval = checkpoint_interval;
    config.resilience.restart_overhead = sim::kMinute;
    core::EpaJsrmSolution solution(sim, cluster, config);
    solution.submit(job_spec(1, 2, 30 * sim::kMinute));
    FaultPlan plan;
    plan.crash_node(20 * sim::kMinute, 0, 5 * sim::kMinute);
    FaultInjector::install(solution, plan);
    solution.run_until(8 * sim::kHour);
    const core::RunResult result = solution.finalize();
    EXPECT_EQ(result.jobs_requeued_on_fault, 1u);
    sim::SimTime last_end = 0;
    for (const workload::Job* job : solution.finished_jobs()) {
      if (job->state() == workload::JobState::kCompleted) {
        last_end = std::max(last_end, job->end_time());
      }
    }
    EXPECT_GT(last_end, 0);
    return last_end;
  };

  const sim::SimTime without = run_makespan(0);
  const sim::SimTime with = run_makespan(5 * sim::kMinute);
  EXPECT_LT(with, without);
}

TEST(FaultInjection, PduTripCrashesEveryNodeOnThePdu) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);  // 2 PDUs x 4 nodes
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());
  check::InvariantAuditor auditor(solution);

  FaultPlan plan;
  plan.trip_pdu(sim::kMinute, 0, /*repair_after=*/30 * sim::kMinute);
  FaultInjector::install(solution, plan);

  solution.start();
  sim.run_until(10 * sim::kMinute);
  EXPECT_EQ(solution.pdu_trips(), 1u);
  EXPECT_EQ(solution.node_crashes(), 4u);
  for (platform::NodeId id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.node(id).state(), platform::NodeState::kOff);
  }
  for (platform::NodeId id = 4; id < 8; ++id) {
    EXPECT_EQ(cluster.node(id).state(), platform::NodeState::kIdle);
  }

  // Restoration boots the tripped PDU's nodes back to service.
  sim.run_until(2 * sim::kHour);
  for (platform::NodeId id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.node(id).state(), platform::NodeState::kIdle);
  }
  EXPECT_EQ(auditor.violation_count(), 0u);
}

TEST(FaultInjection, HangIsDetectedAfterTheHealthCheckLatency) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());

  FaultPlan plan;
  plan.hang_node(10 * sim::kMinute, 0, /*repair_after=*/5 * sim::kMinute);
  FaultInjector::Config config;
  config.hang_detection_latency = 60 * sim::kSecond;
  FaultInjector::install(solution, plan, config);

  solution.start();
  // The hang is invisible until the health check notices.
  sim.run_until(10 * sim::kMinute + 30 * sim::kSecond);
  EXPECT_EQ(cluster.node(0).state(), platform::NodeState::kIdle);
  EXPECT_EQ(solution.node_crashes(), 0u);
  sim.run_until(11 * sim::kMinute + sim::kSecond);
  EXPECT_EQ(solution.node_crashes(), 1u);
  EXPECT_EQ(cluster.node(0).state(), platform::NodeState::kOff);
}

TEST(FaultInjection, FlappingNodeIsQuarantinedAndNotAllocatable) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config = no_thermal();
  config.resilience.flap_threshold = 2;
  config.resilience.flap_window = sim::kHour;
  config.resilience.quarantine_duration = 8 * sim::kHour;
  core::EpaJsrmSolution solution(sim, cluster, config);

  FaultPlan plan;
  plan.crash_node(5 * sim::kMinute, 0, sim::kMinute)
      .crash_node(20 * sim::kMinute, 0, sim::kMinute);
  FaultInjector::install(solution, plan);

  solution.start();
  sim.run_until(40 * sim::kMinute);
  EXPECT_TRUE(solution.resource_manager().quarantined(0));
  EXPECT_EQ(solution.resource_manager().quarantines(), 1u);
  EXPECT_EQ(solution.resource_manager().quarantined_count(), 1u);
  // The node is back up (Idle) but fenced off from the scheduler.
  EXPECT_EQ(cluster.node(0).state(), platform::NodeState::kIdle);
  EXPECT_EQ(solution.allocatable_nodes(), 3u);

  // Quarantine expires on the simulation clock.
  sim.run_until(9 * sim::kHour);
  EXPECT_FALSE(solution.resource_manager().quarantined(0));
  EXPECT_EQ(solution.allocatable_nodes(), 4u);
}

TEST(FaultInjection, SensorFaultsDegradeTelemetryGracefully) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());
  solution.submit(job_spec(1, 2, 2 * sim::kHour));

  FaultPlan plan;
  plan.sensor_dropout(10 * sim::kMinute, 20 * sim::kMinute, 1.0)
      .sensor_noise(40 * sim::kMinute, 10 * sim::kMinute, 0.1);
  FaultInjector::install(solution, plan);

  bool degraded_seen = false;
  double measured_while_degraded_watts = -1.0;
  sim.schedule_at(25 * sim::kMinute, [&] {
    degraded_seen = solution.monitor().telemetry_degraded(sim.now());
    measured_while_degraded_watts =
        solution.monitor().measured_it_watts(sim.now());
  });

  solution.run_until(3 * sim::kHour);
  const core::RunResult result = solution.finalize();

  EXPECT_GT(solution.monitor().dropped_samples(), 0u);
  EXPECT_GT(solution.monitor().altered_samples(), 0u);
  EXPECT_EQ(result.telemetry_dropped_samples,
            solution.monitor().dropped_samples());
  // Mid-dropout the monitor served last-known-good x safety margin.
  EXPECT_TRUE(degraded_seen);
  EXPECT_GT(measured_while_degraded_watts, 0.0);
}

TEST(FaultInjection, CapmcFaultsDriveRetriesAndTheCircuitBreaker) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());

  FaultPlan plan;
  plan.capmc_failure(0, sim::kHour, 1.0);  // hard outage for the first hour
  FaultInjector::Config config;
  config.attach_sensor_filter = false;
  FaultInjector::install(solution, plan, config);

  solution.start();
  // Faults flow through the event queue: run past t=0 so the outage
  // window installs before we start issuing control RPCs.
  sim.run_until(sim::kSecond);
  power::CapmcController& capmc = solution.capmc();
  const fault::RetryPolicy& retry = capmc.retry_policy();

  // Every call fails after the full retry budget; the breaker opens at the
  // configured threshold, then fast-fails without burning attempts.
  for (std::uint32_t i = 0; i < retry.breaker_threshold; ++i) {
    EXPECT_FALSE(capmc.set_system_cap(800.0));
  }
  EXPECT_TRUE(capmc.breaker_open());
  EXPECT_TRUE(capmc.degraded());
  EXPECT_EQ(capmc.breaker_opens(), 1u);
  EXPECT_EQ(capmc.retries(),
            static_cast<std::uint64_t>(retry.breaker_threshold) *
                (retry.max_attempts - 1));
  const std::uint64_t failed_before = capmc.failed_calls();
  EXPECT_FALSE(capmc.set_node_cap(0, 150.0));
  EXPECT_EQ(capmc.breaker_fast_fails(), 1u);
  EXPECT_EQ(capmc.failed_calls(), failed_before + 1);
  EXPECT_EQ(capmc.capped_node_count(), 0u);  // nothing ever applied

  // Past the outage window and the breaker cooldown the channel heals.
  sim.run_until(2 * sim::kHour);
  EXPECT_TRUE(capmc.set_system_cap(800.0));
  EXPECT_FALSE(capmc.breaker_open());
  EXPECT_FALSE(capmc.degraded());
  EXPECT_GT(capmc.capped_node_count(), 0u);
  EXPECT_GT(capmc.total_rpc_latency_us(), 0.0);
}

TEST(FaultInjection, CapmcLatencyAboveTimeoutFailsTheCall) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());

  FaultPlan plan;
  // +10 ms on every RPC against the default 500 us timeout.
  plan.capmc_latency(0, sim::kHour, 10000.0);
  FaultInjector::Config config;
  config.attach_sensor_filter = false;
  FaultInjector::install(solution, plan, config);

  solution.start();
  sim.run_until(sim::kSecond);  // let the latency window install
  EXPECT_FALSE(solution.capmc().set_node_cap(1, 150.0));
  EXPECT_GT(solution.capmc().failed_calls(), 0u);
  EXPECT_TRUE(solution.capmc().degraded());
}

TEST(FaultInjection, ThermalExcursionBumpsTargetNode) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());

  FaultPlan plan;
  plan.thermal_excursion(sim::kMinute, 0, 15.0);
  FaultInjector::install(solution, plan);

  solution.start();
  const double before_c = cluster.node(0).temperature_c();
  sim.run_until(2 * sim::kMinute);
  EXPECT_NEAR(cluster.node(0).temperature_c(), before_c + 15.0, 1e-9);
  EXPECT_NEAR(cluster.node(1).temperature_c(),
              cluster.node(0).temperature_c() - 15.0, 1e-9);
}

TEST(FaultInjection, FailedNodeRestoreAndDoubleFailAreSafe) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster, no_thermal());
  solution.start();
  sim.run_until(sim::kMinute);

  EXPECT_TRUE(solution.fail_node(0, "test"));
  EXPECT_FALSE(solution.fail_node(0, "test"));   // already down
  EXPECT_FALSE(solution.restore_node(1));        // not down
  EXPECT_TRUE(solution.restore_node(0));
  EXPECT_FALSE(solution.fail_node(99, "test"));  // out of range
}

}  // namespace
}  // namespace epajsrm::fault
