#include "power/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "power/ledger.hpp"

namespace epajsrm::power {

void ThermalModel::step_node(platform::Node& node, double inlet_c,
                             sim::SimTime dt) const {
  const platform::NodeConfig& cfg = node.config();
  const double tau = cfg.thermal_resistance * cfg.thermal_capacitance;
  const double target = steady_state_c(cfg, node.current_watts(), inlet_c);
  const double t = node.temperature_c();
  const double decay = std::exp(-sim::to_seconds(dt) / tau);
  node.set_temperature_c(target + (t - target) * decay);
  if (ledger_ != nullptr) {
    ledger_->post_temperature(node.id(), node.temperature_c());
  }
}

double ThermalModel::inlet_c(const platform::Cluster& cluster,
                             const platform::Node& node) const {
  const platform::CoolingLoop& loop =
      cluster.facility().cooling_loop(node.cooling_loop());
  double inlet = loop.supply_temp_c + inlet_offset_c_;
  // Overloaded loop: supply temperature creeps up proportionally to the
  // overload fraction (coarse but monotone — what MS3 needs to react to).
  if (loop.heat_capacity_watts > 0.0) {
    const double load = ledger_ != nullptr
                            ? ledger_->cooling_load_watts(loop.id)
                            : cluster.cooling_load_watts(loop.id);
    const double overload = load / loop.heat_capacity_watts - 1.0;
    if (overload > 0.0) inlet += 10.0 * overload;
  }
  return inlet;
}

void ThermalModel::step_cluster(platform::Cluster& cluster,
                                sim::SimTime dt) const {
  for (platform::Node& node : cluster.nodes()) {
    step_node(node, inlet_c(cluster, node), dt);
  }
}

void ThermalModel::step_range(platform::Cluster& cluster, sim::SimTime dt,
                              PowerLedger::TemperatureShard& sink) const {
  // Ascending node order is load-bearing: the shard's argmax fold relies
  // on it to reproduce the classic sweep's tie-break (ledger.hpp).
  for (platform::NodeId id = sink.begin(); id < sink.end(); ++id) {
    platform::Node& node = cluster.node(id);
    const platform::NodeConfig& cfg = node.config();
    const double tau = cfg.thermal_resistance * cfg.thermal_capacitance;
    const double target =
        steady_state_c(cfg, node.current_watts(), inlet_c(cluster, node));
    const double t = node.temperature_c();
    const double decay = std::exp(-sim::to_seconds(dt) / tau);
    node.set_temperature_c(target + (t - target) * decay);
    sink.write(id, node.temperature_c());
  }
}

double ThermalModel::max_temperature_c(const platform::Cluster& cluster) {
  double max_t = -1e9;
  for (const platform::Node& node : cluster.nodes()) {
    max_t = std::max(max_t, node.temperature_c());
  }
  return max_t;
}

}  // namespace epajsrm::power
