file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_rm.dir/allocator.cpp.o"
  "CMakeFiles/epajsrm_rm.dir/allocator.cpp.o.d"
  "CMakeFiles/epajsrm_rm.dir/layout.cpp.o"
  "CMakeFiles/epajsrm_rm.dir/layout.cpp.o.d"
  "CMakeFiles/epajsrm_rm.dir/node_lifecycle.cpp.o"
  "CMakeFiles/epajsrm_rm.dir/node_lifecycle.cpp.o.d"
  "CMakeFiles/epajsrm_rm.dir/resource_manager.cpp.o"
  "CMakeFiles/epajsrm_rm.dir/resource_manager.cpp.o.d"
  "libepajsrm_rm.a"
  "libepajsrm_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
