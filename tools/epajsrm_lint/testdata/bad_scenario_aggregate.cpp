// Fixture: the scenario-aggregate rule must fire here.
struct ScenarioConfig {  // definition itself is legal (not flagged)
  int nodes = 0;
  unsigned long long seed = 1;
};

ScenarioConfig hand_rolled() {
  ScenarioConfig config{};
  config.nodes = 8;
  auto other = ScenarioConfig{.nodes = 16, .seed = 7};
  (void)other;
  return config;
}
