// Sweep-vs-ledger bench: the cost of answering "what is the cluster
// drawing right now?" by brute-force sweep of every node versus the
// PowerLedger's O(1) incremental aggregates, across node counts, on two
// scenario shapes:
//
//   power-dense — every node allocated hot with a cap set; the query mix
//                 (IT watts, per-rack watts, hottest node, capped count)
//                 runs against a churning ledger;
//   fault-storm — a live faulted run (stochastic crashes, sensor
//                 windows) with the same query mix probing every minute,
//                 demonstrating ledger reads stay cheap while producers
//                 hammer it.
//
// The per-query table is the acceptance artifact: sweep cost grows with
// node count, ledger cost does not. BenchSummary JSON on exit; the
// bench-smoke CI job compares events_per_sec against BENCH_baseline.json
// (warn-only).
//
// Flags:
//   --queries=N   query repetitions per cell (default 20000)
//   --smoke       tiny sizes for CI smoke runs
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_summary.hpp"
#include "core/scenario.hpp"
#include "core/scenario_builder.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "platform/cluster.hpp"
#include "power/ledger.hpp"
#include "power/node_power_model.hpp"

namespace {

using namespace epajsrm;
using Clock = std::chrono::steady_clock;

// The query mix both sides answer — total IT draw, rack 0's draw, the
// hottest node temperature and the capped-node count — i.e. what the
// telemetry API, thermal policy and budget policies ask every control
// tick. The ledger answers each in O(1); the sweep pays O(nodes) per
// query. Returns a checksum so the optimizer cannot delete the loops.
double sweep_queries(const platform::Cluster& cluster, std::size_t reps) {
  double checksum = 0.0;
  for (std::size_t q = 0; q < reps; ++q) {
    double it_watts = 0.0;
    double rack0_watts = 0.0;
    double max_temp_c = -1e300;
    std::uint32_t capped = 0;
    for (const platform::Node& node : cluster.nodes()) {
      const double w = node.current_watts();
      it_watts += w;
      if (node.rack() == 0) rack0_watts += w;
      if (node.temperature_c() > max_temp_c) max_temp_c = node.temperature_c();
      if (node.power_cap_watts() > 0.0) ++capped;
    }
    checksum += it_watts + rack0_watts + max_temp_c + capped;
  }
  return checksum;
}

double ledger_queries(const power::PowerLedger& ledger, std::size_t reps) {
  double checksum = 0.0;
  for (std::size_t q = 0; q < reps; ++q) {
    checksum += ledger.it_power_watts() + ledger.rack_power_watts(0) +
                ledger.max_temperature_c() + ledger.capped_node_count();
  }
  return checksum;
}

double ns_per_query(Clock::time_point t0, Clock::time_point t1,
                    std::size_t reps) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(reps);
}

void run_power_dense(std::uint32_t nodes, std::size_t queries) {
  platform::NodeConfig cfg;
  cfg.cores = 32;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 220.0;
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .node_count(nodes)
                                  .node_config(cfg)
                                  .nodes_per_rack(16)
                                  .racks_per_pdu(4)
                                  .build();
  power::NodePowerModel model(cluster.pstates());
  power::PowerLedger ledger(cluster);
  model.attach_ledger(&ledger);
  for (platform::Node& node : cluster.nodes()) {
    node.allocate(1, node.cores_total(), 0.9);
    node.set_power_cap_watts(250.0);
  }
  ledger.prime(cluster, model);

  const auto t0 = Clock::now();
  const double sweep_sum = sweep_queries(cluster, queries);
  const auto t1 = Clock::now();
  const double ledger_sum = ledger_queries(ledger, queries);
  const auto t2 = Clock::now();

  const double sweep_ns = ns_per_query(t0, t1, queries);
  const double ledger_ns = ns_per_query(t1, t2, queries);
  std::printf("%-12s %8u %14.1f %14.1f %9.1fx  (checksum %.3g/%.3g)\n",
              "power-dense", nodes, sweep_ns, ledger_ns,
              ledger_ns > 0.0 ? sweep_ns / ledger_ns : 0.0, sweep_sum,
              ledger_sum);
}

std::uint64_t run_fault_storm(std::uint32_t nodes, std::uint32_t jobs,
                              sim::SimTime horizon, std::size_t queries) {
  core::Scenario scenario = core::Scenario::builder()
                                .label("ledger-storm")
                                .nodes(nodes)
                                .job_count(jobs)
                                .seed(4242)
                                .horizon(horizon)
                                .build();
  scenario.solution().logger().set_threshold(sim::LogLevel::kError);
  fault::FailureModel failure;
  failure.mtbf_hours = 24.0;
  failure.repair_time = 15 * sim::kMinute;
  fault::FaultPlan plan = failure.generate(nodes, horizon, 4242);
  plan.sensor_dropout(2 * sim::kHour, sim::kHour, 0.5)
      .sensor_noise(5 * sim::kHour, sim::kHour, 0.05);
  fault::FaultInjector::Config fconfig;
  fconfig.seed = 4242;
  fault::FaultInjector::install(scenario.solution(), plan, fconfig);

  // Probe the ledger every simulated minute while the storm churns it.
  double probe_sum = 0.0;
  const std::size_t reps_per_probe =
      std::max<std::size_t>(1, queries / 1024);
  for (sim::SimTime t = sim::kMinute; t < horizon; t += sim::kMinute) {
    scenario.simulation().schedule_at(t, [&scenario, &probe_sum,
                                          reps_per_probe] {
      probe_sum +=
          ledger_queries(scenario.solution().ledger(), reps_per_probe);
    });
  }
  const core::RunResult result = scenario.run();
  std::printf("%-12s %8u %14s %14s %9s  (probe checksum %.3g)\n",
              "fault-storm", nodes, "-", "-", "-", probe_sum);
  return result.sim_events;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t queries = 20000;
  std::vector<std::uint32_t> node_counts = {64, 256, 1024};
  std::uint32_t storm_nodes = 64;
  std::uint32_t storm_jobs = 200;
  sim::SimTime storm_horizon = 2 * sim::kDay;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::strtoull(argv[i] + 10, nullptr, 10);
      if (queries == 0) {
        std::fprintf(stderr, "--queries needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      queries = 2000;
      node_counts = {16, 64};
      storm_nodes = 16;
      storm_jobs = 40;
      storm_horizon = sim::kDay;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  bench::BenchSummary summary("power_ledger");
  std::printf("%-12s %8s %14s %14s %10s\n", "scenario", "nodes",
              "sweep ns/qry", "ledger ns/qry", "speedup");
  for (const std::uint32_t nodes : node_counts) {
    run_power_dense(nodes, queries);
  }
  summary.add_events(
      run_fault_storm(storm_nodes, storm_jobs, storm_horizon, queries));
  return 0;
}
