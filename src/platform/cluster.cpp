#include "platform/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace epajsrm::platform {

Cluster::Cluster(std::string name, std::vector<Node> nodes,
                 std::unique_ptr<Topology> topology, PstateTable pstates,
                 Facility facility)
    : name_(std::move(name)), nodes_(std::move(nodes)),
      topology_(std::move(topology)), pstates_(std::move(pstates)),
      facility_(std::move(facility)) {
  if (nodes_.empty()) throw std::invalid_argument("cluster needs nodes");
  if (!topology_) throw std::invalid_argument("cluster needs a topology");
  if (topology_->node_count() < nodes_.size()) {
    throw std::invalid_argument("topology smaller than node count");
  }
}

Node& Cluster::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("bad node id");
  return nodes_[id];
}
const Node& Cluster::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("bad node id");
  return nodes_[id];
}

std::vector<NodeId> Cluster::nodes_in_state(NodeState state) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.state() == state) out.push_back(n.id());
  }
  return out;
}

std::uint32_t Cluster::count_in_state(NodeState state) const {
  return static_cast<std::uint32_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [state](const Node& n) { return n.state() == state; }));
}

std::uint64_t Cluster::cores_total() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.schedulable()) total += n.cores_total();
  }
  return total;
}

std::uint64_t Cluster::cores_free() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.schedulable()) total += n.cores_free();
  }
  return total;
}

double Cluster::core_utilization() const {
  const std::uint64_t total = cores_total();
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(cores_free()) / static_cast<double>(total);
}

double Cluster::it_power_watts() const {
  double sum = 0.0;
  for (const Node& n : nodes_) sum += n.current_watts();
  return sum;
}

double Cluster::pdu_power_watts(PduId pdu) const {
  double sum = 0.0;
  for (NodeId id : facility_.pdu(pdu).nodes) sum += nodes_[id].current_watts();
  return sum;
}

double Cluster::cooling_load_watts(CoolingId loop) const {
  double sum = 0.0;
  for (NodeId id : facility_.cooling_loop(loop).nodes) {
    sum += nodes_[id].current_watts();
  }
  return sum;
}

// --- ClusterBuilder ---------------------------------------------------------

ClusterBuilder& ClusterBuilder::name(std::string n) {
  name_ = std::move(n);
  return *this;
}
ClusterBuilder& ClusterBuilder::node_count(std::uint32_t n) {
  node_count_ = n;
  return *this;
}
ClusterBuilder& ClusterBuilder::node_config(NodeConfig cfg) {
  node_config_ = cfg;
  return *this;
}
ClusterBuilder& ClusterBuilder::nodes_per_rack(std::uint32_t n) {
  nodes_per_rack_ = n;
  return *this;
}
ClusterBuilder& ClusterBuilder::racks_per_pdu(std::uint32_t n) {
  racks_per_pdu_ = n;
  return *this;
}
ClusterBuilder& ClusterBuilder::racks_per_cooling_loop(std::uint32_t n) {
  racks_per_cooling_ = n;
  return *this;
}
ClusterBuilder& ClusterBuilder::pdu_capacity_watts(double w) {
  pdu_capacity_watts_ = w;
  return *this;
}
ClusterBuilder& ClusterBuilder::cooling_capacity_watts(double w) {
  cooling_capacity_watts_ = w;
  return *this;
}
ClusterBuilder& ClusterBuilder::pstates(PstateTable table) {
  pstates_ = std::make_unique<PstateTable>(std::move(table));
  return *this;
}
ClusterBuilder& ClusterBuilder::topology(std::unique_ptr<Topology> topo) {
  topology_ = std::move(topo);
  return *this;
}
ClusterBuilder& ClusterBuilder::facility_config(Facility::Config cfg) {
  facility_config_ = cfg;
  return *this;
}
ClusterBuilder& ClusterBuilder::ambient(AmbientModel ambient) {
  ambient_ = ambient;
  return *this;
}
ClusterBuilder& ClusterBuilder::variability_sigma(double sigma,
                                                  std::uint64_t seed) {
  variability_sigma_ = sigma;
  variability_seed_ = seed;
  return *this;
}

Cluster ClusterBuilder::build() const {
  if (node_count_ == 0) throw std::invalid_argument("node_count must be > 0");
  if (nodes_per_rack_ == 0 || racks_per_pdu_ == 0 || racks_per_cooling_ == 0) {
    throw std::invalid_argument("grouping factors must be > 0");
  }

  const std::uint32_t racks =
      (node_count_ + nodes_per_rack_ - 1) / nodes_per_rack_;
  const std::uint32_t pdus = (racks + racks_per_pdu_ - 1) / racks_per_pdu_;
  const std::uint32_t loops =
      (racks + racks_per_cooling_ - 1) / racks_per_cooling_;

  Facility facility(facility_config_, ambient_);
  for (std::uint32_t p = 0; p < pdus; ++p) {
    facility.add_pdu(Pdu{.id = 0,
                         .name = "pdu-" + std::to_string(p),
                         .capacity_watts = pdu_capacity_watts_,
                         .under_maintenance = false,
                         .nodes = {}});
  }
  for (std::uint32_t c = 0; c < loops; ++c) {
    facility.add_cooling_loop(
        CoolingLoop{.id = 0,
                    .name = "loop-" + std::to_string(c),
                    .heat_capacity_watts = cooling_capacity_watts_,
                    .supply_temp_c = 18.0,
                    .under_maintenance = false,
                    .nodes = {}});
  }

  sim::Rng rng(variability_seed_);
  std::vector<Node> nodes;
  nodes.reserve(node_count_);
  for (std::uint32_t i = 0; i < node_count_; ++i) {
    const RackId rack = i / nodes_per_rack_;
    const PduId pdu = rack / racks_per_pdu_;
    const CoolingId loop = rack / racks_per_cooling_;
    NodeConfig cfg = node_config_;
    if (variability_sigma_ > 0.0) {
      const double lo = 1.0 - 3.0 * variability_sigma_;
      const double hi = 1.0 + 3.0 * variability_sigma_;
      cfg.variability =
          std::clamp(rng.normal(1.0, variability_sigma_), lo, hi);
    }
    nodes.emplace_back(static_cast<NodeId>(i), cfg, rack, pdu, loop);
    facility.pdu(pdu).nodes.push_back(static_cast<NodeId>(i));
    facility.cooling_loop(loop).nodes.push_back(static_cast<NodeId>(i));
  }

  auto topo =
      topology_ ? std::move(topology_) : make_default_topology(node_count_);
  PstateTable table =
      pstates_ ? *pstates_ : PstateTable::linear(2.6, 1.2, 8);

  return Cluster(name_, std::move(nodes), std::move(topo), std::move(table),
                 std::move(facility));
}

}  // namespace epajsrm::platform
