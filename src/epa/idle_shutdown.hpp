// Idle-node shutdown — Mammela et al. [33] and Tokyo Tech's production
// "resource manager shuts down nodes that have been idle for a long time".
//
// Nodes idle beyond a timeout are powered off; when the queue needs more
// nodes than are available, off nodes are booted back (paying the boot
// latency and transient energy). A configurable spinning reserve keeps
// some idle nodes on for responsiveness.
#pragma once

#include <map>

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Powers idle nodes off and boots them on demand.
class IdleShutdownPolicy final : public EpaPolicy {
 public:
  struct Config {
    sim::SimTime idle_timeout = 10 * sim::kMinute;
    /// Idle nodes always kept on (the spinning reserve).
    std::uint32_t min_idle_online = 2;
    /// Use sleep/wake instead of full off/boot (faster, higher floor).
    bool use_sleep = false;
  };

  IdleShutdownPolicy() = default;
  explicit IdleShutdownPolicy(Config config) : config_(config) {}

  std::string name() const override { return "idle-shutdown"; }

  void on_tick(sim::SimTime now) override;

  std::uint64_t shutdowns_requested() const { return shutdowns_; }
  std::uint64_t boots_requested() const { return boots_; }

 private:
  /// Nodes the pending queue needs beyond what is allocatable or already
  /// coming up.
  std::uint32_t shortfall() const;

  Config config_{};
  /// Ordered by node id: on_tick picks shutdown victims by iterating this
  /// map while a reserve budget counts down, so iteration order decides
  /// *which* nodes power off. Hash order would make that choice differ
  /// across runs and partitions.
  std::map<platform::NodeId, sim::SimTime> idle_since_;
  std::uint64_t shutdowns_ = 0;
  std::uint64_t boots_ = 0;
};

}  // namespace epajsrm::epa
