// Dynamic power sharing of a global budget — Ellsworth et al. [17]
// (POWsched) and Bodas et al. [8]: instead of a fixed per-node cap, the
// controller periodically measures per-node demand and re-divides the
// system budget so power flows to the nodes that can use it.
#pragma once

#include <memory>

#include "epa/budget_source.hpp"
#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Periodic proportional re-division of a system power budget into node
/// caps. The budget is a BudgetSource, so tariff windows and externally
/// driven budgets re-divide automatically.
class DynamicPowerSharePolicy final : public EpaPolicy {
 public:
  /// `source`: the global IT budget to divide (time-varying).
  /// `floor_margin`: each node's cap never drops below idle_watts ×
  /// (1 + floor_margin) so nodes stay responsive.
  explicit DynamicPowerSharePolicy(std::shared_ptr<BudgetSource> source,
                                   double floor_margin = 0.02)
      : budget_(std::move(source)), floor_margin_(floor_margin) {}

  /// Convenience: a fixed `budget_watts` budget that set_budget_watts may
  /// still mutate (wrapped in a MutableBudgetSource).
  explicit DynamicPowerSharePolicy(double budget_watts,
                                   double floor_margin = 0.02)
      : DynamicPowerSharePolicy(
            std::make_shared<MutableBudgetSource>(budget_watts),
            floor_margin) {}

  std::string name() const override { return "dynamic-power-share"; }

  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime now) const override {
    return budget_.watts_at(now);
  }

  /// Deprecated: construct from a MutableBudgetSource and call its
  /// set_watts instead (see budget_source.hpp migration notes). Kept for
  /// the double-constructor path; throws std::logic_error when the policy
  /// was built from an explicit non-mutable source.
  void set_budget_watts(double watts);

  std::uint64_t redistributions() const { return redistributions_; }

 private:
  BudgetTracker budget_;
  double floor_margin_;
  std::uint64_t redistributions_ = 0;
};

}  // namespace epajsrm::epa
