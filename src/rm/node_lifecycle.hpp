// Node power lifecycle: timed boot / shutdown / sleep transitions.
//
// Tokyo Tech's production row ("resource manager dynamically boots or shuts
// down nodes to stay under power cap", "shuts down nodes that have been
// idle for a long time") and Mammela's [33] idle shutdown need these
// transitions with realistic latencies and transient power draws.
#pragma once

#include <cstdint>
#include <functional>

#include "platform/cluster.hpp"
#include "sim/simulation.hpp"

namespace epajsrm::rm {

/// Drives node state transitions through the simulator.
class NodeLifecycle {
 public:
  /// `pre_power_change` runs immediately before any node changes its draw
  /// (core wires the energy-accountant checkpoint here);
  /// `post_power_change` runs after (power-model re-apply + scheduler
  /// kick).
  NodeLifecycle(sim::Simulation& sim, platform::Cluster& cluster)
      : sim_(&sim), cluster_(&cluster) {}

  void set_pre_power_change(std::function<void()> hook) {
    pre_ = std::move(hook);
  }
  void set_post_power_change(std::function<void(platform::NodeId)> hook) {
    post_ = std::move(hook);
  }

  /// Starts powering off an idle node; completes after shutdown_time.
  /// Returns false when the node is not idle (nothing happens).
  bool power_off(platform::NodeId id);

  /// Starts booting an off node; completes after boot_time. Returns false
  /// when the node is not off.
  bool power_on(platform::NodeId id);

  /// Suspends an idle node; completes after sleep_time.
  bool sleep(platform::NodeId id);

  /// Wakes a sleeping node; completes after wake_time.
  bool wake(platform::NodeId id);

  // --- statistics ----------------------------------------------------------

  std::uint64_t boots() const { return boots_; }
  std::uint64_t shutdowns() const { return shutdowns_; }
  std::uint64_t sleeps() const { return sleeps_; }
  std::uint64_t wakes() const { return wakes_; }

  /// Nodes currently mid-transition (booting / shutting down).
  std::uint32_t in_transition() const { return in_transition_; }

 private:
  void transition(platform::NodeId id, platform::NodeState during,
                  platform::NodeState after, sim::SimTime delay);

  sim::Simulation* sim_;
  platform::Cluster* cluster_;
  std::function<void()> pre_;
  std::function<void(platform::NodeId)> post_;
  std::uint64_t boots_ = 0;
  std::uint64_t shutdowns_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint32_t in_transition_ = 0;
};

}  // namespace epajsrm::rm
