// Canonical ScenarioConfig serialization and the determinism cache key.
//
// A run is a pure function of its ScenarioConfig (DESIGN.md §13 proves the
// boundary cases; the obs plane is deterministic with wall_instruments
// off). The scenario service exploits that: two requests whose configs
// serialize to the same canonical form must produce byte-identical result
// payloads, so the canonical hash is a sound cache key.
//
// Soundness rests on three properties of canonical_serialize:
//   * total   — every semantic field of ScenarioConfig (including every
//               nested config) is emitted; adding a field without emitting
//               it silently aliases distinct scenarios, so the test suite
//               pins sensitivity per field;
//   * exact   — doubles are rendered with the shortest round-trip form
//               (net::format_double), the same renderer the EDC wire uses,
//               so distinct bit patterns never collide;
//   * ordered — keys are written in one fixed order with no dependence on
//               map iteration or locale.
//
// Configs carrying live state (an external_transport) are not pure values
// and are rejected with std::invalid_argument.
#pragma once

#include <cstdint>
#include <string>

#include "core/scenario.hpp"

namespace epajsrm::core {

/// Renders the config as `key=value` lines in a fixed canonical order.
/// Throws std::invalid_argument when the config holds an
/// external_transport (live handles have no canonical value form).
std::string canonical_serialize(const ScenarioConfig& config);

/// FNV-1a 64-bit over canonical_serialize(config).
std::uint64_t scenario_fingerprint(const ScenarioConfig& config);

/// The fingerprint as 16 lowercase hex digits — the service cache key.
std::string scenario_hash(const ScenarioConfig& config);

}  // namespace epajsrm::core
