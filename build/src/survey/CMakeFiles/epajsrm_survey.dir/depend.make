# Empty dependencies file for epajsrm_survey.
# This may be replaced when dependencies are built.
