// EventCategory: the typed category tag events are scheduled under.
//
// The tag names the event for the event-loop profiler and the invariant
// auditor. It used to be a raw `const char*` with a documented "must be a
// static string" rule the compiler could not enforce; EventCategory closes
// that footgun: both constructors are consteval, so only string literals
// (or other static-storage char arrays usable in constant expressions) can
// form one. Storage stays a single interned pointer — the type is
// ABI-trivial, copies are one register, and the profiler keys its hot-path
// map by that pointer with no hashing of the characters. Equal-content
// literals from different translation units may carry distinct pointers;
// consumers that aggregate (the profiler) merge by name at report time.
#pragma once

#include <cstddef>

namespace epajsrm::sim {

class Simulation;

/// Interned static event tag; constructible only from string literals.
class EventCategory {
 public:
  /// The default tag, "sim.event".
  consteval EventCategory() : name_("sim.event") {}

  /// Tags with a literal: EventCategory("core.control"). Consteval, so a
  /// runtime char pointer (whose lifetime the queue could not guarantee)
  /// does not compile.
  template <std::size_t N>
  consteval EventCategory(const char (&literal)[N]) : name_(literal) {
    static_assert(N > 1, "category must be non-empty");
  }

  /// The tag's characters; static storage, never freed.
  constexpr const char* name() const { return name_; }

  /// Identity comparison (pointer equality — same literal, same TU).
  friend constexpr bool operator==(EventCategory, EventCategory) = default;

 private:
  friend class Simulation;

  /// Access key for the engine-internal constructor below.
  struct Internal {};

  /// Reserved constructor for the engine's own tags (the periodic-batch
  /// envelope). `name` must have static storage duration; pointing it at a
  /// *mutable* array guarantees that no constant-merging pass
  /// (-fmerge-all-constants, linker ICF) can alias a user literal of equal
  /// content with it, so pointer identity is a safe envelope test even
  /// though user code can spell the same characters.
  constexpr EventCategory(Internal, const char* name) : name_(name) {}

  const char* name_;
};

/// Tag for events scheduled without an explicit category.
inline constexpr EventCategory kDefaultEventCategory{};

}  // namespace epajsrm::sim
