// Observability overhead microbench: proves the disabled path of every
// hot-loop instrument is a dead branch, not a hidden cost.
//
// The contract the obs layer sells (DESIGN.md §11) is "a null-pointer
// guard when off": core::Solution leaves the histogram pointers null
// unless wall instruments are enabled, and the hot paths (ledger post,
// dispatch loop, schedule pass) only ever pay an is-null branch. This
// bench measures that branch directly — a baseline arithmetic loop versus
// the same loop carrying the exact guard pattern with a pointer the
// compiler cannot prove null — and FAILS (exit 1) when the per-iteration
// delta exceeds 1ns. It also reports the *enabled* per-op costs
// (histogram observe, counter add, series record) as context for picking
// sampling strides; those are informational only.
//
// Flags:
//   --iters=N   iterations per timed loop (default 30M)
//   --smoke     small sizes for CI smoke runs (overrides --iters)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>

#include "bench_summary.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/series.hpp"
#include "sim/time.hpp"

namespace {

using epajsrm::obs::Counter;
using epajsrm::obs::DownsamplingSeries;
using epajsrm::obs::Histogram;
using epajsrm::obs::MetricsRegistry;

/// Keeps a value live without memory traffic (the classic DoNotOptimize).
template <typename T>
inline void keep(T& value) {
  asm volatile("" : "+r"(value));
}

inline std::uint64_t mix(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Baseline: the surrounding "real work" with no instrumentation at all.
double run_plain(std::uint64_t iters) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const double t0 = now_ms();
  for (std::uint64_t i = 0; i < iters; ++i) {
    state = mix(state);
    keep(state);
  }
  const double t1 = now_ms();
  keep(state);
  return t1 - t0;
}

/// Disabled path: identical work plus the production guard pattern — one
/// histogram pointer and one counter pointer, both null, both opaque to
/// the optimizer, checked every iteration exactly as the ledger's post()
/// and the solution's schedule_pass() do when obs is off.
double run_guarded(std::uint64_t iters) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  Histogram* hist = nullptr;
  Counter* counter = nullptr;
  const double t0 = now_ms();
  for (std::uint64_t i = 0; i < iters; ++i) {
    state = mix(state);
    keep(hist);
    keep(counter);
    if (hist != nullptr) hist->observe(static_cast<double>(state & 0xffff));
    if (counter != nullptr) counter->add(1);
    keep(state);
  }
  const double t1 = now_ms();
  keep(state);
  return t1 - t0;
}

/// Enabled path, for the report table: what one real observe/add/record
/// costs when the instrument is actually attached.
double run_enabled_histogram(std::uint64_t iters, Histogram& hist) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const double t0 = now_ms();
  for (std::uint64_t i = 0; i < iters; ++i) {
    state = mix(state);
    hist.observe(static_cast<double>(state & 0xffff));
    keep(state);
  }
  return now_ms() - t0;
}

double run_enabled_counter(std::uint64_t iters, Counter& counter) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const double t0 = now_ms();
  for (std::uint64_t i = 0; i < iters; ++i) {
    state = mix(state);
    counter.add(state & 1);
    keep(state);
  }
  return now_ms() - t0;
}

double run_enabled_series(std::uint64_t iters, DownsamplingSeries& series) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const double t0 = now_ms();
  for (std::uint64_t i = 0; i < iters; ++i) {
    state = mix(state);
    series.record(static_cast<epajsrm::sim::SimTime>(i) * 1000,
                  static_cast<double>(state & 0xffff));
    keep(state);
  }
  return now_ms() - t0;
}

/// Min of `reps` runs: the least-interrupted pass is the honest cost.
template <typename Fn>
double min_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double ms = fn();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 30'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::strtoull(argv[i] + 8, nullptr, 10);
      if (iters == 0) {
        std::fprintf(stderr, "--iters needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      iters = 3'000'000;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  epajsrm::bench::BenchSummary summary("obs_overhead");
  constexpr int kReps = 5;

  const double plain_ms = min_ms(kReps, [&] { return run_plain(iters); });
  const double guarded_ms = min_ms(kReps, [&] { return run_guarded(iters); });
  summary.add_events(2 * kReps * iters);

  MetricsRegistry registry;
  Histogram& hist = registry.histogram("bench.overhead_ns");
  Counter& counter = registry.counter("bench.overhead_ops");
  const double hist_ms = run_enabled_histogram(iters, hist);
  const double counter_ms = run_enabled_counter(iters, counter);
  // The series merges same-bucket samples in place, so a long record loop
  // stays O(1) memory; fewer iters keeps total bench time flat.
  DownsamplingSeries series(1024, epajsrm::sim::kSecond);
  const std::uint64_t series_iters = iters / 4;
  const double series_ms = run_enabled_series(series_iters, series);
  summary.add_events(3 * iters / 2);

  const auto per_op_ns = [](double ms, std::uint64_t n) {
    return n > 0 ? ms * 1e6 / static_cast<double>(n) : 0.0;
  };
  const double disabled_delta_ns =
      per_op_ns(guarded_ms, iters) - per_op_ns(plain_ms, iters);

  std::printf("%-28s %12s %12s\n", "path", "wall ms", "ns/op");
  std::printf("%-28s %12.1f %12.3f\n", "plain loop (baseline)", plain_ms,
              per_op_ns(plain_ms, iters));
  std::printf("%-28s %12.1f %12.3f\n", "disabled guards (null ptrs)",
              guarded_ms, per_op_ns(guarded_ms, iters));
  std::printf("%-28s %12s %12.3f  <= 1.000 required\n",
              "disabled-path overhead", "", disabled_delta_ns);
  std::printf("%-28s %12.1f %12.3f\n", "histogram observe (enabled)",
              hist_ms, per_op_ns(hist_ms, iters));
  std::printf("%-28s %12.1f %12.3f\n", "counter add (enabled)", counter_ms,
              per_op_ns(counter_ms, iters));
  std::printf("%-28s %12.1f %12.3f\n", "series record (enabled)", series_ms,
              per_op_ns(series_ms, series_iters));
  std::printf("(series coarsened %llu times over %llu records)\n",
              static_cast<unsigned long long>(series.coarsenings()),
              static_cast<unsigned long long>(series.total_samples()));

  if (disabled_delta_ns > 1.0) {
    std::fprintf(stderr,
                 "FAIL: disabled-path overhead %.3f ns/op exceeds the 1ns "
                 "budget — the off switch is no longer free\n",
                 disabled_delta_ns);
    return 1;
  }
  std::printf("PASS: disabled-path overhead %.3f ns/op (budget 1ns)\n",
              disabled_delta_ns);
  return 0;
}
