#include "power/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace epajsrm::power {
namespace {

platform::NodeConfig config() {
  platform::NodeConfig cfg;
  cfg.thermal_resistance = 0.2;     // K/W
  cfg.thermal_capacitance = 1000.0; // J/K -> tau = 200 s
  return cfg;
}

TEST(Thermal, SteadyStateFormula) {
  EXPECT_DOUBLE_EQ(ThermalModel::steady_state_c(config(), 200.0, 20.0),
                   60.0);
  EXPECT_DOUBLE_EQ(ThermalModel::steady_state_c(config(), 0.0, 22.0), 22.0);
}

TEST(Thermal, StepConvergesTowardSteadyState) {
  ThermalModel model(0.0);
  platform::Node n(0, config(), 0, 0, 0);
  n.set_current_watts(200.0);
  n.set_temperature_c(20.0);
  double prev_gap = std::abs(60.0 - n.temperature_c());
  for (int i = 0; i < 10; ++i) {
    model.step_node(n, 20.0, 100 * sim::kSecond);
    const double gap = std::abs(60.0 - n.temperature_c());
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
  EXPECT_NEAR(n.temperature_c(), 60.0, 0.5);
}

TEST(Thermal, ExactExponentialStep) {
  ThermalModel model(0.0);
  platform::Node n(0, config(), 0, 0, 0);
  n.set_current_watts(200.0);  // target 60 C at 20 C inlet
  n.set_temperature_c(20.0);
  model.step_node(n, 20.0, 200 * sim::kSecond);  // exactly one tau
  EXPECT_NEAR(n.temperature_c(), 60.0 + (20.0 - 60.0) * std::exp(-1.0),
              1e-9);
}

TEST(Thermal, CoolingStepLowersTemperature) {
  ThermalModel model(0.0);
  platform::Node n(0, config(), 0, 0, 0);
  n.set_current_watts(0.0);
  n.set_temperature_c(80.0);
  model.step_node(n, 20.0, 300 * sim::kSecond);
  EXPECT_LT(n.temperature_c(), 80.0);
  EXPECT_GT(n.temperature_c(), 20.0);
}

TEST(Thermal, InletIncludesRecirculationOffset) {
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .node_count(4)
                                  .node_config(config())
                                  .build();
  ThermalModel model(4.0);
  // Supply default 18 C + 4 C offset.
  EXPECT_DOUBLE_EQ(model.inlet_c(cluster, cluster.node(0)), 22.0);
}

TEST(Thermal, OverloadedLoopRaisesInlet) {
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .node_count(4)
                                  .node_config(config())
                                  .cooling_capacity_watts(100.0)
                                  .build();
  for (platform::Node& n : cluster.nodes()) n.set_current_watts(50.0);
  ThermalModel model(4.0);
  // Load 200 W on a 100 W loop: overload 1.0 -> +10 C.
  EXPECT_NEAR(model.inlet_c(cluster, cluster.node(0)), 32.0, 1e-9);
}

TEST(Thermal, MaxTemperatureFindsHottest) {
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .node_count(4)
                                  .node_config(config())
                                  .build();
  cluster.node(2).set_temperature_c(71.5);
  EXPECT_DOUBLE_EQ(ThermalModel::max_temperature_c(cluster), 71.5);
}

TEST(Thermal, StepClusterAdvancesEveryNode) {
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .node_count(4)
                                  .node_config(config())
                                  .build();
  for (platform::Node& n : cluster.nodes()) {
    n.set_current_watts(150.0);
    n.set_temperature_c(25.0);
  }
  ThermalModel model(4.0);
  model.step_cluster(cluster, 100 * sim::kSecond);
  for (const platform::Node& n : cluster.nodes()) {
    EXPECT_GT(n.temperature_c(), 25.0);
  }
}

}  // namespace
}  // namespace epajsrm::power
