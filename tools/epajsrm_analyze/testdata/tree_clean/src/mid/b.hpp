#pragma once

#include "base/core.hpp"

namespace fixture::mid {
inline int b() { return fixture::base::unit() + 1; }
}  // namespace fixture::mid
