#include "power/node_power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "platform/pstate.hpp"

namespace epajsrm::power {
namespace {

platform::NodeConfig config() {
  platform::NodeConfig cfg;
  cfg.cores = 32;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return cfg;
}

platform::Node make_node() { return platform::Node(0, config(), 0, 0, 0); }

class PowerModelTest : public ::testing::Test {
 protected:
  platform::PstateTable pstates_ = platform::PstateTable::linear(2.0, 1.0, 5);
  NodePowerModel model_{pstates_, 2.4};
};

TEST_F(PowerModelTest, IdleNodeDrawsIdlePower) {
  platform::Node n = make_node();
  const OperatingPoint op = model_.resolve(n);
  EXPECT_DOUBLE_EQ(op.watts, 100.0);
  EXPECT_FALSE(op.cap_binding);
}

TEST_F(PowerModelTest, FullLoadFullFrequencyIsPeak) {
  platform::Node n = make_node();
  n.allocate(1, 32, 1.0);
  const OperatingPoint op = model_.resolve(n);
  EXPECT_DOUBLE_EQ(op.watts, 300.0);
  EXPECT_DOUBLE_EQ(model_.peak_watts(config()), 300.0);
  EXPECT_DOUBLE_EQ(op.freq_ratio, 1.0);
}

TEST_F(PowerModelTest, PowerMonotoneInUtilization) {
  double last = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    const double w = model_.watts_at(config(), 1.0, u);
    EXPECT_GE(w, last);
    last = w;
  }
}

TEST_F(PowerModelTest, PowerMonotoneInFrequency) {
  double last = 0.0;
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    const double w = model_.watts_at(config(), f, 1.0);
    EXPECT_GT(w, last);
    last = w;
  }
}

TEST_F(PowerModelTest, VariabilityScalesDynamicOnly) {
  platform::NodeConfig hot = config();
  hot.variability = 1.1;
  EXPECT_DOUBLE_EQ(model_.watts_at(hot, 1.0, 0.0), 100.0);
  EXPECT_NEAR(model_.watts_at(hot, 1.0, 1.0), 100.0 + 220.0, 1e-9);
}

TEST_F(PowerModelTest, PstateReducesPower) {
  platform::Node n = make_node();
  n.allocate(1, 32, 1.0);
  n.set_pstate(4);  // ratio 0.5
  const OperatingPoint op = model_.resolve(n);
  EXPECT_NEAR(op.watts, 100.0 + 200.0 * std::pow(0.5, 2.4), 1e-9);
  EXPECT_DOUBLE_EQ(op.freq_ratio, 0.5);
}

TEST_F(PowerModelTest, CapClampsFrequencyContinuously) {
  platform::Node n = make_node();
  n.allocate(1, 32, 1.0);
  n.set_power_cap_watts(200.0);  // below the 300 W peak
  const OperatingPoint op = model_.apply(n);
  EXPECT_TRUE(op.cap_binding);
  EXPECT_FALSE(op.cap_infeasible);
  EXPECT_NEAR(op.watts, 200.0, 1e-6);
  // f = (100/200)^(1/2.4)
  EXPECT_NEAR(op.freq_ratio, std::pow(0.5, 1.0 / 2.4), 1e-9);
  EXPECT_DOUBLE_EQ(n.current_watts(), op.watts);
  EXPECT_DOUBLE_EQ(n.effective_freq_ratio(), op.freq_ratio);
}

TEST_F(PowerModelTest, DiscreteCapSnapsToPstate) {
  NodePowerModel discrete(pstates_, 2.4, CapMode::kDiscrete);
  platform::Node n = make_node();
  n.allocate(1, 32, 1.0);
  n.set_power_cap_watts(200.0);
  const OperatingPoint op = discrete.resolve(n);
  // Continuous clamp would be ~0.749; the next discrete ratio <= that is
  // 0.625 (state 3 of 1, .875, .75, .625, .5)... 0.75 <= 0.749? No (1e-12
  // tolerance), so 0.625.
  EXPECT_NEAR(op.freq_ratio, 0.625, 1e-9);
  EXPECT_LE(op.watts, 200.0 + 1e-9);
}

TEST_F(PowerModelTest, InfeasibleCapFlagsViolation) {
  platform::Node n = make_node();
  n.allocate(1, 32, 1.0);
  n.set_power_cap_watts(50.0);  // below the 100 W idle floor
  const OperatingPoint op = model_.resolve(n);
  EXPECT_TRUE(op.cap_binding);
  EXPECT_TRUE(op.cap_infeasible);
  EXPECT_GT(op.watts, 50.0);  // cannot actually meet the cap
}

TEST_F(PowerModelTest, CapAboveDemandNotBinding) {
  platform::Node n = make_node();
  n.allocate(1, 16, 0.5);  // util 0.25 -> 150 W
  n.set_power_cap_watts(250.0);
  const OperatingPoint op = model_.resolve(n);
  EXPECT_FALSE(op.cap_binding);
  EXPECT_DOUBLE_EQ(op.freq_ratio, 1.0);
}

TEST_F(PowerModelTest, LifecycleStateDraws) {
  platform::Node n = make_node();
  n.set_state(platform::NodeState::kOff);
  EXPECT_DOUBLE_EQ(model_.resolve(n).watts, n.config().off_watts);
  n.set_state(platform::NodeState::kBooting);
  EXPECT_DOUBLE_EQ(model_.resolve(n).watts, n.config().boot_watts);
  n.set_state(platform::NodeState::kSleeping);
  EXPECT_DOUBLE_EQ(model_.resolve(n).watts, n.config().sleep_watts);
  n.set_state(platform::NodeState::kShuttingDown);
  EXPECT_DOUBLE_EQ(model_.resolve(n).watts, n.config().boot_watts);
}

TEST_F(PowerModelTest, FreqForCapInverseOfWatts) {
  const double cap = 220.0;
  const double f = model_.freq_ratio_for_cap(config(), cap, 1.0);
  EXPECT_NEAR(model_.watts_at(config(), f, 1.0), cap, 1e-6);
}

TEST_F(PowerModelTest, FreqForCapZeroUtilizationIsFull) {
  EXPECT_DOUBLE_EQ(model_.freq_ratio_for_cap(config(), 150.0, 0.0), 1.0);
}

TEST_F(PowerModelTest, RejectsNonPositiveAlpha) {
  EXPECT_THROW(NodePowerModel(pstates_, 0.0), std::invalid_argument);
}

// Property sweep: for any utilisation and cap, the resolved power never
// exceeds a feasible cap.
class CapSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CapSweepTest, ResolvedPowerRespectsFeasibleCap) {
  platform::PstateTable pstates = platform::PstateTable::linear(2.5, 1.0, 6);
  NodePowerModel model(pstates, 2.4);
  const double util = GetParam();
  platform::Node n = make_node();
  if (util > 0.0) {
    n.allocate(1, static_cast<std::uint32_t>(util * 32), 1.0);
  }
  for (double cap = 110.0; cap <= 320.0; cap += 30.0) {
    n.set_power_cap_watts(cap);
    const OperatingPoint op = model.resolve(n);
    if (!op.cap_infeasible) {
      EXPECT_LE(op.watts, cap + 1e-6) << "util=" << util << " cap=" << cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Utilizations, CapSweepTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace epajsrm::power
