// The Cluster aggregate: nodes + interconnect + P-state ladder + facility.
// This is the "major high-performance computing system" of the survey's Q2.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "platform/facility.hpp"
#include "platform/ids.hpp"
#include "platform/node.hpp"
#include "platform/pstate.hpp"
#include "platform/topology.hpp"
#include "sim/rng.hpp"

namespace epajsrm::platform {

/// A complete machine: owns its nodes, fabric, P-state table and plant.
class Cluster {
 public:
  Cluster(std::string name, std::vector<Node> nodes,
          std::unique_ptr<Topology> topology, PstateTable pstates,
          Facility facility);

  const std::string& name() const { return name_; }

  // --- nodes -------------------------------------------------------------

  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::span<Node> nodes() { return nodes_; }
  std::span<const Node> nodes() const { return nodes_; }

  /// Ids of nodes currently in `state`.
  std::vector<NodeId> nodes_in_state(NodeState state) const;
  std::uint32_t count_in_state(NodeState state) const;

  /// Total / free schedulable cores across powered-on nodes.
  std::uint64_t cores_total() const;
  std::uint64_t cores_free() const;

  /// Fraction of powered-on (schedulable) cores that are allocated.
  double core_utilization() const;

  // --- power aggregation (reads the cached per-node sensor values) -------

  /// Sum of node draws (IT power only, watts).
  double it_power_watts() const;

  /// Sum of draws of the nodes fed by a PDU.
  double pdu_power_watts(PduId pdu) const;

  /// Sum of draws of nodes on a cooling loop (the heat the loop removes).
  double cooling_load_watts(CoolingId loop) const;

  // --- shared hardware tables ---------------------------------------------

  const Topology& topology() const { return *topology_; }
  const PstateTable& pstates() const { return pstates_; }
  Facility& facility() { return facility_; }
  const Facility& facility() const { return facility_; }

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::unique_ptr<Topology> topology_;
  PstateTable pstates_;
  Facility facility_;
};

/// Convenience builder producing a homogeneous cluster with evenly-divided
/// racks/PDUs/cooling loops and optional manufacturing variability.
class ClusterBuilder {
 public:
  ClusterBuilder& name(std::string n);
  ClusterBuilder& node_count(std::uint32_t n);
  ClusterBuilder& node_config(NodeConfig cfg);
  ClusterBuilder& nodes_per_rack(std::uint32_t n);
  ClusterBuilder& racks_per_pdu(std::uint32_t n);
  ClusterBuilder& racks_per_cooling_loop(std::uint32_t n);
  ClusterBuilder& pdu_capacity_watts(double w);
  ClusterBuilder& cooling_capacity_watts(double w);
  ClusterBuilder& pstates(PstateTable table);
  ClusterBuilder& topology(std::unique_ptr<Topology> topo);
  ClusterBuilder& facility_config(Facility::Config cfg);
  ClusterBuilder& ambient(AmbientModel ambient);

  /// Draws per-node variability multipliers from N(1, sigma), clamped to
  /// [1-3sigma, 1+3sigma]; sigma = 0 disables (Inadomi et al. use ~0.04).
  ClusterBuilder& variability_sigma(double sigma, std::uint64_t seed = 42);

  /// Builds the cluster. Nodes start Idle.
  Cluster build() const;

 private:
  std::string name_ = "cluster";
  std::uint32_t node_count_ = 64;
  NodeConfig node_config_{};
  std::uint32_t nodes_per_rack_ = 16;
  std::uint32_t racks_per_pdu_ = 2;
  std::uint32_t racks_per_cooling_ = 4;
  double pdu_capacity_watts_ = 0.0;
  double cooling_capacity_watts_ = 0.0;
  std::unique_ptr<PstateTable> pstates_;
  mutable std::unique_ptr<Topology> topology_;  // moved out by build()
  Facility::Config facility_config_{};
  AmbientModel ambient_{};
  double variability_sigma_ = 0.0;
  std::uint64_t variability_seed_ = 42;
};

}  // namespace epajsrm::platform
