// LRZ scenario: LoadLeveler-style energy-aware scheduling.
//
// Reproduces the Table I production row: "First time new app runs:
// characterized for frequency, runtime and energy. Administrator selects
// job scheduling goal, energy to solution or best performance." The same
// application stream runs under both administrator goals; the example
// prints the per-application characterisation the policy builds and the
// resulting energy/performance split.
#include <cstdio>

#include <map>

#include "epajsrm.hpp"

int main() {
  using namespace epajsrm;

  const survey::CenterProfile& lrz = survey::center("LRZ");

  const auto run_with_goal = [&](epa::EnergyToSolutionPolicy::Goal goal) {
    core::Scenario scenario =
        core::ScenarioBuilder::from_center(lrz, /*job_count=*/150,
                                           /*seed=*/29)
            .label(goal ==
                           epa::EnergyToSolutionPolicy::Goal::kEnergyToSolution
                       ? "supermuc-energy"
                       : "supermuc-performance")
            .horizon(30 * sim::kDay)
            .mix(core::WorkloadMix::kStandard)  // varied phase mixes
            .build();
    scenario.solution().add_policy(
        std::make_unique<epa::EnergyToSolutionPolicy>(goal, 1.4));
    return scenario.run();
  };

  const core::RunResult perf =
      run_with_goal(epa::EnergyToSolutionPolicy::Goal::kBestPerformance);
  const core::RunResult energy =
      run_with_goal(epa::EnergyToSolutionPolicy::Goal::kEnergyToSolution);

  metrics::AsciiTable table({"admin goal", "energy", "p50 runtime (min)",
                             "p90 runtime (min)", "makespan (h)",
                             "jobs done"});
  table.set_title("SuperMUC-style admin goal switch, same workload");
  for (const core::RunResult* r : {&perf, &energy}) {
    table.add_row(
        {r->report.label, metrics::format_kwh(r->total_it_kwh_exact),
         metrics::format_double(r->report.job_runtime_minutes.median, 1),
         metrics::format_double(r->report.job_runtime_minutes.p90, 1),
         metrics::format_double(sim::to_hours(r->report.makespan), 1),
         std::to_string(r->report.jobs_completed)});
  }
  std::printf("%s\n", table.render().c_str());

  const double saving =
      (perf.total_it_kwh_exact - energy.total_it_kwh_exact) /
      perf.total_it_kwh_exact * 100.0;
  std::printf("energy-to-solution saved %.1f %% of energy; the admin can "
              "flip the goal per machine or per season.\n",
              saving);

  // Per-application average energy under each goal (kWh per job, from the
  // user-facing reports) — the characterise-then-optimise effect is
  // visible per tag.
  std::map<std::string, std::pair<double, int>> perf_by_tag, energy_by_tag;
  for (const auto& report : perf.job_reports) {
    perf_by_tag[report.tag].first += report.energy_kwh;
    perf_by_tag[report.tag].second += 1;
  }
  for (const auto& report : energy.job_reports) {
    energy_by_tag[report.tag].first += report.energy_kwh;
    energy_by_tag[report.tag].second += 1;
  }
  metrics::AsciiTable per_app(
      {"application", "kWh/job (performance)", "kWh/job (energy goal)"});
  per_app.set_title("Average job energy by application tag");
  for (const auto& [tag, stats] : perf_by_tag) {
    const auto it = energy_by_tag.find(tag);
    if (it == energy_by_tag.end() || stats.second == 0 ||
        it->second.second == 0) {
      continue;
    }
    per_app.add_row(
        {tag, metrics::format_double(stats.first / stats.second, 2),
         metrics::format_double(it->second.first / it->second.second, 2)});
  }
  std::printf("%s", per_app.render().c_str());
  return 0;
}
