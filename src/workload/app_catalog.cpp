#include "workload/app_catalog.hpp"

#include <algorithm>
#include <stdexcept>

namespace epajsrm::workload {

AppCatalog AppCatalog::standard() {
  AppCatalog c;
  // β = frequency-sensitive fraction, comm = communication fraction,
  // intensity = dynamic-power drive. Medians/sizes loosely follow the job
  // mix the survey's Q3 answers describe (many small, few huge).
  c.add({.tag = "cfd-solver",
         .profile = {.freq_sensitive_fraction = 0.85, .comm_fraction = 0.20,
                     .power_intensity = 0.95},
         .weight = 2.0, .median_runtime = 2 * sim::kHour,
         .runtime_sigma = 0.6, .min_nodes = 8, .max_nodes = 256});
  c.add({.tag = "lattice-qcd",
         .profile = {.freq_sensitive_fraction = 0.90, .comm_fraction = 0.30,
                     .power_intensity = 1.00},
         .weight = 1.0, .median_runtime = 6 * sim::kHour,
         .runtime_sigma = 0.4, .min_nodes = 64, .max_nodes = 1024});
  c.add({.tag = "genomics-pipeline",
         .profile = {.freq_sensitive_fraction = 0.35, .comm_fraction = 0.05,
                     .power_intensity = 0.55},
         .weight = 3.0, .median_runtime = 45 * sim::kMinute,
         .runtime_sigma = 1.0, .min_nodes = 1, .max_nodes = 8});
  c.add({.tag = "climate-model",
         .profile = {.freq_sensitive_fraction = 0.60, .comm_fraction = 0.35,
                     .power_intensity = 0.80},
         .weight = 1.5, .median_runtime = 8 * sim::kHour,
         .runtime_sigma = 0.5, .min_nodes = 32, .max_nodes = 512});
  c.add({.tag = "md-simulation",
         .profile = {.freq_sensitive_fraction = 0.80, .comm_fraction = 0.15,
                     .power_intensity = 0.90},
         .weight = 2.5, .median_runtime = 90 * sim::kMinute,
         .runtime_sigma = 0.7, .min_nodes = 4, .max_nodes = 128});
  c.add({.tag = "ml-training",
         .profile = {.freq_sensitive_fraction = 0.75, .comm_fraction = 0.10,
                     .power_intensity = 1.00},
         .weight = 1.5, .median_runtime = 4 * sim::kHour,
         .runtime_sigma = 0.9, .min_nodes = 2, .max_nodes = 64});
  c.add({.tag = "graph-analytics",
         .profile = {.freq_sensitive_fraction = 0.30, .comm_fraction = 0.40,
                     .power_intensity = 0.50},
         .weight = 1.0, .median_runtime = 30 * sim::kMinute,
         .runtime_sigma = 0.8, .min_nodes = 4, .max_nodes = 64});
  c.add({.tag = "post-processing",
         .profile = {.freq_sensitive_fraction = 0.45, .comm_fraction = 0.02,
                     .power_intensity = 0.40},
         .weight = 2.0, .median_runtime = 15 * sim::kMinute,
         .runtime_sigma = 1.1, .min_nodes = 1, .max_nodes = 4});
  return c;
}

AppCatalog AppCatalog::capability(std::uint32_t machine_nodes) {
  AppCatalog c;
  const std::uint32_t half = std::max(1u, machine_nodes / 2);
  c.add({.tag = "capability-hero",
         .profile = {.freq_sensitive_fraction = 0.85, .comm_fraction = 0.30,
                     .power_intensity = 1.00},
         .weight = 1.0, .median_runtime = 12 * sim::kHour,
         .runtime_sigma = 0.3, .min_nodes = half,
         .max_nodes = machine_nodes});
  c.add({.tag = "capability-large",
         .profile = {.freq_sensitive_fraction = 0.80, .comm_fraction = 0.25,
                     .power_intensity = 0.95},
         .weight = 2.0, .median_runtime = 6 * sim::kHour,
         .runtime_sigma = 0.4, .min_nodes = std::max(1u, machine_nodes / 8),
         .max_nodes = half});
  c.add({.tag = "capability-prep",
         .profile = {.freq_sensitive_fraction = 0.50, .comm_fraction = 0.10,
                     .power_intensity = 0.60},
         .weight = 2.0, .median_runtime = 1 * sim::kHour,
         .runtime_sigma = 0.8, .min_nodes = 1,
         .max_nodes = std::max(1u, machine_nodes / 16)});
  return c;
}

AppCatalog AppCatalog::capacity(std::uint32_t machine_nodes) {
  AppCatalog c;
  c.add({.tag = "capacity-ensemble",
         .profile = {.freq_sensitive_fraction = 0.70, .comm_fraction = 0.05,
                     .power_intensity = 0.85},
         .weight = 4.0, .median_runtime = 40 * sim::kMinute,
         .runtime_sigma = 0.9, .min_nodes = 1,
         .max_nodes = std::max(1u, machine_nodes / 32)});
  c.add({.tag = "capacity-batch",
         .profile = {.freq_sensitive_fraction = 0.55, .comm_fraction = 0.10,
                     .power_intensity = 0.70},
         .weight = 3.0, .median_runtime = 2 * sim::kHour,
         .runtime_sigma = 0.7, .min_nodes = 2,
         .max_nodes = std::max(2u, machine_nodes / 16)});
  c.add({.tag = "capacity-medium",
         .profile = {.freq_sensitive_fraction = 0.75, .comm_fraction = 0.20,
                     .power_intensity = 0.90},
         .weight = 1.0, .median_runtime = 4 * sim::kHour,
         .runtime_sigma = 0.5, .min_nodes = std::max(2u, machine_nodes / 16),
         .max_nodes = std::max(4u, machine_nodes / 4)});
  return c;
}

const AppArchetype& AppCatalog::sample(sim::Rng& rng) const {
  if (archetypes_.empty()) throw std::logic_error("empty catalog");
  std::vector<double> weights(archetypes_.size());
  std::transform(archetypes_.begin(), archetypes_.end(), weights.begin(),
                 [](const AppArchetype& a) { return a.weight; });
  return archetypes_[rng.weighted_index(weights)];
}

std::optional<AppArchetype> AppCatalog::find(const std::string& tag) const {
  for (const auto& a : archetypes_) {
    if (a.tag == tag) return a;
  }
  return std::nullopt;
}

}  // namespace epajsrm::workload
