// The observability plane's wall-clock source.
//
// The lint wall-clock rule bans raw std::chrono clock reads outside
// src/obs/: simulated time must never depend on the host clock. Host-cost
// measurements (latency histograms, self-overhead meters, progress lines)
// are legitimate wall-clock consumers — they funnel through this helper so
// the exception stays in one place and call sites stay lint-clean.
#pragma once

#include <chrono>
#include <cstdint>

namespace epajsrm::obs {

/// Monotonic wall-clock nanoseconds (arbitrary epoch; differences only).
inline std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace epajsrm::obs
