// Admission control: bounded queue + per-tenant in-flight quotas.
//
// The service never buffers unboundedly: past `max_queue` pending
// requests, new work is rejected with an explicit retry hint, and a tenant
// already holding `max_inflight_per_tenant` uncompleted requests is
// rejected regardless of queue headroom (one noisy client cannot starve
// the rest). Rejections are cheap and stateless — the client retries after
// `retry_after_ms`.
//
// Not thread-safe by itself; ScenarioService serializes access under its
// own lock.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace epajsrm::svc {

struct AdmissionConfig {
  /// Maximum queued (admitted, not yet finished) requests service-wide.
  std::size_t max_queue = 64;
  /// Maximum uncompleted requests a single tenant may hold.
  std::size_t max_inflight_per_tenant = 16;
  /// Retry hint attached to rejections.
  std::int64_t retry_after_ms = 250;
};

enum class AdmissionOutcome : std::uint8_t {
  kAdmitted,
  kQueueFull,
  kTenantQuota,
};

const char* to_string(AdmissionOutcome outcome);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Accounts one admission attempt. On kAdmitted the tenant's in-flight
  /// count is incremented; the caller must release() once the request
  /// reaches a terminal state.
  AdmissionOutcome try_admit(const std::string& tenant);

  /// Request reached a terminal state (done / failed / cancelled).
  void release(const std::string& tenant);

  std::size_t inflight_total() const { return inflight_total_; }
  std::size_t inflight(const std::string& tenant) const;
  std::size_t tenant_count() const { return inflight_.size(); }
  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  /// std::map: stats render in deterministic tenant order.
  std::map<std::string, std::size_t> inflight_;
  std::size_t inflight_total_ = 0;
};

}  // namespace epajsrm::svc
