// Minimal external scheduler over the EDC protocol (DESIGN.md §13).
//
// The whole point of the external-decision boundary: a scheduler is just
// a program that reads JSONL decision-point lines and writes JSONL reply
// lines. EchoAgent below is a complete greedy-FCFS implementation in ~40
// lines — it tracks job_submitted/job_ended, and on every scheduling_pass
// replies start_job for each pending job that fits the free nodes, in
// queue order.
//
// The example then proves the carrier claim: the identical agent is served
// on the far side of a real TCP socket (serve_one_connection on a
// background thread) and the run reproduces the loopback results exactly.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "epajsrm.hpp"

namespace {

using namespace epajsrm;

class EchoAgent final : public edc::Agent {
 public:
  std::vector<std::string> on_messages(
      const std::vector<std::string>& lines) override {
    std::vector<std::string> replies;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const edc::Message m = edc::parse_message(lines[i], i + 1);
      switch (m.type) {
        case edc::Message::Type::kJobSubmitted:
          nodes_of_[m.job] = m.nodes;
          break;
        case edc::Message::Type::kJobEnded:
          nodes_of_.erase(m.job);
          break;
        case edc::Message::Type::kSchedulingPass: {
          // Greedy FCFS: start everything that fits, in queue order.
          std::uint32_t free_nodes = m.free_nodes;
          for (const workload::JobId job : m.pending) {
            const auto it = nodes_of_.find(job);
            if (it == nodes_of_.end() || it->second > free_nodes) continue;
            free_nodes -= it->second;
            edc::Reply start;
            start.type = edc::Reply::Type::kStartJob;
            start.job = job;
            replies.push_back(edc::serialize(start));
          }
          break;
        }
        default:
          break;  // begins/ends/ticks need no bookkeeping here
      }
    }
    return replies;
  }

  std::string name() const override { return "echo-fcfs"; }

 private:
  std::map<workload::JobId, std::uint32_t> nodes_of_;
};

core::RunResult run_with(std::shared_ptr<edc::Transport> transport) {
  auto scenario = core::Scenario::builder()
                      .label("edc-echo")
                      .nodes(32)
                      .job_count(40)
                      .seed(7)
                      .external_scheduler(std::move(transport))
                      .build();
  return scenario.run();
}

}  // namespace

int main() {
  // In-process reference: the agent behind the serialized loopback.
  const core::RunResult loopback =
      run_with(std::make_shared<edc::LoopbackTransport>(
          std::make_shared<EchoAgent>()));

  // The same agent out of process: served over a real TCP connection on an
  // ephemeral loopback port. A fresh agent, because EchoAgent holds
  // per-run state.
  net::Listener listener = net::Listener::tcp(0);
  auto transport = edc::SocketTransport::connect_tcp(listener.port());
  std::size_t batches = 0;
  std::thread server([&listener, &batches] {
    EchoAgent agent;
    batches = edc::serve_one_connection(listener, agent);
  });
  core::RunResult socket;
  {
    // Scoped so the transport (and with it the connection) closes before
    // the join, ending the serve loop.
    const core::RunResult result = run_with(std::move(transport));
    socket = result;
  }
  server.join();

  std::printf("external scheduler: echo-fcfs (loopback, then tcp socket)\n");
  std::printf("jobs completed:     %llu / %llu\n",
              static_cast<unsigned long long>(loopback.report.jobs_completed),
              static_cast<unsigned long long>(loopback.report.jobs_submitted));
  std::printf("scheduling passes:  %llu\n",
              static_cast<unsigned long long>(loopback.scheduling_passes));
  std::printf("mean wait:          %.1f min\n",
              loopback.report.wait_minutes.mean);
  std::printf("total IT energy:    %.1f kWh\n", loopback.report.total_it_kwh);
  std::printf("socket batches:     %llu\n",
              static_cast<unsigned long long>(batches));

  const bool identical =
      loopback.sim_events == socket.sim_events &&
      loopback.report.jobs_completed == socket.report.jobs_completed &&
      loopback.report.makespan == socket.report.makespan &&
      loopback.report.total_it_kwh == socket.report.total_it_kwh;
  std::printf("socket == loopback: %s\n", identical ? "bit-identical" : "DIVERGED");
  return (loopback.report.jobs_completed > 0 && identical && batches > 0) ? 0
                                                                          : 1;
}
