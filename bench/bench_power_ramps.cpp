// Experiment S2-RAMP — the introduction's motivation: "an increase in
// both the rate of change and magnitude of system power fluctuations",
// and the ESP's view of ramps (Bates [6]).
//
// A capability workload (huge synchronous jobs) creates violent power
// swings; the ramp limiter staggers starts to bound dP/dt. Sweep the ramp
// limit across several seeds and report the worst observed 5-minute ramp
// against the scheduling cost.
#include <cstdio>

#include <memory>
#include <vector>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "epa/ramp_limiter.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace epajsrm;

struct RampRun {
  double worst_ramp = 0.0;
  double deferred = 0.0;
  double median_wait_min = 0.0;
  double makespan_h = 0.0;
  std::uint64_t sim_events = 0;
};

RampRun run_once(double limit_watts, std::uint64_t seed) {
  core::ScenarioConfig config;
  config.label = limit_watts > 0.0 ? "ramp-limited" : "unlimited";
  config.nodes = 64;
  config.job_count = 60;
  config.seed = seed;
  config.horizon = 30 * sim::kDay;
  config.mix = core::WorkloadMix::kCapability;  // huge synchronous jobs
  config.solution.enable_thermal = false;
  core::Scenario scenario(config);

  epa::RampLimiterPolicy::Config cfg;
  cfg.max_ramp_watts = limit_watts;
  cfg.window = 5 * sim::kMinute;
  auto policy = std::make_unique<epa::RampLimiterPolicy>(cfg);
  epa::RampLimiterPolicy* ramp = policy.get();
  scenario.solution().add_policy(std::move(policy));

  const core::RunResult result = scenario.run();
  RampRun out;
  out.worst_ramp = ramp->worst_observed_ramp();
  out.deferred = static_cast<double>(ramp->deferred_starts());
  out.median_wait_min = result.report.wait_minutes.median;
  out.makespan_h = sim::to_hours(result.report.makespan);
  out.sim_events = result.sim_events;
  return out;
}

std::string med_range(const std::vector<double>& values, int precision) {
  const metrics::DistributionSummary s = metrics::summarize(values);
  return metrics::format_double(s.median, precision) + " [" +
         metrics::format_double(s.min, precision) + ".." +
         metrics::format_double(s.max, precision) + "]";
}

}  // namespace

int main() {
  constexpr std::size_t kSeeds = 6;
  const std::vector<double> limits = {0.0, 8000.0, 4000.0, 2000.0};

  epajsrm::bench::BenchSummary summary("bench_power_ramps");
  std::vector<RampRun> cells(limits.size() * kSeeds);
  sim::ThreadPool::parallel_for(cells.size(), [&](std::size_t i) {
    const std::size_t l = i / kSeeds;
    const std::uint64_t seed = 7000 + i % kSeeds;
    cells[i] = run_once(limits[l], seed);
  });
  for (const RampRun& r : cells) summary.add_events(r.sim_events);

  metrics::AsciiTable table({"ramp limit", "worst 5-min ramp (kW)",
                             "starts deferred", "p50 wait (min)",
                             "makespan (h)"});
  table.set_title(
      "S2-RAMP: bounding power-fluctuation slope on a capability workload "
      "(64 nodes, 6 seeds per point, median [min..max])");
  for (std::size_t l = 0; l < limits.size(); ++l) {
    std::vector<double> ramp_kw, deferred, wait, makespan;
    for (std::size_t s = 0; s < kSeeds; ++s) {
      const RampRun& r = cells[l * kSeeds + s];
      ramp_kw.push_back(r.worst_ramp / 1e3);
      deferred.push_back(r.deferred);
      wait.push_back(r.median_wait_min);
      makespan.push_back(r.makespan_h);
    }
    table.add_row(
        {limits[l] > 0.0 ? metrics::format_watts(limits[l])
                         : std::string("none"),
         med_range(ramp_kw, 1), med_range(deferred, 0), med_range(wait, 1),
         med_range(makespan, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: tighter ramp limits smooth the facility's power "
      "profile (what the ESP sees) at a bounded wait/makespan cost.\n");
  return 0;
}
