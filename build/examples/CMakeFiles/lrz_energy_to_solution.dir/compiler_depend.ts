# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lrz_energy_to_solution.
