#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace epajsrm::sim {
namespace {

TEST(SimTime, ConstantsRelate) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(SimTime, FromSecondsRoundTrips) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.5), kSecond / 2);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(123.25)), 123.25);
}

TEST(SimTime, FromMinutesAndHours) {
  EXPECT_EQ(from_minutes(2.0), 2 * kMinute);
  EXPECT_EQ(from_hours(1.5), kHour + 30 * kMinute);
  EXPECT_DOUBLE_EQ(to_hours(36 * kHour), 36.0);
}

TEST(SimTime, FormatHmsBasic) {
  EXPECT_EQ(format_hms(0), "00:00:00");
  EXPECT_EQ(format_hms(61 * kSecond), "00:01:01");
  EXPECT_EQ(format_hms(3 * kHour + 25 * kMinute + 9 * kSecond), "03:25:09");
}

TEST(SimTime, FormatHmsDays) {
  EXPECT_EQ(format_hms(2 * kDay + kHour), "2+01:00:00");
}

TEST(SimTime, FormatHmsNegative) {
  EXPECT_EQ(format_hms(-kMinute), "-00:01:00");
}

TEST(SimTime, SubSecondTruncates) {
  EXPECT_EQ(format_hms(999 * kMillisecond), "00:00:00");
}

}  // namespace
}  // namespace epajsrm::sim
