#include "epa/energy_to_solution.hpp"

#include <algorithm>
#include <cmath>

namespace epajsrm::epa {

bool EnergyToSolutionPolicy::plan_start(StartPlan& plan) {
  if (host_ == nullptr || plan.job == nullptr) return true;
  if (goal_ == Goal::kBestPerformance) return true;  // pstate stays fast

  const auto it = characterization_.find(plan.job->spec().tag);
  if (it == characterization_.end()) {
    return true;  // first run: characterise at reference frequency
  }
  const AppCharacterization& app = it->second;

  const platform::Cluster& cluster = host_->cluster();
  const power::NodePowerModel& model = host_->power_model();
  const platform::PstateTable& pstates = cluster.pstates();
  const double idle = cluster.node(0).config().idle_watts;
  const double dyn = std::max(0.0, app.measured_node_watts - idle);

  // Never stretch a job into its walltime limit: the admissible slowdown
  // is also bounded by the measured runtime's headroom (LoadLeveler EAS
  // adjusts limits accordingly; we leave a 10 % guard band).
  double slowdown_cap = max_slowdown_;
  if (app.mean_runtime_s > 0.0) {
    const double headroom =
        0.9 * sim::to_seconds(plan.job->spec().walltime_estimate) /
        app.mean_runtime_s;
    slowdown_cap = std::min(slowdown_cap, headroom);
  }

  // E(f)/E(f0) with P(f) = idle + dyn·r^alpha and T(f) = beta/r + (1-beta).
  // The compared quantity is proportional to energy (watts x relative
  // time), hence dimensionless "factor" naming rather than joules.
  std::uint32_t best_state = plan.pstate;
  double best_energy_factor = std::numeric_limits<double>::max();
  for (std::uint32_t p = plan.pstate; p <= pstates.deepest(); ++p) {
    const double r = pstates.ratio(p);
    const double time_factor = app.beta / r + (1.0 - app.beta);
    if (time_factor > slowdown_cap) break;  // deeper only gets slower
    const double watts = idle + dyn * std::pow(r, model.alpha());
    const double energy_factor = watts * time_factor;
    if (energy_factor < best_energy_factor) {
      best_energy_factor = energy_factor;
      best_state = p;
    }
  }
  if (best_state != plan.pstate && !plan.dry_run) ++optimized_;
  plan.pstate = best_state;
  return true;
}

void EnergyToSolutionPolicy::on_job_end(const workload::Job& job) {
  if (job.state() != workload::JobState::kCompleted) return;
  const sim::SimTime elapsed = job.end_time() - job.start_time();
  if (elapsed <= 0 || job.allocated_nodes().empty()) return;
  // Characterise on the first completed run only (LRZ re-characterises
  // manually; we keep the first measurement stable).
  const std::string& tag = job.spec().tag;
  if (characterization_.contains(tag)) return;
  AppCharacterization app;
  app.measured_node_watts =
      job.energy_joules() / sim::to_seconds(elapsed) /
      static_cast<double>(job.allocated_nodes().size());
  app.beta = job.spec().profile.freq_sensitive_fraction;
  // Normalise the measured wall time back to reference frequency using
  // the achieved average speed (work done / elapsed).
  app.mean_runtime_s = job.work_total();
  characterization_.emplace(tag, app);
}

}  // namespace epajsrm::epa
