file(REMOVE_RECURSE
  "libepajsrm_survey.a"
)
