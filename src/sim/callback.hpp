// SmallFn: a move-only callable wrapper with a small-buffer optimisation.
//
// The event queue dispatches millions of callbacks per simulated run;
// std::function's type erasure heap-allocates most capture sets and costs
// an indirect call through a vtable-ish thunk either way. SmallFn keeps
// captures up to kInlineCallbackBytes (48 bytes — every callback the
// framework schedules today, including the periodic-batch repeater record)
// inline in the event arena slot, falling back to the heap only for
// oversized or throwing-move captures. Move-only by design: callbacks
// capture unique state (ids, generation counters) and are invoked exactly
// once from the queue.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace epajsrm::sim {

/// Capture budget stored inline in an event slot (no allocation at or
/// under this size).
inline constexpr std::size_t kInlineCallbackBytes = 48;

template <typename Signature, std::size_t BufBytes = kInlineCallbackBytes>
class SmallFn;

/// Move-only `R(Args...)` callable with BufBytes of inline capture space.
template <typename R, typename... Args, std::size_t BufBytes>
class SmallFn<R(Args...), BufBytes> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_.buf)) Fn(std::forward<F>(f));
      inline_ = true;
      relocate_ = [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
      destroy_ = [](void* target) { static_cast<Fn*>(target)->~Fn(); };
    } else {
      storage_.ptr = new Fn(std::forward<F>(f));
      inline_ = false;
      relocate_ = nullptr;
      destroy_ = [](void* target) { delete static_cast<Fn*>(target); };
    }
    invoke_ = [](void* target, Args&&... args) -> R {
      return (*static_cast<Fn*>(target))(std::forward<Args>(args)...);
    };
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  R operator()(Args... args) {
    return invoke_(target(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  friend bool operator==(const SmallFn& f, std::nullptr_t) { return !f; }

  /// True when the wrapped callable lives in the inline buffer (tests and
  /// the arena-layout notes in DESIGN.md rely on this being observable).
  bool is_inline() const { return invoke_ != nullptr && inline_; }

 private:
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= BufBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  void* target() {
    return inline_ ? static_cast<void*>(storage_.buf) : storage_.ptr;
  }

  void reset() {
    if (invoke_ != nullptr) {
      destroy_(target());
      invoke_ = nullptr;
    }
  }

  void move_from(SmallFn& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    inline_ = other.inline_;
    if (invoke_ == nullptr) return;
    if (inline_) {
      relocate_(storage_.buf, other.storage_.buf);
    } else {
      storage_.ptr = other.storage_.ptr;
    }
    other.invoke_ = nullptr;
  }

  union Storage {
    alignas(std::max_align_t) unsigned char buf[BufBytes];
    void* ptr;
  } storage_;
  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  bool inline_ = false;
};

}  // namespace epajsrm::sim
