#include "sched/backfill.hpp"

#include <algorithm>
#include <limits>

#include "obs/observability.hpp"

namespace epajsrm::sched {

void EasyBackfillScheduler::schedule(SchedulingContext& ctx) {
  obs::Observability* o = ctx.observability();
  obs::ScopedSpan span = obs::span_of(o, "sched", "easy_backfill");

  // Phase 1: start jobs strictly in order while they fit (resources AND
  // power). The first blocked job becomes the reservation holder.
  std::vector<workload::Job*> queue = ctx.pending();
  std::size_t head = 0;
  while (head < queue.size()) {
    if (!ctx.try_start(*queue[head], nullptr)) break;
    ++head;
  }
  if (span.active()) {
    span.attr("queued", static_cast<double>(queue.size()));
    span.attr("started_in_order", static_cast<double>(head));
  }
  if (head >= queue.size()) return;  // everything started

  workload::Job* blocked = queue[head];
  if (span.active()) span.set_job(static_cast<std::int64_t>(blocked->id()));

  // Phase 2: compute the blocked job's reservation from the availability
  // timeline, anchored at the earliest time admission policies would let
  // it start (power is not modelled in the reservation — the standard
  // simplification; the admission check still applies at actual start).
  AvailabilityTimeline timeline(ctx.allocatable_nodes(), ctx.running(), ctx);
  const sim::SimTime shadow_start = timeline.earliest_start(
      blocked->spec().nodes, blocked->spec().walltime_estimate,
      std::max(ctx.now(), ctx.earliest_admission(*blocked)));
  if (shadow_start != std::numeric_limits<sim::SimTime>::max()) {
    timeline.reserve(blocked->spec().nodes, shadow_start,
                     blocked->spec().walltime_estimate);
  }

  // Phase 3: backfill. A candidate may start now iff after reserving the
  // blocked job, the timeline still has room for it from now for its whole
  // walltime (this is exactly "does not delay the reservation").
  std::uint32_t examined = 0;
  std::uint32_t backfilled = 0;
  for (std::size_t i = head + 1; i < queue.size(); ++i) {
    if (max_depth_ != 0 && examined >= max_depth_) break;
    ++examined;
    workload::Job* job = queue[i];
    const std::uint32_t nodes = job->spec().nodes;
    const sim::SimTime walltime = job->spec().walltime_estimate;
    if (timeline.min_free(ctx.now(), walltime) < nodes) continue;
    if (ctx.try_start(*job, nullptr)) {
      timeline.reserve(nodes, ctx.now(), walltime);
      ++backfilled;
    }
  }
  if (span.active()) {
    span.attr("window_examined", examined);
    span.attr("backfilled", backfilled);
    o->metrics().counter("sched.backfill_examined").add(examined);
    o->metrics().counter("sched.backfilled_jobs").add(backfilled);
  }
}

void ConservativeBackfillScheduler::schedule(SchedulingContext& ctx) {
  obs::ScopedSpan span =
      obs::span_of(ctx.observability(), "sched", "conservative_backfill");

  // Walk the queue once, giving each job the earliest start that respects
  // all earlier jobs' reservations; jobs whose earliest start is "now" are
  // started immediately (subject to power admission).
  AvailabilityTimeline timeline(ctx.allocatable_nodes(), ctx.running(), ctx);
  const std::vector<workload::Job*> queue = ctx.pending();
  if (span.active()) span.attr("queued", static_cast<double>(queue.size()));

  for (workload::Job* job : queue) {
    const std::uint32_t nodes = job->spec().nodes;
    const sim::SimTime walltime = job->spec().walltime_estimate;
    const sim::SimTime start = timeline.earliest_start(
        nodes, walltime, std::max(ctx.now(), ctx.earliest_admission(*job)));
    if (start == std::numeric_limits<sim::SimTime>::max()) continue;

    if (start <= ctx.now() && ctx.try_start(*job, nullptr)) {
      timeline.reserve(nodes, ctx.now(), walltime);
    } else {
      // Reserve its future slot so later jobs cannot delay it. When power
      // admission (not resources) refused the start, the job keeps its
      // immediate reservation and retries next pass.
      timeline.reserve(nodes, start, walltime);
    }
  }
}

}  // namespace epajsrm::sched
