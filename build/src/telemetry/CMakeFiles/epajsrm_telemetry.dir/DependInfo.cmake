
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/energy_accounting.cpp" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/energy_accounting.cpp.o" "gcc" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/energy_accounting.cpp.o.d"
  "/root/repo/src/telemetry/monitor.cpp" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/monitor.cpp.o" "gcc" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/monitor.cpp.o.d"
  "/root/repo/src/telemetry/power_api.cpp" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/power_api.cpp.o" "gcc" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/power_api.cpp.o.d"
  "/root/repo/src/telemetry/sensor.cpp" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/sensor.cpp.o" "gcc" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/sensor.cpp.o.d"
  "/root/repo/src/telemetry/time_series.cpp" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/time_series.cpp.o" "gcc" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/time_series.cpp.o.d"
  "/root/repo/src/telemetry/user_scoreboard.cpp" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/user_scoreboard.cpp.o" "gcc" "src/telemetry/CMakeFiles/epajsrm_telemetry.dir/user_scoreboard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/epajsrm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/epajsrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/epajsrm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
