// CAPMC-style out-of-band power control plane (Cray Advanced Platform
// Monitoring and Control), the production capping mechanism at KAUST and
// LANL+Sandia (Tables I/II). Provides administrator-facing system-wide and
// node-level caps, translated into per-node cap values that the
// NodePowerModel honours.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "platform/cluster.hpp"
#include "power/node_power_model.hpp"

namespace epajsrm::obs {
class Observability;
class Counter;
class Histogram;
}

namespace epajsrm::power {

/// Out-of-band capping controller over a cluster.
class CapmcController {
 public:
  CapmcController(platform::Cluster& cluster, const NodePowerModel& model)
      : cluster_(&cluster), model_(&model) {}

  /// Attaches (or with null, detaches) the observability plane. Every
  /// public control entry point then records one `power.capmc_calls`
  /// increment, its wall latency into `power.capmc_call_us`, and a trace
  /// instant — modelling the out-of-band control path's cost.
  void set_observability(obs::Observability* o);

  /// Sets (or clears, with watts == 0) a node-level cap.
  void set_node_cap(platform::NodeId node, double watts);

  /// Sets the same cap on a set of nodes — JCAHPC's "power caps for groups
  /// of nodes via the resource manager".
  void set_group_cap(std::span<const platform::NodeId> nodes, double watts);

  /// Distributes a system-wide IT cap evenly across all nodes
  /// (administrator "system-wide power cap" in the LANL+Sandia row).
  /// Caps below a node's idle floor are clamped to the floor so the cap is
  /// always individually feasible; the residual error is reported by
  /// system_cap_error().
  void set_system_cap(double total_watts);

  /// Clears every node cap.
  void clear_all_caps();

  /// Sum of active node caps (0-capped nodes contribute their model peak),
  /// i.e. the guaranteed worst-case system draw.
  double worst_case_watts() const;

  /// Number of nodes with an active cap.
  std::uint32_t capped_node_count() const;

  /// Difference between the last requested system cap and what the evenly
  /// divided per-node caps actually guarantee (> 0 when idle floors forced
  /// clamping).
  double system_cap_error() const { return system_cap_error_; }

 private:
  void apply_node_cap(platform::NodeId node, double watts);
  /// Records one control call (counter + latency + trace instant).
  void record_call(const char* name, std::int64_t t0_ns,
                   std::int64_t node_id, double watts, double node_count);

  platform::Cluster* cluster_;
  const NodePowerModel* model_;
  double system_cap_error_ = 0.0;

  obs::Observability* obs_ = nullptr;
  obs::Counter* calls_counter_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace epajsrm::power
