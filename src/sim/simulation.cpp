#include "sim/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

namespace epajsrm::sim {

EventId Simulation::schedule_at(SimTime t, Callback cb,
                                const char* category) {
  return queue_.push(std::max(t, now_), std::move(cb), category);
}

EventId Simulation::schedule_every(SimTime period, std::function<bool()> cb,
                                   const char* category) {
  // Each firing reschedules itself; capturing `this` is safe because the
  // queue lives inside the Simulation.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, cb = std::move(cb), tick, category]() {
    if (cb()) {
      schedule_in(period, *tick, category);
    }
  };
  return schedule_in(period, *tick, category);
}

void Simulation::run_until(SimTime t) {
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    auto popped = queue_.pop();
    now_ = popped.time;
    ++events_processed_;
    if (hook_) {
      // Timed dispatch: only taken when a profiler is attached, so the
      // common path pays one branch, not two clock reads.
      const auto t0 = std::chrono::steady_clock::now();
      popped.callback();
      const auto t1 = std::chrono::steady_clock::now();
      hook_(popped.category,
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
    } else {
      popped.callback();
    }
  }
  if (!stopped_ && now_ < t && t != std::numeric_limits<SimTime>::max()) {
    now_ = t;
  }
}

}  // namespace epajsrm::sim
