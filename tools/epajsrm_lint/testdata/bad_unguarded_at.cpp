// Fixture: the unguarded-at rule must fire here.
#include <vector>

int lookup(const std::vector<int>& table, unsigned i) {
  return table.at(i);
}
