#include "edc/replay.hpp"

#include <stdexcept>

#include "edc/protocol.hpp"

namespace epajsrm::edc {

RecordingTransport::RecordingTransport(std::shared_ptr<Transport> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("recording transport needs an inner one");
  }
}

std::string RecordingTransport::describe() const {
  return "record:" + inner_->describe();
}

std::vector<std::string> RecordingTransport::exchange(
    const std::vector<std::string>& lines) {
  std::vector<std::string> replies = inner_->exchange(lines);
  recording_.push_back(RecordedExchange{lines, replies});
  return replies;
}

ReplayTransport::ReplayTransport(Recording recording)
    : recording_(std::move(recording)) {}

std::string ReplayTransport::describe() const { return "replay"; }

std::vector<std::string> ReplayTransport::exchange(
    const std::vector<std::string>& lines) {
  if (next_ >= recording_.size()) {
    throw ProtocolError(1, "replay: run produced exchange " +
                               std::to_string(next_ + 1) +
                               " but the recording holds only " +
                               std::to_string(recording_.size()));
  }
  const RecordedExchange& expected = recording_[next_];
  if (lines.size() != expected.request.size()) {
    throw ProtocolError(
        1, "replay: exchange " + std::to_string(next_ + 1) + " sent " +
               std::to_string(lines.size()) + " line(s), recording has " +
               std::to_string(expected.request.size()));
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i] != expected.request[i]) {
      throw ProtocolError(i + 1, "replay: exchange " +
                                     std::to_string(next_ + 1) +
                                     " diverges from the recording: got " +
                                     lines[i] + ", recorded " +
                                     expected.request[i]);
    }
  }
  return recording_[next_++].replies;
}

}  // namespace epajsrm::edc
