# Empty compiler generated dependencies file for powerapi_agent.
# This may be replaced when dependencies are built.
