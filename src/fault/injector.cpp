#include "fault/injector.hpp"

#include <algorithm>

#include "check/contract.hpp"
#include "core/partition_map.hpp"
#include "core/solution.hpp"

namespace epajsrm::fault {

FaultInjector::FaultInjector(core::EpaJsrmSolution& solution, Config config)
    : solution_(&solution), config_(config),
      sensor_rng_(sim::splitmix64(config.seed ^ 0x5e4a5ull)),
      capmc_rng_(sim::splitmix64(config.seed ^ 0xca9ccull)) {}

std::shared_ptr<FaultInjector> FaultInjector::install(
    core::EpaJsrmSolution& solution, const FaultPlan& plan, Config config) {
  std::shared_ptr<FaultInjector> self(new FaultInjector(solution, config));
  if (config.attach_sensor_filter) {
    solution.monitor().set_power_sample_filter(
        [self](sim::SimTime t, double truth_watts) {
          return self->filter_power_sample(t, truth_watts);
        });
  }
  if (config.attach_transport) {
    solution.capmc().set_transport(self);
  }
  self->schedule_plan(plan);
  return self;
}

sim::SimTime FaultInjector::now() const {
  return solution_->simulation().now();
}

void FaultInjector::attach_partition_map(const core::PartitionMap* map) {
  partition_map_ = map;
  injected_by_partition_.assign(map != nullptr ? map->count() : 0, 0);
}

void FaultInjector::attribute(const FaultEvent& event) {
  if (partition_map_ == nullptr) return;
  const core::PartitionMap& map = *partition_map_;
  switch (event.kind) {
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeHang:
      if (event.target >= 0 &&
          static_cast<std::uint64_t>(event.target) < map.total_nodes()) {
        ++injected_by_partition_[map.partition_of_node(
            static_cast<platform::NodeId>(event.target))];
      }
      break;
    case FaultKind::kPduTrip:
      if (event.target >= 0 &&
          static_cast<std::uint64_t>(event.target) < map.pdu_count()) {
        ++injected_by_partition_[map.partition_of_pdu(
            static_cast<platform::PduId>(event.target))];
      }
      break;
    case FaultKind::kThermalExcursion:
      if (event.target >= 0) {
        if (static_cast<std::uint64_t>(event.target) < map.total_nodes()) {
          ++injected_by_partition_[map.partition_of_node(
              static_cast<platform::NodeId>(event.target))];
        }
      } else {
        for (std::uint64_t& count : injected_by_partition_) ++count;
      }
      break;
    default:
      break;  // telemetry/control-plane faults own no partition
  }
}

void FaultInjector::prune(std::vector<Window>& windows, sim::SimTime t) {
  windows.erase(std::remove_if(windows.begin(), windows.end(),
                               [t](const Window& w) { return w.until <= t; }),
                windows.end());
}

void FaultInjector::schedule_plan(const FaultPlan& plan) {
  sim::Simulation& sim = solution_->simulation();
  for (const FaultEvent& event : plan.sorted()) {
    std::shared_ptr<FaultInjector> self = shared_from_this();
    sim.schedule_at(
        event.at, [self, event] { self->apply(event); }, "fault.inject");
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  // Faults mutate cluster/ledger state the partition workers read (and,
  // for thermal excursions, the very arrays the temperature shards write),
  // so they are coordinator-only, coupling-epoch-safe events by contract.
  EPAJSRM_REQUIRE(!solution_->in_partition_local_phase(),
                  "faults are epoch-coupled coordinator events");
  ++injected_;
  attribute(event);
  sim::Simulation& sim = solution_->simulation();
  std::shared_ptr<FaultInjector> self = shared_from_this();
  const sim::SimTime t = sim.now();

  switch (event.kind) {
    case FaultKind::kNodeCrash: {
      if (event.target < 0) break;
      const auto node = static_cast<platform::NodeId>(event.target);
      if (solution_->fail_node(node, "node-crash") && event.duration > 0) {
        sim.schedule_in(
            event.duration, [self, node] { self->solution_->restore_node(node); },
            "fault.recover");
      }
      break;
    }
    case FaultKind::kNodeHang: {
      if (event.target < 0) break;
      const auto node = static_cast<platform::NodeId>(event.target);
      const sim::SimTime repair = event.duration;
      // The hang itself is invisible; the health check notices after the
      // detection latency and the node is then handled as a crash.
      sim.schedule_in(
          config_.hang_detection_latency,
          [self, node, repair] {
            if (self->solution_->fail_node(node, "node-hang") && repair > 0) {
              self->solution_->simulation().schedule_in(
                  repair,
                  [self, node] { self->solution_->restore_node(node); },
                  "fault.recover");
            }
          },
          "fault.inject");
      break;
    }
    case FaultKind::kPduTrip: {
      if (event.target < 0) break;
      const auto pdu = static_cast<platform::PduId>(event.target);
      solution_->trip_pdu(pdu, "pdu-trip");
      if (event.duration > 0) {
        sim.schedule_in(
            event.duration, [self, pdu] { self->solution_->restore_pdu(pdu); },
            "fault.recover");
      }
      break;
    }
    case FaultKind::kSensorDropout:
    case FaultKind::kSensorStuck:
    case FaultKind::kSensorNoise:
      if (event.duration > 0) {
        sensor_windows_.push_back(
            {event.kind, t + event.duration, event.magnitude});
      }
      break;
    case FaultKind::kThermalExcursion: {
      platform::Cluster& cluster = solution_->cluster();
      power::PowerLedger& ledger = solution_->ledger();
      if (event.target >= 0) {
        if (static_cast<std::uint64_t>(event.target) <
            cluster.node_count()) {
          platform::Node& node =
              cluster.node(static_cast<platform::NodeId>(event.target));
          node.set_temperature_c(node.temperature_c() + event.magnitude);
          ledger.post_temperature(node.id(), node.temperature_c());
        }
      } else {
        for (platform::Node& node : cluster.nodes()) {
          node.set_temperature_c(node.temperature_c() + event.magnitude);
          ledger.post_temperature(node.id(), node.temperature_c());
        }
      }
      break;
    }
    case FaultKind::kCapmcFailure:
    case FaultKind::kCapmcLatency:
      if (event.duration > 0) {
        capmc_windows_.push_back(
            {event.kind, t + event.duration, event.magnitude});
      }
      break;
  }
}

std::optional<double> FaultInjector::filter_power_sample(sim::SimTime t,
                                                         double truth_watts) {
  prune(sensor_windows_, t);
  bool dropped = false;
  bool stuck = false;
  double sigma = 0.0;
  for (const Window& w : sensor_windows_) {
    switch (w.kind) {
      case FaultKind::kSensorDropout: {
        const double p = w.magnitude <= 0.0 ? 1.0 : w.magnitude;
        // Draw the coin unconditionally so the stream stays aligned no
        // matter how windows overlap.
        if (sensor_rng_.bernoulli(p)) dropped = true;
        break;
      }
      case FaultKind::kSensorStuck:
        stuck = true;
        break;
      case FaultKind::kSensorNoise:
        sigma += w.magnitude;
        break;
      default:
        break;
    }
  }
  if (dropped) return std::nullopt;
  double value_watts = truth_watts;
  if (stuck) {
    if (!stuck_watts_.has_value()) stuck_watts_ = truth_watts;
    value_watts = *stuck_watts_;
  } else {
    stuck_watts_.reset();
  }
  if (sigma > 0.0) {
    value_watts =
        std::max(0.0, value_watts * (1.0 + sensor_rng_.normal(0.0, sigma)));
  }
  return value_watts;
}

ControlTransport::Attempt FaultInjector::attempt(const char* op) {
  (void)op;
  prune(capmc_windows_, now());
  Attempt result;
  result.latency_us = config_.base_rpc_latency_us;
  for (const Window& w : capmc_windows_) {
    if (w.kind == FaultKind::kCapmcFailure) {
      const double p = w.magnitude <= 0.0 ? 1.0 : w.magnitude;
      if (capmc_rng_.bernoulli(p)) result.ok = false;
    } else if (w.kind == FaultKind::kCapmcLatency) {
      result.latency_us += w.magnitude;
    }
  }
  return result;
}

}  // namespace epajsrm::fault
