// BenchSummary: the one-line machine-readable JSON summary every bench
// prints on exit. Split out of center_bench.hpp so kernel benches that
// have nothing to do with the survey tables (bench_event_loop,
// bench_ensemble_scaling) can emit the same line without dragging in the
// whole EPA policy catalog. The bench-smoke CI job greps for this line
// and fails the build when it is missing or malformed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/solution.hpp"

namespace epajsrm::bench {

/// RAII bench summary: prints one machine-readable JSON line when the
/// bench exits — wall time plus simulator event throughput across every
/// run the bench executed. Event accumulation is thread-safe because the
/// table benches run centers on a thread pool.
class BenchSummary {
 public:
  explicit BenchSummary(std::string label)
      : label_(std::move(label)),
        start_(std::chrono::steady_clock::now()) {}

  BenchSummary(const BenchSummary&) = delete;
  BenchSummary& operator=(const BenchSummary&) = delete;

  /// Accumulates one finished run's dispatched-event count.
  void add_run(const core::RunResult& r) { add_events(r.sim_events); }
  void add_events(std::uint64_t n) {
    sim_events_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Events per wall second so far (what the JSON line will report).
  double events_per_sec() const {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const std::uint64_t events = sim_events_.load(std::memory_order_relaxed);
    return wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1000.0)
                         : 0.0;
  }

  ~BenchSummary() {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const std::uint64_t events =
        sim_events_.load(std::memory_order_relaxed);
    const double events_per_sec =
        wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1000.0)
                      : 0.0;
    std::printf(
        "{\"bench\":\"%s\",\"wall_ms\":%.1f,\"sim_events\":%llu,"
        "\"events_per_sec\":%.0f}\n",
        label_.c_str(), wall_ms, static_cast<unsigned long long>(events),
        events_per_sec);
  }

 private:
  std::string label_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> sim_events_{0};
};

}  // namespace epajsrm::bench
