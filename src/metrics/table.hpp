// Plain-text table rendering for bench output — the reproduced Tables I/II
// and experiment result grids are printed through this.
#pragma once

#include <string>
#include <vector>

namespace epajsrm::metrics {

/// Column-aligned ASCII table with an optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds a row; short rows are padded with empty cells, long rows throw.
  void add_row(std::vector<std::string> cells);

  /// Renders with box-drawing rules. Cells containing '\n' wrap into
  /// multiple physical lines.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3 kW" / "1.2 MW" style formatting.
std::string format_watts(double watts);

/// "824 kWh" / "1.21 MWh" style formatting.
std::string format_kwh(double kwh);

/// Fixed-precision helper.
std::string format_double(double v, int precision = 2);

/// "42.0 %" from a [0,1] fraction.
std::string format_percent(double fraction, int precision = 1);

}  // namespace epajsrm::metrics
