// The observability plane: one bundle owning the trace ring, the metrics
// registry (+ periodic sampler) and the event-loop profiler.
//
// The core solution creates one of these when ObsConfig.enabled is set and
// hands out a raw pointer to every instrumented component; a null pointer
// is the zero-overhead disabled path (components test the pointer once per
// decision, never per-event formatting or allocation).
#pragma once

#include <cstddef>
#include <memory>

#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace epajsrm::obs {

/// Tunables of the observability plane. Disabled by default: the stack
/// must cost nothing when nobody is watching.
struct ObsConfig {
  bool enabled = false;
  /// Trace ring capacity (events); oldest events are evicted beyond this.
  std::size_t trace_capacity = 1 << 16;
  /// Attach the event-loop profiler to the simulation dispatch hook.
  bool profile_event_loop = true;
  /// Route sim::Logger lines into the trace ring.
  bool trace_log_lines = true;
  /// Wire wall-clock-derived instruments (latency histograms such as
  /// power.capmc_call_us, the sampler's obs.overhead_ns self-meter).
  /// Disabled, the metrics registry is a pure function of the simulated
  /// run — what the ensemble needs to merge shard metrics bit-identically
  /// regardless of thread count.
  bool wall_instruments = true;
  /// Time every Nth dispatched event when profiling the event loop
  /// (1 = every event, full fidelity; larger strides trade per-category
  /// exactness for near-zero steady-state overhead).
  std::uint32_t profile_sample_stride = 1;
  /// Per-metric bucket budget of the CSV sampler's downsampling store.
  std::size_t sampler_budget = 1024;
};

/// Owner of the three observability pieces.
class Observability {
 public:
  explicit Observability(ObsConfig config = {})
      : config_(config),
        trace_(config.trace_capacity),
        metrics_(true),
        sampler_(metrics_, config.sampler_budget) {
    if (config_.wall_instruments) {
      // Self-overhead meter: the sampler bills its own wall cost here, so
      // "what does watching cost" is itself observable.
      sampler_.set_overhead_counter(&metrics_.counter("obs.overhead_ns"));
    }
  }

  /// Builds the plane when `config.enabled`, else returns null (the
  /// disabled path components check for).
  static std::unique_ptr<Observability> create_if(const ObsConfig& config) {
    return config.enabled ? std::make_unique<Observability>(config)
                          : nullptr;
  }

  const ObsConfig& config() const { return config_; }

  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsSampler& sampler() { return sampler_; }
  const MetricsSampler& sampler() const { return sampler_; }
  LoopProfiler& profiler() { return profiler_; }
  const LoopProfiler& profiler() const { return profiler_; }

 private:
  ObsConfig config_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;
  LoopProfiler profiler_;
  MetricsSampler sampler_;
};

/// Opens a span on `o`'s trace, or a no-op span when `o` is null.
inline ScopedSpan span_of(Observability* o, const char* component,
                          const char* name) {
  return o != nullptr ? o->trace().span(component, name) : ScopedSpan{};
}

}  // namespace epajsrm::obs
