// Shared machinery for the Table I / Table II reproduction benches.
//
// For each surveyed center the bench runs two simulations on the center's
// scaled machine replica and workload orientation:
//   * baseline — plain EASY backfilling, no EPA control;
//   * EPA      — the center's *production column* techniques from
//                survey::all_activities(), mapped to framework policies.
// It prints (a) the qualitative activity matrix (the literal table
// content) and (b) the quantitative effect of the production techniques.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench_summary.hpp"
#include "epajsrm.hpp"
#include "survey/activities.hpp"

namespace epajsrm::bench {

/// Result pair for one center.
struct CenterRow {
  std::string center;
  core::RunResult baseline;
  core::RunResult epa;
  double budget_watts = 0.0;
};

/// The scaled IT power budget used as the center's compliance line: 85 %
/// of the replica's worst-case draw (all scaled site budgets in the
/// profiles are far above idle, so this creates real pressure without
/// starving capability workloads).
inline double center_budget_watts(const survey::CenterProfile& profile) {
  return 0.85 * profile.sim_nodes * profile.node_peak_watts;
}

/// Installs the center's production-column techniques onto a solution.
inline void install_production_policies(const survey::CenterProfile& profile,
                                        core::EpaJsrmSolution& solution,
                                        double budget_watts) {
  const std::string& name = profile.short_name;
  if (name == "RIKEN") {
    // Production row, all three items: capability windows ("3 days for
    // large jobs each month" — scaled here to 3 days per week so the
    // replica run stays short), automated emergency job killing at the
    // power limit, and pre-run power estimates (the solution's default
    // tag-history predictor).
    epa::CapabilityWindowPolicy::Config window;
    window.large_fraction = 0.5;
    window.period = 7 * sim::kDay;
    window.window_length = 3 * sim::kDay;
    solution.add_policy(
        std::make_unique<epa::CapabilityWindowPolicy>(window));
    // Plain kills, no requeue: a job whose own draw exceeds the limit
    // would thrash through kill-requeue cycles forever (the replica's
    // hero jobs draw ~100 % of peak). The kill count below is the honest
    // price of enforcing a sub-peak limit reactively on a capability
    // machine — see EXPERIMENTS.md.
    epa::EmergencyResponsePolicy::Config cfg;
    cfg.limit_watts = budget_watts;
    cfg.mode = epa::EmergencyResponsePolicy::Mode::kAutomatedKill;
    solution.add_policy(std::make_unique<epa::EmergencyResponsePolicy>(cfg));
  } else if (name == "TokyoTech") {
    // Summer node cycling under the facility cap + idle shutdown.
    epa::NodeCyclingCapPolicy::Config cycling;
    cycling.cap_watts = budget_watts;
    cycling.enforce_above_ambient_c = -100.0;  // replica: always summer
    solution.add_policy(
        std::make_unique<epa::NodeCyclingCapPolicy>(cycling));
    epa::IdleShutdownPolicy::Config idle;
    idle.idle_timeout = 15 * sim::kMinute;
    idle.min_idle_online = 4;
    solution.add_policy(std::make_unique<epa::IdleShutdownPolicy>(idle));
  } else if (name == "CEA") {
    // Production: manual node shutdown to shift power budget between
    // systems — modelled as a conservative idle-shutdown regime (the
    // operator powers down spare capacity).
    epa::IdleShutdownPolicy::Config idle;
    idle.idle_timeout = 30 * sim::kMinute;
    idle.min_idle_online = 8;
    solution.add_policy(std::make_unique<epa::IdleShutdownPolicy>(idle));
  } else if (name == "KAUST") {
    // Static CAPMC capping (70 % of nodes at 270 W) + SDPM budgeted
    // admission.
    solution.add_policy(
        std::make_unique<epa::StaticPowerCapPolicy>(0.7, 270.0));
    solution.add_policy(
        std::make_unique<epa::PowerBudgetDvfsPolicy>(budget_watts));
  } else if (name == "LRZ") {
    // LoadLeveler EAS: characterise-then-optimise, energy-to-solution
    // goal.
    solution.add_policy(std::make_unique<epa::EnergyToSolutionPolicy>(
        epa::EnergyToSolutionPolicy::Goal::kEnergyToSolution));
  } else if (name == "STFC") {
    // Production is continuous monitoring (data center / machine / job
    // level); control stays off. The monitoring substrate is always on in
    // the framework, so no policy is installed.
  } else if (name == "Trinity") {
    // CAPMC admin caps: system-wide cap via evenly divided node caps.
    solution.add_policy(std::make_unique<epa::StaticPowerCapPolicy>(
        1.0, budget_watts / profile.sim_nodes));
  } else if (name == "CINECA") {
    // Eurora EPA scheduling, thermal-aware (MS3 heritage). Limits sit
    // just above the thermal design point so throttling is the exception,
    // not the rule.
    epa::Ms3ThermalPolicy::Config ms3;
    ms3.ambient_limit_c = 30.0;
    ms3.node_temp_limit_c = 78.0;
    solution.add_policy(std::make_unique<epa::Ms3ThermalPolicy>(ms3));
  } else if (name == "JCAHPC") {
    // Fujitsu group caps per PDU + manual emergency response.
    solution.add_policy(std::make_unique<epa::GroupPowerCapPolicy>(
        epa::GroupPowerCapPolicy::uniform_fraction(0.85)));
    epa::EmergencyResponsePolicy::Config cfg;
    cfg.limit_watts = budget_watts;
    cfg.mode = epa::EmergencyResponsePolicy::Mode::kManualCap;
    solution.add_policy(std::make_unique<epa::EmergencyResponsePolicy>(cfg));
  }
}

/// Runs baseline + EPA for one center.
inline CenterRow run_center(const std::string& name, std::size_t jobs = 120,
                            std::uint64_t seed = 42) {
  const survey::CenterProfile& profile = survey::center(name);
  const double budget = center_budget_watts(profile);

  CenterRow row;
  row.center = name;
  row.budget_watts = budget;

  {
    core::Scenario scenario =
        core::ScenarioBuilder::from_center(profile, jobs, seed)
            .label(name + "/baseline")
            .horizon(30 * sim::kDay)
            .build();
    scenario.solution().metrics_collector().set_budget_watts(budget);
    row.baseline = scenario.run();
  }
  {
    core::Scenario scenario =
        core::ScenarioBuilder::from_center(profile, jobs, seed)
            .label(name + "/epa")
            .horizon(30 * sim::kDay)
            .build();
    scenario.solution().metrics_collector().set_budget_watts(budget);
    install_production_policies(profile, scenario.solution(), budget);
    row.epa = scenario.run();
  }
  return row;
}

/// Renders the qualitative activity matrix for a set of centers — the
/// literal reproduction of the Table I/II content.
inline std::string activity_matrix(const std::vector<std::string>& centers,
                                   const std::string& title) {
  metrics::AsciiTable table({"Center", "Research Activities",
                             "Technology Development (intent to deploy)",
                             "Production Deployment"});
  table.set_title(title);
  for (const std::string& name : centers) {
    std::string research, techdev, production;
    const auto join = [](std::string& out, const survey::Activity& a) {
      if (!out.empty()) out += "\n";
      out += "* " + a.description;
    };
    for (const auto& a :
         survey::activities_of(name, survey::Maturity::kResearch)) {
      join(research, a);
    }
    for (const auto& a :
         survey::activities_of(name, survey::Maturity::kTechDevelopment)) {
      join(techdev, a);
    }
    for (const auto& a :
         survey::activities_of(name, survey::Maturity::kProduction)) {
      join(production, a);
    }
    table.add_row({name, research, techdev, production});
  }
  return table.render();
}

/// Renders the quantitative comparison rows.
inline std::string quantitative_table(const std::vector<CenterRow>& rows,
                                      const std::string& title) {
  metrics::AsciiTable table(
      {"Center", "Budget", "Variant", "Energy", "Mean util", "p50 wait (min)",
       "Viol. time", "Worst over", "Kills"});
  table.set_title(title);
  for (const CenterRow& row : rows) {
    const auto add = [&](const char* variant, const core::RunResult& r) {
      table.add_row({row.center, metrics::format_watts(row.budget_watts),
                     variant, metrics::format_kwh(r.total_it_kwh_exact),
                     metrics::format_percent(r.report.mean_core_utilization),
                     metrics::format_double(r.report.wait_minutes.median, 1),
                     metrics::format_percent(r.report.violation_fraction),
                     metrics::format_watts(r.report.worst_violation_watts),
                     std::to_string(r.report.jobs_killed)});
    };
    add("baseline", row.baseline);
    add("EPA JSRM", row.epa);
  }
  return table.render();
}

}  // namespace epajsrm::bench
