#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace epajsrm::metrics {
namespace {

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, SingleValue) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 7.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_NEAR(percentile(v, 25), 17.5, 1e-12);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Percentile, ClampsPercentileArgument) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150), 2.0);
}

TEST(Summarize, Q3eQuantitiesForUniformRamp) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const DistributionSummary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p10, 10.9, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
}

TEST(Summarize, EmptyInput) {
  const DistributionSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(RunningStats, WelfordMatchesDirectComputation) {
  RunningStats rs;
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleSampleZeroVariance) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace epajsrm::metrics
