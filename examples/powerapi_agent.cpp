// Power API measurement agent — the STFC workflow ("programmable
// interface (PowerAPI-based) for application power measurements") and
// Trinity's admin capping path.
//
// An external agent navigates the platform->cabinet->node hierarchy,
// reads POWER/TEMP/FREQ/ENERGY attributes while a workload runs, and
// finally sets a platform-wide power limit through the same interface —
// exactly the get/set surface the Power API defines.
#include <cstdio>

#include "epajsrm.hpp"
#include "telemetry/power_api.hpp"

int main() {
  using namespace epajsrm;

  sim::Simulation sim;
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .name("scafell")
                                  .node_count(16)
                                  .nodes_per_rack(8)
                                  .build();
  core::SolutionConfig config;
  config.enable_thermal = true;
  core::EpaJsrmSolution solution(sim, cluster, config);

  workload::GeneratorConfig gen;
  gen.machine_nodes = 16;
  gen.arrival_rate_per_hour = 12.0;
  workload::WorkloadGenerator generator(
      gen, workload::AppCatalog::capacity(16), 77);
  solution.submit_all(generator.generate(30));
  solution.start();

  // The agent: a read-mostly Power API context wired to the exact energy
  // meter. (Writes go through the solution's CAPMC controller — for live
  // control inside a solution prefer the PolicyHost funnel; this agent
  // only reads until the workload drains.)
  telemetry::PowerApiContext api(
      cluster, solution.ledger(), nullptr,
      [&solution](platform::NodeId id) {
        return solution.accountant().node_joules(id);
      });

  // Periodic measurement sweep, like a site monitoring daemon.
  metrics::AsciiTable sweep({"time", "platform W", "cab0 W", "cab1 W",
                             "hottest node C", "platform kWh"});
  sweep.set_title("Power API agent: hierarchy sweep every 2 h");
  sim.schedule_every(2 * sim::kHour, [&]() -> bool {
    if (sim.now() > 12 * sim::kHour) return false;
    const telemetry::PwrObject root = api.entry_point();
    const auto cabinets = api.children(root);
    double hottest = 0.0;
    for (const auto& cabinet : cabinets) {
      for (const auto& node : api.children(cabinet)) {
        hottest = std::max(hottest,
                           api.attr_get(node, telemetry::PwrAttr::kTemp));
      }
    }
    sweep.add_row(
        {sim::format_hms(sim.now()),
         metrics::format_double(
             api.attr_get(root, telemetry::PwrAttr::kPower), 0),
         metrics::format_double(
             api.attr_get(cabinets[0], telemetry::PwrAttr::kPower), 0),
         metrics::format_double(
             api.attr_get(cabinets[1], telemetry::PwrAttr::kPower), 0),
         metrics::format_double(hottest, 1),
         metrics::format_double(
             api.attr_get(root, telemetry::PwrAttr::kEnergy) / 3.6e6, 2)});
    return true;
  });

  solution.run_until(2 * sim::kDay);
  const core::RunResult result = solution.finalize();

  std::printf("%s\n", sweep.render().c_str());
  std::printf("%s\n", metrics::format_report(result.report).c_str());
  std::printf("hierarchy: %zu objects (1 platform + 2 cabinets + 16 "
              "nodes)\n",
              api.object_count());
  return 0;
}
