// Diamond over base via mid/a and mid/b, an angled root-relative
// include, a same-directory relative include, a crosscut include, and
// the sanctioned allow edge into ext.
#include <base/core.hpp>

#include "dbg/trace.hpp"
#include "ext/helper.hpp"
#include "mid/a.hpp"
#include "mid/b.hpp"
#include "util.hpp"

namespace fixture::top {
int all() {
  return fixture::mid::a() + fixture::mid::b() + fixture::ext::helper() +
         twice() + fixture::base::unit() + fixture::dbg::trace();
}
}  // namespace fixture::top
