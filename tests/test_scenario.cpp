#include "core/scenario.hpp"

#include <gtest/gtest.h>

namespace epajsrm::core {
namespace {

TEST(Scenario, RunsToDrainWithinHorizon) {
  ScenarioConfig config;
  config.label = "t";
  config.nodes = 16;
  config.job_count = 40;
  config.horizon = 30 * sim::kDay;
  config.mix = WorkloadMix::kCapacity;
  Scenario scenario(config);
  const RunResult result = scenario.run();
  EXPECT_EQ(result.report.jobs_submitted, 40u);
  EXPECT_EQ(result.report.jobs_completed + result.report.jobs_killed, 40u);
  EXPECT_GT(result.total_it_kwh_exact, 0.0);
}

TEST(Scenario, RunTwiceThrows) {
  ScenarioConfig config;
  config.nodes = 8;
  config.job_count = 2;
  Scenario scenario(config);
  scenario.run();
  EXPECT_THROW(scenario.run(), std::logic_error);
}

TEST(Scenario, DeterministicForSameSeed) {
  const auto run_once = [] {
    ScenarioConfig config;
    config.nodes = 16;
    config.job_count = 30;
    config.seed = 11;
    config.horizon = 30 * sim::kDay;
    Scenario scenario(config);
    return scenario.run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_DOUBLE_EQ(a.total_it_kwh_exact, b.total_it_kwh_exact);
  EXPECT_EQ(a.report.jobs_completed, b.report.jobs_completed);
}

TEST(Scenario, SeedChangesWorkload) {
  const auto energy_for = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.nodes = 16;
    config.job_count = 30;
    config.seed = seed;
    config.horizon = 30 * sim::kDay;
    Scenario scenario(config);
    return scenario.run().total_it_kwh_exact;
  };
  EXPECT_NE(energy_for(1), energy_for(2));
}

TEST(Scenario, ZeroJobCountFillsHorizon) {
  ScenarioConfig config;
  config.nodes = 16;
  config.job_count = 0;
  config.horizon = 12 * sim::kHour;
  config.mix = WorkloadMix::kCapacity;
  Scenario scenario(config);
  const RunResult result = scenario.run();
  EXPECT_GT(result.report.jobs_submitted, 0u);
}

TEST(Scenario, CenterConfigScalesFacility) {
  const survey::CenterProfile& kaust = survey::center("KAUST");
  const ScenarioConfig config = Scenario::center_config(kaust);
  EXPECT_EQ(config.label, "KAUST");
  EXPECT_EQ(config.nodes, kaust.sim_nodes);
  EXPECT_EQ(config.node_config.cores, kaust.cores_per_node);
  EXPECT_DOUBLE_EQ(config.node_config.idle_watts, kaust.node_idle_watts);
  // Facility capacity scaled by sim_nodes / machine_nodes.
  const double expected = kaust.site_power_capacity_mw * 1e6 *
                          kaust.sim_nodes / kaust.machine_nodes;
  EXPECT_NEAR(config.facility.site_power_capacity_watts, expected, 1.0);
}

TEST(Scenario, CenterConfigTracksWorkloadOrientation) {
  EXPECT_EQ(Scenario::center_config(survey::center("RIKEN")).mix,
            WorkloadMix::kCapability);
  EXPECT_EQ(Scenario::center_config(survey::center("TokyoTech")).mix,
            WorkloadMix::kCapacity);
}

TEST(Scenario, EveryCenterScenarioRuns) {
  for (const survey::CenterProfile& profile : survey::all_centers()) {
    ScenarioConfig config = Scenario::center_config(profile, 10, 3);
    config.horizon = 10 * sim::kDay;
    Scenario scenario(config);
    const RunResult result = scenario.run();
    EXPECT_EQ(result.report.jobs_submitted, 10u) << profile.short_name;
    EXPECT_GT(result.total_it_kwh_exact, 0.0) << profile.short_name;
  }
}

TEST(ArrivalRate, ScalesWithUtilizationTarget) {
  const workload::AppCatalog catalog = workload::AppCatalog::capacity(64);
  const double half = arrival_rate_for_utilization(catalog, 64, 0.4);
  const double full = arrival_rate_for_utilization(catalog, 64, 0.8);
  EXPECT_NEAR(full / half, 2.0, 1e-9);
  EXPECT_GT(half, 0.0);
}

TEST(ArrivalRate, ScalesWithMachineSize) {
  const workload::AppCatalog catalog = workload::AppCatalog::standard();
  EXPECT_GT(arrival_rate_for_utilization(catalog, 256, 0.7),
            arrival_rate_for_utilization(catalog, 64, 0.7));
}

}  // namespace
}  // namespace epajsrm::core
