#include "epa/budget_source.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"
#include "epa/policy.hpp"

namespace epajsrm::epa {

FixedBudgetSource::FixedBudgetSource(double watts) : watts_(watts) {
  EPAJSRM_REQUIRE(watts >= 0.0, "power budget must be non-negative");
}

std::string FixedBudgetSource::describe() const {
  return "fixed(" + std::to_string(watts_) + " W)";
}

ScheduleBudgetSource::ScheduleBudgetSource(double initial_watts,
                                           std::vector<Window> windows)
    : initial_watts_(initial_watts), windows_(std::move(windows)) {
  EPAJSRM_REQUIRE(initial_watts >= 0.0, "power budget must be non-negative");
  for (const Window& w : windows_) {
    EPAJSRM_REQUIRE(w.watts >= 0.0, "power budget must be non-negative");
  }
  std::stable_sort(
      windows_.begin(), windows_.end(),
      [](const Window& a, const Window& b) { return a.from < b.from; });
}

double ScheduleBudgetSource::watts_at(sim::SimTime now) const {
  double watts = initial_watts_;
  for (const Window& w : windows_) {
    if (w.from > now) break;
    watts = w.watts;  // duplicate `from` keeps the later entry
  }
  return watts;
}

std::string ScheduleBudgetSource::describe() const {
  return "schedule(" + std::to_string(windows_.size()) + " windows)";
}

MutableBudgetSource::MutableBudgetSource(double initial_watts)
    : watts_(initial_watts) {
  EPAJSRM_REQUIRE(initial_watts >= 0.0, "power budget must be non-negative");
}

std::string MutableBudgetSource::describe() const {
  return "mutable(" + std::to_string(watts_) + " W)";
}

void MutableBudgetSource::set_watts(double watts) {
  EPAJSRM_REQUIRE(watts >= 0.0, "power budget must be non-negative");
  if (watts == watts_) return;
  watts_ = watts;
  if (listener_) listener_(watts_);
}

BudgetTracker::BudgetTracker(std::shared_ptr<BudgetSource> source)
    : source_(std::move(source)) {
  if (!source_) throw std::invalid_argument("budget source required");
}

double BudgetTracker::refresh(sim::SimTime now, PolicyHost* host) {
  const double watts = source_->watts_at(now);
  if (watts != last_watts_) {
    const bool first = last_watts_ < 0.0;
    last_watts_ = watts;
    // The first resolution is the initial budget, not a change.
    if (!first && host != nullptr) host->notify_power_budget_changed(watts);
  }
  return watts;
}

}  // namespace epajsrm::epa
