// Capability windows — RIKEN's production row: "3 days for large jobs
// each month". Large (capability) jobs only launch inside recurring
// dedicated windows; outside them the machine serves capacity work. This
// both guarantees the hero runs contiguous resources and concentrates the
// machine's highest power excursions into known, planned periods (which
// is why it appears in a *power-aware* survey).
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Gates large-job starts into recurring windows.
class CapabilityWindowPolicy final : public EpaPolicy {
 public:
  struct Config {
    /// Jobs needing at least this fraction of the machine are "large".
    double large_fraction = 0.5;
    /// Window cadence (RIKEN: monthly) and length (RIKEN: 3 days).
    sim::SimTime period = 30 * sim::kDay;
    sim::SimTime window_length = 3 * sim::kDay;
    /// Offset of the first window start.
    sim::SimTime first_window = 0;
    /// Hold back large jobs whose walltime cannot fit the remaining
    /// window (they would be killed at the window edge otherwise... the
    /// policy does not kill; it just avoids doomed starts).
    bool require_fit = true;
  };

  explicit CapabilityWindowPolicy(Config config) : config_(config) {}

  std::string name() const override { return "capability-window"; }

  bool plan_start(StartPlan& plan) override;
  sim::SimTime earliest_start_hint(const workload::Job& job,
                                   sim::SimTime now) const override;

  /// True when `t` lies inside a capability window.
  bool in_window(sim::SimTime t) const;

  /// Start of the next window at or after `t`.
  sim::SimTime next_window(sim::SimTime t) const;

  std::uint64_t held_large_jobs() const { return held_; }

 private:
  Config config_;
  std::uint64_t held_ = 0;
};

}  // namespace epajsrm::epa
