// Pass 1: architecture conformance — every project include edge must be
// permitted by the declared layer DAG in layers.conf.
#pragma once

#include <map>
#include <string>

#include "epajsrm_analyze/config.hpp"
#include "epajsrm_analyze/finding.hpp"
#include "epajsrm_analyze/include_graph.hpp"
#include "support/source_text.hpp"

namespace epajsrm::analyze {

/// Checks every include edge in `graph` against `config`. Appends
/// `layer-violation` findings (with the allowed-dependency list in the
/// message so the fix is obvious) and `undeclared-layer` findings for
/// directories layers.conf does not know. A `lint:allow(layer-violation)`
/// marker on the #include line suppresses that edge.
void check_layers(const IncludeGraph& graph,
                  const std::map<std::string, toolsupport::SourceFile>& sources,
                  const LayerConfig& config, Findings* findings);

}  // namespace epajsrm::analyze
