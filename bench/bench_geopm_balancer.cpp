// Experiment S6-BAL — ablation of budget-division strategies under one
// tight global budget: the question behind LRZ's and STFC's "merge SLURM
// and GEOPM" research rows. Who should get the watts?
//
//   * static-even   — equal node caps (no awareness)
//   * dyn-share     — node-demand proportional (POWsched [17])
//   * job-balancer  — job-benefit aware (GEOPM [14] shape): memory-bound
//                     jobs are slowed hard, compute-bound jobs get the
//                     freed watts
//
// The workload is half compute-bound, half memory-bound, so the benefit
// split is real.
#include <cstdio>

#include <functional>
#include <memory>

#include "center_bench.hpp"
#include "core/solution.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/job_power_balancer.hpp"
#include "epa/static_power_cap.hpp"
#include "metrics/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace epajsrm;

workload::AppCatalog split_catalog() {
  workload::AppCatalog catalog;
  catalog.add({.tag = "compute-kernel",
               .profile = {.freq_sensitive_fraction = 0.95,
                           .comm_fraction = 0.05, .power_intensity = 1.0},
               .weight = 1.0, .median_runtime = 90 * sim::kMinute,
               .runtime_sigma = 0.4, .min_nodes = 2, .max_nodes = 8});
  catalog.add({.tag = "memory-streamer",
               .profile = {.freq_sensitive_fraction = 0.10,
                           .comm_fraction = 0.05, .power_intensity = 0.9},
               .weight = 1.0, .median_runtime = 90 * sim::kMinute,
               .runtime_sigma = 0.4, .min_nodes = 2, .max_nodes = 8});
  return catalog;
}

core::RunResult run_strategy(
    const std::string& label,
    const std::function<void(core::EpaJsrmSolution&, double)>& install) {
  sim::Simulation sim;
  platform::NodeConfig node;
  node.cores = 16;
  node.idle_watts = 100.0;
  node.dynamic_watts = 200.0;
  platform::Cluster cluster =
      platform::ClusterBuilder()
          .node_count(32)
          .node_config(node)
          .pstates(platform::PstateTable::linear(2.6, 1.2, 8))
          .build();
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  solution.metrics_collector().set_label(label);

  const double budget = 0.62 * 32 * 300.0;  // tight
  solution.metrics_collector().set_budget_watts(budget);
  install(solution, budget);

  workload::GeneratorConfig gen;
  gen.machine_nodes = 32;
  gen.arrival_rate_per_hour = 6.0;
  workload::WorkloadGenerator generator(gen, split_catalog(), 51);
  solution.submit_all(generator.generate(100));
  solution.run_until(30 * sim::kDay);
  return solution.finalize();
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_geopm_balancer");
  const core::RunResult even = run_strategy(
      "static-even", [](core::EpaJsrmSolution& s, double budget) {
        s.add_policy(std::make_unique<epa::StaticPowerCapPolicy>(
            1.0, budget / 32.0));
      });
  const core::RunResult share = run_strategy(
      "dyn-share", [](core::EpaJsrmSolution& s, double budget) {
        s.add_policy(std::make_unique<epa::DynamicPowerSharePolicy>(budget));
      });
  const core::RunResult balancer = run_strategy(
      "job-balancer", [](core::EpaJsrmSolution& s, double budget) {
        s.add_policy(std::make_unique<epa::JobPowerBalancerPolicy>(budget));
      });
  summary.add_run(even);
  summary.add_run(share);
  summary.add_run(balancer);

  metrics::AsciiTable table({"strategy", "p50 runtime (min)",
                             "p90 runtime (min)", "makespan (h)", "energy",
                             "viol. time", "jobs done"});
  table.set_title(
      "S6-BAL: who gets the watts under a 62 % budget? "
      "(half compute-bound, half memory-bound)");
  for (const core::RunResult* r : {&even, &share, &balancer}) {
    table.add_row(
        {r->report.label,
         metrics::format_double(r->report.job_runtime_minutes.median, 1),
         metrics::format_double(r->report.job_runtime_minutes.p90, 1),
         metrics::format_double(sim::to_hours(r->report.makespan), 1),
         metrics::format_kwh(r->total_it_kwh_exact),
         metrics::format_percent(r->report.violation_fraction),
         std::to_string(r->report.jobs_completed)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: benefit-aware division completes compute-bound work "
      "faster than demand-proportional or static division at the same "
      "budget — the GEOPM co-design argument.\n");
  return 0;
}
