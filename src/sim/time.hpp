// Simulation time: 64-bit integer microseconds since simulation start.
//
// Integer time keeps the discrete-event kernel fully deterministic (no
// floating-point drift in event ordering) while microsecond resolution is
// far below any physical time constant in the modelled system (node boot
// takes minutes, telemetry sampling seconds).
#pragma once

#include <cstdint>
#include <string>

namespace epajsrm::sim {

/// Simulation timestamp / duration in microseconds.
using SimTime = std::int64_t;

/// One microsecond (the base tick).
inline constexpr SimTime kMicrosecond = 1;
/// One millisecond in SimTime units.
inline constexpr SimTime kMillisecond = 1000;
/// One second in SimTime units.
inline constexpr SimTime kSecond = 1000 * kMillisecond;
/// One minute in SimTime units.
inline constexpr SimTime kMinute = 60 * kSecond;
/// One hour in SimTime units.
inline constexpr SimTime kHour = 60 * kMinute;
/// One day in SimTime units.
inline constexpr SimTime kDay = 24 * kHour;

/// Builds a SimTime from (possibly fractional) seconds.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Builds a SimTime from (possibly fractional) minutes.
constexpr SimTime from_minutes(double m) { return from_seconds(m * 60.0); }

/// Builds a SimTime from (possibly fractional) hours.
constexpr SimTime from_hours(double h) { return from_seconds(h * 3600.0); }

/// Converts a SimTime to seconds as a double (for power/energy integrals).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a SimTime to hours as a double (for tariff / energy-kWh math).
constexpr double to_hours(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kHour);
}

/// Renders a SimTime as "D+HH:MM:SS" (days omitted when zero) for logs and
/// report tables.
std::string format_hms(SimTime t);

}  // namespace epajsrm::sim
