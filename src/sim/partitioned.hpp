// PartitionedSimulation: one simulation, many event queues. The cluster
// is split into partitions, each owning a private Simulation (clock +
// slab-arena queue) that advances freely within the skew window, and the
// engine hard-synchronizes them only at coupling epochs (run_epoch).
// Cross-partition communication goes through the mailbox (post), which
// delivers at the next epoch boundary in a fixed deterministic order, so
// results are bit-identical for any partition count, worker count and
// skew window.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/skew_barrier.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

namespace epajsrm::sim {

struct PartitionedConfig {
  std::uint32_t partitions = 1;
  /// Worker threads driving the partitions; 0 = min(partitions, hardware).
  /// A resolved value of 1 (or a single partition) runs epochs inline on
  /// the calling thread with no pool and no barrier traffic.
  std::size_t workers = 0;
  /// Maximum clock skew between partitions inside an epoch; 0 means
  /// epoch-wide freedom (the barrier never blocks between epoch ends).
  SimTime skew_window = 0;
  /// Salts the per-partition rng streams (splitmix64 over the seed and
  /// the partition index).
  std::uint64_t seed = 0;
};

class PartitionedSimulation {
 public:
  /// Mailbox sender id for posts originating outside any partition.
  static constexpr std::uint32_t kCoordinator = 0xffffffffu;

  explicit PartitionedSimulation(PartitionedConfig config);
  // Local engines capture partition state; the whole ensemble is pinned.
  PartitionedSimulation(const PartitionedSimulation&) = delete;
  PartitionedSimulation& operator=(const PartitionedSimulation&) = delete;

  std::uint32_t partition_count() const {
    return static_cast<std::uint32_t>(locals_.size());
  }

  /// Partition `p`'s private engine, for wiring partition-local models
  /// (repeaters, initial events). Outside the local phase this is
  /// coordinator-side setup; during the phase only partition `p`'s own
  /// callbacks may touch it.
  Simulation& local(std::uint32_t p);
  const Simulation& local(std::uint32_t p) const;

  /// Partition `p`'s private random stream. Anything drawn from it that
  /// can affect results must be keyed per node (not per partition), or
  /// results stop being invariant in the partition count.
  Rng& rng(std::uint32_t p);
  std::uint64_t rng_salt(std::uint32_t p) const;

  /// Posts `fn` to partition `to`: it runs inside `to`'s local engine at
  /// time max(at, start of the next epoch) — cross-partition events are
  /// pinned to epoch boundaries. Delivery order is the fixed sort
  /// (at, sender, per-sender seq), independent of thread timing. Safe to
  /// call from partition callbacks during an epoch and from the
  /// coordinator between epochs.
  void post(std::uint32_t from, std::uint32_t to, SimTime at,
            Simulation::Callback fn,
            EventCategory category = kDefaultEventCategory);

  /// Delivers pending mail, then advances every partition to exactly
  /// `epoch_end` (executing all local events at times <= epoch_end) under
  /// the skew barrier. Blocks until all partitions arrive; a partition
  /// failure releases its peers and rethrows here, lowest partition index
  /// first. Epoch ends must be non-decreasing.
  void run_epoch(SimTime epoch_end);

  /// True while partition callbacks may be running on worker threads —
  /// the window in which cross-partition shared state must not be
  /// touched (see EPAJSRM_REQUIRE call sites in core/epa/sched).
  bool in_local_phase() const {
    return in_local_phase_.load(std::memory_order_acquire);
  }

  /// End of the last completed epoch.
  SimTime now() const { return epoch_; }
  std::uint64_t epochs_run() const { return epochs_; }

  /// Total events executed across all local engines.
  std::uint64_t local_events() const;

  const SkewBarrier& barrier() const { return barrier_; }
  std::size_t workers() const { return workers_; }

 private:
  struct Mail {
    SimTime at = 0;
    std::uint32_t from = kCoordinator;
    std::uint32_t to = 0;
    std::uint64_t seq = 0;
    Simulation::Callback fn;
    EventCategory category = kDefaultEventCategory;
  };

  /// One partition's event loop for the epoch: announce the next event
  /// time, wait for skew clearance, execute, repeat; drain to epoch_end.
  void run_partition(std::uint32_t p, SimTime epoch_end);
  void deliver_mail();

  SkewBarrier barrier_;
  std::vector<std::unique_ptr<Simulation>> locals_;
  std::vector<Rng> rngs_;
  std::vector<std::uint64_t> salts_;
  std::vector<std::exception_ptr> errors_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when epochs run inline
  std::size_t workers_ = 1;

  std::mutex mail_mutex_;
  std::vector<Mail> mail_;
  /// Per-sender sequence counters; slot partition_count() is the
  /// coordinator's.
  std::vector<std::uint64_t> mail_seq_;

  SimTime epoch_ = 0;
  std::uint64_t epochs_ = 0;
  std::atomic<bool> in_local_phase_{false};
};

}  // namespace epajsrm::sim
