// Fault injection demo: a week on a 64-node machine with a power-sharing
// control loop while the resilience plane throws node crashes, a PDU
// trip, sensor dropouts and CAPMC control-channel outages at it — with
// the invariant auditor attached throughout. The run must end with zero
// auditor violations and nonzero requeue/retry metrics: graceful
// degradation, not silent corruption.
//
// Flags:
//   --plan=<path>      load the fault schedule from a spec file instead
//                      of the built-in storm (format: DESIGN.md §9)
//   --seed=<n>         RNG seed for the stochastic failure model
//   --log-level=<lvl>  logger threshold (trace..error, off; default warn)
#include <cstdio>
#include <cstring>
#include <string>

#include "check/invariant_auditor.hpp"
#include "epajsrm.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"

namespace {

bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epajsrm;

  std::string plan_path;
  std::string seed_arg;
  std::string log_level;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--plan=", &plan_path)) continue;
    if (flag_value(argv[i], "--seed=", &seed_arg)) continue;
    if (flag_value(argv[i], "--log-level=", &log_level)) continue;
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }
  const std::uint64_t seed =
      seed_arg.empty() ? 42 : std::strtoull(seed_arg.c_str(), nullptr, 10);

  // 1. A loaded week with checkpointing and flap quarantine enabled.
  core::Scenario scenario =
      core::Scenario::builder()
          .label("fault-demo")
          .nodes(64)
          .job_count(0)  // fill the horizon
          .seed(seed)
          .horizon(7 * sim::kDay)
          .configure([](core::ScenarioConfig& c) {
            c.solution.resilience.checkpoint_interval = 30 * sim::kMinute;
            c.solution.resilience.restart_overhead = 2 * sim::kMinute;
            c.solution.resilience.flap_threshold = 3;
            c.solution.resilience.flap_window = 6 * sim::kHour;
            c.solution.resilience.quarantine_duration = 12 * sim::kHour;
          })
          .build();
  if (!log_level.empty()) {
    const auto level = sim::parse_log_level(log_level);
    if (!level) {
      std::fprintf(stderr, "unknown log level: %s\n", log_level.c_str());
      return 2;
    }
    scenario.solution().logger().set_threshold(*level);
  }

  // 2. A control loop that talks to CAPMC every tick, so control-channel
  //    faults have real traffic to disturb.
  scenario.solution().add_policy(
      std::make_unique<epa::DynamicPowerSharePolicy>(24'000.0));

  // 3. The auditor watches every lifecycle/power/allocation invariant;
  //    injected crashes are excused via their crash marks, anything else
  //    is a bug.
  check::InvariantAuditor auditor(scenario.solution());

  // 4. The storm: stochastic per-node failures plus scheduled windows of
  //    sensor and control-channel trouble (or a user-supplied spec file).
  fault::FaultPlan plan;
  if (!plan_path.empty()) {
    plan = fault::FaultPlan::parse_file(plan_path);
  } else {
    fault::FailureModel failures;
    failures.mtbf_hours = 400.0;  // a few crashes across 64 nodes x 7 days
    failures.repair_time = 30 * sim::kMinute;
    plan = failures.generate(64, 7 * sim::kDay, seed);
    plan.trip_pdu(2 * sim::kDay, 0, sim::kHour)
        .sensor_dropout(12 * sim::kHour, sim::kHour, 0.9)
        .sensor_noise(3 * sim::kDay, 2 * sim::kHour, 0.08)
        .capmc_failure(4 * sim::kDay, 2 * sim::kHour, 0.9)
        .capmc_latency(5 * sim::kDay, sim::kHour, 2'000.0);
  }
  fault::FaultInjector::Config fault_config;
  fault_config.seed = seed;
  auto injector =
      fault::FaultInjector::install(scenario.solution(), plan, fault_config);

  // 5. Run and report: headline metrics, then the resilience ledger.
  const core::RunResult result = scenario.run();
  const power::CapmcController& capmc = scenario.solution().capmc();

  std::printf("%s\n", metrics::format_report(result.report).c_str());
  std::printf("fault events injected:   %llu (of %zu planned)\n",
              static_cast<unsigned long long>(injector->injected()),
              plan.size());
  std::printf("node crashes / PDU trips: %llu / %llu\n",
              static_cast<unsigned long long>(result.node_crashes),
              static_cast<unsigned long long>(result.pdu_trips));
  std::printf("jobs requeued / lost:     %llu / %llu\n",
              static_cast<unsigned long long>(result.jobs_requeued_on_fault),
              static_cast<unsigned long long>(result.jobs_lost_on_fault));
  std::printf("node quarantines:         %llu\n",
              static_cast<unsigned long long>(result.node_quarantines));
  std::printf("CAPMC retries / failures: %llu / %llu (breaker opened %llu×)\n",
              static_cast<unsigned long long>(result.capmc_retries),
              static_cast<unsigned long long>(result.capmc_failed_calls),
              static_cast<unsigned long long>(capmc.breaker_opens()));
  std::printf("telemetry samples dropped: %llu\n",
              static_cast<unsigned long long>(result.telemetry_dropped_samples));
  std::printf("auditor passes/violations: %llu/%llu\n",
              static_cast<unsigned long long>(auditor.audits()),
              static_cast<unsigned long long>(auditor.violation_count()));

  if (auditor.violation_count() != 0) {
    std::fprintf(stderr, "FAIL: auditor flagged %llu violation(s):\n",
                 static_cast<unsigned long long>(auditor.violation_count()));
    for (const check::AuditViolation& v : auditor.violations()) {
      std::fprintf(stderr, "  [%s] %s: %s\n",
                   sim::format_hms(v.sim_time).c_str(), v.invariant.c_str(),
                   v.detail.c_str());
    }
    return 1;
  }
  // The built-in storm is sized to exercise the requeue and retry paths;
  // a user-supplied plan may legitimately touch neither.
  if (plan_path.empty() &&
      (result.jobs_requeued_on_fault == 0 || result.capmc_retries == 0)) {
    std::fprintf(stderr,
                 "FAIL: expected nonzero requeue and retry activity\n");
    return 1;
  }
  std::printf("\nOK: storm absorbed, zero invariant violations\n");
  return 0;
}
