#include "svc/protocol.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/jsonl.hpp"
#include "obs/exposition.hpp"

namespace epajsrm::svc {

namespace {

Request::Op op_from_name(const std::string& name, const net::LineParser& p) {
  if (name == "submit") return Request::Op::kSubmit;
  if (name == "sweep") return Request::Op::kSweep;
  if (name == "poll") return Request::Op::kPoll;
  if (name == "cancel") return Request::Op::kCancel;
  if (name == "stats") return Request::Op::kStats;
  if (name == "templates") return Request::Op::kTemplates;
  if (name == "shutdown") return Request::Op::kShutdown;
  p.fail("unknown op \"" + name + "\"");
}

}  // namespace

const char* to_string(Request::Op op) {
  switch (op) {
    case Request::Op::kSubmit:
      return "submit";
    case Request::Op::kSweep:
      return "sweep";
    case Request::Op::kPoll:
      return "poll";
    case Request::Op::kCancel:
      return "cancel";
    case Request::Op::kStats:
      return "stats";
    case Request::Op::kTemplates:
      return "templates";
    case Request::Op::kShutdown:
      return "shutdown";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  const net::LineParser p(line, 1);
  Request r;
  r.op = op_from_name(p.get_string("op"), p);
  r.tenant = p.get_string_or("tenant", "anon");
  switch (r.op) {
    case Request::Op::kSubmit:
    case Request::Op::kSweep:
      r.template_name = p.get_string("template");
      r.label = p.get_string_or("label", "");
      if (p.has("seed")) {
        r.has_seed = true;
        r.seed = p.get_u64("seed");
      }
      if (p.has("nodes")) {
        r.has_nodes = true;
        r.nodes = p.get_u32("nodes");
      }
      if (p.has("job_count")) {
        r.has_job_count = true;
        r.job_count = p.get_u64("job_count");
      }
      if (p.has("partitions")) {
        r.has_partitions = true;
        r.partitions = p.get_u32("partitions");
      }
      r.wait = p.get_u64_or("wait", 1) != 0;
      r.want_report = p.get_u64_or("report", 0) != 0;
      if (r.op == Request::Op::kSweep) {
        r.seeds = p.get_id_array("seeds");
        if (r.seeds.empty()) p.fail("sweep needs a non-empty seeds array");
      }
      break;
    case Request::Op::kPoll:
    case Request::Op::kCancel:
      r.id = p.get_u64("id");
      break;
    case Request::Op::kStats:
    case Request::Op::kTemplates:
    case Request::Op::kShutdown:
      break;
  }
  return r;
}

std::string serialize_request(const Request& request) {
  net::LineWriter w;
  w.field("op", to_string(request.op));
  w.field("tenant", request.tenant);
  switch (request.op) {
    case Request::Op::kSubmit:
    case Request::Op::kSweep:
      w.field("template", request.template_name);
      if (!request.label.empty()) w.field("label", request.label);
      if (request.has_seed) w.field("seed", request.seed);
      if (request.has_nodes) {
        w.field("nodes", static_cast<std::uint64_t>(request.nodes));
      }
      if (request.has_job_count) w.field("job_count", request.job_count);
      if (request.has_partitions) {
        w.field("partitions", static_cast<std::uint64_t>(request.partitions));
      }
      w.field("wait", static_cast<std::uint64_t>(request.wait ? 1 : 0));
      if (request.want_report) {
        w.field("report", static_cast<std::uint64_t>(1));
      }
      if (request.op == Request::Op::kSweep) w.field("seeds", request.seeds);
      break;
    case Request::Op::kPoll:
    case Request::Op::kCancel:
      w.field("id", request.id);
      break;
    case Request::Op::kStats:
    case Request::Op::kTemplates:
    case Request::Op::kShutdown:
      break;
  }
  return w.finish();
}

std::string serialize_envelope(const Envelope& envelope) {
  net::LineWriter w;
  w.field("op", envelope.op);
  w.field("status", envelope.status);
  w.field("id", envelope.id);
  w.field("cached", static_cast<std::uint64_t>(envelope.cached ? 1 : 0));
  if (envelope.status == "rejected") {
    w.field("retry_after_ms", envelope.retry_after_ms);
  }
  if (!envelope.error.empty()) w.field("error", envelope.error);
  if (!envelope.ids.empty()) w.field("ids", envelope.ids);
  w.field("payload_lines", envelope.payload_lines);
  return w.finish();
}

Envelope parse_envelope(const std::string& line, std::size_t line_number) {
  const net::LineParser p(line, line_number);
  Envelope e;
  e.op = p.get_string("op");
  e.status = p.get_string("status");
  e.id = p.get_u64("id");
  e.cached = p.get_u64_or("cached", 0) != 0;
  e.retry_after_ms =
      static_cast<std::int64_t>(p.get_u64_or("retry_after_ms", 0));
  e.error = p.get_string_or("error", "");
  if (p.has("ids")) e.ids = p.get_id_array("ids");
  e.payload_lines = p.get_u64("payload_lines");
  return e;
}

std::string serialize_result(const std::string& scenario_hash,
                             std::uint64_t seed,
                             const core::RunResult& result) {
  net::LineWriter w;
  w.field("kind", "result");
  w.field("hash", scenario_hash);
  w.field("label", result.report.label);
  w.field("seed", seed);
  w.field("jobs_completed", result.report.jobs_completed);
  w.field("sim_events", result.sim_events);
  w.field("scheduling_passes", result.scheduling_passes);
  w.field("total_kwh", result.total_it_kwh_exact);
  w.field("overhead_kwh", result.overhead_kwh);
  w.field("mean_utilization", result.report.mean_core_utilization);
  w.field("median_wait_minutes", result.report.wait_minutes.median);
  w.field("violation_fraction", result.report.violation_fraction);
  w.field("makespan_hours", sim::to_hours(result.report.makespan));
  w.field("node_boots", result.node_boots);
  w.field("node_shutdowns", result.node_shutdowns);
  // Sorted reason:count pairs: the source map is unordered and its
  // iteration order must not reach the wire.
  std::vector<std::pair<std::string, std::uint64_t>> kills(
      result.kills_by_reason.begin(), result.kills_by_reason.end());
  std::sort(kills.begin(), kills.end());
  std::string kill_text;
  for (const auto& [reason, count] : kills) {
    if (!kill_text.empty()) kill_text += ',';
    kill_text += reason + ":" + std::to_string(count);
  }
  w.field("kills", kill_text);
  w.field("node_crashes", result.node_crashes);
  w.field("jobs_requeued", result.jobs_requeued_on_fault);
  return w.finish();
}

std::vector<std::string> serialize_report(const std::string& label,
                                          const std::string& scenario_hash,
                                          std::uint64_t seed,
                                          const core::RunResult& result) {
  obs::RunReportBuilder builder(label);
  builder.add_scalar("jobs_completed",
                     static_cast<double>(result.report.jobs_completed));
  builder.add_scalar("total_kwh", result.total_it_kwh_exact);
  builder.add_scalar("overhead_kwh", result.overhead_kwh);
  builder.add_scalar("mean_utilization", result.report.mean_core_utilization);
  builder.add_scalar("median_wait_minutes", result.report.wait_minutes.median);
  builder.add_scalar("violation_fraction", result.report.violation_fraction);
  builder.add_scalar("makespan_hours", sim::to_hours(result.report.makespan));
  builder.add_scalar("scheduling_passes",
                     static_cast<double>(result.scheduling_passes));
  builder.add_scalar("sim_events", static_cast<double>(result.sim_events));
  obs::ReportShard shard;
  shard.label = scenario_hash;
  shard.seed = seed;
  shard.sim_events = result.sim_events;
  builder.add_shard(shard);
  std::ostringstream out;
  builder.write_json(out);
  const std::string document = out.str();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= document.size()) {
    const std::size_t nl = document.find('\n', start);
    if (nl == std::string::npos) {
      if (start < document.size()) lines.push_back(document.substr(start));
      break;
    }
    lines.push_back(document.substr(start, nl - start));
    start = nl + 1;
  }
  // Blank lines would collide with any empty-line batch framing a carrier
  // might layer on; the report writer never emits them, but keep the
  // payload contract airtight regardless.
  lines.erase(std::remove(lines.begin(), lines.end(), std::string{}),
              lines.end());
  return lines;
}

}  // namespace epajsrm::svc
