#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace epajsrm::metrics {

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

DistributionSummary summarize(std::span<const double> values) {
  DistributionSummary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  const auto pct = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };

  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p10 = pct(10);
  s.p25 = pct(25);
  s.median = pct(50);
  s.p75 = pct(75);
  s.p90 = pct(90);
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  return s;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace epajsrm::metrics
