// Scenario-service throughput bench: a real epajsrmd server on an
// in-process loopback socket, hammered by concurrent client connections.
//
// Phase 1 (populate) submits each distinct scenario once so the timed
// phase measures the *service* path — protocol parse, admission, cache
// lookup, response framing — rather than simulator throughput. Phase 2
// fans `--clients` connections each issuing `--requests` submits
// round-robin over the distinct seeds (all cache hits after phase 1) and
// records per-request wall latency.
//
// Output: per-phase breakdown, then the machine-readable BenchSummary
// line the CI bench-smoke job greps, extended with the two
// service-level numbers this bench exists for:
//
//   {"bench":"service_throughput", "wall_ms":..., "sim_events":...,
//    "events_per_sec":..., "requests_per_sec":..., "p99_ms":...}
//
// sim_events counts the events behind every *response served* (cached
// responses re-count the run they replay), so events_per_sec is the
// effective simulation throughput the cache multiplies.
//
// Flags:
//   --clients=N    concurrent client connections (default 4)
//   --requests=N   timed submits per client (default 200)
//   --distinct=N   distinct scenarios in the working set (default 8)
//   --smoke        small sizes for CI smoke runs
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/carrier.hpp"
#include "net/jsonl.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace {

using namespace epajsrm;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string submit_line(std::uint64_t seed) {
  svc::Request request;
  request.op = svc::Request::Op::kSubmit;
  request.template_name = "smoke";
  request.has_seed = true;
  request.seed = seed;
  return svc::serialize_request(request);
}

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t sim_events = 0;
  std::vector<double> latency_ms;
};

/// One client connection issuing `requests` submits over `distinct` seeds.
ClientTally run_client(std::uint16_t port, std::uint64_t requests,
                       std::uint64_t distinct, std::uint64_t phase_shift) {
  ClientTally tally;
  tally.latency_ms.reserve(requests);
  net::LineChannel channel = net::connect_tcp(port);
  std::string line;
  for (std::uint64_t i = 0; i < requests; ++i) {
    const std::uint64_t seed = 1 + (i + phase_shift) % distinct;
    const double t0 = now_ms();
    channel.write_line(submit_line(seed));
    if (!channel.read_line(line)) break;
    const svc::Envelope envelope = svc::parse_envelope(line);
    for (std::uint64_t n = 0; n < envelope.payload_lines; ++n) {
      if (!channel.read_line(line)) return tally;
      if (n == 0 && envelope.status == "done") {
        const net::LineParser payload(line, 1);
        tally.sim_events += payload.get_u64_or("sim_events", 0);
      }
    }
    tally.latency_ms.push_back(now_ms() - t0);
    if (envelope.status == "done") ++tally.ok;
    if (envelope.cached) ++tally.cached;
  }
  return tally;
}

double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const std::size_t at = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[at];
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t clients = 4;
  std::uint64_t requests = 200;
  std::uint64_t distinct = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--distinct=", 11) == 0) {
      distinct = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      clients = 2;
      requests = 50;
      distinct = 4;
    }
  }
  if (clients == 0 || requests == 0 || distinct == 0) {
    std::fprintf(stderr, "bench_service_throughput: sizes must be > 0\n");
    return 2;
  }

  svc::ServiceConfig service_config;
  service_config.cache_capacity = distinct + 4;
  svc::ServerConfig server_config;
  server_config.endpoint = "tcp:0";
  svc::Server server(service_config, std::move(server_config));
  std::thread serving([&server] { server.serve(); });
  const std::uint16_t port = server.port();

  // Phase 1: populate the cache (the only simulator work in the bench).
  const double populate_t0 = now_ms();
  const ClientTally populate = run_client(port, distinct, distinct, 0);
  const double populate_ms = now_ms() - populate_t0;
  std::printf("populate: %llu scenarios in %.1f ms\n",
              static_cast<unsigned long long>(populate.ok), populate_ms);

  // Phase 2: concurrent cached submits.
  const double t0 = now_ms();
  std::vector<std::thread> workers;
  std::vector<ClientTally> tallies(clients);
  for (std::uint64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      tallies[c] = run_client(port, requests, distinct, c);
    });
  }
  for (std::thread& t : workers) t.join();
  const double wall_ms = now_ms() - t0;

  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t sim_events = populate.sim_events;
  std::vector<double> latency_ms;
  for (const ClientTally& tally : tallies) {
    ok += tally.ok;
    cached += tally.cached;
    sim_events += tally.sim_events;
    latency_ms.insert(latency_ms.end(), tally.latency_ms.begin(),
                      tally.latency_ms.end());
  }

  // Shut the server down over the wire like any client would.
  {
    net::LineChannel channel = net::connect_tcp(port);
    svc::Request request;
    request.op = svc::Request::Op::kShutdown;
    channel.write_line(svc::serialize_request(request));
    std::string line;
    channel.read_line(line);
  }
  serving.join();

  const double total_ms = populate_ms + wall_ms;
  const double requests_per_sec =
      wall_ms > 0.0 ? static_cast<double>(ok) / (wall_ms / 1000.0) : 0.0;
  const double events_per_sec =
      total_ms > 0.0 ? static_cast<double>(sim_events) / (total_ms / 1000.0)
                     : 0.0;
  const double p50 = percentile(latency_ms, 0.50);
  const double p99 = percentile(latency_ms, 0.99);

  std::printf("clients: %llu  requests: %llu (%llu ok, %llu cached)\n",
              static_cast<unsigned long long>(clients),
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(cached));
  std::printf("latency: p50 %.3f ms, p99 %.3f ms\n", p50, p99);
  std::printf(
      "{\"bench\":\"service_throughput\",\"wall_ms\":%.1f,"
      "\"sim_events\":%llu,\"events_per_sec\":%.0f,"
      "\"requests_per_sec\":%.0f,\"p99_ms\":%.3f}\n",
      total_ms, static_cast<unsigned long long>(sim_events), events_per_sec,
      requests_per_sec, p99);

  // A service bench where nothing came from cache measured the simulator,
  // not the service: fail loudly so CI can't silently drift.
  const std::uint64_t expected = clients * requests;
  if (ok != expected || cached == 0) {
    std::fprintf(stderr,
                 "bench_service_throughput: %llu/%llu ok, %llu cached\n",
                 static_cast<unsigned long long>(ok),
                 static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(cached));
    return 1;
  }
  return 0;
}
