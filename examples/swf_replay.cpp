// SWF trace round-trip: the LANL+Sandia workflow of gathering traces and
// evaluating EPA approaches against them.
//
// The example writes a small Standard Workload Format trace, replays it
// through the simulator with and without a power budget, and writes the
// resulting schedule back out as SWF — demonstrating trace-driven
// evaluation end to end. Pass a path to an SWF file to replay your own
// trace instead.
//
// Observability flags (applied to the budgeted replay):
//   --trace-out=<path>    write a Chrome trace_event JSON (Perfetto /
//                         chrome://tracing loadable)
//   --metrics-out=<path>  write the periodic metrics snapshots as CSV
//   --log-level=<level>   logger threshold (trace..error, off)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "epajsrm.hpp"

namespace {

using namespace epajsrm;

// A hand-written mini trace (18 standard SWF fields per line).
constexpr const char* kBuiltinTrace = R"(; builtin demo trace
; 8-node machine, 32 cores/node
1 0     0 7200  128 -1 -1 128 14400 -1 1 1 1 1 1 1 -1 -1
2 600   0 3600  64  -1 -1 64  7200  -1 1 2 1 2 1 1 -1 -1
3 1200  0 1800  32  -1 -1 32  3600  -1 1 3 1 3 1 1 -1 -1
4 1800  0 10800 256 -1 -1 256 21600 -1 1 4 1 1 1 1 -1 -1
5 3600  0 900   32  -1 -1 32  1800  -1 1 5 1 2 1 1 -1 -1
6 5400  0 5400  128 -1 -1 128 10800 -1 1 6 1 3 1 1 -1 -1
7 7200  0 2700  64  -1 -1 64  5400  -1 1 7 1 1 1 1 -1 -1
8 9000  0 1800  96  -1 -1 96  3600  -1 1 8 1 2 1 1 -1 -1
)";

struct ReplayOptions {
  bool observability = false;
  std::string log_level;
  std::string trace_out;
  std::string metrics_out;
};

core::RunResult replay(const std::vector<workload::JobSpec>& jobs,
                       double budget_watts, const std::string& label,
                       const char* swf_out_path, std::size_t* swf_records,
                       const ReplayOptions& opts = {}) {
  sim::Simulation sim;
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .name(label)
                                  .node_count(8)
                                  .build();
  core::SolutionConfig config;
  config.enable_thermal = false;
  config.obs.enabled = opts.observability;
  core::EpaJsrmSolution solution(sim, cluster, config);
  solution.metrics_collector().set_label(label);
  if (!opts.log_level.empty()) {
    if (const auto level = sim::parse_log_level(opts.log_level)) {
      solution.logger().set_threshold(*level);
    }
  }
  if (budget_watts > 0.0) {
    solution.add_policy(
        std::make_unique<epa::PowerBudgetDvfsPolicy>(budget_watts));
  }
  solution.submit_all(std::vector<workload::JobSpec>(jobs));
  solution.run_until(30 * sim::kDay);
  core::RunResult result = solution.finalize();
  if (swf_out_path != nullptr) {
    // Written here, not by the caller: finished_jobs() hands out pointers
    // into this solution, which dies when replay() returns.
    const std::vector<const workload::Job*> finished(
        solution.finished_jobs().begin(), solution.finished_jobs().end());
    std::ofstream out(swf_out_path);
    workload::write_swf(out, finished, 32);
    if (swf_records != nullptr) *swf_records = finished.size();
  }

  if (obs::Observability* o = solution.observability()) {
    if (!opts.trace_out.empty()) {
      std::ofstream out(opts.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open trace output: %s\n",
                     opts.trace_out.c_str());
        std::exit(1);
      }
      // A .jsonl path selects the line-oriented export; anything else gets
      // the Perfetto-loadable Chrome trace.
      if (opts.trace_out.size() >= 6 &&
          opts.trace_out.compare(opts.trace_out.size() - 6, 6, ".jsonl") ==
              0) {
        o->trace().export_jsonl(out);
      } else {
        o->trace().export_chrome_trace(out);
      }
      std::printf("[%s] trace: %llu events recorded (%llu retained) -> %s\n",
                  label.c_str(),
                  static_cast<unsigned long long>(o->trace().recorded()),
                  static_cast<unsigned long long>(o->trace().size()),
                  opts.trace_out.c_str());
    }
    if (!opts.metrics_out.empty()) {
      std::ofstream out(opts.metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot open metrics output: %s\n",
                     opts.metrics_out.c_str());
        std::exit(1);
      }
      o->sampler().write_csv(out);
      std::printf("[%s] metrics: %zu instruments, %zu rows -> %s\n",
                  label.c_str(), o->metrics().metric_count(),
                  o->sampler().row_count(), opts.metrics_out.c_str());
    }
    std::printf("%s\n", o->profiler().format_report().c_str());
  }
  return result;
}

bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = arg + len;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epajsrm;

  ReplayOptions opts;
  std::string swf_path;
  for (int i = 1; i < argc; ++i) {
    if (flag_value(argv[i], "--trace-out=", &opts.trace_out)) continue;
    if (flag_value(argv[i], "--metrics-out=", &opts.metrics_out)) continue;
    if (flag_value(argv[i], "--log-level=", &opts.log_level)) continue;
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
    swf_path = argv[i];
  }
  opts.observability = !opts.trace_out.empty() || !opts.metrics_out.empty();
  if (!opts.log_level.empty() && !sim::parse_log_level(opts.log_level)) {
    std::fprintf(stderr, "unknown log level: %s\n", opts.log_level.c_str());
    return 2;
  }

  std::vector<workload::SwfRecord> records;
  if (!swf_path.empty()) {
    workload::SwfParseStats stats;
    records = workload::parse_swf_file(swf_path, &stats);
    std::printf("replaying %zu records from %s\n", records.size(),
                swf_path.c_str());
    if (stats.skipped_lines > 0) {
      std::fprintf(stderr,
                   "warning: skipped %zu malformed line(s), first at line "
                   "%zu\n",
                   stats.skipped_lines, stats.first_skipped_line);
    }
  } else {
    std::istringstream in(kBuiltinTrace);
    records = workload::parse_swf(in);
    std::printf("replaying the builtin %zu-job demo trace\n",
                records.size());
  }

  const auto jobs =
      workload::to_jobs(records, /*cores_per_node=*/32, /*machine_nodes=*/8);
  std::printf("mapped to %zu jobs on an 8-node, 32-core/node machine\n\n",
              jobs.size());

  // Round-trip: the budgeted schedule is written back out as SWF.
  const char* out_path = "trace_replay_out.swf";
  std::size_t swf_records = 0;
  const core::RunResult unbounded =
      replay(jobs, 0.0, "trace", nullptr, nullptr);
  const core::RunResult budgeted =
      replay(jobs, 8 * 220.0, "trace-budget", out_path, &swf_records, opts);

  metrics::AsciiTable table({"variant", "makespan (h)", "p50 wait (min)",
                             "max power", "energy", "jobs done"});
  table.set_title("Trace replay: unconstrained vs. 75 % power budget");
  for (const core::RunResult* r : {&unbounded, &budgeted}) {
    table.add_row(
        {r->report.label,
         metrics::format_double(sim::to_hours(r->report.makespan), 1),
         metrics::format_double(r->report.wait_minutes.median, 1),
         metrics::format_watts(r->report.max_it_watts),
         metrics::format_kwh(r->total_it_kwh_exact),
         std::to_string(r->report.jobs_completed)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("budgeted schedule written to %s (%zu records)\n", out_path,
              swf_records);
  return 0;
}
