#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace epajsrm::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue q;
  q.push(50, [] {});
  const EventId early = q.push(10, [] {});
  EXPECT_EQ(q.next_time(), 10);
  EXPECT_TRUE(q.cancel(early));
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(5, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(5, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_FALSE(q.cancel(kNoEvent));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(q.push(i, [] {}));
  // Cancel every even event.
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  int count = 0;
  SimTime last = -1;
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GT(popped.time, last);
    EXPECT_EQ(popped.time % 2, 1);  // only odd times survive
    last = popped.time;
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST(EventQueue, PoppedCarriesTimeAndId) {
  EventQueue q;
  const EventId id = q.push(77, [] {});
  const auto popped = q.pop();
  EXPECT_EQ(popped.time, 77);
  EXPECT_EQ(popped.id, id);
  EXPECT_TRUE(popped.callback != nullptr);
}

}  // namespace
}  // namespace epajsrm::sim
