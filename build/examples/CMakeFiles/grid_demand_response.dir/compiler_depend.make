# Empty compiler generated dependencies file for grid_demand_response.
# This may be replaced when dependencies are built.
