// EnergyBudgetAgent: the energy-budget scheduling family as an external
// decision component.
//
// Runs the exact same epa::EnergyBudgetCore kernel as the in-process
// epa::EnergyBudgetScheduler, but fed *exclusively* from EDC protocol
// messages — it never touches the simulation. Because every kernel input
// crosses the boundary losslessly (round-trip-exact doubles, authoritative
// free-node counts in the pass snapshot), a run driven through this agent
// over a LoopbackTransport produces bit-identical RunResults to the
// internal scheduler. test_edc_loopback.cpp holds the proof.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "edc/protocol.hpp"
#include "edc/transport.hpp"
#include "epa/energy_budget.hpp"

namespace epajsrm::edc {

class EnergyBudgetAgent final : public Agent {
 public:
  explicit EnergyBudgetAgent(epa::EnergyBudgetConfig config)
      : core_(config) {}

  std::vector<std::string> on_messages(
      const std::vector<std::string>& lines) override;

  std::string name() const override;

  const epa::EnergyBudgetCore& core() const { return core_; }

 private:
  /// Submission records mirrored from job_submitted messages — the only
  /// state the agent keeps besides the kernel itself. std::map for
  /// deterministic iteration.
  struct JobRecord {
    sim::SimTime submit_time = 0;
    std::uint32_t nodes = 0;
    double estimated_energy_joules = 0.0;
  };

  epa::EnergyBudgetCore core_;
  std::map<platform::JobId, JobRecord> jobs_;
};

}  // namespace epajsrm::edc
