// Minimal external scheduler over the EDC protocol (DESIGN.md §13).
//
// The whole point of the external-decision boundary: a scheduler is just
// a program that reads JSONL decision-point lines and writes JSONL reply
// lines. EchoAgent below is a complete greedy-FCFS implementation in ~40
// lines — it tracks job_submitted/job_ended, and on every scheduling_pass
// replies start_job for each pending job that fits the free nodes, in
// queue order. Swap the LoopbackTransport for a socket transport and the
// identical agent runs out of process.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "epajsrm.hpp"

namespace {

using namespace epajsrm;

class EchoAgent final : public edc::Agent {
 public:
  std::vector<std::string> on_messages(
      const std::vector<std::string>& lines) override {
    std::vector<std::string> replies;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const edc::Message m = edc::parse_message(lines[i], i + 1);
      switch (m.type) {
        case edc::Message::Type::kJobSubmitted:
          nodes_of_[m.job] = m.nodes;
          break;
        case edc::Message::Type::kJobEnded:
          nodes_of_.erase(m.job);
          break;
        case edc::Message::Type::kSchedulingPass: {
          // Greedy FCFS: start everything that fits, in queue order.
          std::uint32_t free_nodes = m.free_nodes;
          for (const workload::JobId job : m.pending) {
            const auto it = nodes_of_.find(job);
            if (it == nodes_of_.end() || it->second > free_nodes) continue;
            free_nodes -= it->second;
            edc::Reply start;
            start.type = edc::Reply::Type::kStartJob;
            start.job = job;
            replies.push_back(edc::serialize(start));
          }
          break;
        }
        default:
          break;  // begins/ends/ticks need no bookkeeping here
      }
    }
    return replies;
  }

  std::string name() const override { return "echo-fcfs"; }

 private:
  std::map<workload::JobId, std::uint32_t> nodes_of_;
};

}  // namespace

int main() {
  auto scenario =
      core::Scenario::builder()
          .label("edc-echo")
          .nodes(32)
          .job_count(40)
          .seed(7)
          .external_scheduler(std::make_shared<edc::LoopbackTransport>(
              std::make_shared<EchoAgent>()))
          .build();
  const core::RunResult result = scenario.run();

  std::printf("external scheduler: loopback:echo-fcfs\n");
  std::printf("jobs completed:     %llu / %llu\n",
              static_cast<unsigned long long>(result.report.jobs_completed),
              static_cast<unsigned long long>(result.report.jobs_submitted));
  std::printf("scheduling passes:  %llu\n",
              static_cast<unsigned long long>(result.scheduling_passes));
  std::printf("mean wait:          %.1f min\n", result.report.wait_minutes.mean);
  std::printf("total IT energy:    %.1f kWh\n", result.report.total_it_kwh);
  return result.report.jobs_completed > 0 ? 0 : 1;
}
