// epajsrm_analyze — cross-TU static analyzer for the EPA JSRM tree.
//
// Three passes (see finding.hpp for the rule catalog):
//
//   1. Architecture conformance: the include graph over the tree must
//      respect the layer DAG declared in layers.conf, and contain no
//      include cycles.
//   2. Determinism rules: no order-sensitive iteration over unordered
//      containers, no floating-point accumulation in hash order, no
//      pointer-keyed ordered containers.
//   3. Shared-state audit: inventory namespace-scope globals, static
//      members and function-local statics; flag the mutable ones and
//      emit the inventory as JSON (the lax-sync refactor's worklist).
//
// Usage:
//   epajsrm_analyze <root> [--layers <layers.conf>] [--sarif <out.sarif>]
//                   [--shared-state-out <out.json>]
//                   [--shared-state-baseline <baseline.json>]
//       Analyze the tree; exit 1 on any unsuppressed finding or on
//       baseline drift. Pass 1 runs only when --layers is given.
//
//   epajsrm_analyze --self-test <testdata-dir>
//       Prove every rule fires on its bad_*.cpp / tree_* fixture and
//       stays silent on clean.cpp / tree_clean; exit 1 on mismatch.
//
// Dependency-free C++17; plain text in, deterministic text out.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "epajsrm_analyze/config.hpp"
#include "epajsrm_analyze/determinism.hpp"
#include "epajsrm_analyze/finding.hpp"
#include "epajsrm_analyze/include_graph.hpp"
#include "epajsrm_analyze/layer_check.hpp"
#include "epajsrm_analyze/sarif.hpp"
#include "epajsrm_analyze/shared_state.hpp"
#include "support/source_text.hpp"

namespace fs = std::filesystem;
namespace az = epajsrm::analyze;
namespace ts = epajsrm::toolsupport;

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "epajsrm_analyze: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

struct TreeAnalysis {
  az::Findings findings;
  az::SharedStateInventory inventory;
  int file_count = 0;
  bool io_error = false;
};

// Runs all passes over `root`. Pass 1 needs `config` (skipped when
// `run_layers` is false); passes 2–3 always run.
TreeAnalysis analyze_tree(const fs::path& root, const az::LayerConfig& config,
                          bool run_layers) {
  TreeAnalysis result;
  const std::vector<std::string> rel_paths = az::collect_tree(root);
  std::map<std::string, ts::SourceFile> sources = az::load_tree(root, rel_paths);
  result.file_count = static_cast<int>(sources.size());
  for (const auto& [rel, sf] : sources) {
    if (!sf.ok) {
      std::cerr << "epajsrm_analyze: cannot read " << rel << "\n";
      result.io_error = true;
    }
  }

  const az::IncludeGraph graph = az::build_include_graph(sources);
  if (run_layers) {
    az::check_layers(graph, sources, config, &result.findings);
    az::find_include_cycles(graph, &result.findings);
  }

  const az::DeclIndex decls = az::index_declarations(sources);
  az::check_determinism(sources, graph, decls, &result.findings);

  result.inventory =
      az::audit_shared_state(sources, config, &result.findings);

  std::sort(result.findings.begin(), result.findings.end(),
            az::finding_before);
  return result;
}

// --- self-test --------------------------------------------------------------

// Single-file fixtures exercise passes 2–3; tree fixtures (a directory
// holding layers.conf + src/) exercise pass 1. The contract matches
// epajsrm_lint: each bad fixture trips exactly its rule, the clean
// fixtures trip nothing.
int self_test(const fs::path& dir) {
  int failures = 0;

  const auto run_expect = [&](const std::string& label,
                              const az::Findings& findings,
                              const std::string& rule) {
    int expected_hits = 0;
    for (const az::Finding& f : findings) {
      if (f.rule == rule) {
        ++expected_hits;
      } else {
        std::cout << "FAIL " << label << ": stray [" << f.rule
                  << "] at line " << f.line << ": " << f.message << "\n";
        ++failures;
      }
    }
    if (expected_hits == 0) {
      std::cout << "FAIL " << label << ": rule [" << rule
                << "] did not fire\n";
      ++failures;
    } else {
      std::cout << "ok   " << label << ": [" << rule << "] fired "
                << expected_hits << "x\n";
    }
  };

  const auto analyze_one_file = [&](const std::string& name) {
    std::map<std::string, ts::SourceFile> sources;
    sources.emplace(name, ts::load_source(dir / name));
    az::Findings findings;
    const az::IncludeGraph graph = az::build_include_graph(sources);
    const az::DeclIndex decls = az::index_declarations(sources);
    az::check_determinism(sources, graph, decls, &findings);
    az::LayerConfig no_config;
    az::audit_shared_state(sources, no_config, &findings);
    std::sort(findings.begin(), findings.end(), az::finding_before);
    return findings;
  };

  static const std::map<std::string, std::string> kFileFixtures = {
      {"bad_unordered_iter.cpp", "unordered-iter"},
      {"bad_partition_map_iter.cpp", "unordered-iter"},
      {"bad_float_accum.cpp", "float-accum-unordered"},
      {"bad_pointer_key.cpp", "pointer-key-order"},
      {"bad_mutable_global.cpp", "mutable-global"},
      {"bad_local_static.cpp", "local-static"},
  };
  for (const auto& [name, rule] : kFileFixtures) {
    run_expect(name, analyze_one_file(name), rule);
  }
  {
    const az::Findings findings = analyze_one_file("clean.cpp");
    for (const az::Finding& f : findings) {
      std::cout << "FAIL clean.cpp: unexpected [" << f.rule << "] at line "
                << f.line << ": " << f.message << "\n";
      ++failures;
    }
    if (findings.empty()) std::cout << "ok   clean.cpp: silent\n";
  }

  const auto analyze_one_tree = [&](const std::string& tree) {
    az::LayerConfig config;
    std::vector<std::string> errors;
    az::Findings findings;
    if (!az::load_layer_config((dir / tree / "layers.conf").string(),
                               &config, &errors)) {
      for (const std::string& e : errors) {
        std::cout << "FAIL " << tree << ": config error: " << e << "\n";
      }
      ++failures;
      return findings;
    }
    const TreeAnalysis analysis =
        analyze_tree(dir / tree / "src", config, /*run_layers=*/true);
    return analysis.findings;
  };

  static const std::map<std::string, std::string> kTreeFixtures = {
      {"tree_layer_violation", "layer-violation"},
      {"tree_cycle", "include-cycle"},
      {"tree_undeclared", "undeclared-layer"},
  };
  for (const auto& [tree, rule] : kTreeFixtures) {
    run_expect(tree, analyze_one_tree(tree), rule);
  }
  {
    const az::Findings findings = analyze_one_tree("tree_clean");
    for (const az::Finding& f : findings) {
      std::cout << "FAIL tree_clean: unexpected [" << f.rule << "] in "
                << f.file << ":" << f.line << ": " << f.message << "\n";
      ++failures;
    }
    if (findings.empty()) std::cout << "ok   tree_clean: silent\n";
  }

  if (failures > 0) {
    std::cout << failures << " self-test failure(s)\n";
    return 1;
  }
  std::cout << "epajsrm_analyze: self-test passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 2 && args[0] == "--self-test") {
    return self_test(args[1]);
  }

  std::string root;
  std::string layers_path;
  std::string sarif_path;
  std::string shared_state_path;
  std::string baseline_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "epajsrm_analyze: " << a << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--layers") {
      layers_path = next();
    } else if (a == "--sarif") {
      sarif_path = next();
    } else if (a == "--shared-state-out") {
      shared_state_path = next();
    } else if (a == "--shared-state-baseline") {
      baseline_path = next();
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "epajsrm_analyze: unknown option " << a << "\n";
      return 2;
    } else if (root.empty()) {
      root = a;
    } else {
      std::cerr << "epajsrm_analyze: unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr
        << "usage: epajsrm_analyze <root> [--layers <layers.conf>]\n"
        << "           [--sarif <out.sarif>] [--shared-state-out <out.json>]\n"
        << "           [--shared-state-baseline <baseline.json>]\n"
        << "       epajsrm_analyze --self-test <testdata-dir>\n";
    return 2;
  }

  az::LayerConfig config;
  if (!layers_path.empty()) {
    std::vector<std::string> errors;
    if (!az::load_layer_config(layers_path, &config, &errors)) {
      for (const std::string& e : errors) {
        std::cerr << "epajsrm_analyze: " << e << "\n";
      }
      return 2;
    }
  }

  const TreeAnalysis analysis =
      analyze_tree(root, config, /*run_layers=*/!layers_path.empty());

  for (const az::Finding& f : analysis.findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }

  bool ok = analysis.findings.empty() && !analysis.io_error;
  if (!sarif_path.empty() &&
      !write_file(sarif_path, az::to_sarif(analysis.findings, root))) {
    ok = false;
  }
  if (!shared_state_path.empty() &&
      !write_file(shared_state_path,
                  az::shared_state_json(analysis.inventory, root))) {
    ok = false;
  }
  if (!baseline_path.empty()) {
    std::string message;
    if (!az::check_shared_state_baseline(analysis.inventory, baseline_path,
                                         &message)) {
      std::cout << message << "\n";
      ok = false;
    }
  }

  if (!analysis.findings.empty()) {
    std::cout << analysis.findings.size() << " finding(s)\n";
  }
  if (ok) {
    std::cout << "epajsrm_analyze: clean (" << analysis.file_count
              << " files, " << analysis.inventory.total()
              << " shared-state entries, "
              << analysis.inventory.mutable_count() << " mutable, "
              << analysis.inventory.flagged_count() << " flagged)\n";
  }
  return ok ? 0 : 1;
}
