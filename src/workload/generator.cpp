#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epajsrm::workload {

WorkloadGenerator::WorkloadGenerator(GeneratorConfig config,
                                     AppCatalog catalog, std::uint64_t seed)
    : config_(config), catalog_(std::move(catalog)), rng_(seed) {
  if (catalog_.empty()) throw std::invalid_argument("catalog must not be empty");
  if (config_.arrival_rate_per_hour <= 0.0) {
    throw std::invalid_argument("arrival rate must be positive");
  }
  if (config_.machine_nodes == 0) {
    throw std::invalid_argument("machine_nodes must be positive");
  }
}

JobSpec WorkloadGenerator::make_job(sim::SimTime submit) {
  const AppArchetype& app = catalog_.sample(rng_);
  JobSpec spec;
  spec.id = next_id_++;
  spec.tag = app.tag;
  spec.user = "user" + std::to_string(rng_.uniform_int(
                           0, std::max<std::int64_t>(
                                  0, config_.user_count - 1)));
  spec.profile = app.profile;
  spec.submit_time = submit;

  // Size: log-uniform over the archetype's node range, clamped to machine.
  const std::uint32_t lo = std::min(app.min_nodes, config_.machine_nodes);
  const std::uint32_t hi =
      std::max(lo, std::min(app.max_nodes, config_.machine_nodes));
  const double log_lo = std::log(static_cast<double>(lo));
  const double log_hi = std::log(static_cast<double>(hi) + 1.0);
  spec.nodes = static_cast<std::uint32_t>(std::clamp<double>(
      std::exp(rng_.uniform(log_lo, log_hi)), lo, hi));

  // Runtime: lognormal around the archetype median.
  const double mu = std::log(sim::to_seconds(app.median_runtime));
  const double runtime_s =
      std::clamp(rng_.lognormal(mu, app.runtime_sigma), 30.0, 7.0 * 24 * 3600);
  spec.runtime_ref = sim::from_seconds(runtime_s);

  // Walltime estimate: padded true runtime, rounded up to 5 min.
  const double pad = rng_.uniform(1.05, 1.0 + config_.overestimate_max);
  const sim::SimTime est = sim::from_seconds(runtime_s * pad);
  spec.walltime_estimate =
      ((est + 5 * sim::kMinute - 1) / (5 * sim::kMinute)) * (5 * sim::kMinute);

  // Priority: 0 normal, 1 elevated, 2 urgent.
  if (rng_.bernoulli(config_.high_priority_fraction)) {
    spec.priority = rng_.bernoulli(0.3) ? 2 : 1;
  }

  if (rng_.bernoulli(config_.deferrable_fraction)) {
    spec.deferrable = true;
    spec.deadline =
        submit + spec.walltime_estimate +
        sim::from_hours(rng_.uniform(12.0, 48.0));
  }

  if (rng_.bernoulli(config_.moldable_fraction) && spec.nodes >= 4) {
    // Shapes at half and double the requested nodes; imperfect scaling
    // (Amdahl-flavoured): halving nodes less than doubles runtime, doubling
    // nodes less than halves it.
    spec.moldable.push_back({spec.nodes, 1.0});
    spec.moldable.push_back({spec.nodes / 2, rng_.uniform(1.6, 1.95)});
    if (spec.nodes * 2 <= config_.machine_nodes) {
      spec.moldable.push_back({spec.nodes * 2, rng_.uniform(0.55, 0.75)});
    }
  }

  return spec;
}

std::vector<JobSpec> WorkloadGenerator::generate(std::size_t count,
                                                 sim::SimTime start) {
  std::vector<JobSpec> jobs;
  jobs.reserve(count);
  sim::SimTime t = start;
  const double mean_gap_s = 3600.0 / config_.arrival_rate_per_hour;
  for (std::size_t i = 0; i < count; ++i) {
    t += sim::from_seconds(rng_.exponential(mean_gap_s));
    jobs.push_back(make_job(t));
  }
  return jobs;
}

std::vector<JobSpec> WorkloadGenerator::generate_until(sim::SimTime start,
                                                       sim::SimTime end) {
  std::vector<JobSpec> jobs;
  sim::SimTime t = start;
  const double mean_gap_s = 3600.0 / config_.arrival_rate_per_hour;
  for (;;) {
    t += sim::from_seconds(rng_.exponential(mean_gap_s));
    if (t > end) break;
    jobs.push_back(make_job(t));
  }
  return jobs;
}

}  // namespace epajsrm::workload
