# Empty dependencies file for epajsrm_metrics.
# This may be replaced when dependencies are built.
