#pragma once

#include "a/y.hpp"

namespace fixture::a {
struct X {};
}  // namespace fixture::a
