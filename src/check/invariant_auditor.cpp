#include "check/invariant_auditor.hpp"

#include <cmath>
#include <cstdio>

#include "core/facility_coordinator.hpp"
#include "core/partition_domain.hpp"
#include "core/solution.hpp"
#include "power/ledger.hpp"

namespace epajsrm::check {

namespace {

// The documented NodeState machine (platform/node.hpp), closed over the
// compound edges one event cascade can produce (e.g. a release moving
// Busy -> Idle followed in the same callback by a shutdown to
// ShuttingDown is observed as Busy -> ShuttingDown).
bool legal_edge(platform::NodeState from, platform::NodeState to) {
  using S = platform::NodeState;
  if (from == to) return true;
  switch (from) {
    case S::kOff:
      return to == S::kBooting;
    case S::kBooting:
      return to == S::kIdle || to == S::kBusy;
    case S::kIdle:
      return to == S::kBusy || to == S::kShuttingDown || to == S::kDraining;
    case S::kBusy:
      return to == S::kIdle || to == S::kDraining || to == S::kShuttingDown;
    case S::kDraining:
      return to == S::kIdle || to == S::kBusy;
    case S::kShuttingDown:
      return to == S::kOff || to == S::kSleeping;
    case S::kSleeping:
      return to == S::kBooting;
  }
  return false;
}

std::string fmt(const char* format, double a, double b) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

std::string fmt1(const char* format, double a) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), format, a);
  return buf;
}

}  // namespace

InvariantAuditor::InvariantAuditor(core::EpaJsrmSolution& solution,
                                   AuditorConfig config)
    : solution_(&solution), config_(config) {
  if (config_.check_every_events == 0) config_.check_every_events = 1;
  const platform::Cluster& cluster = solution_->cluster();
  last_states_.reserve(cluster.node_count());
  for (const platform::Node& node : cluster.nodes()) {
    last_states_.push_back(node.state());
  }
  solution_->simulation().add_dispatch_hook(
      [this](sim::EventCategory, std::int64_t) { on_event(); });
}

void InvariantAuditor::watch(core::FacilityCoordinator& coordinator) {
  coordinator_ = &coordinator;
}

void InvariantAuditor::watch(core::PartitionDomain& domain) {
  domain.add_epoch_observer(
      [this](const core::PartitionDomain& d) { check_partition_epoch(d); });
}

void InvariantAuditor::check_partition_epoch(
    const core::PartitionDomain& domain) {
  ++epoch_audits_;

  // The shard merge just folded parallel per-partition temperature writes
  // into the ledger's incremental aggregates; an exact brute-force
  // recompute must agree verbatim, for any partition count.
  std::string parity = solution_->ledger().audit_parity();
  if (!parity.empty()) {
    record("partition", "post-merge ledger parity: " + std::move(parity));
  }

  // Cross-partition core conservation: the per-partition exact-int census
  // must fold to the same integers as the cluster's O(N) sweep, and hence
  // the bit-identical derived utilization the metrics plane records.
  const platform::Cluster& cluster = solution_->cluster();
  const std::uint64_t swept_total = cluster.cores_total();
  const std::uint64_t swept_free = cluster.cores_free();
  if (domain.cores_total() != swept_total ||
      domain.cores_free() != swept_free) {
    record("partition",
           "census broke conservation: folded " +
               std::to_string(domain.cores_free()) + "/" +
               std::to_string(domain.cores_total()) + " free/total vs swept " +
               std::to_string(swept_free) + "/" +
               std::to_string(swept_total));
  }
  if (domain.core_utilization() != cluster.core_utilization()) {
    record("partition", fmt("folded utilization %.17g diverged from swept "
                            "%.17g",
                            domain.core_utilization(),
                            cluster.core_utilization()));
  }
}

void InvariantAuditor::on_event() {
  ++events_seen_;
  if (events_seen_ % config_.check_every_events != 0) return;
  audit_now();
}

void InvariantAuditor::audit_now() {
  ++audits_;
  check_lifecycle();
  check_caps();
  check_energy();
  check_budgets();
  check_ledger();
}

void InvariantAuditor::check_energy() {
  const telemetry::EnergyAccountant& acc = solution_->accountant();
  const double total = acc.total_it_joules();
  const double eps = config_.energy_epsilon_rel * std::max(1.0, total);

  if (total < last_total_joules_ - eps) {
    record("energy", fmt("total IT energy decreased: %.9g J after %.9g J",
                         total, last_total_joules_));
  }
  last_total_joules_ = std::max(last_total_joules_, total);

  if (acc.overhead_joules() < -eps) {
    record("energy",
           fmt("overhead bucket is negative: %.9g J (total %.9g J)",
               acc.overhead_joules(), total));
  }

  // Conservation across attribution: total = sum(job energies) + overhead.
  // Finished jobs keep their integrals, so the identity holds for the
  // whole run, not just the live set.
  double attributed = 0.0;
  for (const workload::Job* job : solution_->running_jobs()) {
    attributed += job->energy_joules();
  }
  for (const workload::Job* job : solution_->finished_jobs()) {
    attributed += job->energy_joules();
  }
  const double recombined = attributed + acc.overhead_joules();
  if (std::abs(total - recombined) > eps) {
    record("energy",
           fmt("attribution broke conservation: total %.9g J vs "
               "jobs+overhead %.9g J",
               total, recombined));
  }

  // Conservation across space: the per-node integrals sum to the total.
  const platform::Cluster& cluster = solution_->cluster();
  double node_sum = 0.0;
  for (const platform::Node& node : cluster.nodes()) {
    node_sum += acc.node_joules(node.id());
  }
  if (std::abs(total - node_sum) > eps) {
    record("energy", fmt("node integrals broke conservation: total %.9g J "
                         "vs node sum %.9g J",
                         total, node_sum));
  }
}

void InvariantAuditor::check_caps() {
  const power::NodePowerModel& model = solution_->power_model();
  const platform::PstateTable& pstates = model.pstates();
  const power::PowerLedger& ledger = solution_->ledger();
  const platform::Cluster& cluster = solution_->cluster();

  // Fast path: nothing capped, nothing to check (the common case). The
  // candidate scan below reads only the ledger's SoA arrays; the cluster
  // node is touched only for the capped-and-governed minority that needs
  // config/utilization for the feasibility call.
  if (ledger.capped_node_count() == 0) return;
  for (platform::NodeId id = 0; id < ledger.node_count(); ++id) {
    const double cap = ledger.node_cap_watts(id);
    if (cap <= 0.0) continue;  // uncapped
    // Transition states draw fixed boot/sleep/off power by design; caps
    // govern only the DVFS-controllable states.
    if (!ledger.node_cap_governed(id)) continue;
    const double watts = ledger.node_watts(id);
    const platform::Node& node = cluster.node(id);
    const double util = node.utilization();
    const bool feasible =
        model.freq_ratio_for_cap(node.config(), cap, util) > 0.0;
    if (feasible) {
      if (watts > cap + config_.cap_epsilon_watts) {
        record("cap", "node " + std::to_string(id) +
                          fmt(" draws %.6g W over its %.6g W cap", watts,
                              cap));
      }
    } else {
      // Cap below the idle floor: best effort is the deepest P-state.
      const double best_effort =
          model.watts_at(node.config(), pstates.ratio(pstates.deepest()),
                         util);
      if (watts > best_effort + config_.cap_epsilon_watts) {
        record("cap", "node " + std::to_string(id) +
                          fmt(" draws %.6g W over the %.6g W best-effort "
                              "floor of an infeasible cap",
                              watts, best_effort));
      }
    }
  }
}

void InvariantAuditor::check_ledger() {
  const power::PowerLedger& ledger = solution_->ledger();

  // Internal parity: every incremental aggregate must equal a brute-force
  // recompute of the quantized per-node values *exactly*.
  std::string parity = ledger.audit_parity();
  if (!parity.empty()) {
    record("ledger", std::move(parity));
  }

  // External fidelity: the ledger is the only sanctioned power view, so it
  // must mirror the node sensor caches verbatim. This is the brute-force
  // ground-truth sweep the rest of the codebase no longer does.
  const platform::Cluster& cluster = solution_->cluster();
  double sweep_watts = 0.0;
  for (const platform::Node& node : cluster.nodes()) {  // lint:allow(power-sweep)
    const platform::NodeId id = node.id();
    if (ledger.node_watts(id) != node.current_watts()) {
      record("ledger", "node " + std::to_string(id) +
                           fmt(" power diverged: ledger %.9g W vs node "
                               "%.9g W",
                               ledger.node_watts(id), node.current_watts()));
    }
    if (ledger.node_cap_watts(id) != node.power_cap_watts()) {
      record("ledger", "node " + std::to_string(id) +
                           fmt(" cap diverged: ledger %.9g W vs node %.9g W",
                               ledger.node_cap_watts(id),
                               node.power_cap_watts()));
    }
    if (ledger.node_temperature_c(id) != node.temperature_c()) {
      record("ledger", "node " + std::to_string(id) +
                           fmt(" temperature diverged: ledger %.9g C vs "
                               "node %.9g C",
                               ledger.node_temperature_c(id),
                               node.temperature_c()));
    }
    if (ledger.node_state(id) != node.state()) {
      record("ledger", "node " + std::to_string(id) + " state diverged: " +
                           platform::to_string(ledger.node_state(id)) +
                           " vs " + platform::to_string(node.state()));
    }
    if (ledger.node_allocated(id) != !node.allocations().empty()) {
      record("ledger",
             "node " + std::to_string(id) + " allocation flag diverged");
    }
    sweep_watts += node.current_watts();
  }

  // The fixed-point total may differ from the double-precision sweep by at
  // most half a quantum per node (plus double summation noise, orders of
  // magnitude smaller).
  const double bound = std::max(
      config_.cap_epsilon_watts,
      static_cast<double>(cluster.node_count()) *
          power::PowerLedger::quantum_watts());
  if (std::abs(ledger.it_power_watts() - sweep_watts) > bound) {
    record("ledger", fmt("IT total diverged: ledger %.9g W vs sweep %.9g W",
                         ledger.it_power_watts(), sweep_watts));
  }
}

void InvariantAuditor::check_lifecycle() {
  const platform::Cluster& cluster = solution_->cluster();
  for (const platform::Node& node : cluster.nodes()) {
    const platform::NodeState before = last_states_[node.id()];
    const platform::NodeState after = node.state();
    if (!legal_edge(before, after)) {
      // An injected crash yanks a node straight to Off (or through Off to
      // Booting between audits); consume its crash mark instead of
      // flagging a false positive. Unmarked illegal edges still record.
      if (config_.excuse_fault_edges &&
          solution_->take_crash_mark(node.id())) {
        last_states_[node.id()] = after;
        continue;
      }
      record("lifecycle",
             "node " + std::to_string(node.id()) + " made illegal edge " +
                 platform::to_string(before) + " -> " +
                 platform::to_string(after));
    }
    last_states_[node.id()] = after;
  }
}

void InvariantAuditor::check_budgets() {
  const sim::SimTime now = solution_->now();
  for (const auto& policy : solution_->policies()) {
    const double budget = policy->power_budget_watts(now);
    if (!(budget >= 0.0) || !std::isfinite(budget)) {
      record("budget", "policy " + policy->name() +
                           fmt1(" reports budget %.6g W", budget));
    }
  }
  if (coordinator_ == nullptr) return;
  for (std::size_t i = 0; i < coordinator_->member_count(); ++i) {
    const double slice = coordinator_->budget_of(i);
    if (!(slice >= 0.0) || !std::isfinite(slice)) {
      record("budget", "coordinator member " + std::to_string(i) +
                           fmt1(" holds slice %.6g W", slice));
    }
    if (coordinator_->demand_of(i) < 0.0) {
      record("budget", "coordinator member " + std::to_string(i) +
                           " reports negative demand");
    }
  }
}

void InvariantAuditor::record(const char* invariant, std::string detail) {
  ++violation_count_;
  const sim::SimTime now = solution_->now();
  if (recorded_.size() < config_.max_recorded) {
    recorded_.push_back({now, invariant, detail});
  }
  if (config_.throw_on_violation) {
    throw AuditFailure(std::string(invariant) + " invariant violated at t=" +
                       std::to_string(now) + ": " + detail);
  }
}

}  // namespace epajsrm::check
