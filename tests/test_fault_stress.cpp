// Ensemble-under-faults determinism (tsan payload): sharded replications
// each carrying a stochastic failure plan plus sensor and control-channel
// faults must aggregate bit-identically at 1, 4 and 8 worker threads.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/ensemble.hpp"
#include "core/scenario_builder.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"

namespace epajsrm {
namespace {

core::ScenarioConfig faulty_config(std::uint64_t seed) {
  auto b = core::Scenario::builder()
               .label("fault-ens")
               .nodes(8)
               .job_count(6)
               .seed(seed)
               .horizon(2 * sim::kDay)
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = false;
                 c.solution.resilience.checkpoint_interval = 10 * sim::kMinute;
               });
  return std::move(b).take_config();
}

void inject_faults(core::Scenario& scenario) {
  const std::uint64_t seed = scenario.config().seed;
  fault::FailureModel model;
  model.mtbf_hours = 18.0;  // aggressive: several crashes per replication
  model.repair_time = 20 * sim::kMinute;
  fault::FaultPlan plan =
      model.generate(scenario.config().nodes, scenario.config().horizon, seed);
  plan.sensor_dropout(2 * sim::kHour, sim::kHour, 0.8)
      .sensor_noise(6 * sim::kHour, 2 * sim::kHour, 0.05)
      .capmc_failure(4 * sim::kHour, sim::kHour, 0.7);
  fault::FaultInjector::Config config;
  config.seed = seed;
  // The returned handle co-owns the injector with the scheduled events, so
  // dropping it here is safe.
  fault::FaultInjector::install(scenario.solution(), plan, config);
}

core::EnsembleResult run_with_threads(std::size_t threads) {
  core::EnsembleConfig config;
  config.replications = 6;
  config.base_seed = 2024;
  config.threads = threads;
  core::EnsembleEngine engine(config);
  engine.add_point(
      "faulty", [](std::uint64_t seed) { return faulty_config(seed); },
      inject_faults);
  return engine.run();
}

TEST(FaultEnsembleStress, BitIdenticalAcrossOneFourEightThreads) {
  const core::EnsembleResult one = run_with_threads(1);
  ASSERT_EQ(one.observations.size(), 6u);
  // The fault plans actually bite: at this MTBF every replication sees
  // simulator activity well past the fault-free event count, and results
  // still aggregate deterministically.
  for (const core::EnsembleObservation& obs : one.observations) {
    EXPECT_GT(obs.sim_events, 0u);
  }

  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    const core::EnsembleResult sharded = run_with_threads(threads);
    ASSERT_EQ(sharded.observations.size(), one.observations.size())
        << threads << " threads";
    for (std::size_t i = 0; i < one.observations.size(); ++i) {
      EXPECT_EQ(one.observations[i].seed, sharded.observations[i].seed);
      EXPECT_EQ(one.observations[i].sim_events,
                sharded.observations[i].sim_events)
          << threads << " threads, replication " << i;
      EXPECT_EQ(one.observations[i].total_kwh,
                sharded.observations[i].total_kwh)
          << threads << " threads, replication " << i;
      EXPECT_EQ(one.observations[i].jobs_completed,
                sharded.observations[i].jobs_completed);
      EXPECT_EQ(one.observations[i].makespan_hours,
                sharded.observations[i].makespan_hours);
    }
    EXPECT_EQ(one.cells[0].stats.total_kwh.mean,
              sharded.cells[0].stats.total_kwh.mean);
  }
}

}  // namespace
}  // namespace epajsrm
