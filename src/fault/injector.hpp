// FaultInjector: turns a FaultPlan into scheduled simulation events and
// wires the lossy paths into the stack — node/PDU failures through
// core::EpaJsrmSolution, sensor faults through the monitoring service's
// power-sample filter, and CAPMC control-RPC faults by acting as the
// controller's ControlTransport.
//
// Determinism: all injections ride the ordinary event queue under the
// "fault.inject"/"fault.recover" categories, and all randomness (drop
// coins, noise, RPC failures) comes from two Rng streams seeded from the
// injector seed — so a run with a given (plan, seed) replays
// bit-identically, including inside ensemble shards.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/control_transport.hpp"
#include "fault/fault_plan.hpp"
#include "sim/rng.hpp"

namespace epajsrm::core {
class EpaJsrmSolution;
class PartitionMap;
}  // namespace epajsrm::core

namespace epajsrm::fault {

/// Injects a FaultPlan into a solution. Create via install(); the returned
/// shared_ptr co-owns the injector with the scheduled callbacks, so it
/// survives ensemble Customize hooks that drop their local handle.
class FaultInjector : public ControlTransport,
                      public std::enable_shared_from_this<FaultInjector> {
 public:
  struct Config {
    /// Seeds the sensor and control-channel randomness streams.
    std::uint64_t seed = 1;
    /// A hung node is detected (and handled as a crash) this long after
    /// the hang begins — modelling the health-check lag.
    sim::SimTime hang_detection_latency = 60 * sim::kSecond;
    /// Baseline out-of-band RPC latency in healthy conditions.
    double base_rpc_latency_us = 50.0;
    /// Wire this injector as the CAPMC controller's transport.
    bool attach_transport = true;
    /// Install the monitor's power-sample filter for sensor faults.
    bool attach_sensor_filter = true;
  };

  /// Schedules every plan event on the solution's simulation and attaches
  /// the sensor/control hooks. Call before (or during) the run; events in
  /// the past fire immediately, per Simulation::schedule_at.
  static std::shared_ptr<FaultInjector> install(
      core::EpaJsrmSolution& solution, const FaultPlan& plan, Config config);
  static std::shared_ptr<FaultInjector> install(
      core::EpaJsrmSolution& solution, const FaultPlan& plan) {
    return install(solution, plan, Config{});
  }

  // --- ControlTransport (the lossy CAPMC channel) --------------------------
  Attempt attempt(const char* op) override;
  sim::SimTime now() const override;

  /// Fault events applied so far.
  std::uint64_t injected() const { return injected_; }

  /// Attributes injections to their owning rack/PDU partitions
  /// (DESIGN.md §15). With a map attached, every node- or PDU-targeted
  /// event is counted against the partition owning the target; a
  /// cluster-wide thermal excursion counts against every partition.
  /// Sensor and control-channel faults live on the telemetry/control
  /// plane and are attributed to no partition. Accounting only — routing
  /// and results never depend on the map (all faults apply on the
  /// coordinator at coupling-epoch-safe instants, enforced by contract in
  /// apply()). The map must outlive the injector.
  void attach_partition_map(const core::PartitionMap* map);
  /// Injections per partition (empty until a map is attached).
  const std::vector<std::uint64_t>& injected_by_partition() const {
    return injected_by_partition_;
  }

 private:
  FaultInjector(core::EpaJsrmSolution& solution, Config config);

  void schedule_plan(const FaultPlan& plan);
  void apply(const FaultEvent& event);
  void attribute(const FaultEvent& event);
  std::optional<double> filter_power_sample(sim::SimTime t,
                                            double truth_watts);

  /// One active windowed fault.
  struct Window {
    FaultKind kind;
    sim::SimTime until = 0;
    double magnitude = 0.0;
  };
  static void prune(std::vector<Window>& windows, sim::SimTime t);

  core::EpaJsrmSolution* solution_;
  Config config_;
  sim::Rng sensor_rng_;
  sim::Rng capmc_rng_;
  std::vector<Window> sensor_windows_;
  std::vector<Window> capmc_windows_;
  /// Held reading while a sensor-stuck window is active.
  std::optional<double> stuck_watts_;
  std::uint64_t injected_ = 0;
  const core::PartitionMap* partition_map_ = nullptr;
  std::vector<std::uint64_t> injected_by_partition_;
};

}  // namespace epajsrm::fault
