#include "sim/partitioned.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "check/contract.hpp"

namespace epajsrm::sim {

namespace {
/// Statistically independent stream salt per (seed, partition): two
/// rounds of splitmix64 with an odd partition multiplier, so partition 0
/// of seed s never collides with partition 1 of seed s-1 and friends.
std::uint64_t partition_salt(std::uint64_t seed, std::uint32_t partition) {
  return splitmix64(splitmix64(seed) ^
                    (0xa02bdbf7bb3c0a7ull * (std::uint64_t{partition} + 1)));
}
}  // namespace

PartitionedSimulation::PartitionedSimulation(PartitionedConfig config)
    : barrier_(std::max<std::uint32_t>(1, config.partitions),
               config.skew_window) {
  EPAJSRM_REQUIRE(config.partitions > 0, "need at least one partition");
  locals_.reserve(config.partitions);
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    locals_.push_back(std::make_unique<Simulation>());
    salts_.push_back(partition_salt(config.seed, p));
    rngs_.emplace_back(salts_.back());
  }
  errors_.resize(config.partitions);
  mail_seq_.assign(std::size_t{config.partitions} + 1, 0);

  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_ = std::min<std::size_t>(workers, config.partitions);
  if (config.partitions > 1 && workers_ > 1) {
    pool_ = std::make_unique<ThreadPool>(workers_);
  } else {
    workers_ = 1;
  }
}

Simulation& PartitionedSimulation::local(std::uint32_t p) {
  EPAJSRM_REQUIRE(p < locals_.size(), "unknown partition");
  return *locals_[p];
}

const Simulation& PartitionedSimulation::local(std::uint32_t p) const {
  EPAJSRM_REQUIRE(p < locals_.size(), "unknown partition");
  return *locals_[p];
}

Rng& PartitionedSimulation::rng(std::uint32_t p) {
  EPAJSRM_REQUIRE(p < rngs_.size(), "unknown partition");
  return rngs_[p];
}

std::uint64_t PartitionedSimulation::rng_salt(std::uint32_t p) const {
  EPAJSRM_REQUIRE(p < salts_.size(), "unknown partition");
  return salts_[p];
}

void PartitionedSimulation::post(std::uint32_t from, std::uint32_t to,
                                 SimTime at, Simulation::Callback fn,
                                 EventCategory category) {
  EPAJSRM_REQUIRE(to < locals_.size(), "mail addressed to unknown partition");
  EPAJSRM_REQUIRE(from == kCoordinator || from < locals_.size(),
                  "mail from unknown sender");
  const std::size_t sender =
      from == kCoordinator ? locals_.size() : std::size_t{from};
  const std::lock_guard<std::mutex> lk(mail_mutex_);
  Mail m;
  m.at = at;
  m.from = from;
  m.to = to;
  m.seq = mail_seq_[sender]++;
  m.fn = std::move(fn);
  m.category = category;
  mail_.push_back(std::move(m));
}

void PartitionedSimulation::deliver_mail() {
  std::vector<Mail> batch;
  {
    const std::lock_guard<std::mutex> lk(mail_mutex_);
    batch.swap(mail_);
  }
  if (batch.empty()) return;
  // Fixed delivery order (at, sender rank, per-sender seq): independent
  // of which worker thread posted first. Coordinator mail ranks last so
  // its rank is a constant, not a partition-count-dependent value.
  std::sort(batch.begin(), batch.end(), [](const Mail& a, const Mail& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.from != b.from) return a.from < b.from;  // kCoordinator sorts last
    return a.seq < b.seq;
  });
  for (auto& m : batch) {
    // Pin to the epoch boundary: never earlier than the last epoch end.
    locals_[m.to]->schedule_at(std::max(m.at, epoch_), std::move(m.fn),
                               m.category);
  }
}

void PartitionedSimulation::run_partition(std::uint32_t p, SimTime epoch_end) {
  Simulation& local = *locals_[p];
  for (;;) {
    const SimTime next = local.next_event_time();
    if (next > epoch_end) {
      // Drained: advancing a quiescent clock executes nothing, so no
      // clearance is needed — publish and leave so peers never wait.
      barrier_.publish(p, epoch_end);
      local.run_until(epoch_end);
      return;
    }
    barrier_.acquire(p, next);
    local.run_until(next);
  }
}

void PartitionedSimulation::run_epoch(SimTime epoch_end) {
  EPAJSRM_REQUIRE(epoch_end >= epoch_, "epoch ends must be non-decreasing");
  EPAJSRM_REQUIRE(!in_local_phase(), "run_epoch is not reentrant");
  deliver_mail();
  if (pool_ == nullptr) {
    // Inline path (single partition, or one worker): identical event
    // order by construction, zero synchronization cost. partitions=1
    // stays exactly as fast and as debuggable as the classic engine.
    for (std::uint32_t p = 0; p < locals_.size(); ++p) {
      barrier_.publish(p, epoch_end);
      locals_[p]->run_until(epoch_end);
    }
  } else {
    in_local_phase_.store(true, std::memory_order_release);
    for (std::uint32_t p = 0; p < locals_.size(); ++p) {
      pool_->submit([this, p, epoch_end] {
        try {
          run_partition(p, epoch_end);
        } catch (...) {
          errors_[p] = std::current_exception();
          // Release peers blocked on our horizon; the epoch's results
          // are void anyway — run_epoch rethrows below.
          barrier_.publish(p, epoch_end);
        }
      });
    }
    pool_->wait_idle();
    in_local_phase_.store(false, std::memory_order_release);
    for (auto& error : errors_) {
      if (error != nullptr) {
        const std::exception_ptr first = std::exchange(error, nullptr);
        for (auto& rest : errors_) rest = nullptr;
        std::rethrow_exception(first);
      }
    }
  }
  epoch_ = epoch_end;
  ++epochs_;
}

std::uint64_t PartitionedSimulation::local_events() const {
  std::uint64_t total = 0;
  for (const auto& local : locals_) total += local->events_processed();
  return total;
}

}  // namespace epajsrm::sim
