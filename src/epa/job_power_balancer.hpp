// Job-aware power balancing — the research direction LRZ and STFC report
// ("investigating merging SLURM and GEOPM for system energy & power
// control", Eastep et al. [14]): instead of dividing a global budget by
// *node demand* (POWsched), divide it by *job benefit*. Compute-bound
// jobs (high β) convert watts into progress almost linearly; memory-bound
// jobs barely notice — so under a tight budget the balancer deepens the
// memory-bound jobs' P-states and spends the freed watts on the
// compute-bound ones.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Periodic benefit-proportional division of a global budget into per-job
/// frequency levels (GEOPM's budget-balancing shape at job granularity).
class JobPowerBalancerPolicy final : public EpaPolicy {
 public:
  /// `budget_watts`: global IT budget. `beta_split`: jobs with
  /// frequency-sensitive fraction >= this are treated as compute-bound.
  explicit JobPowerBalancerPolicy(double budget_watts,
                                  double beta_split = 0.5)
      : budget_(budget_watts), beta_split_(beta_split) {}

  std::string name() const override { return "job-power-balancer"; }

  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime) const override { return budget_; }

  std::uint64_t rebalances() const { return rebalances_; }
  /// Watts currently assigned to the compute-bound class (diagnostics).
  double compute_class_watts() const { return compute_watts_; }

 private:
  double budget_;
  double beta_split_;
  std::uint64_t rebalances_ = 0;
  double compute_watts_ = 0.0;
};

}  // namespace epajsrm::epa
