// Fault taxonomy of the resilience plane (DESIGN.md §9).
//
// The surveyed production stacks (Trinity emergency response, Cray CAPMC,
// LRZ/CINECA telemetry pipelines) all exist because real centers face
// failing nodes, flaky sensors and lossy control channels. A FaultEvent is
// one typed, timed fault; plans of them (fault_plan.hpp) are injected
// through the ordinary event queue so every run replays bit-identically.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace epajsrm::fault {

/// The fault classes the injector understands.
enum class FaultKind {
  kNodeCrash,         ///< node dies instantly; jobs on it are lost/requeued
  kNodeHang,          ///< node wedges; detected (and treated as a crash)
                      ///< only after a detection latency
  kPduTrip,           ///< a PDU breaker opens: every node on it goes down
  kSensorDropout,     ///< machine power samples are dropped (prob=magnitude)
  kSensorStuck,       ///< machine power sensor repeats its last reading
  kSensorNoise,       ///< multiplicative Gaussian noise (sigma=magnitude)
  kThermalExcursion,  ///< node temperature jumps by magnitude °C
  kCapmcFailure,      ///< control RPCs fail with probability magnitude
  kCapmcLatency,      ///< control RPCs slow down by magnitude µs
};

/// Stable spec-file name of a kind ("node-crash", "capmc-latency", ...).
const char* to_string(FaultKind kind);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
FaultKind parse_fault_kind(const std::string& name);

/// One scheduled fault.
struct FaultEvent {
  sim::SimTime at = 0;      ///< injection time
  FaultKind kind = FaultKind::kNodeCrash;
  /// Node id (crash/hang/thermal), PDU id (trip), or -1 for machine-wide
  /// targets (sensor and CAPMC faults ignore it; thermal -1 = all nodes).
  std::int64_t target = -1;
  /// Kind-specific strength: drop/failure probability in [0,1] for
  /// dropout/CAPMC failure, noise sigma, added RPC latency in µs, or the
  /// temperature delta in °C. 0 means the kind's natural default.
  double magnitude = 0.0;
  /// Window length for windowed kinds (sensor/CAPMC faults), or the repair
  /// time after which a crashed node/PDU is restored; 0 = no auto-repair
  /// (crashes) / a zero-length window (sensor faults, i.e. a no-op).
  sim::SimTime duration = 0;
};

}  // namespace epajsrm::fault
