// The discrete-event simulation driver: a monotone clock plus the event
// queue. Every model component holds a Simulation& and expresses behaviour
// as scheduled callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace epajsrm::sim {

/// Discrete-event simulation engine.
///
/// Usage:
///   Simulation sim;
///   sim.schedule_in(5 * kSecond, [&]{ ... });
///   sim.run();
///
/// The engine is single-threaded by design: determinism matters more than
/// intra-replication parallelism at this model scale, and replications
/// parallelise embarrassingly (see ThreadPool).
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Observer invoked after each dispatched callback with the event's
  /// category tag and its wall-clock cost. Attaching one enables per-event
  /// timing (the event-loop profiler); detached, dispatch is not timed.
  using DispatchHook = std::function<void(const char* category,
                                          std::int64_t wall_ns)>;

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now() if in the past,
  /// which models "fire as soon as possible"). `category` tags the event
  /// for profiling and must point at a static string (a literal).
  EventId schedule_at(SimTime t, Callback cb,
                      const char* category = kDefaultEventCategory);

  /// Schedules `cb` at now() + dt (dt < 0 clamps to now()).
  EventId schedule_in(SimTime dt, Callback cb,
                      const char* category = kDefaultEventCategory) {
    return schedule_at(now_ + dt, std::move(cb), category);
  }

  /// Schedules a periodic callback firing first at now() + period and then
  /// every `period` until it returns false. Returns the id of the *first*
  /// firing; cancelling it stops the chain only before the first firing —
  /// use the callback's return value for clean shutdown.
  EventId schedule_every(SimTime period, std::function<bool()> cb,
                         const char* category = kDefaultEventCategory);

  /// Replaces every attached dispatch observer with `hook` (or clears all,
  /// with {}).
  void set_dispatch_hook(DispatchHook hook) {
    hooks_.clear();
    if (hook) hooks_.push_back(std::move(hook));
  }

  /// Appends a dispatch observer without disturbing existing ones; the
  /// event-loop profiler and the invariant auditor can both watch the same
  /// run. Hooks run in attachment order after every dispatched callback.
  void add_dispatch_hook(DispatchHook hook) {
    if (hook) hooks_.push_back(std::move(hook));
  }

  bool has_dispatch_hook() const { return !hooks_.empty(); }

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty or stop() is called.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Runs until the queue is empty, stop() is called, or the next event
  /// would fire strictly after `t`; the clock then advances to min(t, ...).
  void run_until(SimTime t);

  /// Requests termination; the current callback finishes, the loop exits.
  void stop() { stopped_ = true; }

  /// True once stop() has been called.
  bool stopped() const { return stopped_; }

  /// Total callbacks executed (for kernel benchmarks and tests).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Live events still pending.
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  std::vector<DispatchHook> hooks_;
};

}  // namespace epajsrm::sim
