#include "telemetry/time_series.hpp"

#include <algorithm>
#include <stdexcept>

namespace epajsrm::telemetry {

TimeSeries::TimeSeries(std::size_t capacity) : buffer_(capacity) {
  if (capacity == 0) throw std::invalid_argument("capacity must be > 0");
}

void TimeSeries::record(sim::SimTime t, double value) {
  if (size_ > 0) {
    const Sample last = at(size_ - 1);
    if (t < last.time) {
      throw std::invalid_argument("time series must be non-decreasing");
    }
  }
  buffer_[head_] = Sample{t, value};
  head_ = (head_ + 1) % buffer_.size();
  size_ = std::min(size_ + 1, buffer_.size());
}

std::optional<Sample> TimeSeries::latest() const {
  if (size_ == 0) return std::nullopt;
  return at(size_ - 1);
}

Sample TimeSeries::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("sample index");
  const std::size_t oldest = (head_ + buffer_.size() - size_) % buffer_.size();
  return buffer_[(oldest + i) % buffer_.size()];
}

TimeSeries::WindowStats TimeSeries::window_stats(sim::SimTime begin,
                                                 sim::SimTime end) const {
  WindowStats stats;
  double sum = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    const Sample s = at(i);
    if (s.time < begin || s.time > end) continue;
    if (stats.count == 0) {
      stats.min = stats.max = s.value;
    } else {
      stats.min = std::min(stats.min, s.value);
      stats.max = std::max(stats.max, s.value);
    }
    sum += s.value;
    ++stats.count;
  }
  if (stats.count > 0) stats.mean = sum / static_cast<double>(stats.count);
  return stats;
}

double TimeSeries::trailing_mean(sim::SimTime window) const {
  if (size_ == 0) return 0.0;
  const sim::SimTime end = at(size_ - 1).time;
  const WindowStats stats = window_stats(end - window, end);
  return stats.count > 0 ? stats.mean : 0.0;
}

double TimeSeries::integral_seconds() const {
  double total = 0.0;
  for (std::size_t i = 1; i < size_; ++i) {
    const Sample a = at(i - 1);
    const Sample b = at(i);
    total += a.value * sim::to_seconds(b.time - a.time);
  }
  return total;
}

}  // namespace epajsrm::telemetry
