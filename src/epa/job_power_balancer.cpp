#include "epa/job_power_balancer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace epajsrm::epa {

void JobPowerBalancerPolicy::on_tick(sim::SimTime) {
  if (host_ == nullptr || budget_ <= 0.0) return;
  platform::Cluster& cluster = host_->cluster();
  const power::NodePowerModel& model = host_->power_model();
  const platform::PstateTable& pstates = cluster.pstates();

  // Fixed charges first: idle/off/transitioning nodes keep their draw.
  // The ledger tracks the allocation-empty draw incrementally.
  const double fixed = host_->ledger().unallocated_power_watts();

  // Classify running jobs and collect their full-speed demand.
  struct Entry {
    const workload::Job* job;
    double idle_watts = 0.0;     ///< idle floor of its nodes
    double full_dyn_watts = 0.0; ///< dynamic demand at f_ref
    bool compute_bound = false;
  };
  std::vector<Entry> entries;
  double idle_total = 0.0;
  for (const workload::Job* job : host_->running_jobs()) {
    if (job->allocated_nodes().empty()) continue;
    Entry e;
    e.job = job;
    for (platform::NodeId id : job->allocated_nodes()) {
      const platform::Node& node = cluster.node(id);
      e.idle_watts += node.config().idle_watts;
      e.full_dyn_watts += node.config().dynamic_watts *
                          node.config().variability * node.utilization();
    }
    e.compute_bound =
        job->spec().profile.freq_sensitive_fraction >= beta_split_;
    idle_total += e.idle_watts;
    entries.push_back(e);
  }
  if (entries.empty()) return;

  const double distributable =
      std::max(0.0, budget_ - fixed - idle_total);
  double demand_full = 0.0;
  for (const Entry& e : entries) demand_full += e.full_dyn_watts;
  if (demand_full <= 0.0) return;

  if (demand_full <= distributable) {
    // Budget is loose: everyone runs at full frequency.
    for (const Entry& e : entries) {
      host_->set_job_pstate(e.job->id(), 0);
    }
    compute_watts_ = 0.0;
    ++rebalances_;
    return;
  }

  // Tight budget. Give the memory-bound class the deepest P-state (their
  // progress barely cares), then spend whatever remains on the
  // compute-bound class at the fastest affordable state.
  const double deep_ratio = pstates.ratio(pstates.deepest());
  const double deep_scale = std::pow(deep_ratio, model.alpha());
  double memory_dyn = 0.0;
  double compute_dyn_full = 0.0;
  for (const Entry& e : entries) {
    if (e.compute_bound) {
      compute_dyn_full += e.full_dyn_watts;
    } else {
      memory_dyn += e.full_dyn_watts * deep_scale;
    }
  }

  const double compute_share = std::max(0.0, distributable - memory_dyn);
  // Fastest common P-state the compute class can afford.
  std::uint32_t compute_state = pstates.deepest();
  for (std::uint32_t p = 0; p <= pstates.deepest(); ++p) {
    const double scale = std::pow(pstates.ratio(p), model.alpha());
    if (compute_dyn_full * scale <= compute_share ||
        p == pstates.deepest()) {
      compute_state = p;
      break;
    }
  }

  for (const Entry& e : entries) {
    host_->set_job_pstate(e.job->id(),
                          e.compute_bound ? compute_state
                                          : pstates.deepest());
  }
  compute_watts_ = compute_share;
  ++rebalances_;
}

}  // namespace epajsrm::epa
