// Pass 2: determinism rules.
//
// The repo's replay/caching story (bit-identical ensembles across shard
// counts, the planned scenario-result cache, and the lax-sync
// partitioned core) only holds while no observable effect depends on
// hash-table iteration order or on floating-point accumulation order.
// Three rules police that statically:
//
//   unordered-iter         iterating an unordered_map/unordered_set in a
//                          function that emits output, aggregates into
//                          sinks, or schedules events
//   float-accum-unordered  `+=`/`-=` on a double/float inside a loop
//                          over an unordered container
//   pointer-key-order      std::map/std::set keyed by a pointer type
//
// Member-type resolution is cross-TU: identifiers declared as unordered
// containers in any header a TU (transitively) includes are recognized
// when the TU iterates them, so `for (auto& [k, v] : buckets_)` in a
// .cpp is matched against the member declaration in its header.
#pragma once

#include <map>
#include <set>
#include <string>

#include "epajsrm_analyze/finding.hpp"
#include "epajsrm_analyze/include_graph.hpp"
#include "support/source_text.hpp"

namespace epajsrm::analyze {

/// Identifiers per file that name unordered containers / floating-point
/// variables, harvested from declarations (members, locals, params).
struct DeclIndex {
  std::map<std::string, std::set<std::string>> unordered_ids;
  std::map<std::string, std::set<std::string>> float_ids;
};

DeclIndex index_declarations(
    const std::map<std::string, toolsupport::SourceFile>& sources);

/// Runs the three determinism rules over every file, resolving member
/// types through `graph`. Suppress with `lint:allow(<rule>)` on the
/// flagged line.
void check_determinism(
    const std::map<std::string, toolsupport::SourceFile>& sources,
    const IncludeGraph& graph, const DeclIndex& decls, Findings* findings);

}  // namespace epajsrm::analyze
