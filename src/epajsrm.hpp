// Umbrella header for the epajsrm framework: one include for examples,
// benches, and downstream studies.
//
//   #include "epajsrm.hpp"
//
//   int main() {
//     using namespace epajsrm;
//     core::Scenario scenario = core::Scenario::builder()
//                                   .nodes(64)
//                                   .mix(core::WorkloadMix::kCapability)
//                                   .seed(7)
//                                   .build();
//     scenario.solution().add_policy(
//         std::make_unique<epa::IdleShutdownPolicy>());
//     const core::RunResult result = scenario.run();
//   }
//
// Internal layers (sched passes, rm allocator internals, check contracts)
// are deliberately not re-exported; include their headers directly when a
// study reaches into them.
#pragma once

// Simulation kernel.
#include "sim/event_category.hpp"
#include "sim/event_queue.hpp"
#include "sim/logger.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

// Platform and workload models.
#include "platform/cluster.hpp"
#include "workload/app_catalog.hpp"
#include "workload/generator.hpp"
#include "workload/swf.hpp"

// Power and supply models.
#include "power/energy_source.hpp"
#include "power/node_power_model.hpp"
#include "power/tariff.hpp"

// The experiment layer: scenarios, ensembles, replication statistics.
#include "core/ensemble.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/scenario_builder.hpp"
#include "core/solution.hpp"

// External-decision boundary (EDC protocol, DESIGN.md §13).
#include "edc/energy_budget_agent.hpp"
#include "edc/external_scheduler.hpp"
#include "edc/protocol.hpp"
#include "edc/replay.hpp"
#include "edc/socket_transport.hpp"
#include "edc/transport.hpp"

// Energy/power-aware policies (paper Section VI techniques).
#include "epa/budget_source.hpp"
#include "epa/capability_window.hpp"
#include "epa/demand_response.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/energy_budget.hpp"
#include "epa/emergency_response.hpp"
#include "epa/energy_cost_order.hpp"
#include "epa/energy_to_solution.hpp"
#include "epa/group_power_cap.hpp"
#include "epa/idle_shutdown.hpp"
#include "epa/job_power_balancer.hpp"
#include "epa/ms3_thermal.hpp"
#include "epa/node_cycling_cap.hpp"
#include "epa/overprovision.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "epa/ramp_limiter.hpp"
#include "epa/source_selection.hpp"
#include "epa/static_power_cap.hpp"

// Reporting, telemetry, observability.
#include "metrics/collector.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "obs/exposition.hpp"
#include "obs/observability.hpp"
#include "survey/centers.hpp"
#include "telemetry/energy_accounting.hpp"
