#include "platform/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace epajsrm::platform {

double Topology::allocation_spread(std::span<const NodeId> nodes) const {
  if (nodes.size() < 2) return 0.0;
  const std::uint32_t diam = diameter();
  if (diam == 0) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      sum += distance(nodes[i], nodes[j]);
      ++pairs;
    }
  }
  return (sum / static_cast<double>(pairs)) / static_cast<double>(diam);
}

// --- FatTreeTopology -------------------------------------------------------

FatTreeTopology::FatTreeTopology(std::uint32_t arity, std::uint32_t levels)
    : arity_(arity), levels_(levels) {
  if (arity < 2 || levels < 1) {
    throw std::invalid_argument("fat tree needs arity >= 2, levels >= 1");
  }
  std::uint64_t n = 1;
  for (std::uint32_t i = 0; i < levels; ++i) {
    n *= arity;
    if (n > (1ull << 31)) throw std::invalid_argument("fat tree too large");
  }
  node_count_ = static_cast<std::uint32_t>(n);
}

std::uint32_t FatTreeTopology::distance(NodeId a, NodeId b) const {
  assert(a < node_count_ && b < node_count_);
  if (a == b) return 0;
  // Walk both leaves up until they meet; each level divides ids by arity.
  std::uint32_t level = 0;
  std::uint32_t ia = a, ib = b;
  while (ia != ib) {
    ia /= arity_;
    ib /= arity_;
    ++level;
  }
  return 2 * level;
}

std::string FatTreeTopology::describe() const {
  return "fat-tree(arity=" + std::to_string(arity_) +
         ", levels=" + std::to_string(levels_) +
         ", nodes=" + std::to_string(node_count_) + ")";
}

// --- Torus3DTopology -------------------------------------------------------

Torus3DTopology::Torus3DTopology(std::uint32_t dim_x, std::uint32_t dim_y,
                                 std::uint32_t dim_z)
    : dx_(dim_x), dy_(dim_y), dz_(dim_z) {
  if (dx_ == 0 || dy_ == 0 || dz_ == 0) {
    throw std::invalid_argument("torus dimensions must be positive");
  }
}

Torus3DTopology::Coord Torus3DTopology::coord(NodeId n) const {
  assert(n < node_count());
  return Coord{n % dx_, (n / dx_) % dy_, n / (dx_ * dy_)};
}

namespace {
std::uint32_t ring_distance(std::uint32_t a, std::uint32_t b,
                            std::uint32_t dim) {
  const std::uint32_t d = a > b ? a - b : b - a;
  return std::min(d, dim - d);
}
}  // namespace

std::uint32_t Torus3DTopology::distance(NodeId a, NodeId b) const {
  const Coord ca = coord(a), cb = coord(b);
  return ring_distance(ca.x, cb.x, dx_) + ring_distance(ca.y, cb.y, dy_) +
         ring_distance(ca.z, cb.z, dz_);
}

std::string Torus3DTopology::describe() const {
  return "torus3d(" + std::to_string(dx_) + "x" + std::to_string(dy_) + "x" +
         std::to_string(dz_) + ")";
}

// --- DragonflyTopology -----------------------------------------------------

DragonflyTopology::DragonflyTopology(std::uint32_t groups,
                                     std::uint32_t routers_per_group,
                                     std::uint32_t nodes_per_router)
    : groups_(groups), routers_(routers_per_group),
      endpoints_(nodes_per_router) {
  if (groups == 0 || routers_per_group == 0 || nodes_per_router == 0) {
    throw std::invalid_argument("dragonfly dimensions must be positive");
  }
}

std::uint32_t DragonflyTopology::distance(NodeId a, NodeId b) const {
  assert(a < node_count() && b < node_count());
  if (a == b) return 0;
  const std::uint32_t router_a = a / endpoints_;
  const std::uint32_t router_b = b / endpoints_;
  if (router_a == router_b) return 1;
  const std::uint32_t group_a = router_a / routers_;
  const std::uint32_t group_b = router_b / routers_;
  return group_a == group_b ? 2 : 3;
}

std::string DragonflyTopology::describe() const {
  return "dragonfly(groups=" + std::to_string(groups_) +
         ", routers/group=" + std::to_string(routers_) +
         ", nodes/router=" + std::to_string(endpoints_) + ")";
}

std::unique_ptr<Topology> make_default_topology(std::uint32_t min_nodes) {
  // Smallest arity-8 fat tree covering min_nodes keeps the endpoint count
  // close to the requested size.
  std::uint32_t levels = 1;
  std::uint64_t n = 8;
  while (n < min_nodes) {
    n *= 8;
    ++levels;
  }
  return std::make_unique<FatTreeTopology>(8, levels);
}

}  // namespace epajsrm::platform
