#pragma once

#include "../base/core.hpp"

namespace fixture::top {
inline int twice() { return 2 * fixture::base::unit(); }
}  // namespace fixture::top
