// Experiment S6-DR — grid integration (Bates [6], Patki [36]): the ESP
// requests the site to shed to a limit for a window. Compare ignoring the
// event, shedding via system capping (demand-response policy), and
// shedding with on-site generation absorbing the cut (RIKEN's gas-turbine
// line).
#include <cstdio>

#include <memory>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "epa/demand_response.hpp"
#include "epa/source_selection.hpp"
#include "metrics/table.hpp"

namespace {

using namespace epajsrm;

struct DrOutcome {
  core::RunResult result;
  double grid_overdraw_kwh = 0.0;  ///< energy above the DR limit (grid)
  double turbine_kwh = 0.0;
};

DrOutcome run_case(bool honour, bool turbine, const std::string& label) {
  core::ScenarioConfig config;
  config.label = label;
  config.nodes = 48;
  config.job_count = 120;
  config.horizon = 30 * sim::kDay;
  config.seed = 8;
  config.mix = core::WorkloadMix::kCapacity;
  config.target_utilization = 0.8;
  config.solution.enable_thermal = false;
  core::Scenario scenario(config);

  const double peak = scenario.solution().power_model().peak_watts(
                          scenario.cluster().node(0).config()) *
                      config.nodes;
  const double facility_peak =
      peak * scenario.cluster().facility().config().base_pue;
  const double dr_limit = 0.55 * facility_peak;

  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::flat(0.11), .startup_time = 0,
                     .dispatchable = false});
  if (turbine) {
    supply.add_source({.name = "gas-turbine",
                       .capacity_watts = 0.35 * facility_peak,
                       .tariff = power::Tariff::flat(0.28),
                       .startup_time = 10 * sim::kMinute,
                       .dispatchable = true});
  }
  // Three DR windows while the machine is busy (the workload drains in
  // roughly a day at this load).
  for (sim::SimTime start :
       {5 * sim::kHour, 12 * sim::kHour, 20 * sim::kHour}) {
    supply.add_event({.start = start, .duration = 2 * sim::kHour,
                      .limit_watts = dr_limit,
                      .notice = 30 * sim::kMinute,
                      .incentive_per_kwh = 0.08});
  }

  // Track grid overdraw during events via the source-selection telemetry.
  auto source = std::make_unique<epa::SourceSelectionPolicy>();
  epa::SourceSelectionPolicy* source_p = source.get();
  scenario.solution().set_supply(std::move(supply));
  scenario.solution().add_policy(std::move(source));
  if (honour) {
    scenario.solution().add_policy(
        std::make_unique<epa::DemandResponsePolicy>());
  }

  // Sample grid draw above the limit during events.
  double overdraw_joules = 0.0;
  auto* solution = &scenario.solution();
  auto* cluster = &scenario.cluster();
  scenario.solution().monitor().add_observer([=, &overdraw_joules](
                                                 sim::SimTime now) {
    const power::SupplyPortfolio* s = solution->supply();
    if (s == nullptr) return;
    const power::DemandResponseEvent* e = s->active_event(now);
    if (e == nullptr) return;
    const double facility = cluster->facility().facility_watts(
        cluster->it_power_watts(), now);
    const double turbine_cap =
        s->sources().size() > 1 ? s->sources()[1].capacity_watts : 0.0;
    const double grid_draw = std::max(0.0, facility - turbine_cap);
    if (grid_draw > e->limit_watts) {
      overdraw_joules += (grid_draw - e->limit_watts) * 10.0;  // 10 s tick
    }
  });

  DrOutcome outcome;
  outcome.result = scenario.run();
  outcome.grid_overdraw_kwh = overdraw_joules / 3.6e6;
  outcome.turbine_kwh = source_p->dispatchable_kwh();
  return outcome;
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_demand_response");
  const DrOutcome ignore = run_case(false, false, "ignore-event");
  const DrOutcome shed = run_case(true, false, "shed-by-capping");
  const DrOutcome sourced = run_case(true, true, "shed+gas-turbine");
  summary.add_run(ignore.result);
  summary.add_run(shed.result);
  summary.add_run(sourced.result);

  metrics::AsciiTable table({"strategy", "grid overdraw in DR windows",
                             "turbine energy", "p50 wait (min)",
                             "makespan (h)", "jobs done", "energy"});
  table.set_title(
      "S6-DR: three 2-hour demand-response windows at 55 % of facility "
      "peak (48 nodes, 80 % load)");
  for (const auto& [label, o] :
       {std::pair{"ignore-event", &ignore}, {"shed-by-capping", &shed},
        {"shed+gas-turbine", &sourced}}) {
    table.add_row(
        {label, metrics::format_kwh(o->grid_overdraw_kwh),
         metrics::format_kwh(o->turbine_kwh),
         metrics::format_double(o->result.report.wait_minutes.median, 1),
         metrics::format_double(sim::to_hours(o->result.report.makespan), 1),
         std::to_string(o->result.report.jobs_completed),
         metrics::format_kwh(o->result.total_it_kwh_exact)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: ignoring the event overdraws the grid; capping honours "
      "it at a throughput cost; on-site generation honours it while "
      "keeping the machine busy.\n");
  return 0;
}
