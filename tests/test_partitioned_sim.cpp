// PartitionedSimulation and SkewBarrier: the lax-sync engine underneath
// the partitioned scenario core (DESIGN.md §15) — barrier lookahead
// protocol, deterministic mailbox delivery, epoch mechanics, inline vs
// threaded parity, and error propagation.
#include "sim/partitioned.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "check/contract.hpp"
#include "sim/skew_barrier.hpp"

namespace epajsrm::sim {
namespace {

PartitionedConfig config(std::uint32_t partitions, std::size_t workers,
                         SimTime skew_window = 0) {
  PartitionedConfig c;
  c.partitions = partitions;
  c.workers = workers;
  c.skew_window = skew_window;
  c.seed = 7;
  return c;
}

TEST(SkewBarrier, PublishIsMonotoneAndNeverBlocks) {
  SkewBarrier barrier(3, kMinute);
  EXPECT_EQ(barrier.partitions(), 3u);
  EXPECT_EQ(barrier.window(), kMinute);
  barrier.publish(0, 10 * kSecond);
  EXPECT_EQ(barrier.horizon(0), 10 * kSecond);
  // A lower horizon is a no-op, not a rewind.
  barrier.publish(0, 5 * kSecond);
  EXPECT_EQ(barrier.horizon(0), 10 * kSecond);
  EXPECT_EQ(barrier.waits(), 0u);
}

TEST(SkewBarrier, SinglePartitionAcquiresWithoutPeers) {
  SkewBarrier barrier(1, 0);
  barrier.acquire(0, kHour);
  barrier.acquire(0, 2 * kHour);
  EXPECT_EQ(barrier.waits(), 0u);
  EXPECT_EQ(barrier.horizon(0), 2 * kHour);
}

// Interleaved event times under a zero-width window force timestamp
// lockstep: with two real workers, whichever partition reaches its first
// acquire first must block for the other (publish-then-check is atomic),
// so the barrier records at least one wait — and the run still finishes,
// which is the deadlock-freedom half of the protocol.
TEST(PartitionedSim, ZeroWindowLockstepBlocksButCompletes) {
  PartitionedSimulation ps(config(2, 2, /*skew_window=*/0));
  if (ps.workers() < 2) GTEST_SKIP() << "needs two real workers";
  std::vector<SimTime> seen0, seen1;  // each written by one partition only
  for (int i = 1; i <= 5; ++i) {
    const SimTime even = 2 * i * kSecond;
    const SimTime odd = (2 * i + 1) * kSecond;
    ps.local(0).schedule_at(even, [&seen0, even] { seen0.push_back(even); });
    ps.local(1).schedule_at(odd, [&seen1, odd] { seen1.push_back(odd); });
  }
  ps.run_epoch(kMinute);
  ASSERT_EQ(seen0.size(), 5u);
  ASSERT_EQ(seen1.size(), 5u);
  EXPECT_GE(ps.barrier().waits(), 1u);
  EXPECT_EQ(ps.local_events(), 10u);
  EXPECT_EQ(ps.now(), kMinute);
  EXPECT_EQ(ps.epochs_run(), 1u);
}

TEST(PartitionedSim, InlineAndThreadedRunsExecuteIdentically) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    PartitionedSimulation ps(config(4, workers));
    std::vector<std::vector<SimTime>> fired(4);
    for (std::uint32_t p = 0; p < 4; ++p) {
      ps.local(p).schedule_every((p + 1) * kMinute, [&fired, p, &ps] {
        fired[p].push_back(ps.local(p).now());
        return true;
      });
    }
    ps.run_epoch(10 * kMinute);
    ps.run_epoch(20 * kMinute);
    EXPECT_EQ(fired[0].size(), 20u) << workers << " workers";
    EXPECT_EQ(fired[1].size(), 10u);
    EXPECT_EQ(fired[2].size(), 6u);
    EXPECT_EQ(fired[3].size(), 5u);
    // Each partition saw its own clock strictly advance in order.
    for (std::uint32_t p = 0; p < 4; ++p) {
      for (std::size_t i = 1; i < fired[p].size(); ++i) {
        EXPECT_LT(fired[p][i - 1], fired[p][i]);
      }
    }
    EXPECT_EQ(ps.workers(), workers == 1 ? 1u : 4u);
  }
}

TEST(PartitionedSim, MailboxDeliversInFixedSortedOrder) {
  PartitionedSimulation ps(config(3, 3));
  std::vector<std::string> log;  // only partition 0's callbacks write
  const auto tag = [&log](std::string s) {
    return [&log, s] { log.push_back(s); };
  };
  // Posted out of order, from mixed senders, some with past timestamps.
  const SimTime t = 5 * kMinute;
  ps.post(PartitionedSimulation::kCoordinator, 0, t, tag("coord@5m"));
  ps.post(2, 0, t, tag("p2@5m"));
  ps.post(1, 0, t, tag("p1@5m"));
  ps.post(1, 0, t, tag("p1@5m#2"));
  ps.post(1, 0, 2 * kMinute, tag("p1@2m"));
  ps.post(PartitionedSimulation::kCoordinator, 0, 0, tag("coord@past"));
  ps.run_epoch(10 * kMinute);
  // Sort is (at, sender with the coordinator last, per-sender seq); the
  // past post is pinned to the epoch start (time 0 here).
  const std::vector<std::string> want = {"coord@past", "p1@2m", "p1@5m",
                                         "p1@5m#2", "p2@5m", "coord@5m"};
  EXPECT_EQ(log, want);
}

TEST(PartitionedSim, LatePostsArePinnedToTheNextEpochBoundary) {
  PartitionedSimulation ps(config(2, 1));
  ps.run_epoch(kHour);
  std::vector<SimTime> at;
  ps.post(PartitionedSimulation::kCoordinator, 1, 10 * kMinute,
          [&at, &ps] { at.push_back(ps.local(1).now()); });
  ps.run_epoch(2 * kHour);
  // The 10-minute timestamp is in the past of epoch 2's start; delivery
  // is pinned to the boundary instead of rewinding partition 1's clock.
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], kHour);
}

TEST(PartitionedSim, PartitionFailureReleasesPeersAndRethrows) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    PartitionedSimulation ps(config(4, workers));
    ps.local(2).schedule_at(kMinute, [] {
      throw std::runtime_error("partition 2 exploded");
    });
    // Peers have their own work and must not hang on the dead partition.
    for (const std::uint32_t p : {0u, 1u, 3u}) {
      ps.local(p).schedule_at(2 * kMinute, [] {});
    }
    try {
      ps.run_epoch(kHour);
      FAIL() << "expected the partition error to surface";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "partition 2 exploded");
    }
  }
}

TEST(PartitionedSim, RngSaltsAreDistinctPerPartition) {
  PartitionedSimulation ps(config(4, 1));
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = a + 1; b < 4; ++b) {
      EXPECT_NE(ps.rng_salt(a), ps.rng_salt(b));
    }
  }
}

#if defined(EPAJSRM_ENABLE_CHECKS)
TEST(PartitionedSim, RejectsRewindingEpochs) {
  PartitionedSimulation ps(config(2, 1));
  ps.run_epoch(kHour);
  EXPECT_THROW(ps.run_epoch(30 * kMinute), check::ContractViolation);
}
#endif

}  // namespace
}  // namespace epajsrm::sim
