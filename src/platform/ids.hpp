// Strongly-named integral identifiers shared across subsystems.
#pragma once

#include <cstdint>

namespace epajsrm::platform {

/// Index of a compute node within its Cluster (dense, 0-based).
using NodeId = std::uint32_t;

/// Index of a rack within the Cluster.
using RackId = std::uint32_t;

/// Index of a power distribution unit within the Facility.
using PduId = std::uint32_t;

/// Index of a cooling loop within the Facility.
using CoolingId = std::uint32_t;

/// Globally unique job identifier (assigned by the workload source).
using JobId = std::uint64_t;

/// Sentinel meaning "no job".
inline constexpr JobId kNoJob = 0;

}  // namespace epajsrm::platform
