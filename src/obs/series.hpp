// DownsamplingSeries: a memory-bounded time-series store.
//
// The obs plane's answer to million-job traces (DESIGN.md §11): instead of
// an unbounded sample vector or a ring that silently drops history, the
// series keeps at most `budget` time buckets over the *whole* recorded
// range. Each bucket aggregates min/max/mean(sum,count)/first/last of the
// samples that fell into its window. When an append would exceed the
// budget, the bucket width doubles and adjacent bucket pairs merge (2×
// temporal coarsening) until the series fits again — so memory stays fixed
// while resolution degrades gracefully, and the aggregates that matter for
// power work (peaks, floors, totals) are preserved exactly across any
// coarsening sequence.
//
// Bucket windows are aligned to absolute time (bucket i covers
// [i·width, (i+1)·width)), which makes the coarsened layout a pure
// function of the recorded (time, value) stream: replaying the same
// samples always yields bit-identical buckets, and two series fed the same
// timestamps at the same width stay column-aligned (the CSV sampler relies
// on this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::obs {

/// One recorded point (exact, pre-coarsening).
struct SeriesSample {
  sim::SimTime time = 0;
  double value = 0.0;
};

/// One aggregated time bucket covering [index·width, (index+1)·width).
struct SeriesBucket {
  /// Absolute window index under the series' current bucket width.
  std::uint64_t index = 0;
  /// Time of the first / last sample that landed in this window.
  sim::SimTime first_time = 0;
  sim::SimTime last_time = 0;
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  /// Most recent value in the window (gauge semantics).
  double last = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-budget, self-coarsening series. Not thread-safe (one simulator
/// thread owns each series, like every obs instrument).
class DownsamplingSeries {
 public:
  struct WindowStats {
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// `budget` is the maximum bucket count (>= 2, or std::invalid_argument:
  /// a single bucket could never halve). `initial_width` is the starting
  /// bucket window; callers with a known sampling period pass it so the
  /// series stays exact (one sample per bucket) until the budget forces
  /// coarsening. Must be positive.
  explicit DownsamplingSeries(std::size_t budget,
                              sim::SimTime initial_width = sim::kSecond);

  /// Appends a sample. Time must be >= 0 and non-decreasing (throws
  /// std::invalid_argument otherwise — telemetry time never rewinds).
  void record(sim::SimTime t, double value);

  std::size_t budget() const { return budget_; }
  /// Current bucket count; never exceeds budget().
  std::size_t size() const { return buckets_.size(); }
  bool empty() const { return buckets_.empty(); }
  /// Samples ever recorded (sum of bucket counts).
  std::uint64_t total_samples() const { return total_samples_; }
  /// Width doublings performed so far.
  std::uint64_t coarsenings() const { return coarsenings_; }
  sim::SimTime bucket_width() const { return width_; }

  /// Bucket `i` in time order (throws std::out_of_range past size()).
  const SeriesBucket& bucket(std::size_t i) const;
  const std::vector<SeriesBucket>& buckets() const { return buckets_; }

  /// The exact most recent sample (not a bucket aggregate).
  std::optional<SeriesSample> latest() const { return latest_; }
  /// Exact all-time extrema (0 when empty) — preserved across coarsening.
  double overall_min() const { return total_samples_ > 0 ? min_ : 0.0; }
  double overall_max() const { return total_samples_ > 0 ? max_ : 0.0; }

  /// Aggregates over buckets overlapping [begin, end] (inclusive). Exact
  /// while every bucket holds one sample; bucket-granular after
  /// coarsening (a bucket straddling the window edge is included whole).
  WindowStats window_stats(sim::SimTime begin, sim::SimTime end) const;

  /// Mean over the trailing `window` ending at the latest sample
  /// (0 when empty).
  double trailing_mean(sim::SimTime window) const;

  /// Doubles the bucket width until it is >= `width`, merging pairs each
  /// step. Used by the CSV sampler to keep sibling series column-aligned;
  /// a width smaller than the current one is a no-op.
  void coarsen_to(sim::SimTime width);

 private:
  void coarsen_once();
  std::uint64_t index_of(sim::SimTime t) const {
    return static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(width_);
  }

  std::size_t budget_;
  sim::SimTime width_;
  std::vector<SeriesBucket> buckets_;
  std::optional<SeriesSample> latest_;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t total_samples_ = 0;
  std::uint64_t coarsenings_ = 0;
};

}  // namespace epajsrm::obs
