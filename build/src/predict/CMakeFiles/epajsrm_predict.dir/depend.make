# Empty dependencies file for epajsrm_predict.
# This may be replaced when dependencies are built.
