// PartitionDomain: the partition-local half of a control tick. Owns the
// partition map, the PartitionedSimulation driving one local engine per
// rack/PDU partition, the ledger temperature shards, and the per-partition
// core census. Each coupling epoch (one control period) it runs the
// embarrassingly parallel node work — thermal RC steps and the
// schedulable-core census — across worker threads, then merges in fixed
// partition-index order so the outcome is bit-identical to the classic
// single-threaded sweep for any partition count, worker count and skew
// window (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/partition_map.hpp"
#include "platform/cluster.hpp"
#include "power/ledger.hpp"
#include "power/thermal.hpp"
#include "sim/partitioned.hpp"
#include "sim/time.hpp"

namespace epajsrm::core {

struct PartitionDomainConfig {
  std::uint32_t partitions = 1;
  /// Worker threads; 0 = min(partitions, hardware).
  std::size_t workers = 0;
  /// Skew window for the local phase; 0 = one control period (epoch-wide
  /// freedom, the default — coupling is what the epochs are for).
  sim::SimTime skew_window = 0;
  /// Coupling-epoch length == the solution's control period.
  sim::SimTime control_period = 0;
  /// Step node temperatures in the local phase (SolutionConfig's
  /// enable_thermal). The census always runs.
  bool step_thermal = true;
  std::uint64_t seed = 0;
};

class PartitionDomain {
 public:
  /// Observer called after every merged epoch, on the coordinator thread
  /// (the InvariantAuditor's cross-partition conservation hook).
  using EpochObserver = std::function<void(const PartitionDomain&)>;

  PartitionDomain(platform::Cluster& cluster, power::PowerLedger& ledger,
                  const power::ThermalModel& thermal,
                  PartitionDomainConfig config);

  const PartitionMap& map() const { return map_; }
  sim::PartitionedSimulation& partitions() { return psim_; }
  const sim::PartitionedSimulation& partitions() const { return psim_; }

  /// True while partition-local callbacks may be running on worker
  /// threads; coordinator-side actuation (caps, trips, scheduling) is
  /// contractually forbidden in that window.
  bool in_local_phase() const { return psim_.in_local_phase(); }

  /// Runs one coupling epoch ending at `t` (a control-tick instant):
  /// parallel local phase, then temperature-shard merge and census fold
  /// in partition-index order.
  void run_epoch(sim::SimTime t);

  /// Census folded at the last epoch — exact integers, so the derived
  /// utilization is the identical double Cluster::core_utilization()
  /// computes with its O(N) sweep.
  std::uint64_t cores_total() const { return cores_total_; }
  std::uint64_t cores_free() const { return cores_free_; }
  double core_utilization() const;

  std::uint64_t epochs() const { return epochs_; }
  /// Events executed inside the local engines (not counted in the
  /// coordinator's RunResult.sim_events, which stays partition-count
  /// invariant).
  std::uint64_t local_events() const { return psim_.local_events(); }

  void add_epoch_observer(EpochObserver observer);

 private:
  void local_tick(std::uint32_t p);

  platform::Cluster& cluster_;
  power::PowerLedger& ledger_;
  const power::ThermalModel& thermal_;
  PartitionDomainConfig config_;
  PartitionMap map_;
  sim::PartitionedSimulation psim_;
  std::vector<power::PowerLedger::TemperatureShard> shards_;

  struct Census {
    std::uint64_t total = 0;
    std::uint64_t free = 0;
  };
  std::vector<Census> census_;
  std::uint64_t cores_total_ = 0;
  std::uint64_t cores_free_ = 0;
  std::uint64_t epochs_ = 0;
  std::vector<EpochObserver> observers_;
};

}  // namespace epajsrm::core
