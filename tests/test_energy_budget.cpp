// The energy-budget scheduler family: kernel decision logic (accrual,
// ranking, refunds, cap tightening) and the anti-deadlock guarantee, both
// at kernel level and through a full simulated run.
#include "epa/energy_budget.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/scenario_builder.hpp"
#include "core/solution.hpp"
#include "epa/budget_source.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "platform/cluster.hpp"
#include "sim/simulation.hpp"

namespace epajsrm {
namespace {

using epa::EnergyBudgetConfig;
using epa::EnergyBudgetCore;
using epa::EnergyBudgetMode;

EnergyBudgetCore::PassInput pass_at(sim::SimTime now, std::uint32_t free,
                                    std::vector<EnergyBudgetCore::QueuedJob> q) {
  EnergyBudgetCore::PassInput input;
  input.now = now;
  input.free_nodes = free;
  input.pending = std::move(q);
  return input;
}

// --- kernel: accrual and admission -------------------------------------------

TEST(EnergyBudgetCore, JobWaitsUntilAllowanceAccrues) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 3600.0;  // 1 W accrual over an hour
  config.window = sim::kHour;
  config.emergency_timeout = 0;  // isolate the accrual path
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);

  // 100 J job: affordable only after 100 s of accrual.
  const EnergyBudgetCore::QueuedJob job{1, 0, 2, 100.0};
  EXPECT_TRUE(core.decide(pass_at(50 * sim::kSecond, 8, {job})).empty());
  const auto decisions = core.decide(pass_at(150 * sim::kSecond, 8, {job}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].type, EnergyBudgetCore::Decision::Type::kStartJob);
  EXPECT_EQ(decisions[0].job, 1u);
  // The estimate was charged against the allowance.
  EXPECT_LT(core.available_joules(), 51.0);
}

TEST(EnergyBudgetCore, AccrualClampsAtWindowBudget) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1000.0;
  config.window = sim::kHour;
  config.emergency_timeout = 0;
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);
  core.decide(pass_at(10 * sim::kHour, 8, {}));  // accrue way past the window
  EXPECT_DOUBLE_EQ(core.available_joules(), 1000.0);
}

// --- kernel: idle-power debit (_IDLE parity, charge_idle_power) ---------------

TEST(EnergyBudgetCore, IdleChargeDebitsStaticDrawFromAccrual) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1e6;
  config.accrual_rate_watts = 10.0;
  config.emergency_timeout = 0;
  config.charge_idle_power = true;
  EnergyBudgetCore core(config);
  // 4 nodes idling at 2 W each: net accrual is 10 - 8 = 2 W.
  core.begin(0, 4, 270.0, 2.0);
  EXPECT_EQ(core.idle_nodes(), 4u);

  core.decide(pass_at(100 * sim::kSecond, 4, {}));
  EXPECT_DOUBLE_EQ(core.available_joules(), 200.0);
}

TEST(EnergyBudgetCore, IdleCountTracksPostAdmissionFreeNodes) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1e6;
  config.accrual_rate_watts = 10.0;
  config.emergency_timeout = 0;
  config.charge_idle_power = true;
  EnergyBudgetCore core(config);
  core.begin(0, 4, 270.0, 2.0);

  // t=100s: 200 J accrued at the 4-idle rate; a 2-node 100 J job starts,
  // leaving 2 nodes idle for the next interval.
  const EnergyBudgetCore::QueuedJob job{1, 0, 2, 100.0};
  const auto decisions = core.decide(pass_at(100 * sim::kSecond, 4, {job}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(core.idle_nodes(), 2u);
  EXPECT_DOUBLE_EQ(core.available_joules(), 100.0);  // 200 - 100 charged

  // Next 100 s bill only 2 idle nodes: net 10 - 4 = 6 W -> +600 J.
  core.decide(pass_at(200 * sim::kSecond, 2, {}));
  EXPECT_DOUBLE_EQ(core.available_joules(), 700.0);
}

TEST(EnergyBudgetCore, IdleChargeCanDriveTheAllowanceIntoDebt) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1e6;
  config.accrual_rate_watts = 1.0;
  config.emergency_timeout = 0;
  config.charge_idle_power = true;
  EnergyBudgetCore core(config);
  // 8 idle nodes at 2 W swamp the 1 W accrual: net -15 W. There is no
  // lower clamp — debt must re-accrue, exactly like an emergency start.
  core.begin(0, 8, 270.0, 2.0);
  core.decide(pass_at(100 * sim::kSecond, 8, {}));
  EXPECT_DOUBLE_EQ(core.available_joules(), -1500.0);
}

TEST(EnergyBudgetCore, IdleChargeOffKeepsHistoricalAccrualBytes) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1e6;
  config.accrual_rate_watts = 10.0;
  config.emergency_timeout = 0;
  EnergyBudgetCore with_watts(config);
  // idle_node_watts is supplied (the EDC wire always carries it now) but
  // the flag is off: the debit must be inert so pre-flag runs reproduce.
  with_watts.begin(0, 4, 270.0, 2.0);
  EnergyBudgetCore without_watts(config);
  without_watts.begin(0, 4, 270.0);

  with_watts.decide(pass_at(100 * sim::kSecond, 4, {}));
  without_watts.decide(pass_at(100 * sim::kSecond, 4, {}));
  EXPECT_DOUBLE_EQ(with_watts.available_joules(), 1000.0);
  EXPECT_DOUBLE_EQ(without_watts.available_joules(), 1000.0);
}

TEST(EnergyBudgetCore, RankingPrefersWaitPerJoule) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1e6;
  config.initial_fraction = 1.0;
  config.emergency_timeout = 0;
  EnergyBudgetCore core(config);
  core.begin(0, 2, 270.0);  // room for only one 2-node job at a time

  // Same wait; job 2 is 10x cheaper -> higher priority -> starts first.
  const EnergyBudgetCore::QueuedJob expensive{1, 0, 2, 1000.0};
  const EnergyBudgetCore::QueuedJob cheap{2, 0, 2, 100.0};
  const auto decisions =
      core.decide(pass_at(sim::kMinute, 2, {expensive, cheap}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 2u);
}

TEST(EnergyBudgetCore, SkipsInfeasibleAndWalksDownTheQueue) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1e6;
  config.initial_fraction = 1.0;
  config.emergency_timeout = 0;
  EnergyBudgetCore core(config);
  core.begin(0, 4, 270.0);

  // Head wants 8 nodes (infeasible); the IDLE variants walk past it.
  const EnergyBudgetCore::QueuedJob wide{1, 0, 8, 10.0};
  const EnergyBudgetCore::QueuedJob narrow{2, 0, 4, 10000.0};
  const auto decisions = core.decide(pass_at(sim::kMinute, 4, {wide, narrow}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 2u);
}

TEST(EnergyBudgetCore, JobEndRefundsOverestimate) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1000.0;
  config.initial_fraction = 1.0;
  config.emergency_timeout = 0;
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);

  const EnergyBudgetCore::QueuedJob job{1, 0, 2, 800.0};
  ASSERT_EQ(core.decide(pass_at(0, 8, {job})).size(), 1u);
  const double after_charge = core.available_joules();
  EXPECT_DOUBLE_EQ(after_charge, 200.0);
  // The job actually drew 300 J: 500 J come back.
  core.job_ended(1, 300.0);
  EXPECT_DOUBLE_EQ(core.available_joules(), 700.0);
  // Unknown jobs refund nothing.
  core.job_ended(99, 1e9);
  EXPECT_DOUBLE_EQ(core.available_joules(), 700.0);
}

// --- kernel: anti-deadlock emergency mode -------------------------------------

TEST(EnergyBudgetCore, EmergencyAdmitsStarvedHeadDespiteEmptyAllowance) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1000.0;  // accrues ~0.28 W
  config.window = sim::kHour;
  config.emergency_timeout = 10 * sim::kMinute;
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);

  // 1 MJ estimate: the allowance alone would starve this job forever.
  const EnergyBudgetCore::QueuedJob huge{1, 0, 4, 1e6};
  EXPECT_TRUE(core.decide(pass_at(9 * sim::kMinute, 8, {huge})).empty());
  EXPECT_FALSE(core.emergency_active());

  const auto decisions = core.decide(pass_at(10 * sim::kMinute, 8, {huge}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 1u);
  EXPECT_EQ(core.emergency_starts(), 1u);
  // The allowance went into debt and must re-accrue.
  EXPECT_LT(core.available_joules(), 0.0);
}

TEST(EnergyBudgetCore, EmergencyOnlyCoversTheHead) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1000.0;
  config.window = sim::kHour;
  config.emergency_timeout = 10 * sim::kMinute;
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);

  const EnergyBudgetCore::QueuedJob a{1, 0, 2, 1e6};
  const EnergyBudgetCore::QueuedJob b{2, 0, 2, 2e6};
  const auto decisions = core.decide(pass_at(sim::kHour, 8, {a, b}));
  // Only the ranked head starts on the emergency ticket.
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 1u);  // higher wait/energy priority
}

TEST(EnergyBudgetCore, StartsResetTheEmergencyClock) {
  EnergyBudgetConfig config;
  config.window_budget_joules = 1e6;
  config.initial_fraction = 1.0;
  config.emergency_timeout = 10 * sim::kMinute;
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);

  // An affordable start at t=9min moves last_start; the expensive job's
  // emergency anchor restarts from there.
  const EnergyBudgetCore::QueuedJob cheap{1, 9 * sim::kMinute, 2, 10.0};
  const EnergyBudgetCore::QueuedJob huge{2, 0, 2, 1e9};
  ASSERT_EQ(core.decide(pass_at(9 * sim::kMinute, 8, {cheap, huge})).size(),
            1u);
  // 10 minutes after the huge job's submit — but only 1 after the last
  // start: no emergency yet.
  EXPECT_TRUE(core.decide(pass_at(10 * sim::kMinute, 8, {huge})).empty());
  // 10 minutes after the last start: emergency fires.
  EXPECT_EQ(core.decide(pass_at(19 * sim::kMinute, 8, {huge})).size(), 1u);
}

// --- kernel: cap modes --------------------------------------------------------

TEST(EnergyBudgetCore, ReducePcTightensCapAsAllowanceDepletes) {
  EnergyBudgetConfig config;
  config.mode = EnergyBudgetMode::kReducePowerCap;
  config.window_budget_joules = 1000.0;
  config.initial_fraction = 1.0;
  config.emergency_timeout = 0;
  config.power_cap_watts = 1000.0;
  config.cap_floor_fraction = 0.25;
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);

  // Full allowance -> cap at the ceiling.
  auto decisions = core.decide(pass_at(0, 8, {}));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].type, EnergyBudgetCore::Decision::Type::kSetPowerCap);
  EXPECT_DOUBLE_EQ(decisions[0].watts, 1000.0);

  // Start a 500 J job: allowance at 50 % -> cap halfway between floor
  // (250 W) and ceiling: 625 W. Starts are emitted before the cap move.
  const EnergyBudgetCore::QueuedJob job{1, 0, 2, 500.0};
  decisions = core.decide(pass_at(0, 8, {job}));
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].type, EnergyBudgetCore::Decision::Type::kStartJob);
  EXPECT_EQ(decisions[1].type, EnergyBudgetCore::Decision::Type::kSetPowerCap);
  EXPECT_DOUBLE_EQ(decisions[1].watts, 625.0);

  // Unchanged allowance -> no repeated cap decision (the fixpoint that
  // keeps cap-change passes finite).
  EXPECT_TRUE(core.decide(pass_at(0, 8, {})).empty());
}

TEST(EnergyBudgetCore, PowerCapModeEmitsConstantCapAndNoAccounting) {
  EnergyBudgetConfig config;
  config.mode = EnergyBudgetMode::kPowerCap;
  config.power_cap_watts = 750.0;
  EnergyBudgetCore core(config);
  core.begin(0, 8, 270.0);

  const EnergyBudgetCore::QueuedJob job{1, 0, 2, 1e12};  // energy ignored
  const auto decisions = core.decide(pass_at(0, 8, {job}));
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].type, EnergyBudgetCore::Decision::Type::kStartJob);
  EXPECT_DOUBLE_EQ(decisions[1].watts, 750.0);
  // And the cap is emitted exactly once.
  EXPECT_TRUE(core.decide(pass_at(sim::kMinute, 8, {})).empty());
}

// --- full stack: anti-deadlock through a real run -----------------------------

TEST(EnergyBudgetScheduler, HeadJobStartsEvenWhenBudgetAloneWouldStarveIt) {
  sim::Simulation sim;
  platform::Cluster cluster = platform::ClusterBuilder().node_count(8).build();
  core::SolutionConfig config;
  core::EpaJsrmSolution solution(sim, cluster, config);

  EnergyBudgetConfig eb;
  eb.window_budget_joules = 1000.0;  // ~0.28 W accrual: hopeless
  eb.window = sim::kHour;
  eb.emergency_timeout = 5 * sim::kMinute;
  solution.set_scheduler(std::make_unique<epa::EnergyBudgetScheduler>(eb));

  // Estimated energy = predicted watts x 4 nodes x 1 h >> any accrual the
  // run could bank. Without the emergency path this job never starts.
  workload::JobSpec spec;
  spec.id = 1;
  spec.nodes = 4;
  spec.walltime_estimate = sim::kHour;
  spec.runtime_ref = 10 * sim::kMinute;
  solution.submit(spec);

  solution.run_until(2 * sim::kHour);
  const core::RunResult result = solution.finalize();
  EXPECT_EQ(result.report.jobs_completed, 1u);

  const workload::Job* job = solution.find_job(1);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state(), workload::JobState::kCompleted);
  // It started via the emergency ticket at (or just after) the timeout,
  // not at submission.
  EXPECT_GE(job->start_time(), 5 * sim::kMinute);
  EXPECT_LE(job->start_time(), 6 * sim::kMinute);
}

// --- budget-change decision points (the prompt-pass fix) ----------------------

TEST(EnergyBudgetScheduler, BudgetSourceMovementFiresPromptPass) {
  // A tariff-window BudgetSource crossing mid-run must emit a
  // kPowerBudgetChanged decision point (and with it a prompt pass), not
  // wait for the next periodic reschedule.
  sim::Simulation sim;
  platform::Cluster cluster = platform::ClusterBuilder().node_count(8).build();
  core::SolutionConfig config;
  config.record_decision_log = true;
  core::EpaJsrmSolution solution(sim, cluster, config);

  auto source = std::make_shared<epa::ScheduleBudgetSource>(
      5000.0, std::vector<epa::ScheduleBudgetSource::Window>{
                  {30 * sim::kMinute, 2000.0}});
  solution.add_policy(
      std::make_unique<epa::PowerBudgetDvfsPolicy>(source, true));

  // Keep the system busy past the crossing: the run ends early once the
  // workload drains, so an idle hour would never reach the 30 min mark.
  workload::JobSpec spec;
  spec.id = 1;
  spec.nodes = 1;
  spec.runtime_ref = 45 * sim::kMinute;
  spec.walltime_estimate = sim::kHour;
  solution.submit(spec);

  solution.run_until(sim::kHour);
  solution.finalize();

  bool saw_change = false;
  for (const sched::DecisionPoint& point : solution.decision_log()) {
    if (point.kind == sched::DecisionPoint::Kind::kPowerBudgetChanged &&
        point.budget_watts == 2000.0) {
      saw_change = true;
      // The window crossed at 30 min; the control loop notices within one
      // control period (10 s).
      EXPECT_GE(point.time, 30 * sim::kMinute);
      EXPECT_LE(point.time, 30 * sim::kMinute + 10 * sim::kSecond);
    }
  }
  EXPECT_TRUE(saw_change);
}

// --- builder validation -------------------------------------------------------

TEST(ScenarioBuilderEnergyBudget, RejectsNonPositiveInputs) {
  EXPECT_THROW(core::Scenario::builder().energy_budget(0.0),
               std::invalid_argument);
  EXPECT_THROW(core::Scenario::builder().energy_budget(-1.0),
               std::invalid_argument);
  EXPECT_THROW(core::Scenario::builder().energy_budget(1e6, 0),
               std::invalid_argument);
  EXPECT_THROW(core::Scenario::builder().energy_budget(1e6, sim::kHour, -2.0),
               std::invalid_argument);
  EXPECT_THROW(core::Scenario::builder().external_scheduler(nullptr),
               std::invalid_argument);
}

TEST(ScenarioBuilderEnergyBudget, FullConfigValidatedAtBuild) {
  EnergyBudgetConfig eb;  // window_budget_joules left 0
  EXPECT_THROW(
      core::Scenario::builder().nodes(4).energy_budget(eb).build(),
      std::invalid_argument);
}

}  // namespace
}  // namespace epajsrm
