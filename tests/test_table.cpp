#include "metrics/table.hpp"

#include <gtest/gtest.h>

namespace epajsrm::metrics {
namespace {

TEST(AsciiTable, RendersHeadersAndRows) {
  AsciiTable t({"center", "energy"});
  t.add_row({"KAUST", "12.5 kWh"});
  t.add_row({"LRZ", "9.1 kWh"});
  const std::string out = t.render();
  EXPECT_NE(out.find("center"), std::string::npos);
  EXPECT_NE(out.find("KAUST"), std::string::npos);
  EXPECT_NE(out.find("9.1 kWh"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, TitleAppearsFirst) {
  AsciiTable t({"a"});
  t.set_title("TABLE I");
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_EQ(out.rfind("TABLE I", 0), 0u);
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(AsciiTable, WideRowsRejected) {
  AsciiTable t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(AsciiTable, MultilineCellsWrap) {
  AsciiTable t({"center", "activities"});
  t.add_row({"RIKEN", "line one\nline two"});
  const std::string out = t.render();
  EXPECT_NE(out.find("line one"), std::string::npos);
  EXPECT_NE(out.find("line two"), std::string::npos);
  // Two physical lines inside one logical row.
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(AsciiTable, ColumnsAlignAcrossRows) {
  AsciiTable t({"h"});
  t.add_row({"short"});
  t.add_row({"a much longer cell"});
  const std::string out = t.render();
  // Every rendered line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(Format, Watts) {
  EXPECT_EQ(format_watts(500.0), "500 W");
  EXPECT_EQ(format_watts(12500.0), "12.5 kW");
  EXPECT_EQ(format_watts(2.3e6), "2.30 MW");
}

TEST(Format, Kwh) {
  EXPECT_EQ(format_kwh(12.34), "12.3 kWh");
  EXPECT_EQ(format_kwh(2500.0), "2.50 MWh");
}

TEST(Format, DoubleAndPercent) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.4213), "42.1 %");
  EXPECT_EQ(format_percent(1.0, 0), "100 %");
}

}  // namespace
}  // namespace epajsrm::metrics
