#include "edc/protocol.hpp"

#include <charconv>
#include <map>

namespace epajsrm::edc {

const char* to_string(Message::Type type) {
  switch (type) {
    case Message::Type::kSimulationBegins:
      return "simulation_begins";
    case Message::Type::kJobSubmitted:
      return "job_submitted";
    case Message::Type::kJobEnded:
      return "job_ended";
    case Message::Type::kBudgetTick:
      return "budget_tick";
    case Message::Type::kPowerBudgetChanged:
      return "power_budget_changed";
    case Message::Type::kSimulationEnds:
      return "simulation_ends";
    case Message::Type::kSchedulingPass:
      return "scheduling_pass";
  }
  return "?";
}

const char* to_string(Reply::Type type) {
  switch (type) {
    case Reply::Type::kStartJob:
      return "start_job";
    case Reply::Type::kSetPowerCap:
      return "set_power_cap";
    case Reply::Type::kHold:
      return "hold";
    case Reply::Type::kRequeue:
      return "requeue";
  }
  return "?";
}

std::string format_double(double value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

namespace {

/// Minimal writer for the flat objects this protocol uses. Keys are
/// emitted in call order, so serialization is byte-stable.
class Writer {
 public:
  void field(std::string_view key, std::string_view string_value) {
    open(key);
    out_ += '"';
    out_.append(string_value);
    out_ += '"';
  }

  void field(std::string_view key, std::uint64_t value) {
    open(key);
    out_ += std::to_string(value);
  }

  void field(std::string_view key, std::int64_t value) {
    open(key);
    out_ += std::to_string(value);
  }

  void field(std::string_view key, double value) {
    open(key);
    out_ += format_double(value);
  }

  void field(std::string_view key, const std::vector<platform::JobId>& ids) {
    open(key);
    out_ += '[';
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) out_ += ',';
      out_ += std::to_string(ids[i]);
    }
    out_ += ']';
  }

  std::string finish() {
    out_ += '}';
    return std::move(out_);
  }

 private:
  void open(std::string_view key) {
    out_ += out_.empty() ? '{' : ',';
    out_ += '"';
    out_.append(key);
    out_ += "\":";
  }

  std::string out_;
};

/// One parsed value: the raw numeric token (converted lazily so integers
/// and doubles both go through std::from_chars exactly once), a string,
/// or an array of raw numeric tokens.
struct Field {
  enum class Kind : std::uint8_t { kNumber, kString, kArray };
  Kind kind = Kind::kNumber;
  std::string text;
  std::vector<std::string> items;
};

/// Flat-JSON tokenizer for one protocol line. Not a general JSON parser:
/// exactly the subset the writer above produces (one object, string /
/// number / number-array values, no nesting, \" and \\ escapes).
class LineParser {
 public:
  LineParser(std::string_view line, std::size_t line_number)
      : line_(line), line_number_(line_number) {
    parse();
  }

  const std::string& get_string(std::string_view key) const {
    const Field& f = require(key, Field::Kind::kString);
    return f.text;
  }

  std::uint64_t get_u64(std::string_view key) const {
    return number<std::uint64_t>(require(key, Field::Kind::kNumber).text,
                                 key);
  }

  std::int64_t get_i64(std::string_view key) const {
    return number<std::int64_t>(require(key, Field::Kind::kNumber).text, key);
  }

  std::uint32_t get_u32(std::string_view key) const {
    return number<std::uint32_t>(require(key, Field::Kind::kNumber).text,
                                 key);
  }

  double get_double(std::string_view key) const {
    return number<double>(require(key, Field::Kind::kNumber).text, key);
  }

  std::vector<platform::JobId> get_id_array(std::string_view key) const {
    const Field& f = require(key, Field::Kind::kArray);
    std::vector<platform::JobId> ids;
    ids.reserve(f.items.size());
    for (const std::string& item : f.items) {
      ids.push_back(number<platform::JobId>(item, key));
    }
    return ids;
  }

  [[noreturn]] void fail(const std::string& detail) const {
    throw ProtocolError(line_number_, detail);
  }

 private:
  template <typename T>
  T number(const std::string& text, std::string_view key) const {
    T value{};
    const auto result =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (result.ec != std::errc() ||
        result.ptr != text.data() + text.size()) {
      fail("field \"" + std::string(key) + "\": bad number '" + text + "'");
    }
    return value;
  }

  const Field& require(std::string_view key, Field::Kind kind) const {
    const auto it = fields_.find(std::string(key));
    if (it == fields_.end()) {
      fail("missing field \"" + std::string(key) + "\"");
    }
    if (it->second.kind != kind) {
      fail("field \"" + std::string(key) + "\" has the wrong type");
    }
    return it->second;
  }

  void parse() {
    pos_ = 0;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        fields_.emplace(std::move(key), parse_value());
        skip_ws();
        const char c = next();
        if (c == '}') break;
        if (c != ',') fail("expected ',' or '}'");
      }
    }
    skip_ws();
    if (pos_ != line_.size()) fail("trailing characters after object");
  }

  Field parse_value() {
    Field field;
    const char c = peek();
    if (c == '"') {
      field.kind = Field::Kind::kString;
      field.text = parse_string();
    } else if (c == '[') {
      field.kind = Field::Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
      } else {
        while (true) {
          skip_ws();
          field.items.push_back(parse_number_token());
          skip_ws();
          const char d = next();
          if (d == ']') break;
          if (d != ',') fail("expected ',' or ']'");
        }
      }
    } else {
      field.kind = Field::Kind::kNumber;
      field.text = parse_number_token();
    }
    return field;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= line_.size()) fail("unterminated string");
      const char c = line_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= line_.size()) fail("unterminated escape");
        const char e = line_[pos_++];
        if (e != '"' && e != '\\') fail("unsupported escape");
        out += e;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string parse_number_token() {
    const std::size_t start = pos_;
    while (pos_ < line_.size()) {
      const char c = line_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    return std::string(line_.substr(start, pos_ - start));
  }

  char peek() const {
    if (pos_ >= line_.size()) fail_eof();
    return line_[pos_];
  }

  char next() {
    if (pos_ >= line_.size()) fail_eof();
    return line_[pos_++];
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  [[noreturn]] void fail_eof() const { fail("unexpected end of line"); }

  std::string_view line_;
  std::size_t line_number_;
  std::size_t pos_ = 0;
  std::map<std::string, Field> fields_;
};

}  // namespace

std::string serialize(const Message& message) {
  Writer w;
  w.field("type", to_string(message.type));
  w.field("time", static_cast<std::int64_t>(message.time));
  w.field("seq", message.seq);
  switch (message.type) {
    case Message::Type::kSimulationBegins:
      w.field("total_nodes", static_cast<std::uint64_t>(message.total_nodes));
      w.field("peak_node_watts", message.peak_node_watts);
      break;
    case Message::Type::kJobSubmitted:
      w.field("job", message.job);
      w.field("submit_time", static_cast<std::int64_t>(message.submit_time));
      w.field("nodes", static_cast<std::uint64_t>(message.nodes));
      w.field("walltime", static_cast<std::int64_t>(message.walltime));
      w.field("estimated_energy_joules", message.estimated_energy_joules);
      break;
    case Message::Type::kJobEnded:
      w.field("job", message.job);
      w.field("energy_joules", message.energy_joules);
      break;
    case Message::Type::kPowerBudgetChanged:
      w.field("budget_watts", message.budget_watts);
      break;
    case Message::Type::kSchedulingPass:
      w.field("free_nodes", static_cast<std::uint64_t>(message.free_nodes));
      w.field("pending", message.pending);
      break;
    case Message::Type::kBudgetTick:
    case Message::Type::kSimulationEnds:
      break;
  }
  return w.finish();
}

std::string serialize(const Reply& reply) {
  Writer w;
  w.field("type", to_string(reply.type));
  switch (reply.type) {
    case Reply::Type::kStartJob:
    case Reply::Type::kRequeue:
      w.field("job", reply.job);
      break;
    case Reply::Type::kSetPowerCap:
      w.field("watts", reply.watts);
      break;
    case Reply::Type::kHold:
      break;
  }
  return w.finish();
}

Message parse_message(std::string_view line, std::size_t line_number) {
  const LineParser p(line, line_number);
  const std::string& type = p.get_string("type");
  Message m;
  m.time = p.get_i64("time");
  m.seq = p.get_u64("seq");
  if (type == "simulation_begins") {
    m.type = Message::Type::kSimulationBegins;
    m.total_nodes = p.get_u32("total_nodes");
    m.peak_node_watts = p.get_double("peak_node_watts");
  } else if (type == "job_submitted") {
    m.type = Message::Type::kJobSubmitted;
    m.job = p.get_u64("job");
    m.submit_time = p.get_i64("submit_time");
    m.nodes = p.get_u32("nodes");
    m.walltime = p.get_i64("walltime");
    m.estimated_energy_joules = p.get_double("estimated_energy_joules");
  } else if (type == "job_ended") {
    m.type = Message::Type::kJobEnded;
    m.job = p.get_u64("job");
    m.energy_joules = p.get_double("energy_joules");
  } else if (type == "budget_tick") {
    m.type = Message::Type::kBudgetTick;
  } else if (type == "power_budget_changed") {
    m.type = Message::Type::kPowerBudgetChanged;
    m.budget_watts = p.get_double("budget_watts");
  } else if (type == "simulation_ends") {
    m.type = Message::Type::kSimulationEnds;
  } else if (type == "scheduling_pass") {
    m.type = Message::Type::kSchedulingPass;
    m.free_nodes = p.get_u32("free_nodes");
    m.pending = p.get_id_array("pending");
  } else {
    p.fail("unknown message type \"" + type + "\"");
  }
  return m;
}

Reply parse_reply(std::string_view line, std::size_t line_number) {
  const LineParser p(line, line_number);
  const std::string& type = p.get_string("type");
  Reply r;
  if (type == "start_job") {
    r.type = Reply::Type::kStartJob;
    r.job = p.get_u64("job");
    if (r.job == platform::kNoJob) p.fail("start_job: job 0 is the no-job sentinel");
  } else if (type == "set_power_cap") {
    r.type = Reply::Type::kSetPowerCap;
    r.watts = p.get_double("watts");
    if (!(r.watts >= 0.0)) p.fail("set_power_cap: watts must be >= 0");
  } else if (type == "hold") {
    r.type = Reply::Type::kHold;
  } else if (type == "requeue") {
    r.type = Reply::Type::kRequeue;
    r.job = p.get_u64("job");
    if (r.job == platform::kNoJob) p.fail("requeue: job 0 is the no-job sentinel");
  } else {
    p.fail("unknown reply type \"" + type + "\"");
  }
  return r;
}

}  // namespace epajsrm::edc
