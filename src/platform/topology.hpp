// Interconnect topology models.
//
// The survey's Q6 asks about topology-aware task allocation as an indirect
// energy lever (better placement -> shorter communication -> shorter
// runtime -> less energy). The framework models a topology as a hop-count
// metric between nodes; allocation quality of a node set is its mean
// pairwise distance normalised to the topology diameter.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "platform/ids.hpp"

namespace epajsrm::platform {

/// Abstract interconnect: a metric over node ids.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of endpoints (node slots) in the fabric.
  virtual std::uint32_t node_count() const = 0;

  /// Hop distance between two endpoints; distance(a,a) == 0.
  virtual std::uint32_t distance(NodeId a, NodeId b) const = 0;

  /// Maximum distance between any two endpoints.
  virtual std::uint32_t diameter() const = 0;

  /// Short description, e.g. "fat-tree(arity=8, levels=3)".
  virtual std::string describe() const = 0;

  /// Mean pairwise hop distance of an allocation, normalised to the
  /// diameter: 0 = perfectly compact, 1 = maximally spread. Single-node
  /// allocations score 0.
  double allocation_spread(std::span<const NodeId> nodes) const;
};

/// k-ary fat tree: nodes are leaves; distance = 2 * levels-to-common-
/// ancestor. node ids are assigned in leaf order, so contiguous id ranges
/// are compact.
class FatTreeTopology final : public Topology {
 public:
  /// `arity` children per switch, `levels` switch levels above the nodes.
  /// Endpoint count is arity^levels.
  FatTreeTopology(std::uint32_t arity, std::uint32_t levels);

  std::uint32_t node_count() const override { return node_count_; }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  std::uint32_t diameter() const override { return 2 * levels_; }
  std::string describe() const override;

  std::uint32_t arity() const { return arity_; }
  std::uint32_t levels() const { return levels_; }

 private:
  std::uint32_t arity_;
  std::uint32_t levels_;
  std::uint32_t node_count_;
};

/// 3-D torus with wrap-around links (K-computer / Cray Gemini style).
/// node id = x + dim_x * (y + dim_y * z).
class Torus3DTopology final : public Topology {
 public:
  Torus3DTopology(std::uint32_t dim_x, std::uint32_t dim_y,
                  std::uint32_t dim_z);

  std::uint32_t node_count() const override { return dx_ * dy_ * dz_; }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  std::uint32_t diameter() const override {
    return dx_ / 2 + dy_ / 2 + dz_ / 2;
  }
  std::string describe() const override;

  /// Decomposes a node id into torus coordinates.
  struct Coord {
    std::uint32_t x, y, z;
  };
  Coord coord(NodeId n) const;

 private:
  std::uint32_t dx_, dy_, dz_;
};

/// Dragonfly (Cray Aries style): groups of routers, all-to-all between
/// groups, all-to-all within a group, `nodes_per_router` endpoints each.
/// Distances: same router 0 hops apart endpoints -> 1; same group -> 2;
/// different group -> 3 (minimal routing, one global link).
class DragonflyTopology final : public Topology {
 public:
  DragonflyTopology(std::uint32_t groups, std::uint32_t routers_per_group,
                    std::uint32_t nodes_per_router);

  std::uint32_t node_count() const override {
    return groups_ * routers_ * endpoints_;
  }
  std::uint32_t distance(NodeId a, NodeId b) const override;
  std::uint32_t diameter() const override { return 3; }
  std::string describe() const override;

 private:
  std::uint32_t groups_, routers_, endpoints_;
};

/// Builds the smallest fat tree with at least `min_nodes` endpoints — the
/// default fabric when a scenario does not specify one.
std::unique_ptr<Topology> make_default_topology(std::uint32_t min_nodes);

}  // namespace epajsrm::platform
