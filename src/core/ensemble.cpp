#include "core/ensemble.hpp"

#include <charconv>
#include <cmath>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/wall.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace epajsrm::core {

namespace {

/// Writes `value` in shortest round-trip form (std::to_chars: bit-exact on
/// re-parse, locale-independent, no ostream precision truncation). JSON has
/// no NaN/Inf, so non-finite values map to null.
void append_json_number(std::ostream& out, const char* key, double value,
                        bool trailing_comma = true) {
  out << '"' << key << "\":";
  if (std::isfinite(value)) {
    char buf[32];
    const auto result = std::to_chars(buf, buf + sizeof buf, value);
    out.write(buf, result.ptr - buf);
  } else {
    out << "null";
  }
  if (trailing_comma) out << ',';
}

/// Emits `text` as a JSON string, escaping quotes, backslashes, and control
/// characters so arbitrary point labels cannot corrupt the JSONL stream.
void append_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (byte < 0x20) {
      constexpr char kHex[] = "0123456789abcdef";
      out << "\\u00" << kHex[byte >> 4] << kHex[byte & 0xf];
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

std::size_t EnsembleEngine::add_point(std::string label,
                                      MakeConfig make_config,
                                      Customize customize) {
  if (!make_config) throw std::invalid_argument("point needs a factory");
  points_.push_back(Point{std::move(label), std::move(make_config),
                          std::move(customize)});
  return points_.size() - 1;
}

std::uint64_t EnsembleEngine::seed_for(std::size_t point,
                                       std::size_t replication) const {
  switch (config_.seed_stream) {
    case SeedStream::kSplitMix:
      return sim::splitmix64(sim::splitmix64(config_.base_seed + point) +
                             replication);
    case SeedStream::kSequential:
      return config_.base_seed + replication;
    case SeedStream::kConfig:
      // The factory's config.seed is authoritative; there is no derived
      // seed. The constant keeps the MakeConfig signature uniform.
      return config_.base_seed;
  }
  throw std::logic_error("bad seed stream");
}

EnsembleResult EnsembleEngine::run() {
  if (ran_) throw std::logic_error("ensemble already ran");
  ran_ = true;
  const std::size_t reps = config_.replications;
  const std::size_t cells = points_.size() * reps;

  // Every cell writes only its own pre-sized slot, so the sweep needs no
  // locking and the aggregation below reads a layout that is independent
  // of shard interleaving. Metric frames get the same treatment: workers
  // export into per-cell slots and the merge below walks them in flat
  // order, so the merged registry is bit-identical across thread counts.
  std::vector<RunResult> results(cells);
  std::vector<obs::MetricsFrame> frames(config_.merge_metrics ? cells : 0);
  // The seed each cell actually ran with (provenance): the derived seed in
  // the stamping streams, the factory's own config.seed under kConfig.
  std::vector<std::uint64_t> used_seeds(cells, 0);

  // Progress is the one shared mutable piece; it sits behind its own lock
  // and never feeds back into any result, so it cannot perturb determinism.
  std::mutex progress_mutex;
  std::size_t shards_done = 0;
  std::uint64_t events_done = 0;
  const std::int64_t sweep_t0 = obs::wall_now_ns();
  std::int64_t last_emit_ns = 0;

  sim::ThreadPool::parallel_for(
      cells,
      [&](std::size_t flat) {
        const std::size_t point = flat / reps;
        const std::size_t rep = flat % reps;
        const std::uint64_t seed = seed_for(point, rep);
        ScenarioConfig config = points_[point].make_config(seed);
        if (config_.seed_stream != SeedStream::kConfig) config.seed = seed;
        used_seeds[flat] = config.seed;
        if (config_.merge_metrics) {
          // Shard frames must be pure functions of the simulated run:
          // strip every wall-clock-derived instrument before the solution
          // is built (see EnsembleConfig::merge_metrics).
          config.solution.obs.enabled = true;
          config.solution.obs.wall_instruments = false;
          config.solution.obs.profile_event_loop = false;
          config.solution.obs.trace_log_lines = false;
        }
        if (config.partitions > 1) {
          // Replication-level and partition-level parallelism compose
          // without oversubscription: each cell's partition pool gets the
          // hardware share left after the sweep's own workers. Execution
          // knob only — results are worker-count invariant, so clamping
          // here cannot change a cell's output.
          const std::size_t hw = std::max<std::size_t>(
              1, std::thread::hardware_concurrency());
          const std::size_t sweep_threads = std::min<std::size_t>(
              cells, config_.threads == 0 ? hw : config_.threads);
          config.partition_workers = std::max<std::size_t>(
              1, hw / std::max<std::size_t>(1, sweep_threads));
        }
        Scenario scenario(std::move(config));
        if (points_[point].customize) points_[point].customize(scenario);
        results[flat] = scenario.run();
        if (config_.merge_metrics) {
          frames[flat] =
              scenario.solution().observability()->metrics().export_frame();
        }
        if (config_.on_progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          ++shards_done;
          events_done += results[flat].sim_events;
          const std::int64_t now = obs::wall_now_ns();
          const bool final_shard = shards_done == cells;
          if (!final_shard &&
              now - last_emit_ns <
                  config_.progress_interval_ms * 1'000'000) {
            return;
          }
          last_emit_ns = now;
          EnsembleProgress progress;
          progress.shards_done = shards_done;
          progress.shards_total = cells;
          progress.sim_events = events_done;
          const double elapsed_s =
              static_cast<double>(now - sweep_t0) / 1e9;
          if (elapsed_s > 0.0) {
            progress.events_per_sec =
                static_cast<double>(events_done) / elapsed_s;
            progress.eta_seconds =
                elapsed_s / static_cast<double>(shards_done) *
                static_cast<double>(cells - shards_done);
          }
          config_.on_progress(progress);
        }
      },
      config_.threads);

  EnsembleResult out;
  out.metrics_merged = config_.merge_metrics;
  if (config_.merge_metrics) {
    out.metrics_provenance.reserve(cells);
    for (std::size_t flat = 0; flat < cells; ++flat) {
      obs::merge_frame(out.merged_metrics, frames[flat]);
      out.metrics_provenance.push_back(ShardMetricsProvenance{
          flat / reps, flat % reps, used_seeds[flat],
          results[flat].sim_events, frames[flat].metric_count()});
    }
  }
  out.cells.reserve(points_.size());
  out.observations.reserve(cells);
  for (std::size_t point = 0; point < points_.size(); ++point) {
    std::vector<double> kwh, util, wait, viol, done, makespan;
    kwh.reserve(reps);
    EnsembleCell cell;
    cell.point = point;
    cell.seeds.reserve(reps);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const RunResult& r = results[point * reps + rep];
      const std::uint64_t seed = used_seeds[point * reps + rep];
      cell.seeds.push_back(seed);
      kwh.push_back(r.total_it_kwh_exact);
      util.push_back(r.report.mean_core_utilization);
      wait.push_back(r.report.wait_minutes.median);
      viol.push_back(r.report.violation_fraction);
      done.push_back(static_cast<double>(r.report.jobs_completed));
      makespan.push_back(sim::to_hours(r.report.makespan));
      out.observations.push_back(EnsembleObservation{
          point, rep, seed, r.sim_events, kwh.back(), util.back(),
          wait.back(), viol.back(), done.back(), makespan.back(),
          r.node_crashes, r.jobs_requeued_on_fault});
    }
    cell.stats.label = !points_[point].label.empty()
                           ? points_[point].label
                           : (reps > 0 ? results[point * reps].report.label
                                       : std::string{});
    cell.stats.replications = reps;
    cell.stats.total_kwh = metrics::summarize(kwh);
    cell.stats.mean_utilization = metrics::summarize(util);
    cell.stats.median_wait_minutes = metrics::summarize(wait);
    cell.stats.violation_fraction = metrics::summarize(viol);
    cell.stats.jobs_completed = metrics::summarize(done);
    cell.stats.makespan_hours = metrics::summarize(makespan);
    out.cells.push_back(std::move(cell));
  }
  if (config_.keep_run_results) out.run_results = std::move(results);
  return out;
}

void EnsembleResult::write_jsonl(std::ostream& out) const {
  for (const EnsembleObservation& o : observations) {
    const std::string label =
        o.point < cells.size() ? cells[o.point].stats.label : std::string{};
    out << "{\"point\":" << o.point << ",\"label\":";
    append_json_string(out, label);
    out << ",\"replication\":" << o.replication << ",\"seed\":" << o.seed
        << ",\"sim_events\":" << o.sim_events << ',';
    append_json_number(out, "total_kwh", o.total_kwh);
    append_json_number(out, "mean_utilization", o.mean_utilization);
    append_json_number(out, "median_wait_minutes", o.median_wait_minutes);
    append_json_number(out, "violation_fraction", o.violation_fraction);
    append_json_number(out, "jobs_completed", o.jobs_completed);
    append_json_number(out, "makespan_hours", o.makespan_hours);
    out << "\"node_crashes\":" << o.node_crashes
        << ",\"jobs_requeued\":" << o.jobs_requeued << "}\n";
  }
}

}  // namespace epajsrm::core
