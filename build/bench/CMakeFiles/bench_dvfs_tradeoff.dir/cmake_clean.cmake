file(REMOVE_RECURSE
  "CMakeFiles/bench_dvfs_tradeoff.dir/bench_dvfs_tradeoff.cpp.o"
  "CMakeFiles/bench_dvfs_tradeoff.dir/bench_dvfs_tradeoff.cpp.o.d"
  "bench_dvfs_tradeoff"
  "bench_dvfs_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvfs_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
