// sim must not reach up into power: this include violates the DAG.
#include "power/cap.hpp"

namespace fixture::sim {
long drift() { return fixture::power::cap_at(); }
}  // namespace fixture::sim
