# Empty compiler generated dependencies file for bench_intersystem_cap.
# This may be replaced when dependencies are built.
