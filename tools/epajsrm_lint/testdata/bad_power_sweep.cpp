// Fixture: aggregating power by sweeping a nodes() range-for must trip
// power-sweep (the PowerLedger already holds these totals in O(1)).
struct Node {
  double current_watts() const { return 100.0; }
  double power_cap_watts() const { return 200.0; }
  void set_current_watts(double) {}
};
struct Cluster {
  Node nodes_[4];
  const Node* nodes() const { return nodes_; }
};

double sweep_it_watts(const Cluster& cluster) {
  double total_watts = 0.0;
  for (const Node& node : cluster.nodes()) {
    total_watts += node.current_watts();    // violation
    total_watts += node.power_cap_watts();  // violation
  }
  return total_watts;
}

double sweep_one_liner_watts(const Cluster& cluster) {
  double cap_watts = 0.0;
  for (const Node& node : cluster.nodes()) cap_watts += node.current_watts();
  return cap_watts;  // the one-liner above is a violation too
}

void writes_are_fine(Cluster& cluster) {
  for (Node& node : cluster.nodes_) {
    node.set_current_watts(90.0);  // setter: not a power read, no violation
  }
}
