// Determinism suite for the fast-path queue and the ensemble engine.
//
// The event queue's contract — (time, scheduling order) fire order — is
// what every multi-component interaction in the simulator leans on. These
// tests pin it against an independent reference model (a stable sort,
// which is exactly what the pre-arena binary-heap implementation
// guaranteed), exercise the eager-cancellation id lifecycle, and prove
// the EnsembleEngine aggregates bit-identically regardless of worker
// thread count.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <mutex>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ensemble.hpp"
#include "core/scenario_builder.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace epajsrm {
namespace {

// --- EventQueue fire order vs. reference model ---------------------------------

struct TraceEvent {
  sim::SimTime time = 0;
  std::size_t index = 0;  // insertion order
  sim::EventId id = sim::kNoEvent;
  bool cancelled = false;
};

TEST(QueueDeterminism, TenThousandEventTraceFiresInReferenceOrder) {
  constexpr std::size_t kEvents = 10'000;
  sim::EventQueue queue;
  std::vector<TraceEvent> trace(kEvents);

  // Pseudo-random times with heavy collision pressure (only 97 distinct
  // timestamps) so the seq tie-break carries most of the ordering.
  std::uint64_t state = 12345;
  for (std::size_t i = 0; i < kEvents; ++i) {
    state = sim::splitmix64(state);
    trace[i].time = static_cast<sim::SimTime>(state % 97);
    trace[i].index = i;
  }
  std::vector<std::size_t> fired;
  fired.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    const std::size_t index = i;
    trace[i].id = queue.push(trace[i].time,
                             [&fired, index] { fired.push_back(index); });
  }
  // Cancel a deterministic ~10 % scattered through the trace.
  for (std::size_t i = 3; i < kEvents; i += 11) {
    EXPECT_TRUE(queue.cancel(trace[i].id));
    trace[i].cancelled = true;
  }

  // Reference model: the stable sort the binary-heap queue implemented.
  std::vector<std::size_t> expected(kEvents);
  std::iota(expected.begin(), expected.end(), 0u);
  std::stable_sort(expected.begin(), expected.end(),
                   [&trace](std::size_t a, std::size_t b) {
                     return trace[a].time < trace[b].time;
                   });
  std::erase_if(expected,
                [&trace](std::size_t i) { return trace[i].cancelled; });

  while (!queue.empty()) {
    auto popped = queue.pop();
    popped.callback();
  }
  ASSERT_EQ(fired.size(), expected.size());
  EXPECT_EQ(fired, expected);
}

TEST(QueueDeterminism, SimulationRunMatchesQueueOrder) {
  // The same contract holds through Simulation::run, including events
  // scheduled from inside callbacks at the current instant.
  sim::Simulation sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] {
    order.push_back(0);
    sim.schedule_at(5, [&] { order.push_back(2); });  // same instant, later seq
  });
  sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  // t=5 fires first, its child fires after at the same instant (scheduled
  // later), then the two t=10 events in scheduling order.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

// --- cancellation id lifecycle -------------------------------------------------

TEST(QueueDeterminism, CancelOfFiredAndNeverIssuedIdsReturnsFalse) {
  sim::EventQueue queue;
  const sim::EventId id = queue.push(1, [] {});
  EXPECT_FALSE(queue.cancel(sim::kNoEvent));
  EXPECT_FALSE(queue.cancel(0xdeadbeefcafef00dull));  // never issued

  auto popped = queue.pop();
  EXPECT_EQ(popped.id, id);
  EXPECT_FALSE(queue.cancel(id));  // already fired

  const sim::EventId id2 = queue.push(2, [] {});
  EXPECT_TRUE(queue.cancel(id2));
  EXPECT_FALSE(queue.cancel(id2));  // already cancelled
}

TEST(QueueDeterminism, StaleIdIsRejectedAfterSlotReuse) {
  sim::EventQueue queue;
  const sim::EventId first = queue.push(1, [] {});
  ASSERT_TRUE(queue.cancel(first));
  // The arena reuses the freed slot; the old id carries a stale
  // generation and must not cancel the new occupant.
  const sim::EventId second = queue.push(2, [] {});
  EXPECT_NE(first, second);
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.cancel(second));
}

TEST(QueueDeterminism, SimulationCancelHandlesRepeaterHandles) {
  sim::Simulation sim;
  int fires = 0;
  const sim::EventId handle =
      sim.schedule_every(10, [&fires]() -> bool { return ++fires < 3; });
  // Cancellable before the first firing...
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));  // ...but only once
  sim.run();
  EXPECT_EQ(fires, 0);

  // After the first firing the handle is spent.
  sim::Simulation sim2;
  const sim::EventId h2 =
      sim2.schedule_every(10, [&fires]() -> bool { return ++fires < 3; });
  sim2.run();
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(sim2.cancel(h2));
}

// --- periodic-batch semantics --------------------------------------------------

TEST(QueueDeterminism, SamePeriodRepeatersCoalesceAndFireInOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_every(10, [&order, i]() -> bool {
      order.push_back(i);
      return order.size() < 8;
    });
  }
  // Four repeaters, one shared tick: the queue holds a single batch entry.
  EXPECT_EQ(sim.pending_events(), 4u);
  sim.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  sim.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 8u);
}

TEST(QueueDeterminism, MidCycleRepeaterJoinsTheSharedCadence) {
  sim::Simulation sim;
  std::vector<std::pair<sim::SimTime, int>> fires;
  sim.schedule_every(10, [&]() -> bool {
    fires.emplace_back(sim.now(), 0);
    return sim.now() < 50;
  });
  // Created at t=15: its ticks land at 25, 35, ... offset from the first
  // repeater's 10, 20, ... — distinct phases, both on period 10.
  sim.schedule_at(15, [&] {
    sim.schedule_every(10, [&]() -> bool {
      fires.emplace_back(sim.now(), 1);
      return sim.now() < 50;
    });
  });
  sim.run();
  const std::vector<std::pair<sim::SimTime, int>> expected = {
      {10, 0}, {20, 0}, {25, 1}, {30, 0}, {35, 1},
      {40, 0}, {45, 1}, {50, 0}, {55, 1}};
  EXPECT_EQ(fires, expected);
}

TEST(QueueDeterminism, ScheduleEveryRejectsNonPositivePeriod) {
  // A non-positive cadence would re-enqueue ticks at or before now() and
  // drive the monotone clock backwards; it is rejected at the API edge.
  sim::Simulation sim;
  EXPECT_THROW(sim.schedule_every(0, []() -> bool { return false; }),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_every(-5, []() -> bool { return false; }),
               std::invalid_argument);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(QueueDeterminism, UserEventWithBatchTagSpellingIsAnOrdinaryEvent) {
  // Batch envelopes are detected by reserved identity, not tag content: a
  // user event spelling the same characters must still be counted and must
  // still reach dispatch hooks, even if the toolchain merges equal-content
  // constants.
  sim::Simulation sim;
  int fired = 0;
  std::vector<std::string> hook_tags;
  sim.set_dispatch_hook([&](sim::EventCategory category, std::int64_t) {
    hook_tags.push_back(category.name());
  });
  sim.schedule_at(
      5, [&] { ++fired; }, sim::EventCategory("sim.periodic-batch"));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_processed(), 1u);
  ASSERT_EQ(hook_tags.size(), 1u);
  EXPECT_EQ(hook_tags[0], "sim.periodic-batch");
}

TEST(QueueDeterminism, StopMidBatchKeepsUnfiredMembersAtTheirTick) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.schedule_every(10, [&]() -> bool {
    order.push_back(0);
    return true;
  });
  sim.schedule_every(10, [&]() -> bool {
    order.push_back(1);
    sim.stop();
    return true;
  });
  sim.schedule_every(10, [&]() -> bool {
    order.push_back(2);
    return true;
  });
  sim.run_until(10);
  // Member 1 stopped the loop mid-tick: member 2 never fired this tick, and
  // it stays pending at t=10 rather than silently losing that firing to the
  // next period.
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.events_processed(), 2u);
  EXPECT_EQ(sim.pending_events(), 3u);
}

// --- EnsembleEngine ------------------------------------------------------------

core::EnsembleResult run_small_grid(std::size_t threads) {
  core::EnsembleConfig config;
  config.replications = 3;
  config.base_seed = 99;
  config.threads = threads;
  core::EnsembleEngine engine(config);
  const auto point = [](const char* label) {
    return [label](std::uint64_t) {
      auto b = core::Scenario::builder()
                   .label(label)
                   .nodes(8)
                   .job_count(6)
                   .horizon(2 * sim::kDay)
                   .configure([](core::ScenarioConfig& c) {
                     c.solution.enable_thermal = false;
                   });
      return std::move(b).take_config();
    };
  };
  engine.add_point("a", point("ens-a"));
  engine.add_point("b", point("ens-b"));
  return engine.run();
}

void expect_identical(const core::EnsembleResult& a,
                      const core::EnsembleResult& b) {
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const core::EnsembleObservation& x = a.observations[i];
    const core::EnsembleObservation& y = b.observations[i];
    EXPECT_EQ(x.seed, y.seed);
    EXPECT_EQ(x.sim_events, y.sim_events);
    // Bit-identity, not tolerance: aggregation order is fixed by design.
    EXPECT_EQ(x.total_kwh, y.total_kwh);
    EXPECT_EQ(x.mean_utilization, y.mean_utilization);
    EXPECT_EQ(x.median_wait_minutes, y.median_wait_minutes);
    EXPECT_EQ(x.violation_fraction, y.violation_fraction);
    EXPECT_EQ(x.jobs_completed, y.jobs_completed);
    EXPECT_EQ(x.makespan_hours, y.makespan_hours);
  }
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].seeds, b.cells[i].seeds);
    EXPECT_EQ(a.cells[i].stats.total_kwh.mean, b.cells[i].stats.total_kwh.mean);
    EXPECT_EQ(a.cells[i].stats.makespan_hours.median,
              b.cells[i].stats.makespan_hours.median);
  }
}

TEST(EnsembleDeterminism, BitIdenticalAcrossThreadCounts) {
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  const core::EnsembleResult one = run_small_grid(1);
  const core::EnsembleResult four = run_small_grid(4);
  const core::EnsembleResult native = run_small_grid(hw);
  expect_identical(one, four);
  expect_identical(one, native);
}

core::EnsembleResult run_small_grid_with_metrics(std::size_t threads) {
  core::EnsembleConfig config;
  config.replications = 3;
  config.base_seed = 99;
  config.threads = threads;
  config.merge_metrics = true;
  core::EnsembleEngine engine(config);
  const auto point = [](const char* label) {
    return [label](std::uint64_t) {
      auto b = core::Scenario::builder()
                   .label(label)
                   .nodes(8)
                   .job_count(6)
                   .horizon(2 * sim::kDay)
                   .configure([](core::ScenarioConfig& c) {
                     c.solution.enable_thermal = false;
                   });
      return std::move(b).take_config();
    };
  };
  engine.add_point("a", point("ens-a"));
  engine.add_point("b", point("ens-b"));
  return engine.run();
}

TEST(EnsembleDeterminism, MergedMetricsAreBitIdenticalAcrossThreadCounts) {
  const core::EnsembleResult one = run_small_grid_with_metrics(1);
  const core::EnsembleResult four = run_small_grid_with_metrics(4);
  const core::EnsembleResult eight = run_small_grid_with_metrics(8);

  ASSERT_TRUE(one.metrics_merged);
  ASSERT_FALSE(one.merged_metrics.empty());
  // Frame-level bit identity: counters, gauges, and full histogram bucket
  // vectors compare equal, not just summary statistics.
  EXPECT_TRUE(one.merged_metrics == four.merged_metrics);
  EXPECT_TRUE(one.merged_metrics == eight.merged_metrics);

  // Provenance is emitted in fixed shard order regardless of which worker
  // finished first.
  ASSERT_EQ(one.metrics_provenance.size(), 6u);
  ASSERT_EQ(four.metrics_provenance.size(), 6u);
  for (std::size_t i = 0; i < one.metrics_provenance.size(); ++i) {
    const core::ShardMetricsProvenance& x = one.metrics_provenance[i];
    const core::ShardMetricsProvenance& y = four.metrics_provenance[i];
    EXPECT_EQ(x.point, y.point);
    EXPECT_EQ(x.replication, y.replication);
    EXPECT_EQ(x.seed, y.seed);
    EXPECT_EQ(x.sim_events, y.sim_events);
    EXPECT_EQ(x.metric_count, y.metric_count);
  }

  // Merging the metrics must not perturb the observation stream itself.
  const core::EnsembleResult plain = run_small_grid(1);
  ASSERT_EQ(plain.observations.size(), one.observations.size());
  for (std::size_t i = 0; i < plain.observations.size(); ++i) {
    EXPECT_EQ(plain.observations[i].total_kwh, one.observations[i].total_kwh);
    EXPECT_EQ(plain.observations[i].sim_events,
              one.observations[i].sim_events);
  }
}

TEST(EnsembleDeterminism, ProgressCallbackReportsMonotoneCompletion) {
  core::EnsembleConfig config;
  config.replications = 2;
  config.base_seed = 5;
  config.threads = 2;
  config.progress_interval_ms = 0;  // emit on every shard completion
  std::vector<core::EnsembleProgress> seen;
  std::mutex seen_mu;
  config.on_progress = [&](const core::EnsembleProgress& p) {
    const std::lock_guard<std::mutex> lock(seen_mu);
    seen.push_back(p);
  };
  core::EnsembleEngine engine(config);
  engine.add_point("only", [](std::uint64_t) {
    auto b = core::Scenario::builder()
                 .label("prog")
                 .nodes(8)
                 .job_count(4)
                 .horizon(sim::kDay)
                 .configure([](core::ScenarioConfig& c) {
                   c.solution.enable_thermal = false;
                 });
    return std::move(b).take_config();
  });
  engine.run();
  ASSERT_FALSE(seen.empty());
  std::size_t prev = 0;
  for (const core::EnsembleProgress& p : seen) {
    EXPECT_EQ(p.shards_total, 2u);
    EXPECT_GE(p.shards_done, prev);
    EXPECT_LE(p.shards_done, p.shards_total);
    prev = p.shards_done;
  }
  // The final emission always fires, reporting a complete sweep.
  EXPECT_EQ(seen.back().shards_done, 2u);
  EXPECT_GE(seen.back().events_per_sec, 0.0);
  EXPECT_EQ(seen.back().eta_seconds, 0.0);
}

TEST(EnsembleDeterminism, SplitMixSeedsAreShardOrderIndependent) {
  core::EnsembleConfig config;
  config.base_seed = 7;
  const core::EnsembleEngine engine(config);
  // Pure function of (base, point, rep): adding points or reps never
  // perturbs existing streams.
  EXPECT_EQ(engine.seed_for(0, 0),
            sim::splitmix64(sim::splitmix64(7 + 0) + 0));
  EXPECT_EQ(engine.seed_for(3, 2),
            sim::splitmix64(sim::splitmix64(7 + 3) + 2));
  // Adjacent cells decorrelate.
  EXPECT_NE(engine.seed_for(0, 0), engine.seed_for(0, 1));
  EXPECT_NE(engine.seed_for(0, 0), engine.seed_for(1, 0));
}

TEST(EnsembleDeterminism, JsonlEscapesLabelsAndPreservesDoubleFidelity) {
  core::EnsembleResult result;
  core::EnsembleCell cell;
  cell.stats.label = "cap \"3MW\"\\mix\n";
  result.cells.push_back(std::move(cell));
  core::EnsembleObservation o;
  o.seed = 42;
  o.sim_events = 7;
  o.total_kwh = 1.0 / 3.0;  // needs 17 significant digits to round-trip
  o.mean_utilization = std::numeric_limits<double>::quiet_NaN();
  o.median_wait_minutes = std::numeric_limits<double>::infinity();
  result.observations.push_back(o);

  std::ostringstream out;
  result.write_jsonl(out);
  const std::string line = out.str();
  // Quote, backslash, and control characters in the label are escaped, so
  // the line stays valid JSON.
  EXPECT_NE(line.find("\"label\":\"cap \\\"3MW\\\"\\\\mix\\u000a\""),
            std::string::npos)
      << line;
  // Doubles print in shortest round-trip form, not 6-digit ostream default.
  EXPECT_NE(line.find("\"total_kwh\":0.3333333333333333"), std::string::npos)
      << line;
  // JSON has no NaN/Inf: non-finite values map to null.
  EXPECT_NE(line.find("\"mean_utilization\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"median_wait_minutes\":null"), std::string::npos)
      << line;
}

TEST(EnsembleDeterminism, RunReplicatedWrapperKeepsSequentialSeeds) {
  // The wrapper's statistics must match the historical implementation:
  // seeds base, base+1, ... aggregated in replication order.
  const core::ReplicatedResult direct = core::run_replicated(
      [](std::uint64_t) {
        auto b = core::Scenario::builder()
                     .label("wrap")
                     .nodes(8)
                     .job_count(5)
                     .horizon(2 * sim::kDay)
                     .configure([](core::ScenarioConfig& c) {
                       c.solution.enable_thermal = false;
                     });
        return std::move(b).take_config();
      },
      nullptr, /*replications=*/3, /*base_seed=*/500);
  EXPECT_EQ(direct.replications, 3u);
  EXPECT_EQ(direct.label, "wrap");
  EXPECT_EQ(direct.total_kwh.count, 3u);
  EXPECT_GT(direct.total_kwh.mean, 0.0);
}

}  // namespace
}  // namespace epajsrm
