// Descriptive statistics — exactly the quantities the survey's Q3(e) asks
// centers for: min, median, max and the 10/25/75/90-th percentiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace epajsrm::metrics {

/// Linear-interpolated percentile of an unsorted sample (p in [0,100]).
/// Returns 0 for empty input.
double percentile(std::span<const double> values, double p);

/// The Q3(e) summary of a distribution.
struct DistributionSummary {
  std::size_t count = 0;
  double min = 0.0;
  double p10 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Computes the full summary in one pass over a copy of the data.
DistributionSummary summarize(std::span<const double> values);

/// Online mean/variance (Welford) for streams too large to retain.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace epajsrm::metrics
