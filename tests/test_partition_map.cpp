// PartitionMap: PDU-aligned contiguous partitioning of the cluster
// (DESIGN.md §15) — tiling, balance, clamping, and lookup.
#include "core/partition_map.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "platform/cluster.hpp"

namespace epajsrm::core {
namespace {

platform::Cluster make_cluster(std::uint32_t nodes) {
  return platform::ClusterBuilder().node_count(nodes).build();
}

TEST(PartitionMap, RangesTileTheClusterInOrder) {
  // 256 nodes, default layout: 16/rack, 2 racks/PDU -> 8 PDUs of 32.
  const platform::Cluster cluster = make_cluster(256);
  const PartitionMap map = PartitionMap::build(cluster, 4);
  ASSERT_EQ(map.count(), 4u);
  EXPECT_EQ(map.total_nodes(), 256u);
  EXPECT_EQ(map.pdu_count(), 8u);
  platform::NodeId expect = 0;
  for (std::uint32_t p = 0; p < map.count(); ++p) {
    EXPECT_EQ(map.node_begin(p), expect);
    EXPECT_GT(map.node_end(p), map.node_begin(p));
    expect = map.node_end(p);
  }
  EXPECT_EQ(expect, 256u);
  // Balanced: 8 equal PDUs over 4 partitions = 64 nodes each.
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(map.node_count(p), 64u);
  }
}

TEST(PartitionMap, PduBoundariesAreNeverSplit) {
  const platform::Cluster cluster = make_cluster(256);
  for (const std::uint32_t want : {2u, 3u, 5u, 7u, 8u}) {
    const PartitionMap map = PartitionMap::build(cluster, want);
    // Every node shares its partition with its PDU's assignment.
    for (const platform::Node& node : cluster.nodes()) {
      EXPECT_EQ(map.partition_of_node(node.id()),
                map.partition_of_pdu(node.pdu()))
          << "node " << node.id() << " at " << want << " partitions";
    }
  }
}

TEST(PartitionMap, ClampsToPduCountAndOne) {
  const platform::Cluster cluster = make_cluster(256);  // 8 PDUs
  EXPECT_EQ(PartitionMap::build(cluster, 64).count(), 8u);
  EXPECT_EQ(PartitionMap::build(cluster, 0).count(), 1u);
  const PartitionMap one = PartitionMap::build(cluster, 1);
  EXPECT_EQ(one.node_begin(0), 0u);
  EXPECT_EQ(one.node_end(0), 256u);
}

TEST(PartitionMap, LookupMatchesRanges) {
  const platform::Cluster cluster = make_cluster(256);
  const PartitionMap map = PartitionMap::build(cluster, 8);
  for (platform::NodeId id = 0; id < 256; ++id) {
    const std::uint32_t p = map.partition_of_node(id);
    EXPECT_GE(id, map.node_begin(p));
    EXPECT_LT(id, map.node_end(p));
  }
}

TEST(PartitionMap, HandlesPartialTrailingPdu) {
  // 80 nodes: two full 32-node PDUs plus a 16-node remainder PDU.
  const platform::Cluster cluster = make_cluster(80);
  const PartitionMap map = PartitionMap::build(cluster, 3);
  EXPECT_EQ(map.pdu_count(), 3u);
  ASSERT_EQ(map.count(), 3u);
  EXPECT_EQ(map.node_count(0), 32u);
  EXPECT_EQ(map.node_count(1), 32u);
  EXPECT_EQ(map.node_count(2), 16u);
}

TEST(PartitionMap, RejectsEmptyCluster) {
  // ClusterBuilder itself refuses zero nodes, so exercise the map's own
  // guard through the builder's error instead of a handcrafted cluster.
  EXPECT_THROW(make_cluster(0), std::exception);
}

}  // namespace
}  // namespace epajsrm::core
