// Inter-system power capping — Tokyo Tech's technology-development row
// ("TSUBAME2 and TSUBAME3 will need to share the facility power budget")
// and CEA's production practice of shifting power budget between systems.
//
// Several EpaJsrmSolution instances (one per machine) run on one
// simulator; the coordinator owns the *facility* IT budget and
// periodically re-divides it among the machines: each gets a guaranteed
// floor, and the remainder follows measured demand (draw plus queued
// pressure). Each member enforces its slice through its own
// PowerBudgetDvfsPolicy, so the division composes with everything else a
// member runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/solution.hpp"
#include "epa/power_budget_dvfs.hpp"

namespace epajsrm::core {

/// Re-divides one IT power budget across multiple solutions.
class FacilityCoordinator {
 public:
  struct Config {
    double total_budget_watts = 0.0;
    sim::SimTime period = sim::kMinute;
    /// Weight of queued demand (predicted watts of head-of-queue jobs)
    /// relative to measured draw when computing a member's demand.
    double queue_pressure_weight = 0.5;
    /// How many pending jobs contribute to queue pressure.
    std::size_t queue_depth = 4;
    /// Besides admission gating, hard-enforce each slice with a CAPMC
    /// system cap so running jobs slow down when their machine's slice
    /// shrinks (the Tokyo Tech facility cap is hard).
    bool hard_enforce = true;
  };

  FacilityCoordinator(sim::Simulation& sim, Config config)
      : sim_(&sim), config_(config) {}

  /// Registers a machine. `min_budget_watts` is its guaranteed floor
  /// (choose at least the idle draw so the machine never starves);
  /// `weight` scales its share of the surplus. Installs a budget-DVFS
  /// policy into the solution; the coordinator retunes it every period.
  /// Must be called before start().
  void add_member(EpaJsrmSolution& solution, double min_budget_watts,
                  double weight = 1.0);

  /// Starts periodic rebalancing (also performs one immediate division).
  void start();

  std::size_t member_count() const { return members_.size(); }

  /// Current budget slice of member i.
  double budget_of(std::size_t i) const;

  /// Current measured+queued demand of member i (as of the last
  /// rebalance).
  double demand_of(std::size_t i) const;

  std::uint64_t rebalances() const { return rebalances_; }

  const Config& config() const { return config_; }

 private:
  void rebalance();
  /// Non-const solution: demand estimation consults the member's power
  /// predictor, which keeps learning state.
  double member_demand(EpaJsrmSolution& solution) const;

  struct Member {
    EpaJsrmSolution* solution = nullptr;
    epa::PowerBudgetDvfsPolicy* budget_policy = nullptr;
    double min_budget = 0.0;
    double weight = 1.0;
    double current_budget = 0.0;
    double last_demand = 0.0;
  };

  sim::Simulation* sim_;
  Config config_;
  std::vector<Member> members_;
  bool started_ = false;
  std::uint64_t rebalances_ = 0;
};

}  // namespace epajsrm::core
