file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_platform.dir/cluster.cpp.o"
  "CMakeFiles/epajsrm_platform.dir/cluster.cpp.o.d"
  "CMakeFiles/epajsrm_platform.dir/facility.cpp.o"
  "CMakeFiles/epajsrm_platform.dir/facility.cpp.o.d"
  "CMakeFiles/epajsrm_platform.dir/node.cpp.o"
  "CMakeFiles/epajsrm_platform.dir/node.cpp.o.d"
  "CMakeFiles/epajsrm_platform.dir/pstate.cpp.o"
  "CMakeFiles/epajsrm_platform.dir/pstate.cpp.o.d"
  "CMakeFiles/epajsrm_platform.dir/topology.cpp.o"
  "CMakeFiles/epajsrm_platform.dir/topology.cpp.o.d"
  "libepajsrm_platform.a"
  "libepajsrm_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
