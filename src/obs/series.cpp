#include "obs/series.hpp"

#include <algorithm>
#include <stdexcept>

namespace epajsrm::obs {

DownsamplingSeries::DownsamplingSeries(std::size_t budget,
                                       sim::SimTime initial_width)
    : budget_(budget), width_(initial_width) {
  if (budget < 2) {
    throw std::invalid_argument(
        "series budget must be >= 2 (one bucket cannot coarsen)");
  }
  if (initial_width <= 0) {
    throw std::invalid_argument("series bucket width must be positive");
  }
  buckets_.reserve(budget);
}

void DownsamplingSeries::record(sim::SimTime t, double value) {
  if (t < 0) throw std::invalid_argument("series time must be >= 0");
  if (latest_.has_value() && t < latest_->time) {
    throw std::invalid_argument("series time went backwards");
  }

  if (total_samples_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_samples_;
  latest_ = SeriesSample{t, value};

  std::uint64_t idx = index_of(t);
  if (!buckets_.empty() && buckets_.back().index == idx) {
    SeriesBucket& b = buckets_.back();
    b.last_time = t;
    ++b.count;
    b.min = std::min(b.min, value);
    b.max = std::max(b.max, value);
    b.sum += value;
    b.last = value;
    return;
  }

  // New window. If the ring is full, coarsen until a slot frees up (each
  // doubling merges at least the new sample's neighbourhood eventually;
  // the loop terminates because the width grows geometrically towards the
  // whole recorded span, at which point everything merges into one
  // bucket).
  while (buckets_.size() >= budget_) {
    coarsen_once();
    idx = index_of(t);
    if (!buckets_.empty() && buckets_.back().index == idx) {
      SeriesBucket& b = buckets_.back();
      b.last_time = t;
      ++b.count;
      b.min = std::min(b.min, value);
      b.max = std::max(b.max, value);
      b.sum += value;
      b.last = value;
      return;
    }
  }
  buckets_.push_back(SeriesBucket{idx, t, t, 1, value, value, value, value});
}

void DownsamplingSeries::coarsen_once() {
  width_ *= 2;
  ++coarsenings_;
  std::size_t write = 0;
  std::size_t read = 0;
  while (read < buckets_.size()) {
    SeriesBucket merged = buckets_[read];
    merged.index /= 2;
    std::size_t next = read + 1;
    if (next < buckets_.size() && buckets_[next].index / 2 == merged.index) {
      const SeriesBucket& b = buckets_[next];
      merged.last_time = b.last_time;
      merged.count += b.count;
      merged.min = std::min(merged.min, b.min);
      merged.max = std::max(merged.max, b.max);
      merged.sum += b.sum;
      merged.last = b.last;
      ++next;
    }
    buckets_[write++] = merged;
    read = next;
  }
  buckets_.resize(write);
}

void DownsamplingSeries::coarsen_to(sim::SimTime width) {
  while (width_ < width) coarsen_once();
}

const SeriesBucket& DownsamplingSeries::bucket(std::size_t i) const {
  if (i >= buckets_.size()) throw std::out_of_range("series bucket index");
  return buckets_[i];
}

DownsamplingSeries::WindowStats DownsamplingSeries::window_stats(
    sim::SimTime begin, sim::SimTime end) const {
  WindowStats stats;
  double sum = 0.0;
  for (const SeriesBucket& b : buckets_) {
    if (b.last_time < begin) continue;
    if (b.first_time > end) break;
    if (stats.count == 0) {
      stats.min = b.min;
      stats.max = b.max;
    } else {
      stats.min = std::min(stats.min, b.min);
      stats.max = std::max(stats.max, b.max);
    }
    stats.count += static_cast<std::size_t>(b.count);
    sum += b.sum;
  }
  if (stats.count > 0) sum /= static_cast<double>(stats.count);
  stats.mean = sum;
  return stats;
}

double DownsamplingSeries::trailing_mean(sim::SimTime window) const {
  if (!latest_.has_value()) return 0.0;
  const sim::SimTime end = latest_->time;
  const sim::SimTime begin = end - window;
  const WindowStats stats = window_stats(begin < 0 ? 0 : begin, end);
  return stats.count > 0 ? stats.mean : 0.0;
}

}  // namespace epajsrm::obs
