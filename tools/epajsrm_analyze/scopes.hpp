// Lightweight scope tracker: classifies every brace-delimited region of
// a stripped source file as namespace / type / function / initializer /
// block, collects statement heads with their scope context, and records
// function extents. This is deliberately a heuristic classifier — no
// parsing of the full grammar — tuned so the determinism and
// shared-state passes get reliable answers to two questions: "which
// function encloses this line?" and "is this statement a declaration at
// namespace/class scope?".
#pragma once

#include <string>
#include <vector>

#include "support/source_text.hpp"

namespace epajsrm::analyze {

enum class ScopeKind { kNamespace, kType, kFunction, kInit, kBlock };

struct ScopeWalk {
  struct Statement {
    std::string head;        // whitespace-collapsed code text of the
                             // statement, up to its `;` or `{`
    int line = 0;            // 1-based line where the statement began
    bool at_namespace_scope = false;  // every enclosing scope is a namespace
    bool at_type_scope = false;       // innermost scope is a class/struct
    bool inside_initializer = false;  // some enclosing scope is an init brace
    int function_ordinal = -1;        // innermost enclosing function, -1 none
  };

  struct Function {
    std::string name;        // identifier before the parameter list ("" if
                             // unrecognized, e.g. a lambda)
    int first_line = 0;      // line of the opening brace
    int last_line = 0;       // line of the closing brace
  };

  std::vector<Statement> statements;
  std::vector<Function> functions;

  /// Ordinal of the innermost function whose extent contains `line`
  /// (1-based), or -1.
  int function_at_line(int line) const;
};

ScopeWalk walk_scopes(const toolsupport::SourceFile& sf);

}  // namespace epajsrm::analyze
