#include "telemetry/monitor.hpp"

#include <gtest/gtest.h>

#include "power/node_power_model.hpp"

namespace epajsrm::telemetry {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : cluster_(platform::ClusterBuilder()
                     .name("mach")
                     .node_count(8)
                     .nodes_per_rack(4)
                     .racks_per_pdu(1)
                     .build()),
        model_(cluster_.pstates()), ledger_(cluster_),
        monitor_(sim_, cluster_, ledger_, 10 * sim::kSecond) {
    model_.attach_ledger(&ledger_);
    ledger_.prime(cluster_, model_);
  }

  sim::Simulation sim_;
  platform::Cluster cluster_;
  power::NodePowerModel model_;
  power::PowerLedger ledger_;
  MonitoringService monitor_;
};

TEST_F(MonitorTest, BuildsSensorHierarchy) {
  const SensorRegistry& reg = monitor_.registry();
  EXPECT_TRUE(reg.contains("mach.power"));
  EXPECT_TRUE(reg.contains("mach.utilization"));
  EXPECT_TRUE(reg.contains("mach.rack0.node0.power"));
  EXPECT_TRUE(reg.contains("mach.rack1.node7.temp"));
  EXPECT_TRUE(reg.contains("mach.plant.pdu-0.power"));
  // 2 machine + 2 pdu + 16 node sensors.
  EXPECT_EQ(reg.size(), 2u + 2u + 16u);
}

TEST_F(MonitorTest, MachineSensorAggregatesNodeSensors) {
  const SensorRegistry& reg = monitor_.registry();
  const double machine = reg.read("mach.power");
  const double summed =
      reg.aggregate("mach.rack0", SensorKind::kPowerWatts) +
      reg.aggregate("mach.rack1", SensorKind::kPowerWatts);
  EXPECT_NEAR(machine, summed, 1e-9);
  EXPECT_GT(machine, 0.0);
}

TEST_F(MonitorTest, PeriodicSamplingRecordsSeries) {
  monitor_.start();
  sim_.run_until(65 * sim::kSecond);
  EXPECT_EQ(monitor_.tick_count(), 6u);
  EXPECT_EQ(monitor_.machine_power().size(), 6u);
  EXPECT_EQ(monitor_.utilization().size(), 6u);
  ASSERT_NE(monitor_.pdu_power(0), nullptr);
  EXPECT_EQ(monitor_.pdu_power(0)->size(), 6u);
  EXPECT_GT(monitor_.machine_power().latest()->value, 0.0);
}

TEST_F(MonitorTest, UnknownPduReturnsSentinel) {
  // 8 nodes, 4 per rack, 1 rack per PDU -> PDUs 0 and 1 exist.
  EXPECT_NE(monitor_.pdu_power(0), nullptr);
  EXPECT_NE(monitor_.pdu_power(1), nullptr);
  EXPECT_EQ(monitor_.pdu_power(2), nullptr);
  EXPECT_EQ(monitor_.pdu_power(999), nullptr);
}

TEST_F(MonitorTest, ObserversFireEachTick) {
  int observed = 0;
  monitor_.add_observer([&](sim::SimTime) { ++observed; });
  monitor_.start();
  sim_.run_until(30 * sim::kSecond);
  EXPECT_EQ(observed, 3);
}

TEST_F(MonitorTest, StopEndsSampling) {
  monitor_.start();
  sim_.run_until(30 * sim::kSecond);
  monitor_.stop();
  sim_.run_until(2 * sim::kMinute);
  EXPECT_EQ(monitor_.tick_count(), 3u);
}

TEST_F(MonitorTest, FacilityPowerIncludesPue) {
  monitor_.sample(0);
  const double it = monitor_.machine_power().latest()->value;
  const double facility = monitor_.facility_power().latest()->value;
  EXPECT_GT(facility, it);
}

TEST_F(MonitorTest, StaleTelemetryServesMarginAndCountsIt) {
  obs::MetricsRegistry registry;
  monitor_.attach_registry(&registry);
  monitor_.sample(0);
  const double fresh = monitor_.measured_it_watts(5 * sim::kSecond);
  EXPECT_EQ(monitor_.stale_served(), 0u);
  // Beyond two sampling periods the last reading counts as stale: it is
  // served inflated by the safety margin, and the fallback is counted.
  const double stale = monitor_.measured_it_watts(25 * sim::kSecond);
  EXPECT_GT(stale, fresh);
  EXPECT_EQ(monitor_.stale_served(), 1u);
  EXPECT_EQ(registry.counter("telemetry.stale_served").value(), 1u);
  // Detaching stops the registry feed but keeps the local count.
  monitor_.attach_registry(nullptr);
  monitor_.measured_it_watts(25 * sim::kSecond);
  EXPECT_EQ(monitor_.stale_served(), 2u);
  EXPECT_EQ(registry.counter("telemetry.stale_served").value(), 1u);
}

TEST_F(MonitorTest, StartIsIdempotent) {
  monitor_.start();
  monitor_.start();
  sim_.run_until(10 * sim::kSecond);
  EXPECT_EQ(monitor_.tick_count(), 1u);
}

}  // namespace
}  // namespace epajsrm::telemetry
