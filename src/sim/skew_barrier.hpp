// SkewBarrier: bounded-clock-skew coordination for the partitioned
// engine (PartitionedSimulation). The relaxed-synchronization idea is
// Graphite's ClockSkewMinimizationClient: partitions advance their local
// clocks freely, constrained only to stay within a window of the slowest
// peer, and hard-synchronize at coupling epochs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::sim {

/// Keeps N partition clocks within `window` of each other without a
/// central scheduler.
///
/// Protocol, per partition, inside one epoch:
///   1. compute `horizon` = the time of the next local event;
///   2. acquire(p, horizon) — publish the horizon, then block until every
///      other partition's published horizon has reached horizon - window;
///   3. execute the local events at `horizon`; goto 1.
/// A partition with nothing left before the epoch end calls
/// publish(p, epoch_end) and leaves — advancing a clock past quiescent
/// time executes nothing, so it needs no permission.
///
/// Publishing the *next pending* event time before blocking (conservative
/// lookahead) is what makes the protocol deadlock-free: the partition
/// holding the globally minimal horizon observes every peer horizon >= its
/// own, so its wait condition is already satisfied and it proceeds — the
/// same argument null-message PDES protocols make. Horizons are monotone
/// within and across epochs, so no per-epoch reset is needed.
///
/// Window semantics: a partition may execute events at time t only once
/// every peer has announced progress to at least t - window. window = 0 is
/// timestamp lockstep; the partitioned scenario core defaults to one
/// coupling period, under which the barrier never blocks inside an epoch.
class SkewBarrier {
 public:
  SkewBarrier(std::uint32_t partitions, SimTime window);

  /// Publishes partition `p`'s lookahead horizon, then blocks until every
  /// other partition has published at least `horizon - window`. Horizons
  /// must be non-decreasing per partition.
  void acquire(std::uint32_t p, SimTime horizon);

  /// Publishes without blocking — the epoch-drain fast path, and the
  /// escape hatch a partition uses on error so peers never wait on it.
  void publish(std::uint32_t p, SimTime horizon);

  /// Last horizon published by `p` (diagnostics and tests).
  SimTime horizon(std::uint32_t p) const;

  std::uint32_t partitions() const {
    return static_cast<std::uint32_t>(horizon_.size());
  }
  SimTime window() const { return window_; }

  /// Times acquire() actually blocked (contention diagnostics).
  std::uint64_t waits() const;

 private:
  /// min over q != p of horizon_[q] >= floor; caller holds mutex_.
  bool peers_reached(std::uint32_t p, SimTime floor) const;

  SimTime window_;
  mutable std::mutex mutex_;
  std::condition_variable advanced_;
  std::vector<SimTime> horizon_;
  std::uint64_t waits_ = 0;
};

}  // namespace epajsrm::sim
