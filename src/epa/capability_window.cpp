#include "epa/capability_window.hpp"

namespace epajsrm::epa {

bool CapabilityWindowPolicy::in_window(sim::SimTime t) const {
  if (t < config_.first_window) return false;
  const sim::SimTime phase = (t - config_.first_window) % config_.period;
  return phase < config_.window_length;
}

sim::SimTime CapabilityWindowPolicy::next_window(sim::SimTime t) const {
  if (t < config_.first_window) return config_.first_window;
  const sim::SimTime phase = (t - config_.first_window) % config_.period;
  if (phase < config_.window_length) return t;  // already inside
  return t + (config_.period - phase);
}

sim::SimTime CapabilityWindowPolicy::earliest_start_hint(
    const workload::Job& job, sim::SimTime now) const {
  if (host_ == nullptr) return now;
  const std::uint32_t machine = host_->cluster().node_count();
  if (job.spec().nodes < config_.large_fraction * machine) return now;

  sim::SimTime candidate = next_window(now);
  if (config_.require_fit && in_window(now) && candidate == now) {
    const sim::SimTime phase =
        (now - config_.first_window) % config_.period;
    if (job.spec().walltime_estimate > config_.window_length - phase) {
      candidate = now + (config_.period - phase);  // next cycle
    }
  }
  return candidate;
}

bool CapabilityWindowPolicy::plan_start(StartPlan& plan) {
  if (host_ == nullptr || plan.job == nullptr) return true;
  const std::uint32_t machine = host_->cluster().node_count();
  if (plan.nodes < config_.large_fraction * machine) return true;

  const sim::SimTime now = host_->simulation().now();
  if (!in_window(now)) {
    if (!plan.dry_run) ++held_;
    return false;  // wait for the next capability window
  }
  if (config_.require_fit) {
    const sim::SimTime phase =
        (now - config_.first_window) % config_.period;
    const sim::SimTime remaining = config_.window_length - phase;
    if (plan.job->spec().walltime_estimate > remaining) {
      if (!plan.dry_run) ++held_;
      return false;  // would outlive the window; hold for the next one
    }
  }
  return true;
}

}  // namespace epajsrm::epa
