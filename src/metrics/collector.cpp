#include "metrics/collector.hpp"

#include <algorithm>
#include <cstdio>

namespace epajsrm::metrics {

void MetricsCollector::attach_registry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    violation_counter_ = nullptr;
    completed_counter_ = nullptr;
    killed_counter_ = nullptr;
    submitted_counter_ = nullptr;
    it_watts_gauge_ = nullptr;
    facility_watts_gauge_ = nullptr;
    utilization_gauge_ = nullptr;
    budget_gauge_ = nullptr;
    wait_minutes_hist_ = nullptr;
    return;
  }
  violation_counter_ = &registry->counter("power.violation_samples");
  violation_counter_->add(violation_samples_);  // carry over pre-attach count
  violation_samples_ = 0;
  completed_counter_ = &registry->counter("jobs.completed");
  killed_counter_ = &registry->counter("jobs.killed");
  submitted_counter_ = &registry->counter("jobs.submitted");
  it_watts_gauge_ = &registry->gauge("power.it_watts");
  facility_watts_gauge_ = &registry->gauge("power.facility_watts");
  utilization_gauge_ = &registry->gauge("util.core_fraction");
  budget_gauge_ = &registry->gauge("power.budget_watts");
  wait_minutes_hist_ = &registry->histogram("sched.wait_minutes");
}

void MetricsCollector::on_job_finished(const workload::Job& job) {
  const workload::JobState state = job.state();
  if (state == workload::JobState::kKilled) {
    ++killed_;
    if (killed_counter_ != nullptr) killed_counter_->add(1);
  } else if (state == workload::JobState::kCompleted) {
    ++completed_;
    if (completed_counter_ != nullptr) completed_counter_->add(1);
  } else {
    return;  // cancelled before start: counts only as submitted
  }
  if (job.start_time() < 0) return;

  node_counts_.push_back(
      static_cast<double>(job.allocated_nodes().size()));

  if (state != workload::JobState::kCompleted) return;
  const sim::SimTime run = job.end_time() - job.start_time();
  const sim::SimTime wait = job.wait_time();
  wait_minutes_.push_back(sim::to_seconds(wait) / 60.0);
  if (wait_minutes_hist_ != nullptr) {
    wait_minutes_hist_->observe(sim::to_seconds(wait) / 60.0);
  }
  runtime_minutes_.push_back(sim::to_seconds(run) / 60.0);
  // Bounded slowdown with the standard 10-minute interactivity threshold.
  const double tau = 10.0 * 60.0;
  const double slowdown =
      std::max(1.0, sim::to_seconds(wait + run) /
                        std::max(sim::to_seconds(run), tau));
  slowdowns_.push_back(slowdown);
  completed_core_hours_ +=
      sim::to_hours(run) *
      static_cast<double>(job.allocated_nodes().size()) *
      job.cores_per_node_allocated();
}

void MetricsCollector::on_power_sample(sim::SimTime now, double it_watts,
                                       double facility_watts,
                                       double core_utilization) {
  if (have_sample_ && now > last_sample_time_) {
    const double dt = sim::to_seconds(now - last_sample_time_);
    it_joules_ += last_it_watts_ * dt;
    facility_joules_ += last_facility_watts_ * dt;
    if (tariff_ != nullptr) {
      cost_ += tariff_->cost(last_facility_watts_, last_sample_time_, now);
    }
    if (budget_watts_ > 0.0 && last_it_watts_ > budget_watts_) {
      violation_joules_ += (last_it_watts_ - budget_watts_) * dt;
    }
  }
  if (!have_sample_) first_sample_time_ = now;

  it_watts_stats_.add(it_watts);
  utilization_stats_.add(core_utilization);
  ++total_samples_;
  if (budget_watts_ > 0.0 && it_watts > budget_watts_) {
    if (violation_counter_ != nullptr) {
      violation_counter_->add(1);
    } else {
      ++violation_samples_;
    }
    worst_violation_ = std::max(worst_violation_, it_watts - budget_watts_);
  }
  if (it_watts_gauge_ != nullptr) {
    it_watts_gauge_->set(it_watts);
    facility_watts_gauge_->set(facility_watts);
    utilization_gauge_->set(core_utilization);
    budget_gauge_->set(budget_watts_);
  }

  have_sample_ = true;
  last_sample_time_ = now;
  last_it_watts_ = it_watts;
  last_facility_watts_ = facility_watts;
}

RunReport MetricsCollector::finalize(sim::SimTime end_time) {
  // Close the integration interval at end_time (without registering a new
  // sample — the sample statistics must reflect only real samples).
  if (have_sample_ && end_time > last_sample_time_) {
    const double dt = sim::to_seconds(end_time - last_sample_time_);
    it_joules_ += last_it_watts_ * dt;
    facility_joules_ += last_facility_watts_ * dt;
    if (tariff_ != nullptr) {
      cost_ += tariff_->cost(last_facility_watts_, last_sample_time_,
                             end_time);
    }
    if (budget_watts_ > 0.0 && last_it_watts_ > budget_watts_) {
      violation_joules_ += (last_it_watts_ - budget_watts_) * dt;
    }
    last_sample_time_ = end_time;
  }

  RunReport r;
  r.label = label_;
  r.jobs_submitted = submitted_;
  r.jobs_completed = completed_;
  r.jobs_killed = killed_;
  r.wait_minutes = summarize(wait_minutes_);
  r.bounded_slowdown = summarize(slowdowns_);
  r.job_node_counts = summarize(node_counts_);
  r.job_runtime_minutes = summarize(runtime_minutes_);

  r.mean_it_watts = it_watts_stats_.count() ? it_watts_stats_.mean() : 0.0;
  r.max_it_watts = it_watts_stats_.count() ? it_watts_stats_.max() : 0.0;
  r.total_it_kwh = it_joules_ / 3.6e6;
  r.total_facility_kwh = facility_joules_ / 3.6e6;
  r.electricity_cost = cost_;

  r.budget_watts = budget_watts_;
  r.violation_samples = violation_samples();
  r.violation_fraction =
      total_samples_ > 0
          ? static_cast<double>(r.violation_samples) / total_samples_
          : 0.0;
  r.worst_violation_watts = worst_violation_;
  r.violation_kwh = violation_joules_ / 3.6e6;

  r.mean_core_utilization =
      utilization_stats_.count() ? utilization_stats_.mean() : 0.0;

  const sim::SimTime span = end_time - first_sample_time_;
  if (span <= 0) {
    // Zero (or negative) span: finalizing at the first-sample instant, or
    // with no samples at all. Throughput is undefined there — report 0
    // explicitly instead of dividing by zero.
    r.throughput_jobs_per_day = 0.0;
  } else {
    r.throughput_jobs_per_day =
        static_cast<double>(completed_) / (sim::to_hours(span) / 24.0);
  }
  if (r.total_it_kwh > 0.0) {
    r.core_hours_per_mwh = completed_core_hours_ / (r.total_it_kwh / 1000.0);
  }
  r.makespan = span;
  return r;
}

std::string format_report(const RunReport& r) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "[%s] jobs: %llu submitted / %llu completed / %llu killed | "
      "wait p50 %.1f min | util %.1f %% | power mean %.1f kW max %.1f kW | "
      "energy %.1f kWh | cost %.2f | violations %.2f %% of time (worst "
      "+%.1f kW)",
      r.label.c_str(), static_cast<unsigned long long>(r.jobs_submitted),
      static_cast<unsigned long long>(r.jobs_completed),
      static_cast<unsigned long long>(r.jobs_killed), r.wait_minutes.median,
      r.mean_core_utilization * 100.0, r.mean_it_watts / 1e3,
      r.max_it_watts / 1e3, r.total_it_kwh, r.electricity_cost,
      r.violation_fraction * 100.0, r.worst_violation_watts / 1e3);
  return buf;
}

}  // namespace epajsrm::metrics
