#include "epa/policy.hpp"

#include <algorithm>
#include <cmath>

namespace epajsrm::epa {

double StartPlan::predicted_watts(double idle_watts,
                                  const power::NodePowerModel& model,
                                  const platform::PstateTable& pstates) const {
  if (job == nullptr || nodes == 0) return 0.0;
  const double ratio =
      pstates.ratio(std::min<std::uint32_t>(pstate, pstates.deepest()));
  const double dynamic = std::max(0.0, predicted_node_watts - idle_watts);
  const double per_node =
      idle_watts + dynamic * std::pow(ratio, model.alpha());
  return per_node * nodes;
}

}  // namespace epajsrm::epa
