// Experiment Q3 — the workload statistics of survey question 3(e):
// min / 10th / 25th / median / 75th / 90th / max of job size and wallclock
// time, for the three synthetic mixes (standard, capability, capacity),
// plus throughput and backlog snapshots (Q3 a-c).
#include <cstdio>

#include <vector>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace epajsrm;

void add_summary_row(metrics::AsciiTable& table, const std::string& label,
                     const metrics::DistributionSummary& s,
                     int precision = 1) {
  const auto f = [precision](double v) {
    return metrics::format_double(v, precision);
  };
  table.add_row({label, std::to_string(s.count), f(s.min), f(s.p10),
                 f(s.p25), f(s.median), f(s.p75), f(s.p90), f(s.max)});
}

void report_mix(const char* name, core::WorkloadMix mix) {
  const std::uint32_t machine_nodes = 128;
  workload::GeneratorConfig config;
  config.machine_nodes = machine_nodes;
  workload::AppCatalog catalog = core::catalog_for(mix, machine_nodes);
  config.arrival_rate_per_hour =
      core::arrival_rate_for_utilization(catalog, machine_nodes, 0.75);
  workload::WorkloadGenerator generator(config, std::move(catalog), 2024);
  const auto jobs = generator.generate(4000);

  std::vector<double> sizes, hours, walltime_hours;
  for (const auto& job : jobs) {
    sizes.push_back(job.nodes);
    hours.push_back(sim::to_hours(job.runtime_ref));
    walltime_hours.push_back(sim::to_hours(job.walltime_estimate));
  }

  metrics::AsciiTable table({"quantity", "n", "min", "p10", "p25", "median",
                             "p75", "p90", "max"});
  table.set_title(std::string("Q3(e) statistics - ") + name + " mix on " +
                  std::to_string(machine_nodes) + " nodes");
  add_summary_row(table, "job size (nodes)", metrics::summarize(sizes), 0);
  add_summary_row(table, "runtime (hours)", metrics::summarize(hours), 2);
  add_summary_row(table, "walltime estimate (hours)",
                  metrics::summarize(walltime_hours), 2);
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_workload_stats");
  report_mix("standard", core::WorkloadMix::kStandard);
  report_mix("capability", core::WorkloadMix::kCapability);
  report_mix("capacity", core::WorkloadMix::kCapacity);

  // Q3(a-c): snapshot and throughput from a live run.
  core::ScenarioConfig config;
  config.label = "q3-snapshot";
  config.nodes = 128;
  config.job_count = 0;
  config.horizon = 7 * sim::kDay;
  config.mix = core::WorkloadMix::kCapacity;
  core::Scenario scenario(config);

  // Take the snapshot mid-run by scheduling an observer event.
  std::size_t running_snapshot = 0, queued_snapshot = 0;
  scenario.solution().start();
  scenario.simulation().schedule_at(3 * sim::kDay + 5 * sim::kHour, [&] {
    running_snapshot = scenario.solution().running_jobs().size();
    queued_snapshot = scenario.solution().pending_jobs().size();
  });
  const core::RunResult result = scenario.run();
  summary.add_run(result);

  std::printf("Q3(a/b) snapshot at day 3: %zu jobs running, %zu queued\n",
              running_snapshot, queued_snapshot);
  std::printf("Q3(c) throughput: %.1f jobs/day (~%.0f jobs/month)\n",
              result.report.throughput_jobs_per_day,
              result.report.throughput_jobs_per_day * 30.0);
  std::printf("utilization %.1f %%, completed %llu of %llu\n",
              result.report.mean_core_utilization * 100.0,
              static_cast<unsigned long long>(result.report.jobs_completed),
              static_cast<unsigned long long>(result.report.jobs_submitted));
  return 0;
}
