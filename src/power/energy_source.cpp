#include "power/energy_source.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace epajsrm::power {

void SupplyPortfolio::add_source(EnergySource source) {
  sources_.push_back(std::move(source));
}

void SupplyPortfolio::add_event(DemandResponseEvent event) {
  events_.push_back(event);
  std::sort(events_.begin(), events_.end(),
            [](const DemandResponseEvent& a, const DemandResponseEvent& b) {
              return a.start < b.start;
            });
}

const DemandResponseEvent* SupplyPortfolio::active_event(
    sim::SimTime t) const {
  for (const auto& e : events_) {
    if (e.active_at(t)) return &e;
  }
  return nullptr;
}

const DemandResponseEvent* SupplyPortfolio::next_event(sim::SimTime t) const {
  for (const auto& e : events_) {
    if (e.start >= t) return &e;
  }
  return nullptr;
}

double SupplyPortfolio::grid_limit_watts(sim::SimTime t) const {
  double limit = 0.0;
  bool any_grid = false;
  for (const auto& s : sources_) {
    if (s.dispatchable) continue;
    any_grid = true;
    if (s.capacity_watts <= 0.0) {
      limit = std::numeric_limits<double>::max();
    } else if (limit != std::numeric_limits<double>::max()) {
      limit += s.capacity_watts;
    }
  }
  if (!any_grid) return 0.0;
  if (const DemandResponseEvent* e = active_event(t)) {
    limit = std::min(limit, e->limit_watts);
  }
  return limit;
}

SupplyPortfolio::Dispatch SupplyPortfolio::dispatch(double facility_watts,
                                                    sim::SimTime t) const {
  Dispatch d;
  d.watts.assign(sources_.size(), 0.0);
  if (sources_.empty()) {
    d.unserved_watts = facility_watts;
    return d;
  }

  // Merit order: ascending current price. Grid sources are collectively
  // limited by an active DR event.
  std::vector<std::size_t> order(sources_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sources_[a].tariff.price_at(t) < sources_[b].tariff.price_at(t);
  });

  const DemandResponseEvent* dr = active_event(t);
  double grid_remaining =
      dr ? dr->limit_watts : std::numeric_limits<double>::max();

  double remaining = facility_watts;
  for (std::size_t idx : order) {
    if (remaining <= 0.0) break;
    const EnergySource& s = sources_[idx];
    double avail = s.capacity_watts > 0.0
                       ? s.capacity_watts
                       : std::numeric_limits<double>::max();
    if (!s.dispatchable) avail = std::min(avail, grid_remaining);
    const double take = std::min(remaining, avail);
    if (take <= 0.0) continue;
    d.watts[idx] = take;
    remaining -= take;
    if (!s.dispatchable) grid_remaining -= take;
    d.marginal_price = s.tariff.price_at(t);
  }
  d.unserved_watts = std::max(0.0, remaining);
  return d;
}

double SupplyPortfolio::cost_per_hour(const Dispatch& d, sim::SimTime t) const {
  double cost = 0.0;
  for (std::size_t i = 0; i < sources_.size() && i < d.watts.size(); ++i) {
    cost += d.watts[i] / 1000.0 * sources_[i].tariff.price_at(t);
  }
  return cost;
}

}  // namespace epajsrm::power
