// Fixture: mutable function-local static. Must trip local-static; the
// const local static is inventoried but not flagged.
namespace fixture {

int next_ticket() {
  static int issued = 0;
  static const int kStride = 1;
  return issued += kStride;
}

}  // namespace fixture
