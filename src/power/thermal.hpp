// Lumped-RC node thermal model.
//
//   C · dT/dt = P − (T − T_inlet) / R
//
// Exact exponential update between telemetry ticks (power is piecewise
// constant in the discrete-event model, so the ODE has a closed form).
// Feeds the MS3 "do less when it's too hot" policy [11] and LRZ's
// infrastructure-efficiency-aware delays.
#pragma once

#include "platform/cluster.hpp"
#include "power/ledger.hpp"
#include "sim/time.hpp"

namespace epajsrm::power {

/// Advances node temperatures and reports thermal excursions.
class ThermalModel {
 public:
  /// `inlet_offset_c`: how much warmer the node inlet runs than the cooling
  /// loop supply (rack recirculation).
  explicit ThermalModel(double inlet_offset_c = 4.0)
      : inlet_offset_c_(inlet_offset_c) {}

  /// Attaches the power ledger: step_node then posts every temperature it
  /// writes, and inlet_c reads the O(1) cooling-loop load instead of
  /// summing the loop's nodes (which made step_cluster quadratic).
  void attach_ledger(PowerLedger* ledger) { ledger_ = ledger; }

  /// Steady-state temperature of a node drawing `watts` with inlet
  /// `inlet_c`.
  static double steady_state_c(const platform::NodeConfig& cfg, double watts,
                               double inlet_c) {
    return inlet_c + watts * cfg.thermal_resistance;
  }

  /// Exact RC update of one node over `dt`, assuming its current_watts()
  /// was constant across the interval. Writes temperature_c back.
  void step_node(platform::Node& node, double inlet_c, sim::SimTime dt) const;

  /// Steps every node of a cluster over `dt`; inlet temperature comes from
  /// the node's cooling loop supply plus the recirculation offset, degraded
  /// when the loop is overloaded.
  void step_cluster(platform::Cluster& cluster, sim::SimTime dt) const;

  /// Steps nodes [begin, end) — `sink`'s exact range — with the same
  /// update step_cluster applies, but posts temperatures into the shard
  /// instead of the attached ledger. The partitioned scenario core runs
  /// one call per partition concurrently: node writes and shard slices
  /// are disjoint, and the inlet reads (cooling-loop aggregates) are
  /// const for the whole phase because temperature posts never change
  /// power aggregates. Merge the shards afterwards
  /// (PowerLedger::merge_temperature_shards) to restore the classic
  /// sequential outcome bit for bit.
  void step_range(platform::Cluster& cluster, sim::SimTime dt,
                  PowerLedger::TemperatureShard& sink) const;

  /// Inlet temperature seen by `node` right now.
  double inlet_c(const platform::Cluster& cluster,
                 const platform::Node& node) const;

  /// Hottest node temperature in the cluster.
  static double max_temperature_c(const platform::Cluster& cluster);

 private:
  double inlet_offset_c_;
  PowerLedger* ledger_ = nullptr;
};

}  // namespace epajsrm::power
