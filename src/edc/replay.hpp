// Decision-log recording and replay over the EDC boundary.
//
// RecordingTransport wraps any inner transport and captures every
// exchange verbatim — the request batch the core sent and the reply
// batch the component returned. The recording is the run's complete
// external-decision transcript.
//
// ReplayTransport plays a recording back: each exchange asserts that the
// core produced byte-identical request lines to the recorded run (any
// divergence throws ProtocolError naming the first differing line) and
// returns the recorded replies. A full replayed run therefore re-derives
// the original schedule without the original component present — and the
// assertion doubles as the determinism witness the svc result cache
// rests on: if re-running a config could produce different request
// bytes, replay would throw, not silently diverge (DESIGN.md §13/§14).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "edc/transport.hpp"

namespace epajsrm::edc {

/// One recorded exchange: the request batch and the component's replies.
struct RecordedExchange {
  std::vector<std::string> request;
  std::vector<std::string> replies;
};

/// The transcript of a run's exchanges, in exchange order.
using Recording = std::vector<RecordedExchange>;

/// Pass-through transport that records every exchange.
class RecordingTransport final : public Transport {
 public:
  explicit RecordingTransport(std::shared_ptr<Transport> inner);

  std::vector<std::string> exchange(
      const std::vector<std::string>& lines) override;

  std::string describe() const override;

  const Recording& recording() const { return recording_; }
  /// Hands the transcript out for a ReplayTransport.
  Recording take_recording() { return std::move(recording_); }

 private:
  std::shared_ptr<Transport> inner_;
  Recording recording_;
};

/// Replays a recorded transcript, asserting the request stream matches
/// bit-for-bit. Throws ProtocolError on any divergence (extra exchanges,
/// missing exchanges are reported via exhausted()/exchanges_replayed()).
class ReplayTransport final : public Transport {
 public:
  explicit ReplayTransport(Recording recording);

  std::vector<std::string> exchange(
      const std::vector<std::string>& lines) override;

  std::string describe() const override;

  std::size_t exchanges_replayed() const { return next_; }
  /// True when every recorded exchange was consumed — a complete replay.
  bool exhausted() const { return next_ == recording_.size(); }

 private:
  Recording recording_;
  std::size_t next_ = 0;
};

}  // namespace epajsrm::edc
