#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace epajsrm::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 20 && !any_diff; ++i) {
    any_diff = a.uniform(0, 1) != b.uniform(0, 1);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(1, 4);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
    saw_lo |= x == 1;
    saw_hi |= x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, LognormalMedianRoughlyExpMu) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  EXPECT_NEAR(samples[5000], std::exp(2.0), 0.5);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  const std::array<double, 3> weights{0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(Rng, PickReturnsElements) {
  Rng rng(19);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ForkProducesIndependentDeterministicStreams) {
  Rng parent1(42), parent2(42);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(0, 1), child2.uniform(0, 1));
  }
}

}  // namespace
}  // namespace epajsrm::sim
