// System-level conservation properties: energy attributed to jobs plus
// overhead must equal the total integral, exactly, across arbitrarily
// complicated runs (caps, DVFS changes, node cycling, kills). These are
// the invariants production energy reports depend on.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/idle_shutdown.hpp"
#include "epa/power_budget_dvfs.hpp"

namespace epajsrm {
namespace {

/// Runs one scenario and checks energy conservation at the end.
void check_conservation(core::Scenario& scenario) {
  const core::RunResult result = scenario.run();

  double job_joules = 0.0;
  for (const workload::Job* job : scenario.solution().finished_jobs()) {
    job_joules += job->energy_joules();
  }
  // Running/pending jobs at the horizon also carry attributed energy.
  for (const workload::Job* job : scenario.solution().running()) {
    job_joules += job->energy_joules();
  }
  const auto& accountant = scenario.solution().accountant();
  const double total = accountant.total_it_joules();
  const double parts = job_joules + accountant.overhead_joules();
  EXPECT_NEAR(parts, total, 1e-6 * std::max(1.0, total))
      << "jobs=" << job_joules
      << " overhead=" << accountant.overhead_joules() << " total=" << total;
  EXPECT_GT(total, 0.0);

  // Node energies also sum to the total.
  double node_sum = 0.0;
  for (const platform::Node& node : scenario.cluster().nodes()) {
    node_sum += accountant.node_joules(node.id());
  }
  EXPECT_NEAR(node_sum, total, 1e-6 * std::max(1.0, total));
  (void)result;
}

TEST(EnergyConservation, PlainRun) {
  core::ScenarioConfig config;
  config.nodes = 16;
  config.job_count = 40;
  config.horizon = 20 * sim::kDay;
  config.seed = 7;
  config.mix = core::WorkloadMix::kCapacity;
  core::Scenario scenario(config);
  check_conservation(scenario);
}

TEST(EnergyConservation, UnderDvfsBudgetAndSharing) {
  core::ScenarioConfig config;
  config.nodes = 16;
  config.job_count = 40;
  config.horizon = 20 * sim::kDay;
  config.seed = 8;
  config.mix = core::WorkloadMix::kCapacity;
  core::Scenario scenario(config);
  const double budget = 16 * 200.0;
  scenario.solution().add_policy(
      std::make_unique<epa::PowerBudgetDvfsPolicy>(budget));
  scenario.solution().add_policy(
      std::make_unique<epa::DynamicPowerSharePolicy>(budget));
  check_conservation(scenario);
}

TEST(EnergyConservation, WithNodeCyclingTransients) {
  core::ScenarioConfig config;
  config.nodes = 16;
  config.job_count = 30;
  config.horizon = 20 * sim::kDay;
  config.seed = 9;
  config.mix = core::WorkloadMix::kCapacity;
  config.target_utilization = 0.3;  // idle valleys -> boot/shutdown churn
  core::Scenario scenario(config);
  epa::IdleShutdownPolicy::Config idle;
  idle.idle_timeout = 5 * sim::kMinute;
  idle.min_idle_online = 1;
  scenario.solution().add_policy(
      std::make_unique<epa::IdleShutdownPolicy>(idle));
  check_conservation(scenario);
}

TEST(EnergyConservation, SampledSeriesTracksExactIntegral) {
  core::ScenarioConfig config;
  config.nodes = 16;
  config.job_count = 30;
  config.horizon = 20 * sim::kDay;
  config.seed = 10;
  config.mix = core::WorkloadMix::kCapacity;
  core::Scenario scenario(config);
  const core::RunResult result = scenario.run();
  // Sampled (10 s ticks) vs event-exact integrals agree within 5 %.
  EXPECT_NEAR(result.report.total_it_kwh, result.total_it_kwh_exact,
              0.05 * result.total_it_kwh_exact + 0.01);
}

TEST(EnergyConservation, JobEnergyPositiveAndBounded) {
  core::ScenarioConfig config;
  config.nodes = 16;
  config.job_count = 30;
  config.horizon = 20 * sim::kDay;
  config.seed = 11;
  config.mix = core::WorkloadMix::kCapacity;
  core::Scenario scenario(config);
  scenario.run();
  const double peak = scenario.solution().power_model().peak_watts(
      scenario.cluster().node(0).config());
  for (const workload::Job* job : scenario.solution().finished_jobs()) {
    if (job->state() != workload::JobState::kCompleted) continue;
    EXPECT_GT(job->energy_joules(), 0.0);
    const double elapsed =
        sim::to_seconds(job->end_time() - job->start_time());
    const double upper =
        peak * elapsed * static_cast<double>(job->allocated_nodes().size());
    EXPECT_LE(job->energy_joules(), upper * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace epajsrm
