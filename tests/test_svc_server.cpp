// epajsrmd end-to-end over a real socket: the server fixture binds an
// ephemeral TCP port, clients speak the request/envelope protocol through
// the shared carrier, and the acceptance property holds on the wire —
// a repeated identical scenario request is served from cache with a
// byte-identical payload.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/carrier.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace epajsrm {
namespace {

svc::ServiceConfig quick_service() {
  svc::ServiceConfig config;
  config.max_batch = 4;
  return config;
}

// Binds tcp:0, serves on a background thread, joins on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(svc::ServiceConfig config = quick_service())
      : server_(config), thread_([this] { server_.serve(); }) {}

  ~ServerFixture() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const { return server_.port(); }
  svc::Server& server() { return server_; }

 private:
  svc::Server server_;
  std::thread thread_;
};

struct Response {
  svc::Envelope envelope;
  std::vector<std::string> payload;
};

Response read_response(net::LineChannel& channel) {
  Response response;
  std::string line;
  if (!channel.read_line(line)) {
    throw std::runtime_error("server closed before the envelope");
  }
  response.envelope = svc::parse_envelope(line);
  for (std::uint64_t i = 0; i < response.envelope.payload_lines; ++i) {
    if (!channel.read_line(line)) {
      throw std::runtime_error("server closed mid-payload");
    }
    response.payload.push_back(line);
  }
  return response;
}

Response roundtrip(net::LineChannel& channel, const svc::Request& request) {
  channel.write_line(svc::serialize_request(request));
  return read_response(channel);
}

svc::Request smoke_submit(std::uint64_t seed) {
  svc::Request request;
  request.op = svc::Request::Op::kSubmit;
  request.template_name = "smoke";
  request.has_seed = true;
  request.seed = seed;
  return request;
}

TEST(SvcServer, RepeatedSubmitAcrossConnectionsIsCachedByteIdentical) {
  ServerFixture fixture;

  net::LineChannel first = net::connect_tcp(fixture.port());
  const Response a = roundtrip(first, smoke_submit(42));
  ASSERT_EQ(a.envelope.status, "done");
  EXPECT_EQ(a.envelope.op, "submit");
  EXPECT_FALSE(a.envelope.cached);
  ASSERT_EQ(a.payload.size(), 1u);
  EXPECT_NE(a.payload[0].find("\"seed\":42"), std::string::npos);
  first.close();

  // A fresh connection, same scenario: the acceptance property — served
  // from cache, payload bytes identical to the recompute.
  net::LineChannel second = net::connect_tcp(fixture.port());
  const Response b = roundtrip(second, smoke_submit(42));
  ASSERT_EQ(b.envelope.status, "done");
  EXPECT_TRUE(b.envelope.cached);
  ASSERT_EQ(b.payload.size(), 1u);
  EXPECT_EQ(a.payload[0], b.payload[0]);

  // A different seed is a different scenario: recomputed, not aliased.
  const Response c = roundtrip(second, smoke_submit(43));
  ASSERT_EQ(c.envelope.status, "done");
  EXPECT_FALSE(c.envelope.cached);
  EXPECT_NE(c.payload[0], b.payload[0]);
}

TEST(SvcServer, PartitionsFieldRoundTripsAndSharesTheCacheEntry) {
  // The wire knob survives serialize -> parse untouched...
  svc::Request fanned = smoke_submit(21);
  fanned.has_partitions = true;
  fanned.partitions = 4;
  const svc::Request reparsed =
      svc::parse_request(svc::serialize_request(fanned));
  EXPECT_TRUE(reparsed.has_partitions);
  EXPECT_EQ(reparsed.partitions, 4u);
  const svc::Request plain = svc::parse_request(
      svc::serialize_request(smoke_submit(21)));
  EXPECT_FALSE(plain.has_partitions);

  // ...and on the live server it only shapes execution: a submit that
  // fans the run across partitions is served from the cache entry the
  // classic run populated, byte for byte.
  ServerFixture fixture;
  net::LineChannel channel = net::connect_tcp(fixture.port());
  const Response classic = roundtrip(channel, smoke_submit(21));
  ASSERT_EQ(classic.envelope.status, "done");
  EXPECT_FALSE(classic.envelope.cached);

  const Response partitioned = roundtrip(channel, fanned);
  ASSERT_EQ(partitioned.envelope.status, "done");
  EXPECT_TRUE(partitioned.envelope.cached);
  ASSERT_EQ(partitioned.payload.size(), 1u);
  EXPECT_EQ(partitioned.payload[0], classic.payload[0]);
}

TEST(SvcServer, MalformedLineYieldsErrorEnvelopeAndConnectionSurvives) {
  ServerFixture fixture;
  net::LineChannel channel = net::connect_tcp(fixture.port());

  channel.write_line("this is not a request");
  const Response bad = read_response(channel);
  EXPECT_EQ(bad.envelope.status, "error");
  EXPECT_FALSE(bad.envelope.error.empty());
  EXPECT_EQ(bad.payload.size(), 0u);

  // The connection keeps multiplexing requests after the error.
  svc::Request request;
  request.op = svc::Request::Op::kTemplates;
  const Response templates = roundtrip(channel, request);
  EXPECT_EQ(templates.envelope.status, "ok");
  EXPECT_EQ(templates.payload.size(), 3u);  // smoke, study, energy-budget
  bool saw_smoke = false;
  for (const std::string& line : templates.payload) {
    if (line.find("\"template\":\"smoke\"") != std::string::npos) {
      saw_smoke = true;
    }
  }
  EXPECT_TRUE(saw_smoke);

  // Unknown template: a structured error, not a dropped connection.
  svc::Request missing = smoke_submit(1);
  missing.template_name = "no-such-template";
  const Response error = roundtrip(channel, missing);
  EXPECT_EQ(error.envelope.status, "error");
  EXPECT_NE(error.envelope.error.find("no-such-template"), std::string::npos);
}

TEST(SvcServer, SweepReturnsIdsAndPollDrainsThem) {
  ServerFixture fixture;
  net::LineChannel channel = net::connect_tcp(fixture.port());

  svc::Request sweep;
  sweep.op = svc::Request::Op::kSweep;
  sweep.template_name = "smoke";
  sweep.seeds = {11, 12, 13};
  const Response admitted = roundtrip(channel, sweep);
  ASSERT_EQ(admitted.envelope.status, "ok");
  ASSERT_EQ(admitted.envelope.ids.size(), 3u);

  for (const std::uint64_t id : admitted.envelope.ids) {
    svc::Request poll;
    poll.op = svc::Request::Op::kPoll;
    poll.id = id;
    Response status = roundtrip(channel, poll);
    while (status.envelope.status == "queued" ||
           status.envelope.status == "running") {
      status = roundtrip(channel, poll);
    }
    ASSERT_EQ(status.envelope.status, "done") << status.envelope.error;
    ASSERT_EQ(status.payload.size(), 1u);
  }

  svc::Request stats;
  stats.op = svc::Request::Op::kStats;
  const Response counters = roundtrip(channel, stats);
  EXPECT_EQ(counters.envelope.status, "ok");
  ASSERT_EQ(counters.payload.size(), 1u);
  EXPECT_NE(counters.payload[0].find("\"completed\":3"), std::string::npos);
}

TEST(SvcServer, NoWaitSubmitQueuesThenPollsToDone) {
  ServerFixture fixture;
  net::LineChannel channel = net::connect_tcp(fixture.port());

  svc::Request submit = smoke_submit(77);
  submit.wait = false;
  const Response queued = roundtrip(channel, submit);
  ASSERT_EQ(queued.envelope.status, "queued");
  ASSERT_NE(queued.envelope.id, 0u);
  EXPECT_EQ(queued.payload.size(), 0u);

  svc::Request poll;
  poll.op = svc::Request::Op::kPoll;
  poll.id = queued.envelope.id;
  Response status = roundtrip(channel, poll);
  while (status.envelope.status == "queued" ||
         status.envelope.status == "running") {
    status = roundtrip(channel, poll);
  }
  ASSERT_EQ(status.envelope.status, "done") << status.envelope.error;
  ASSERT_EQ(status.payload.size(), 1u);

  // Polling an id nobody issued is an error envelope.
  poll.id = 999'999;
  const Response unknown = roundtrip(channel, poll);
  EXPECT_EQ(unknown.envelope.status, "error");
  EXPECT_EQ(unknown.envelope.error, "unknown id");
}

TEST(SvcServer, ShutdownOpAcknowledgesAndStopsTheServer) {
  auto fixture = std::make_unique<ServerFixture>();
  net::LineChannel channel = net::connect_tcp(fixture->port());

  const Response warm = roundtrip(channel, smoke_submit(5));
  ASSERT_EQ(warm.envelope.status, "done");

  svc::Request shutdown;
  shutdown.op = svc::Request::Op::kShutdown;
  const Response ack = roundtrip(channel, shutdown);
  EXPECT_EQ(ack.envelope.status, "ok");

  // serve() returns; the fixture destructor join is now prompt.
  fixture.reset();
}

}  // namespace
}  // namespace epajsrm
