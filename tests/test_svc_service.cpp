// ScenarioService: the determinism-keyed result cache (hit / miss /
// eviction, and the evict-and-recompute byte-identity proof the cache's
// soundness argument rests on), admission control (deterministic quota
// and queue-full rejects, concurrent backpressure), and the LRU /
// admission primitives themselves.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "svc/admission.hpp"
#include "svc/cache.hpp"
#include "svc/templates.hpp"

namespace epajsrm {
namespace {

using svc::AdmissionOutcome;
using svc::ScenarioService;

core::ScenarioConfig smoke_config(std::uint64_t seed) {
  svc::TemplateOverrides overrides;
  overrides.seed = seed;
  return svc::TemplateStore::with_builtins().instantiate("smoke", overrides);
}

// --- ResultCache ------------------------------------------------------------

TEST(ResultCache, MissThenHitThenLruEviction) {
  svc::ResultCache cache(2);
  EXPECT_EQ(cache.find("a"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert("a", {"payload-a"});
  cache.insert("b", {"payload-b"});
  const std::vector<std::string>* a = cache.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ((*a)[0], "payload-a");
  EXPECT_EQ(cache.hits(), 1u);

  // "a" was just refreshed, so inserting "c" evicts "b", not "a".
  cache.insert("c", {"payload-c"});
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
}

TEST(ResultCache, InsertRefreshesExistingEntry) {
  svc::ResultCache cache(2);
  cache.insert("a", {"v1"});
  cache.insert("a", {"v2"});
  EXPECT_EQ(cache.size(), 1u);
  const std::vector<std::string>* a = cache.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ((*a)[0], "v2");
}

TEST(ResultCache, ZeroCapacityIsClampedToOne) {
  svc::ResultCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.insert("a", {"v"});
  EXPECT_NE(cache.find("a"), nullptr);
}

// --- AdmissionController ----------------------------------------------------

TEST(Admission, QuotaCountsPerTenantAndReleases) {
  svc::AdmissionConfig config;
  config.max_queue = 64;
  config.max_inflight_per_tenant = 2;
  svc::AdmissionController admission(config);

  EXPECT_EQ(admission.try_admit("alice"), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.try_admit("alice"), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.try_admit("alice"), AdmissionOutcome::kTenantQuota);
  // A quota reject charges nothing and other tenants are unaffected.
  EXPECT_EQ(admission.inflight("alice"), 2u);
  EXPECT_EQ(admission.try_admit("bob"), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.inflight_total(), 3u);

  admission.release("alice");
  EXPECT_EQ(admission.try_admit("alice"), AdmissionOutcome::kAdmitted);

  // Draining a tenant drops its stats entry entirely.
  admission.release("alice");
  admission.release("alice");
  admission.release("bob");
  EXPECT_EQ(admission.inflight_total(), 0u);
  EXPECT_EQ(admission.tenant_count(), 0u);
}

TEST(Admission, QueueBoundIsServiceWide) {
  svc::AdmissionConfig config;
  config.max_queue = 2;
  config.max_inflight_per_tenant = 16;
  svc::AdmissionController admission(config);
  EXPECT_EQ(admission.try_admit("a"), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.try_admit("b"), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.try_admit("c"), AdmissionOutcome::kQueueFull);
  admission.release("a");
  EXPECT_EQ(admission.try_admit("c"), AdmissionOutcome::kAdmitted);
}

// --- ScenarioService: cache soundness ---------------------------------------

TEST(SvcService, RepeatSubmitIsServedFromCacheByteIdentical) {
  ScenarioService service;

  const ScenarioService::SubmitOutcome first =
      service.submit("t", smoke_config(5));
  ASSERT_EQ(first.admission, AdmissionOutcome::kAdmitted);
  EXPECT_FALSE(first.served_from_cache);
  const svc::RequestStatus done = service.wait(first.id);
  ASSERT_EQ(done.state, svc::RequestState::kDone);
  EXPECT_FALSE(done.cached);
  ASSERT_FALSE(done.payload.empty());

  const ScenarioService::SubmitOutcome second =
      service.submit("t", smoke_config(5));
  EXPECT_TRUE(second.served_from_cache);
  const svc::RequestStatus cached = service.wait(second.id);
  ASSERT_EQ(cached.state, svc::RequestState::kDone);
  EXPECT_TRUE(cached.cached);
  EXPECT_EQ(cached.payload, done.payload);  // byte-identical
  EXPECT_EQ(cached.scenario_hash, done.scenario_hash);

  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  service.stop();
}

// The acceptance proof: evict the entry, force a recompute, and the
// recomputed payload is byte-for-byte the bytes the cache would have
// returned. Cached responses are indistinguishable from fresh ones.
TEST(SvcService, EvictAndRecomputeProducesByteIdenticalPayload) {
  svc::ServiceConfig config;
  config.cache_capacity = 1;
  ScenarioService service(config);

  const auto first = service.submit("t", smoke_config(1));
  const svc::RequestStatus original = service.wait(first.id);
  ASSERT_EQ(original.state, svc::RequestState::kDone);

  // A different scenario evicts seed 1 from the capacity-1 cache.
  const auto evictor = service.submit("t", smoke_config(2));
  ASSERT_EQ(service.wait(evictor.id).state, svc::RequestState::kDone);
  EXPECT_GE(service.stats().cache_evictions, 1u);

  // Seed 1 again: a miss (recompute), not a hit.
  const auto recompute = service.submit("t", smoke_config(1));
  EXPECT_FALSE(recompute.served_from_cache);
  const svc::RequestStatus fresh = service.wait(recompute.id);
  ASSERT_EQ(fresh.state, svc::RequestState::kDone);
  EXPECT_FALSE(fresh.cached);

  EXPECT_EQ(fresh.payload, original.payload);
  service.stop();
}

TEST(SvcService, NormalizationWidensCacheAcrossObsOnlyDifferences) {
  ScenarioService service;
  const auto first = service.submit("t", smoke_config(3));
  ASSERT_EQ(service.wait(first.id).state, svc::RequestState::kDone);

  // Same scenario, different obs plane + decision-log recording: fields
  // that cannot reach the result payload must not fracture the cache.
  core::ScenarioConfig traced = smoke_config(3);
  traced.solution.obs.enabled = true;
  traced.solution.obs.trace_log_lines = true;
  traced.solution.record_decision_log = true;
  const auto second = service.submit("t", traced);
  EXPECT_TRUE(second.served_from_cache);
  service.stop();
}

TEST(SvcService, PartitionCountIsAnExecutionKnobOutsideTheCacheKey) {
  ScenarioService service;
  const auto classic = service.submit("t", smoke_config(9));
  const svc::RequestStatus classic_done = service.wait(classic.id);
  ASSERT_EQ(classic_done.state, svc::RequestState::kDone);

  // Same scenario fanned out across the lax-sync partition core: the run
  // is bit-identical by construction (DESIGN.md §15), so the partition
  // count must not fracture the cache — every count aliases one entry.
  for (const std::uint32_t partitions : {2u, 4u, 8u}) {
    core::ScenarioConfig partitioned = smoke_config(9);
    partitioned.partitions = partitions;
    const auto again = service.submit("t", partitioned);
    EXPECT_TRUE(again.served_from_cache) << partitions << " partitions";
    EXPECT_EQ(service.wait(again.id).payload, classic_done.payload);
  }
  EXPECT_EQ(service.stats().cache_misses, 1u);
  service.stop();
}

TEST(SvcService, ReportPayloadIsCachedUnderItsOwnKey) {
  ScenarioService service;
  const auto plain = service.submit("t", smoke_config(4), false);
  const svc::RequestStatus plain_done = service.wait(plain.id);
  ASSERT_EQ(plain_done.state, svc::RequestState::kDone);
  EXPECT_EQ(plain_done.payload.size(), 1u);

  // want_report renders a different payload shape, so the first report
  // request is a miss even though the scenario itself is cached.
  const auto report = service.submit("t", smoke_config(4), true);
  EXPECT_FALSE(report.served_from_cache);
  const svc::RequestStatus report_done = service.wait(report.id);
  ASSERT_EQ(report_done.state, svc::RequestState::kDone);
  EXPECT_GT(report_done.payload.size(), 1u);
  EXPECT_EQ(report_done.payload[0], plain_done.payload[0]);

  const auto report_again = service.submit("t", smoke_config(4), true);
  EXPECT_TRUE(report_again.served_from_cache);
  EXPECT_EQ(service.wait(report_again.id).payload, report_done.payload);
  service.stop();
}

// --- ScenarioService: admission + lifecycle ---------------------------------

TEST(SvcService, QueueFullRejectCarriesRetryHint) {
  svc::ServiceConfig config;
  config.admission.max_queue = 0;
  config.admission.retry_after_ms = 333;
  ScenarioService service(config);

  const auto outcome = service.submit("t", smoke_config(1));
  EXPECT_EQ(outcome.admission, AdmissionOutcome::kQueueFull);
  EXPECT_EQ(outcome.id, 0u);
  EXPECT_EQ(outcome.retry_after_ms, 333);
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);
  service.stop();
}

TEST(SvcService, TenantQuotaRejectIsDeterministic) {
  svc::ServiceConfig config;
  config.admission.max_inflight_per_tenant = 0;
  ScenarioService service(config);

  const auto outcome = service.submit("t", smoke_config(1));
  EXPECT_EQ(outcome.admission, AdmissionOutcome::kTenantQuota);
  EXPECT_EQ(service.stats().rejected_tenant_quota, 1u);
  service.stop();
}

TEST(SvcService, InvalidConfigAndUnknownTemplateThrow) {
  ScenarioService service;
  core::ScenarioConfig broken = smoke_config(1);
  broken.nodes = 0;
  EXPECT_THROW(service.submit("t", broken), std::invalid_argument);
  EXPECT_THROW(service.submit_template("t", "no-such-template",
                                       svc::TemplateOverrides{}),
               std::invalid_argument);
  service.stop();
}

TEST(SvcService, UnknownIdAndLateCancel) {
  ScenarioService service;
  EXPECT_FALSE(service.status(999).known);
  // wait() on an unknown id returns immediately instead of blocking.
  EXPECT_FALSE(service.wait(999).known);

  const auto outcome = service.submit("t", smoke_config(6));
  ASSERT_EQ(service.wait(outcome.id).state, svc::RequestState::kDone);
  EXPECT_FALSE(service.cancel(outcome.id));  // terminal: too late
  service.stop();
}

TEST(SvcService, StopFailsQueuedRequestsInsteadOfHanging) {
  ScenarioService service;
  // Race stop() against freshly queued work: every submitted request must
  // still reach a terminal state.
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    const auto outcome = service.submit("t", smoke_config(seed));
    if (outcome.id != 0) ids.push_back(outcome.id);
  }
  service.stop();
  for (const std::uint64_t id : ids) {
    const svc::RequestStatus status = service.wait(id);
    EXPECT_TRUE(status.state == svc::RequestState::kDone ||
                status.state == svc::RequestState::kFailed)
        << to_string(status.state);
  }
}

// Concurrent clients against tight quotas: the tsan payload. Counts are
// load-dependent, but the accounting invariants are not.
TEST(SvcService, ConcurrentSubmissionsRespectBackpressureInvariants) {
  svc::ServiceConfig config;
  config.admission.max_queue = 4;
  config.admission.max_inflight_per_tenant = 2;
  config.max_batch = 2;
  ScenarioService service(config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      // Fire all submissions back-to-back (no waiting in between) so the
      // tenant quota and queue bound actually engage, then await the
      // admitted ones.
      std::vector<std::uint64_t> ids;
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t seed =
            100 + static_cast<std::uint64_t>(t * kPerThread + i);
        const auto outcome = service.submit(tenant, smoke_config(seed));
        if (outcome.admission == AdmissionOutcome::kAdmitted) {
          admitted.fetch_add(1);
          ids.push_back(outcome.id);
        } else {
          rejected.fetch_add(1);
          EXPECT_GT(outcome.retry_after_ms, 0);
        }
      }
      for (const std::uint64_t id : ids) {
        EXPECT_EQ(service.wait(id).state, svc::RequestState::kDone);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(admitted.load() + rejected.load(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GT(admitted.load(), 0u);

  const svc::ServiceStats stats = service.stats();
  // submitted counts every attempt (admitted, cached, or rejected).
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, admitted.load());
  EXPECT_EQ(stats.rejected_queue_full + stats.rejected_tenant_quota,
            rejected.load());
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  service.stop();
}

}  // namespace
}  // namespace epajsrm
