// The survey questionnaire (Section IV): the eight questions, their
// sub-items and the paper's stated rationale, as data — so tooling can
// render the instrument and map answers onto the framework's measurable
// quantities.
#pragma once

#include <string>
#include <vector>

namespace epajsrm::survey {

/// One survey question.
struct Question {
  std::string id;  ///< "Q1".."Q8"
  std::string text;
  std::vector<std::string> sub_items;  ///< (a), (b), ... where present
  std::string rationale;               ///< the paper's explanation
  /// Framework quantities that answer the question for a simulated center
  /// (empty when the question is organisational).
  std::vector<std::string> measured_by;
};

/// All eight questions in order.
const std::vector<Question>& questionnaire();

/// Lookup by id; throws std::out_of_range when unknown.
const Question& question(const std::string& id);

/// Renders the full instrument as text (the Section IV listing).
std::string format_questionnaire();

}  // namespace epajsrm::survey
