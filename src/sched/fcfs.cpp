#include "sched/fcfs.hpp"

namespace epajsrm::sched {

void FcfsScheduler::schedule(SchedulingContext& ctx) {
  // pending() is a snapshot; try_start mutates the underlying queue, so
  // walk a copy.
  const std::vector<workload::Job*> queue = ctx.pending();
  for (workload::Job* job : queue) {
    if (!ctx.try_start(*job, nullptr)) {
      break;  // strict FCFS: the head blocks
    }
  }
}

}  // namespace epajsrm::sched
