// Retry policy for lossy control channels: bounded exponential backoff
// with deterministic jitter and a circuit breaker.
//
// Header-only and dependency-free below sim/ so the power control plane
// can adopt it without linking the fault library. Jitter is derived from
// splitmix64 over an explicit stream counter — never wall-clock or
// std::rand — so a retried run replays bit-identically.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace epajsrm::fault {

/// Tunables of one control channel's retry behaviour.
struct RetryPolicy {
  /// Attempts per logical call (1 = no retries).
  std::uint32_t max_attempts = 3;
  /// An attempt slower than this counts as failed even if the transport
  /// delivered it (client-side timeout).
  double timeout_us = 500.0;
  /// Backoff before attempt k (k >= 2) is base * 2^(k-2), capped at max.
  double backoff_base_us = 100.0;
  double backoff_max_us = 10000.0;
  /// Backoff is multiplied by a factor in [1 - j/2, 1 + j/2].
  double jitter_fraction = 0.25;
  /// Consecutive *call* (not attempt) failures that open the breaker;
  /// 0 disables the breaker.
  std::uint32_t breaker_threshold = 5;
  /// While open, calls fast-fail until this much sim time has passed; the
  /// first call after the cooldown is the half-open probe.
  sim::SimTime breaker_cooldown = 5 * sim::kMinute;
};

/// Deterministic backoff before attempt `attempt` (2-based; attempt 1 has
/// none). `stream` selects the jitter draw — pass a per-call-site counter
/// so successive calls decorrelate but replay identically.
inline double backoff_us(const RetryPolicy& policy, std::uint32_t attempt,
                         std::uint64_t stream) {
  if (attempt < 2) return 0.0;
  const std::uint32_t exp = std::min(attempt - 2, 62u);
  const double base = std::min(policy.backoff_base_us *
                                   static_cast<double>(std::uint64_t{1} << exp),
                               policy.backoff_max_us);
  // splitmix64 output mapped to [0,1): 53 high bits as a double mantissa.
  const double unit = static_cast<double>(sim::splitmix64(stream) >> 11) *
                      (1.0 / 9007199254740992.0);
  const double factor = 1.0 + policy.jitter_fraction * (unit - 0.5);
  return base * std::max(0.0, factor);
}

}  // namespace epajsrm::fault
