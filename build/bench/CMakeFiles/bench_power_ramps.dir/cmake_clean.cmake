file(REMOVE_RECURSE
  "CMakeFiles/bench_power_ramps.dir/bench_power_ramps.cpp.o"
  "CMakeFiles/bench_power_ramps.dir/bench_power_ramps.cpp.o.d"
  "bench_power_ramps"
  "bench_power_ramps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_ramps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
