#include "telemetry/monitor.hpp"

#include <algorithm>

#include "check/contract.hpp"

namespace epajsrm::telemetry {

MonitoringService::MonitoringService(sim::Simulation& sim,
                                     platform::Cluster& cluster,
                                     const power::PowerLedger& ledger,
                                     sim::SimTime period, std::size_t history)
    : sim_(&sim), cluster_(&cluster), ledger_(&ledger), period_(period),
      machine_power_(history, period > 0 ? period : sim::kSecond),
      facility_power_(history, period > 0 ? period : sim::kSecond),
      utilization_(history, period > 0 ? period : sim::kSecond),
      max_temperature_(history, period > 0 ? period : sim::kSecond) {
  EPAJSRM_REQUIRE(ledger.node_count() == cluster.node_count(),
                  "ledger must cover the monitored cluster");
  const sim::SimTime width = period > 0 ? period : sim::kSecond;
  for (std::size_t i = 0; i < cluster.facility().pdus().size(); ++i) {
    pdu_power_.push_back(
        std::make_unique<obs::DownsamplingSeries>(history, width));
  }
  EPAJSRM_ENSURE(pdu_power_.size() == cluster.facility().pdus().size(),
                 "one retained series per facility PDU");
  build_sensors();
}

void MonitoringService::attach_registry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    stale_served_counter_ = nullptr;
    dropped_counter_ = nullptr;
    altered_counter_ = nullptr;
    return;
  }
  stale_served_counter_ = &registry->counter("telemetry.stale_served");
  dropped_counter_ = &registry->counter("telemetry.dropped_samples");
  altered_counter_ = &registry->counter("telemetry.altered_samples");
}

void MonitoringService::build_sensors() {
  const std::string root = cluster_->name();
  platform::Cluster* cluster = cluster_;
  const power::PowerLedger* ledger = ledger_;

  registry_.add({root + ".power", SensorKind::kPowerWatts,
                 [ledger] { return ledger->it_power_watts(); }});
  registry_.add({root + ".utilization", SensorKind::kUtilization,
                 [cluster] { return cluster->core_utilization(); }});

  for (const platform::Pdu& pdu : cluster_->facility().pdus()) {
    const platform::PduId id = pdu.id;
    registry_.add({root + ".plant." + pdu.name + ".power",
                   SensorKind::kPowerWatts,
                   [ledger, id] { return ledger->pdu_power_watts(id); }});
  }

  for (const platform::Node& node : cluster_->nodes()) {
    const platform::NodeId id = node.id();
    const std::string base = root + ".rack" + std::to_string(node.rack()) +
                             ".node" + std::to_string(id);
    registry_.add({base + ".power", SensorKind::kPowerWatts,
                   [ledger, id] { return ledger->node_watts(id); }});
    registry_.add({base + ".temp", SensorKind::kTemperatureC, [ledger, id] {
                     return ledger->node_temperature_c(id);
                   }});
  }
}

double MonitoringService::measured_it_watts(sim::SimTime now) const {
  const std::optional<obs::SeriesSample> last = machine_power_.latest();
  // Nothing retained yet (start-up, or the series was configured away):
  // the live reading is the only information there is.
  if (!last.has_value()) return ledger_->it_power_watts();
  if (now - last->time <= 2 * period_) return last->value;
  // Stale: serve last-known-good inflated by the safety margin so cap
  // policies err on the conservative side while the sensor is out.
  ++stale_served_;
  if (stale_served_counter_ != nullptr) stale_served_counter_->add(1);
  return last->value * stale_safety_margin_;
}

bool MonitoringService::telemetry_degraded(sim::SimTime now) const {
  const std::optional<obs::SeriesSample> last = machine_power_.latest();
  return last.has_value() && now - last->time > 2 * period_;
}

void MonitoringService::sample(sim::SimTime now) {
  const double it_watts = ledger_->it_power_watts();
  bool record_machine = true;
  double machine_watts = it_watts;
  if (power_filter_) {
    const std::optional<double> filtered = power_filter_(now, it_watts);
    if (!filtered.has_value()) {
      record_machine = false;
      ++dropped_samples_;
      if (dropped_counter_ != nullptr) dropped_counter_->add(1);
    } else {
      machine_watts = *filtered;
      if (machine_watts != it_watts) {
        ++altered_samples_;
        if (altered_counter_ != nullptr) altered_counter_->add(1);
      }
    }
  }
  if (record_machine) machine_power_.record(now, machine_watts);
  facility_power_.record(now,
                         cluster_->facility().facility_watts(it_watts, now));
  utilization_.record(now, utilization_provider_
                               ? utilization_provider_()
                               : cluster_->core_utilization());
  max_temperature_.record(now, ledger_->max_temperature_c());
  for (std::size_t i = 0; i < pdu_power_.size(); ++i) {
    pdu_power_[i]->record(
        now, ledger_->pdu_power_watts(static_cast<platform::PduId>(i)));
  }
  ++ticks_;
}

void MonitoringService::start() {
  if (running_) return;
  running_ = true;
  sim_->schedule_every(
      period_,
      [this]() -> bool {
        if (!running_) return false;
        tick(sim_->now());
        return true;
      },
      "telemetry.sample");
}

}  // namespace epajsrm::telemetry
