// Jobs: the unit of work the scheduler manages.
//
// A JobSpec is the immutable submission (what the user asked for plus the
// ground truth the simulator knows but the scheduler must not read); a Job
// is the runtime record with state, allocation and progress accounting.
//
// Progress accounting implements the Etinski/Freeh runtime model
// (DESIGN.md §5): a job owns `work` expressed in reference-seconds; its
// progress rate ("speed") depends on the slowest allocated node's effective
// frequency and on placement spread. Speed changes (DVFS, cap changes) are
// handled by banking progress at the old speed and rescheduling completion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/ids.hpp"
#include "sim/time.hpp"

namespace epajsrm::workload {

using platform::JobId;
using platform::NodeId;

/// Application behaviour class — what EPA decisions need to know about how
/// the code uses the machine.
struct AppProfile {
  /// β: fraction of runtime that scales with 1/f (compute phases). The
  /// remaining 1−β is frequency-insensitive (memory/communication stalls).
  double freq_sensitive_fraction = 0.7;
  /// Fraction of runtime spent communicating; placement spread stretches
  /// this part (topology-aware allocation shrinks it).
  double comm_fraction = 0.15;
  /// How hard the code drives its cores, in (0,1]; scales dynamic power.
  double power_intensity = 1.0;
};

/// An alternative shape for a moldable job [5][35][37]: running on
/// `nodes` nodes takes `runtime_scale` × the base reference runtime.
struct MoldableConfig {
  std::uint32_t nodes = 1;
  double runtime_scale = 1.0;
};

/// Immutable job submission record.
struct JobSpec {
  JobId id = platform::kNoJob;
  std::string user = "user";
  /// Application tag — the identity predictors and per-app frequency
  /// characterisation (LRZ) key on.
  std::string tag = "app";
  std::uint32_t nodes = 1;           ///< nodes requested (base shape)
  std::uint32_t cores_per_node = 0;  ///< 0 = whole node
  /// User-supplied walltime limit (the scheduler kills at this point and
  /// backfilling plans with it). Typically an overestimate.
  sim::SimTime walltime_estimate = sim::kHour;
  /// Ground-truth runtime at reference frequency with compact placement.
  /// Hidden from scheduling decisions; used only to drive the simulation.
  sim::SimTime runtime_ref = 30 * sim::kMinute;
  AppProfile profile;
  sim::SimTime submit_time = 0;
  int priority = 0;  ///< larger = more important
  /// True when the job may be delayed for cost/energy reasons (cost-aware
  /// ordering policies only move deferrable work).
  bool deferrable = false;
  /// Completion deadline for deferrable work; 0 = none.
  sim::SimTime deadline = 0;
  /// Alternative shapes; empty = rigid job.
  std::vector<MoldableConfig> moldable;

  /// Requested core total of the base shape given a node's core count.
  std::uint64_t total_cores(std::uint32_t node_cores) const {
    const std::uint32_t per =
        cores_per_node == 0 ? node_cores : cores_per_node;
    return static_cast<std::uint64_t>(nodes) * per;
  }
};

/// Lifecycle of a job inside the JSRM stack.
enum class JobState {
  kQueued,     ///< waiting in a scheduler queue
  kStarting,   ///< allocation chosen; waiting for node boot
  kRunning,
  kCompleted,  ///< finished its work
  kKilled,     ///< terminated (walltime limit or emergency response)
  kCancelled,  ///< removed before it ever started
};

const char* to_string(JobState s);

/// Runtime record for one job.
class Job {
 public:
  explicit Job(JobSpec spec);

  const JobSpec& spec() const { return spec_; }
  JobId id() const { return spec_.id; }

  JobState state() const { return state_; }
  void set_state(JobState s) { state_ = s; }

  // --- allocation ---------------------------------------------------------

  /// Nodes the job runs on (filled when it starts).
  const std::vector<NodeId>& allocated_nodes() const { return nodes_; }
  void set_allocated_nodes(std::vector<NodeId> nodes) {
    nodes_ = std::move(nodes);
  }
  std::uint32_t cores_per_node_allocated() const { return cores_alloc_; }
  void set_cores_per_node_allocated(std::uint32_t c) { cores_alloc_ = c; }

  /// The moldable shape actually chosen (1.0 runtime scale for the base
  /// shape).
  double runtime_scale() const { return runtime_scale_; }
  void set_runtime_scale(double s) { runtime_scale_ = s; }

  /// Normalised placement spread in [0,1] frozen at start time.
  double placement_spread() const { return placement_spread_; }
  void set_placement_spread(double s) { placement_spread_ = s; }

  // --- timeline -----------------------------------------------------------

  sim::SimTime submit_time() const { return spec_.submit_time; }
  sim::SimTime start_time() const { return start_time_; }
  void set_start_time(sim::SimTime t) { start_time_ = t; }
  sim::SimTime end_time() const { return end_time_; }
  void set_end_time(sim::SimTime t) { end_time_ = t; }

  sim::SimTime wait_time() const {
    return start_time_ >= submit_time() ? start_time_ - submit_time() : 0;
  }

  // --- progress accounting (Etinski/Freeh model) ---------------------------

  /// Total reference-seconds of work, including moldable-shape and
  /// placement-spread stretching. Set once at start.
  double work_total() const { return work_total_; }
  double work_done() const { return work_done_; }

  /// Progress rate (reference-seconds per second) at a given effective
  /// frequency ratio: speed(f) = 1 / (β/f + (1 − β)).
  double speed_at(double freq_ratio) const;

  /// Initialises progress accounting at job start.
  void begin_execution(sim::SimTime now, double freq_ratio);

  /// Banks progress up to `now` at the current speed, then switches to the
  /// speed implied by `freq_ratio`. Returns the remaining wall-clock time
  /// to completion at the new speed (SimTime).
  sim::SimTime update_speed(sim::SimTime now, double freq_ratio);

  /// Remaining wall-clock time at the current speed.
  sim::SimTime remaining_time(sim::SimTime now) const;

  double current_speed() const { return speed_; }

  /// Generation counter for invalidating stale completion events: bump on
  /// every reschedule, check on fire.
  std::uint64_t completion_generation() const { return completion_gen_; }
  std::uint64_t bump_completion_generation() { return ++completion_gen_; }

  // --- accounting ----------------------------------------------------------

  /// Energy attributed to this job (set by telemetry::EnergyAccountant).
  double energy_joules() const { return energy_joules_; }
  void add_energy_joules(double j) { energy_joules_ += j; }

  /// Planning-time estimate of the whole allocation's energy (predicted
  /// per-node draw × nodes × walltime estimate), frozen by the core at
  /// submission. Energy-budget admission ranks and charges against this,
  /// and the EDC `job_submitted` message carries it verbatim so external
  /// schedulers plan with the identical number.
  double estimated_energy_joules() const { return estimated_energy_j_; }
  void set_estimated_energy_joules(double j) { estimated_energy_j_ = j; }

 private:
  JobSpec spec_;
  JobState state_ = JobState::kQueued;

  std::vector<NodeId> nodes_;
  std::uint32_t cores_alloc_ = 0;
  double runtime_scale_ = 1.0;
  double placement_spread_ = 0.0;

  sim::SimTime start_time_ = -1;
  sim::SimTime end_time_ = -1;

  double work_total_ = 0.0;
  double work_done_ = 0.0;
  double speed_ = 1.0;
  sim::SimTime last_update_ = 0;
  std::uint64_t completion_gen_ = 0;

  double energy_joules_ = 0.0;
  double estimated_energy_j_ = 0.0;
};

}  // namespace epajsrm::workload
