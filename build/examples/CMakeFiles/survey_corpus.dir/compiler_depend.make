# Empty compiler generated dependencies file for survey_corpus.
# This may be replaced when dependencies are built.
