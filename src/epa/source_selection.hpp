// Energy-source selection — RIKEN's research row: "integrating job
// scheduler info with decision to use grid vs. gas turbine energy". The K
// computer site runs co-generation gas turbines; when grid power is
// constrained (price, DR, capacity), dispatchable on-site generation can
// carry load — at a different cost.
//
// The policy treats the portfolio's total deliverable power as the budget
// at admission time, and tracks how the load would be dispatched across
// sources at every tick (cost and turbine-utilisation telemetry).
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Portfolio-aware budgeting + dispatch telemetry.
class SourceSelectionPolicy final : public EpaPolicy {
 public:
  SourceSelectionPolicy() = default;

  std::string name() const override { return "source-selection"; }

  bool plan_start(StartPlan& plan) override;
  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime now) const override;

  /// Time-integrated cost of the dispatched supply so far.
  double dispatch_cost() const { return cost_; }
  /// kWh served by dispatchable (on-site) sources.
  double dispatchable_kwh() const { return dispatchable_joules_ / 3.6e6; }
  /// Watt-seconds of load no source could serve (should stay ~0 when the
  /// admission budget works).
  double unserved_joules() const { return unserved_joules_; }

 private:
  /// Total deliverable IT watts right now (grid limit + dispatchables,
  /// converted through PUE).
  double deliverable_it_watts(sim::SimTime t) const;

  sim::SimTime last_tick_ = -1;
  double cost_ = 0.0;
  double dispatchable_joules_ = 0.0;
  double unserved_joules_ = 0.0;
};

}  // namespace epajsrm::epa
