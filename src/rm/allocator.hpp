// Node-selection strategies.
//
// Allocation quality is an energy lever twice over in the survey: Q6's
// topology-aware placement shortens communication (indirect energy), and
// variability-aware placement (Inadomi [25], Fraternali [20]) puts work on
// frequency-efficient parts. All allocators select whole idle nodes; an
// eligibility predicate lets the layout service exclude nodes whose PDU or
// cooling loop is in maintenance (CEA row).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/cluster.hpp"

namespace epajsrm::rm {

/// Filter deciding whether a node may receive new work.
using EligibilityFn = std::function<bool(const platform::Node&)>;

/// Whole-node allocator interface.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Selects exactly `nodes` eligible idle nodes, or returns an empty
  /// vector when impossible. Does not mutate the cluster.
  virtual std::vector<platform::NodeId> select(
      const platform::Cluster& cluster, std::uint32_t nodes,
      const EligibilityFn& eligible) const = 0;

  virtual std::string name() const = 0;

  /// Count of nodes currently selectable under `eligible`.
  static std::uint32_t available(const platform::Cluster& cluster,
                                 const EligibilityFn& eligible);

  /// Default eligibility: idle, whole node free.
  static bool default_eligible(const platform::Node& node) {
    return node.state() == platform::NodeState::kIdle &&
           node.cores_free() == node.cores_total();
  }
};

/// Lowest-id-first. In a fat tree with leaf-ordered ids this is already
/// fairly compact; it is the SLURM-default-flavoured baseline.
class FirstFitAllocator final : public Allocator {
 public:
  std::vector<platform::NodeId> select(
      const platform::Cluster& cluster, std::uint32_t nodes,
      const EligibilityFn& eligible) const override;
  std::string name() const override { return "first-fit"; }
};

/// Topology-aware: greedy min-spread growth from the best seed. For each
/// candidate seed, repeatedly adds the eligible node closest (hop metric)
/// to the chosen set; keeps the seed whose final set has the smallest
/// spread. Seeds are sampled to keep the pass O(seeds · n · k).
class TopologyAwareAllocator final : public Allocator {
 public:
  explicit TopologyAwareAllocator(std::uint32_t seed_candidates = 8)
      : seeds_(seed_candidates) {}

  std::vector<platform::NodeId> select(
      const platform::Cluster& cluster, std::uint32_t nodes,
      const EligibilityFn& eligible) const override;
  std::string name() const override { return "topology-aware"; }

 private:
  std::uint32_t seeds_;
};

/// Variability-aware: prefers nodes with the lowest variability multiplier
/// (most power-efficient silicon), breaking ties by id. Under a uniform
/// power cap this also equalises effective frequency (Inadomi's
/// variability-aware power budgeting, first-order).
class VariabilityAwareAllocator final : public Allocator {
 public:
  std::vector<platform::NodeId> select(
      const platform::Cluster& cluster, std::uint32_t nodes,
      const EligibilityFn& eligible) const override;
  std::string name() const override { return "variability-aware"; }
};

}  // namespace epajsrm::rm
