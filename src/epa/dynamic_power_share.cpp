#include "epa/dynamic_power_share.hpp"

#include <algorithm>
#include <vector>

#include "obs/observability.hpp"

namespace epajsrm::epa {

void DynamicPowerSharePolicy::on_tick(sim::SimTime) {
  if (host_ == nullptr || budget_ <= 0.0) return;
  obs::ScopedSpan span =
      obs::span_of(host_->observability(), "epa", "power_rebalance");
  platform::Cluster& cluster = host_->cluster();
  const power::NodePowerModel& model = host_->power_model();
  const platform::PstateTable& pstates = cluster.pstates();

  // Demand = what each powered-on node would draw uncapped at its selected
  // P-state and current load; off/sleeping nodes keep their fixed draws and
  // consume part of the budget off the top.
  std::vector<double> demand(cluster.node_count(), 0.0);
  std::vector<double> floor(cluster.node_count(), 0.0);
  double fixed = 0.0;
  double total_demand = 0.0;
  for (const platform::Node& node : cluster.nodes()) {
    if (!node.schedulable() &&
        node.state() != platform::NodeState::kDraining) {
      fixed += node.current_watts();
      continue;
    }
    const double uncapped = model.watts_at(
        node.config(), pstates.ratio(node.pstate()), node.utilization());
    demand[node.id()] = uncapped;
    floor[node.id()] = node.config().idle_watts * (1.0 + floor_margin_);
    total_demand += uncapped;
  }

  const double distributable = std::max(0.0, budget_ - fixed);
  for (platform::Node& node : cluster.nodes()) {
    const platform::NodeId id = node.id();
    if (demand[id] <= 0.0) continue;
    double cap = total_demand > 0.0
                     ? distributable * demand[id] / total_demand
                     : floor[id];
    cap = std::max(cap, floor[id]);
    // Give idle nodes only their floor; the freed watts implicitly flow to
    // busy nodes on the next tick (their demand share grows).
    host_->set_node_cap(id, cap);
  }
  ++redistributions_;
  if (span.active()) {
    span.attr("budget_watts", budget_);
    span.attr("fixed_watts", fixed);
    span.attr("total_demand_watts", total_demand);
    host_->observability()->metrics().counter("epa.rebalances").add(1);
  }
}

}  // namespace epajsrm::epa
