// Sliding energy-budget scheduling — the batsim-prj family
// (EnergyBud_IDLE / reducePC_IDLE / PC_IDLE), ported onto this repo's
// scheduler boundary.
//
// The model (Kiselev et al., arXiv 2111.08978, motivates the shape):
// shared facilities schedule against a *joules-per-tariff-window*
// allowance, not just an instantaneous watts cap. A budget of joules
// accrues at a rate; a job may start only when its estimated energy fits
// the accrued allowance; the queue is ranked by waiting-time versus
// estimated energy so small/starved jobs drain first; in the reducePC
// variant a system power cap tightens as the allowance depletes; and an
// emergency anti-deadlock mode guarantees the head job eventually runs
// even when the allowance alone would starve it.
//
// The decision logic lives in EnergyBudgetCore, a pure deterministic
// kernel with *no* simulator dependencies: it consumes explicit decision
// events and pass snapshots and returns an ordered decision list. Two
// adapters drive it:
//   * EnergyBudgetScheduler (below) — a sched::SchedulerPolicy running the
//     kernel in-process against live SchedulingContext state;
//   * edc::EnergyBudgetAgent — the same kernel fed exclusively from
//     serialized EDC protocol messages on the far side of a Transport.
// Because every input the kernel reads crosses the EDC boundary losslessly
// (round-trip-exact doubles), an internal run and a loopback-driven
// external run produce bit-identical RunResults — the boundary proof the
// EDC layer rests on (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace epajsrm::epa {

/// The three ported batsim-prj variants.
enum class EnergyBudgetMode : std::uint8_t {
  /// EnergyBud_IDLE: pure joules-allowance admission, no power cap.
  kEnergyBudget,
  /// reducePC_IDLE: joules admission + a system cap that tightens
  /// linearly as the allowance depletes.
  kReducePowerCap,
  /// PC_IDLE: constant system power cap, no joules accounting.
  kPowerCap,
};

const char* to_string(EnergyBudgetMode mode);

struct EnergyBudgetConfig {
  EnergyBudgetMode mode = EnergyBudgetMode::kEnergyBudget;

  /// Allowance ceiling: accrued joules are clamped to this (the sliding
  /// window's capacity). Required > 0 in the joules-accounting modes.
  double window_budget_joules = 0.0;

  /// Window the budget notionally covers; with accrual_rate_watts unset
  /// the accrual rate is window_budget_joules / window.
  sim::SimTime window = sim::kHour;

  /// Joules made available per second (watts). 0 = budget/window.
  double accrual_rate_watts = 0.0;

  /// Fraction of the window budget available at simulation begin.
  double initial_fraction = 0.0;

  /// Anti-deadlock: when the ranked head job has waited this long with no
  /// start anywhere in between, it is admitted regardless of the
  /// allowance (the allowance goes into debt). 0 disables.
  sim::SimTime emergency_timeout = 30 * sim::kMinute;

  /// Cap ceiling for the capping modes; 0 = the cluster's IT peak.
  double power_cap_watts = 0.0;

  /// reducePC: the tightest cap, as a fraction of the ceiling.
  double cap_floor_fraction = 0.25;

  /// batsim-prj parity knob: when set, the static draw of *idle* nodes is
  /// debited from the allowance as it accrues (the _IDLE suffix in the
  /// ported variant names). The idle-node count is the post-admission free
  /// count of the previous pass — an input both sides of the EDC boundary
  /// reconstruct identically, so the debit is replay-safe. Off by default:
  /// the historical allowance semantics are unchanged.
  bool charge_idle_power = false;
};

/// Pure decision kernel shared by the in-process scheduler and the EDC
/// agent. All state transitions are driven by explicit calls; all floating
/// math is plain double arithmetic in a fixed order.
class EnergyBudgetCore {
 public:
  /// One queued job as the kernel sees it. `estimated_energy_joules` is
  /// the submission-time estimate frozen by the core solution (and carried
  /// verbatim in EDC job_submitted messages).
  struct QueuedJob {
    workload::JobId id = platform::kNoJob;
    sim::SimTime submit_time = 0;
    std::uint32_t nodes = 0;
    double estimated_energy_joules = 0.0;
  };

  /// Snapshot of one scheduling pass. `free_nodes` is the authoritative
  /// allocatable count at pass start (carried in the EDC scheduling_pass
  /// message so both sides decrement the same number).
  struct PassInput {
    sim::SimTime now = 0;
    std::uint32_t free_nodes = 0;
    std::vector<QueuedJob> pending;
  };

  struct Decision {
    enum class Type : std::uint8_t { kStartJob, kSetPowerCap };
    Type type = Type::kStartJob;
    workload::JobId job = platform::kNoJob;
    double watts = 0.0;
  };

  explicit EnergyBudgetCore(EnergyBudgetConfig config);

  /// Simulation begins: anchors accrual and derives the cap ceiling from
  /// the machine's IT peak when the config left it 0. `idle_node_watts`
  /// feeds the charge_idle_power debit; with the flag off it is inert (the
  /// default keeps older three-argument call sites byte-compatible).
  void begin(sim::SimTime now, std::uint32_t total_nodes,
             double peak_node_watts, double idle_node_watts = 0.0);

  /// A charged job ended; the difference between its charged estimate and
  /// its actual energy is refunded into the allowance.
  void job_ended(workload::JobId id, double actual_energy_joules);

  /// One scheduling pass: accrues, ranks, admits, and emits cap moves.
  /// Decisions are returned in application order.
  std::vector<Decision> decide(const PassInput& input);

  /// Ranking priority (higher starts first): waiting time over estimated
  /// energy — starved-but-cheap jobs drain the queue.
  static double rank_priority(double wait_seconds, double estimated_joules);

  const EnergyBudgetConfig& config() const { return config_; }
  double available_joules() const { return available_j_; }
  std::uint32_t idle_nodes() const { return idle_nodes_; }
  bool emergency_active() const { return emergency_; }
  std::uint64_t emergency_starts() const { return emergency_starts_; }
  double current_cap_watts() const { return last_cap_watts_; }

 private:
  void accrue(sim::SimTime now);
  double cap_for_allowance() const;
  bool uses_energy_accounting() const {
    return config_.mode != EnergyBudgetMode::kPowerCap;
  }

  EnergyBudgetConfig config_;
  double accrual_rate_w_ = 0.0;
  double cap_ceiling_watts_ = 0.0;
  double idle_node_watts_ = 0.0;

  bool begun_ = false;
  /// Idle-node count the next accrual interval is billed at: total_nodes
  /// at begin, then each pass's post-admission free count.
  std::uint32_t idle_nodes_ = 0;
  sim::SimTime last_accrual_ = 0;
  sim::SimTime last_start_ = 0;
  double available_j_ = 0.0;
  /// Estimates charged for running jobs, refunded at job end. std::map:
  /// deterministic iteration is part of the replay contract.
  std::map<workload::JobId, double> charged_j_;
  double last_cap_watts_ = -1.0;  // -1 = no cap decided yet
  bool emergency_ = false;
  std::uint64_t emergency_starts_ = 0;
};

/// The in-process adapter: runs the kernel as a normal scheduling policy.
/// Requests passes on budget ticks and budget changes (cap tightening is
/// prompt), applies start decisions through try_start and cap decisions
/// through apply_power_cap.
class EnergyBudgetScheduler final : public sched::SchedulerPolicy {
 public:
  explicit EnergyBudgetScheduler(EnergyBudgetConfig config)
      : core_(config) {}

  void schedule(sched::SchedulingContext& ctx) override;
  void on_decision_point(const sched::DecisionPoint& point,
                         sched::SchedulingContext& ctx) override;
  bool wants_pass(sched::DecisionPoint::Kind kind) const override;
  std::string name() const override;

  const EnergyBudgetCore& core() const { return core_; }

  /// Builds the kernel's pass snapshot from a live context (shared with
  /// tests; the EDC agent builds the identical snapshot from messages).
  static EnergyBudgetCore::PassInput snapshot(sched::SchedulingContext& ctx);

 private:
  EnergyBudgetCore core_;
};

}  // namespace epajsrm::epa
