#include "core/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "edc/external_scheduler.hpp"

namespace epajsrm::core {

workload::AppCatalog catalog_for(WorkloadMix mix, std::uint32_t nodes) {
  switch (mix) {
    case WorkloadMix::kStandard:   return workload::AppCatalog::standard();
    case WorkloadMix::kCapability: return workload::AppCatalog::capability(nodes);
    case WorkloadMix::kCapacity:   return workload::AppCatalog::capacity(nodes);
  }
  throw std::logic_error("bad mix");
}

double arrival_rate_for_utilization(const workload::AppCatalog& catalog,
                                    std::uint32_t nodes, double utilization) {
  // Weighted mean of node-hours demanded per job across archetypes
  // (log-uniform size -> mean ≈ (max-min)/ln(max/min); lognormal runtime
  // -> mean = median · exp(sigma²/2)).
  double weight_sum = 0.0;
  double node_hours_per_job = 0.0;
  for (const workload::AppArchetype& a : catalog.archetypes()) {
    // Sizes are clamped to the machine at generation time; clamp here too
    // or the estimate overshoots per-job demand on small machines.
    const double lo = std::min(std::max(1u, a.min_nodes), nodes);
    const double hi =
        std::max<double>(lo + 1, std::min(a.max_nodes, nodes));
    const double mean_nodes = (hi - lo) / std::log(hi / lo);
    const double mean_runtime_h =
        sim::to_hours(a.median_runtime) *
        std::exp(a.runtime_sigma * a.runtime_sigma / 2.0);
    node_hours_per_job += a.weight * mean_nodes * mean_runtime_h;
    weight_sum += a.weight;
  }
  node_hours_per_job /= weight_sum;
  const double capacity_node_hours_per_hour = nodes;
  return utilization * capacity_node_hours_per_hour / node_hours_per_job;
}

void validate(const ScenarioConfig& config) {
  if (config.nodes == 0) {
    throw std::invalid_argument("scenario '" + config.label +
                                "': nodes must be > 0 (empty cluster)");
  }
  if (config.nodes_per_rack == 0) {
    throw std::invalid_argument("scenario '" + config.label +
                                "': nodes_per_rack must be > 0");
  }
  if (config.racks_per_pdu == 0) {
    throw std::invalid_argument("scenario '" + config.label +
                                "': racks_per_pdu must be > 0");
  }
  if (config.horizon <= 0) {
    throw std::invalid_argument("scenario '" + config.label +
                                "': horizon must be positive");
  }
  if (config.pstate_steps == 0) {
    throw std::invalid_argument("scenario '" + config.label +
                                "': pstate_steps must be > 0");
  }
  if (config.top_ghz <= 0.0 || config.bottom_ghz <= 0.0 ||
      config.bottom_ghz > config.top_ghz) {
    throw std::invalid_argument(
        "scenario '" + config.label +
        "': DVFS ladder requires 0 < bottom_ghz <= top_ghz");
  }
  if (config.partitions == 0) {
    throw std::invalid_argument("scenario '" + config.label +
                                "': partitions must be >= 1");
  }
  if (config.skew_window < 0) {
    throw std::invalid_argument("scenario '" + config.label +
                                "': skew_window must be >= 0");
  }
  if (config.energy_budget.has_value()) {
    const epa::EnergyBudgetConfig& eb = *config.energy_budget;
    if (eb.mode != epa::EnergyBudgetMode::kPowerCap &&
        eb.window_budget_joules <= 0.0) {
      throw std::invalid_argument(
          "scenario '" + config.label +
          "': energy budget requires window_budget_joules > 0");
    }
    if (eb.window <= 0) {
      throw std::invalid_argument("scenario '" + config.label +
                                  "': energy-budget window must be > 0");
    }
    if (eb.accrual_rate_watts < 0.0) {
      throw std::invalid_argument(
          "scenario '" + config.label +
          "': energy-budget accrual rate must be >= 0");
    }
    if (eb.initial_fraction < 0.0 || eb.initial_fraction > 1.0) {
      throw std::invalid_argument(
          "scenario '" + config.label +
          "': energy-budget initial_fraction must be in [0,1]");
    }
    if (eb.cap_floor_fraction < 0.0 || eb.cap_floor_fraction > 1.0) {
      throw std::invalid_argument(
          "scenario '" + config.label +
          "': energy-budget cap_floor_fraction must be in [0,1]");
    }
  }
}

namespace {
platform::Cluster build_cluster(const ScenarioConfig& config) {
  validate(config);  // before any construction: throw, don't half-build
  return platform::ClusterBuilder()
      .name(config.label)
      .node_count(config.nodes)
      .node_config(config.node_config)
      .nodes_per_rack(config.nodes_per_rack)
      .racks_per_pdu(config.racks_per_pdu)
      .racks_per_cooling_loop(config.racks_per_cooling_loop)
      .pstates(platform::PstateTable::linear(config.top_ghz,
                                             config.bottom_ghz,
                                             config.pstate_steps))
      .facility_config(config.facility)
      .ambient(config.ambient)
      .variability_sigma(config.variability_sigma, config.seed + 17)
      .build();
}
}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), cluster_(build_cluster(config_)) {
  solution_ =
      std::make_unique<EpaJsrmSolution>(sim_, cluster_, config_.solution);
  solution_->metrics_collector().set_label(config_.label);
  if (config_.external_transport != nullptr) {
    solution_->set_scheduler(std::make_unique<edc::ExternalScheduler>(
        config_.external_transport));
  } else if (config_.energy_budget.has_value()) {
    solution_->set_scheduler(
        std::make_unique<epa::EnergyBudgetScheduler>(*config_.energy_budget));
  }
  if (config_.partitions > 1) {
    PartitionDomainConfig pd;
    pd.partitions = config_.partitions;
    pd.workers = config_.partition_workers;
    pd.skew_window = config_.skew_window;
    pd.control_period = config_.solution.control_period;
    pd.step_thermal = config_.solution.enable_thermal;
    pd.seed = config_.seed;
    domain_ = std::make_unique<PartitionDomain>(cluster_, solution_->ledger(),
                                                solution_->thermal(), pd);
    solution_->attach_partition_domain(domain_.get());
  }
}

ScenarioConfig Scenario::center_config(const survey::CenterProfile& profile,
                                       std::size_t job_count,
                                       std::uint64_t seed) {
  ScenarioConfig config;
  config.label = profile.short_name;
  config.nodes = profile.sim_nodes;

  platform::NodeConfig node;
  node.cores = profile.cores_per_node;
  node.idle_watts = profile.node_idle_watts;
  node.dynamic_watts =
      std::max(1.0, profile.node_peak_watts - profile.node_idle_watts);
  // Thermal design point: full load lands at ~75 C with a ~22 C inlet
  // regardless of the node's absolute wattage.
  node.thermal_resistance = 53.0 / profile.node_peak_watts;
  config.node_config = node;

  // Scale the facility envelope to the replica size.
  const double scale = profile.machine_nodes > 0
                           ? static_cast<double>(profile.sim_nodes) /
                                 profile.machine_nodes
                           : 1.0;
  config.facility.site_power_capacity_watts =
      profile.site_power_capacity_mw * 1e6 * scale;
  config.facility.cooling_capacity_watts =
      config.facility.site_power_capacity_watts;

  config.mix = profile.capability_oriented ? WorkloadMix::kCapability
                                           : WorkloadMix::kCapacity;
  config.job_count = job_count;
  config.seed = seed;
  return config;
}

RunResult Scenario::run() {
  if (ran_) throw std::logic_error("scenario already ran");
  ran_ = true;

  workload::GeneratorConfig gen_config;
  gen_config.machine_nodes = config_.nodes;
  workload::AppCatalog catalog = catalog_for(config_.mix, config_.nodes);
  gen_config.arrival_rate_per_hour =
      config_.arrival_rate_per_hour > 0.0
          ? config_.arrival_rate_per_hour
          : arrival_rate_for_utilization(catalog, config_.nodes,
                                         config_.target_utilization);
  workload::WorkloadGenerator generator(gen_config, std::move(catalog),
                                        config_.seed);
  if (config_.job_count == 0) {
    // Fill the horizon: arrivals stop at 80 % of it so the tail can drain.
    solution_->submit_all(
        generator.generate_until(0, config_.horizon * 4 / 5));
  } else {
    solution_->submit_all(generator.generate(config_.job_count));
  }

  solution_->run_until(config_.horizon);
  return solution_->finalize();
}

}  // namespace epajsrm::core
