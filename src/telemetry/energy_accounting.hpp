// Exact energy accounting and per-job attribution.
//
// In the discrete-event model node power is piecewise constant between
// events, so integrating it exactly is just "bank P·dt at every change".
// The accountant must be checkpointed *before* any action that changes
// power (job start/finish, cap or P-state change, node lifecycle step);
// core::EpaJsrmSolution does this.
//
// Job attribution follows production practice for user energy reports
// (Tokyo Tech / JCAHPC rows): a node's draw is split across its resident
// jobs by allocated-core share (idle draw included — the job occupies the
// node); draw of empty nodes lands in the system-overhead bucket.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/series.hpp"
#include "platform/cluster.hpp"
#include "power/ledger.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace epajsrm::telemetry {

/// Integrates node power and attributes it to jobs. Power is read from
/// the ledger (identical to the node sensor caches by construction);
/// allocation shares still come from the cluster.
class EnergyAccountant {
 public:
  /// `job_resolver` maps a JobId to its runtime record (nullptr when the
  /// job is no longer tracked; its share then falls into overhead).
  EnergyAccountant(platform::Cluster& cluster,
                   const power::PowerLedger& ledger,
                   std::function<workload::Job*(workload::JobId)> job_resolver)
      : cluster_(&cluster), ledger_(&ledger),
        resolve_(std::move(job_resolver)),
        node_energy_(cluster.node_count(), 0.0) {}

  /// Banks energy for [last checkpoint, now] using the *current* cached
  /// node draws, then moves the checkpoint. Call before changing power.
  void checkpoint(sim::SimTime now);

  /// Total IT energy integrated so far (J).
  double total_it_joules() const { return total_joules_; }

  /// Cumulative total-energy curve, one point per checkpoint, retained in
  /// a fixed-budget downsampling store (checkpoints happen on every power
  /// change, so an unbounded record would dwarf the accountant itself).
  const obs::DownsamplingSeries& energy_series() const {
    return energy_series_;
  }

  /// Energy of one node so far (J).
  double node_joules(platform::NodeId id) const { return node_energy_[id]; }

  /// Energy drawn by on-but-empty nodes, boot/shutdown transients, and
  /// untracked jobs (J).
  double overhead_joules() const { return overhead_joules_; }

  sim::SimTime last_checkpoint() const { return last_; }

 private:
  platform::Cluster* cluster_;
  const power::PowerLedger* ledger_;
  std::function<workload::Job*(workload::JobId)> resolve_;
  std::vector<double> node_energy_;
  obs::DownsamplingSeries energy_series_{1024, sim::kMinute};
  double total_joules_ = 0.0;
  double overhead_joules_ = 0.0;
  sim::SimTime last_ = 0;
};

/// End-of-job energy report delivered to the user (Tokyo Tech: "energy use
/// provided to users at end of every job"; plus the efficiency mark they
/// are developing).
struct JobEnergyReport {
  workload::JobId job = platform::kNoJob;
  std::string user;
  std::string tag;
  double energy_kwh = 0.0;
  double average_watts = 0.0;
  double node_hours = 0.0;
  /// kWh per node-hour — the basis of the efficiency grade.
  double kwh_per_node_hour = 0.0;
  /// 'A' (frugal) .. 'E' (power virus), graded against a reference draw.
  char grade = 'C';
};

/// Builds the report for a finished job. `reference_node_watts` is the
/// fleet-typical per-node draw used to centre the grade scale (grade C
/// spans 0.8×..1.2× the reference).
JobEnergyReport make_energy_report(const workload::Job& job,
                                   double reference_node_watts);

/// Renders the report as the user-facing text block.
std::string format_energy_report(const JobEnergyReport& report);

}  // namespace epajsrm::telemetry
