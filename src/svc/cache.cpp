#include "svc/cache.hpp"

namespace epajsrm::svc {

const std::vector<std::string>* ResultCache::find(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

void ResultCache::insert(const std::string& key,
                         std::vector<std::string> payload) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_[key] = lru_.begin();
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace epajsrm::svc
