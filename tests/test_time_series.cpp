#include "telemetry/time_series.hpp"

#include <gtest/gtest.h>

namespace epajsrm::telemetry {
namespace {

TEST(TimeSeries, StartsEmpty) {
  TimeSeries ts(8);
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.capacity(), 8u);
  EXPECT_FALSE(ts.latest().has_value());
}

TEST(TimeSeries, RecordsAndReadsBack) {
  TimeSeries ts(8);
  ts.record(10, 1.5);
  ts.record(20, 2.5);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.at(0).time, 10);
  EXPECT_DOUBLE_EQ(ts.at(1).value, 2.5);
  EXPECT_EQ(ts.latest()->time, 20);
}

TEST(TimeSeries, RejectsTimeTravel) {
  TimeSeries ts(8);
  ts.record(10, 1.0);
  EXPECT_THROW(ts.record(5, 2.0), std::invalid_argument);
  EXPECT_NO_THROW(ts.record(10, 3.0));  // equal times allowed
}

TEST(TimeSeries, RingOverwritesOldest) {
  TimeSeries ts(4);
  for (int i = 0; i < 10; ++i) ts.record(i, static_cast<double>(i));
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.at(0).time, 6);
  EXPECT_EQ(ts.at(3).time, 9);
}

TEST(TimeSeries, OutOfRangeIndexThrows) {
  TimeSeries ts(4);
  ts.record(1, 1.0);
  EXPECT_THROW(ts.at(1), std::out_of_range);
}

TEST(TimeSeries, WindowStats) {
  TimeSeries ts(16);
  for (int i = 0; i <= 10; ++i) ts.record(i * 10, static_cast<double>(i));
  const auto stats = ts.window_stats(30, 70);
  EXPECT_EQ(stats.count, 5u);  // samples at t=30..70
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 3.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
}

TEST(TimeSeries, WindowStatsEmptyWindow) {
  TimeSeries ts(8);
  ts.record(100, 1.0);
  const auto stats = ts.window_stats(0, 50);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(TimeSeries, TrailingMeanUsesWindowFromLatest) {
  TimeSeries ts(16);
  ts.record(0, 100.0);
  ts.record(10, 10.0);
  ts.record(20, 20.0);
  ts.record(30, 30.0);
  EXPECT_DOUBLE_EQ(ts.trailing_mean(20), 20.0);  // t in [10,30]
  EXPECT_DOUBLE_EQ(ts.trailing_mean(0), 30.0);   // just the latest
}

TEST(TimeSeries, TrailingMeanEmpty) {
  TimeSeries ts(4);
  EXPECT_DOUBLE_EQ(ts.trailing_mean(100), 0.0);
}

TEST(TimeSeries, IntegralPiecewiseConstant) {
  TimeSeries ts(8);
  ts.record(0, 100.0);                 // 100 W for 2 s
  ts.record(2 * sim::kSecond, 50.0);   // 50 W for 3 s
  ts.record(5 * sim::kSecond, 0.0);
  EXPECT_NEAR(ts.integral_seconds(), 100.0 * 2 + 50.0 * 3, 1e-9);
}

TEST(TimeSeries, IntegralNeedsTwoSamples) {
  TimeSeries ts(4);
  EXPECT_DOUBLE_EQ(ts.integral_seconds(), 0.0);
  ts.record(0, 42.0);
  EXPECT_DOUBLE_EQ(ts.integral_seconds(), 0.0);
}

TEST(TimeSeries, ZeroCapacityRejected) {
  EXPECT_THROW(TimeSeries(0), std::invalid_argument);
}

}  // namespace
}  // namespace epajsrm::telemetry
