#pragma once

namespace fixture::rogue {
struct Thing {};
}  // namespace fixture::rogue
