// Periodic monitoring service: builds the sensor hierarchy for a cluster
// and samples the headline series every tick. This is the "monitoring"
// half of Figure 1; control policies subscribe as observers to close the
// loop.
//
// Retained series are obs::DownsamplingSeries ring stores: memory per
// series is fixed at `history` buckets and long runs coarsen 2× instead of
// growing or dropping history — million-job traces keep bounded telemetry
// with exact peaks/floors (DESIGN.md §11).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/series.hpp"
#include "platform/cluster.hpp"
#include "power/ledger.hpp"
#include "sim/simulation.hpp"
#include "telemetry/sensor.hpp"

namespace epajsrm::telemetry {

/// Samples cluster sensors on a fixed period and retains key series.
/// All power readings come from the PowerLedger's O(1) aggregates — the
/// monitor is a pure consumer of the Figure 1 monitoring plane.
class MonitoringService {
 public:
  /// Builds node/PDU/machine sensors under "<cluster name>." in `registry`.
  /// `ledger` must cover `cluster` and outlive the service. `history` is
  /// the per-series bucket budget; the sampling period seeds the bucket
  /// width, so series stay sample-exact until the budget forces
  /// coarsening.
  MonitoringService(sim::Simulation& sim, platform::Cluster& cluster,
                    const power::PowerLedger& ledger,
                    sim::SimTime period = 10 * sim::kSecond,
                    std::size_t history = 16384);

  /// Begins periodic sampling (idempotent).
  void start();

  /// Stops sampling at the next tick.
  void stop() { running_ = false; }

  sim::SimTime period() const { return period_; }

  /// Registers an observer called on every tick after sampling; the hook
  /// is how control loops (Figure 1 "control") attach to monitoring.
  void add_observer(std::function<void(sim::SimTime)> observer) {
    observers_.push_back(std::move(observer));
  }

  /// The sensor hierarchy (Power API shape).
  const SensorRegistry& registry() const { return registry_; }

  /// Replaces the utilization source for the retained series (null
  /// restores the cluster sweep). The partition domain installs its
  /// folded exact-integer census here: the identical double, without an
  /// O(N) sweep per tick (DESIGN.md §15). Valid whenever sample() runs —
  /// in partitioned runs ticks are driven by the control loop strictly
  /// after the epoch merge.
  void set_utilization_provider(std::function<double()> provider) {
    utilization_provider_ = std::move(provider);
  }

  /// Attaches (or with null, detaches) the metrics registry. The monitor
  /// then keeps `telemetry.stale_served` (stale-fallback reads served),
  /// `telemetry.dropped_samples` and `telemetry.altered_samples` counters
  /// live — degraded telemetry becomes observable instead of silent.
  void attach_registry(obs::MetricsRegistry* registry);

  // --- retained series ----------------------------------------------------

  const obs::DownsamplingSeries& machine_power() const {
    return machine_power_;
  }
  const obs::DownsamplingSeries& facility_power() const {
    return facility_power_;
  }
  const obs::DownsamplingSeries& utilization() const { return utilization_; }
  const obs::DownsamplingSeries& max_temperature() const {
    return max_temperature_;
  }
  /// Retained series for one PDU, or nullptr for a PDU the facility does
  /// not have — callers must handle the sentinel (telemetry quality varies
  /// by plant; an unknown sensor is data, not a crash).
  const obs::DownsamplingSeries* pdu_power(platform::PduId pdu) const {
    if (static_cast<std::size_t>(pdu) >= pdu_power_.size()) return nullptr;
    return pdu_power_[pdu].get();
  }

  // --- degraded-telemetry support (resilience plane, DESIGN.md §9) --------

  /// Intercepts the machine power sample: given (now, truth) it returns
  /// the value to record, or nullopt to drop the sample entirely (sensor
  /// dropout). The fault injector installs this; null removes it.
  using PowerSampleFilter =
      std::function<std::optional<double>(sim::SimTime, double)>;
  void set_power_sample_filter(PowerSampleFilter filter) {
    power_filter_ = std::move(filter);
  }

  /// Multiplier applied to last-known-good power while the machine power
  /// series is stale (conservative over-estimate so cap policies keep a
  /// safety margin under degraded telemetry).
  void set_stale_safety_margin(double factor) {
    stale_safety_margin_ = factor;
  }

  /// Best available measured machine IT power: the latest retained sample
  /// while fresh (within two periods), last-known-good times the safety
  /// margin while stale, and the live cluster reading before any sample
  /// exists (start-up). Cap policies read this instead of the cluster
  /// ground truth so sensor faults degrade them gracefully instead of
  /// feeding them garbage. Stale serves increment telemetry.stale_served
  /// when a registry is attached.
  double measured_it_watts(sim::SimTime now) const;

  /// True while measured_it_watts is serving a stale (margin-inflated)
  /// value.
  bool telemetry_degraded(sim::SimTime now) const;

  /// Machine power samples dropped by the filter so far.
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  /// Machine power samples the filter altered (stuck/noisy sensors).
  std::uint64_t altered_samples() const { return altered_samples_; }
  /// Stale fallback reads served so far.
  std::uint64_t stale_served() const { return stale_served_; }

  /// Forces one sample now (also used by tests). Does not notify
  /// observers; use tick() for the full sampling + notification step.
  void sample(sim::SimTime now);

  /// One full monitoring step: sample, then notify every observer. This
  /// is what an external driver (core::EpaJsrmSolution's control loop)
  /// calls; start() drives it internally.
  void tick(sim::SimTime now) {
    sample(now);
    for (auto& observer : observers_) observer(now);
  }

  std::uint64_t tick_count() const { return ticks_; }

 private:
  void build_sensors();

  sim::Simulation* sim_;
  platform::Cluster* cluster_;
  const power::PowerLedger* ledger_;
  sim::SimTime period_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;

  SensorRegistry registry_;
  obs::DownsamplingSeries machine_power_;
  obs::DownsamplingSeries facility_power_;
  obs::DownsamplingSeries utilization_;
  std::function<double()> utilization_provider_;
  obs::DownsamplingSeries max_temperature_;
  std::vector<std::unique_ptr<obs::DownsamplingSeries>> pdu_power_;

  PowerSampleFilter power_filter_;
  double stale_safety_margin_ = 1.05;
  std::uint64_t dropped_samples_ = 0;
  std::uint64_t altered_samples_ = 0;
  // Mutable-through-pointer so the const read path (measured_it_watts) can
  // count the stale serves it performs.
  mutable std::uint64_t stale_served_ = 0;
  obs::Counter* stale_served_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* altered_counter_ = nullptr;

  std::vector<std::function<void(sim::SimTime)>> observers_;
};

}  // namespace epajsrm::telemetry
