
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/capmc.cpp" "src/power/CMakeFiles/epajsrm_power.dir/capmc.cpp.o" "gcc" "src/power/CMakeFiles/epajsrm_power.dir/capmc.cpp.o.d"
  "/root/repo/src/power/energy_source.cpp" "src/power/CMakeFiles/epajsrm_power.dir/energy_source.cpp.o" "gcc" "src/power/CMakeFiles/epajsrm_power.dir/energy_source.cpp.o.d"
  "/root/repo/src/power/node_power_model.cpp" "src/power/CMakeFiles/epajsrm_power.dir/node_power_model.cpp.o" "gcc" "src/power/CMakeFiles/epajsrm_power.dir/node_power_model.cpp.o.d"
  "/root/repo/src/power/tariff.cpp" "src/power/CMakeFiles/epajsrm_power.dir/tariff.cpp.o" "gcc" "src/power/CMakeFiles/epajsrm_power.dir/tariff.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/power/CMakeFiles/epajsrm_power.dir/thermal.cpp.o" "gcc" "src/power/CMakeFiles/epajsrm_power.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
