file(REMOVE_RECURSE
  "libepajsrm_platform.a"
)
