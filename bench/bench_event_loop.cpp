// Event-loop throughput bench: drives sim::Simulation through the event
// shapes the framework's hot paths actually produce and reports dispatched
// events per wall second (the BenchSummary JSON line; README "Performance"
// quotes these numbers).
//
// Workloads:
//   cascade    — chains of self-rescheduling one-shot events (arrival ->
//                completion -> arrival ... shape; pure push/pop churn);
//   cancel     — every step schedules a guard event and cancels it before
//                it fires (the walltime-limit pattern: most guards die);
//   repeaters  — many same-period periodic callbacks ticking together
//                (telemetry sensors / control loops; the batched path);
//   mixed      — all three interleaved in one simulation.
//
// Flags:
//   --events=N   approximate dispatched events per workload (default 2M)
//   --smoke      tiny sizes for CI smoke runs (overrides --events)
//   --obs        attach the event-loop profiler + sim.dispatch_ns histogram
//                with the production sampling stride (64); the summary line
//                is labelled event_loop_obs so CI can compare instrumented
//                vs bare throughput (must stay within a few percent)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_summary.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "sim/simulation.hpp"

namespace {

using epajsrm::sim::EventId;
using epajsrm::sim::Simulation;
using epajsrm::sim::SimTime;

/// Run-prep callback: --obs uses it to attach the sampled dispatch hook to
/// each workload's freshly built simulation.
using Instrument = std::function<void(Simulation&)>;

/// Chains of one-shot events: `chains` concurrent chains, each link
/// scheduling the next until `total` events have fired.
std::uint64_t run_cascade(std::uint64_t total, std::uint64_t chains,
                          const Instrument& instrument) {
  Simulation sim;
  instrument(sim);
  std::uint64_t budget = total;
  struct Chain {
    Simulation* sim;
    std::uint64_t* budget;
    SimTime stride;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      sim->schedule_in(stride, *this, "bench.cascade");
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    sim.schedule_at(static_cast<SimTime>(c),
                    Chain{&sim, &budget, static_cast<SimTime>(1 + c % 7)},
                    "bench.cascade");
  }
  sim.run();
  return sim.events_processed();
}

/// The walltime-guard pattern: each fired event schedules a far-future
/// guard and cancels the guard scheduled two steps ago.
std::uint64_t run_cancel(std::uint64_t total, const Instrument& instrument) {
  Simulation sim;
  instrument(sim);
  std::uint64_t budget = total;
  std::vector<EventId> guards;
  guards.reserve(total + 2);
  struct Step {
    Simulation* sim;
    std::uint64_t* budget;
    std::vector<EventId>* guards;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      guards->push_back(
          sim->schedule_in(1'000'000, [] {}, "bench.guard"));
      if (guards->size() >= 2) {
        const EventId victim = (*guards)[guards->size() - 2];
        sim->cancel(victim);
      }
      sim->schedule_in(3, *this, "bench.cancel");
    }
  };
  sim.schedule_at(0, Step{&sim, &budget, &guards}, "bench.cancel");
  sim.run();
  // Drain: the last guard plus the final no-op step still fire.
  return sim.events_processed();
}

/// Many same-phase periodic callbacks: `sensors` repeaters with one shared
/// period, ticking until each has fired `ticks` times.
std::uint64_t run_repeaters(std::uint64_t sensors, std::uint64_t ticks,
                            const Instrument& instrument) {
  Simulation sim;
  instrument(sim);
  std::vector<std::uint64_t> fired(sensors, 0);
  for (std::uint64_t s = 0; s < sensors; ++s) {
    sim.schedule_every(
        10,
        [&fired, s, ticks]() -> bool { return ++fired[s] < ticks; },
        "bench.sensor");
  }
  sim.run();
  return sim.events_processed();
}

/// All three shapes sharing one queue.
std::uint64_t run_mixed(std::uint64_t total, const Instrument& instrument) {
  Simulation sim;
  instrument(sim);
  std::uint64_t budget = total / 2;
  std::vector<EventId> guards;
  guards.reserve(budget + 2);
  struct Step {
    Simulation* sim;
    std::uint64_t* budget;
    std::vector<EventId>* guards;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      guards->push_back(sim->schedule_in(500'000, [] {}, "bench.guard"));
      if (guards->size() >= 2) {
        sim->cancel((*guards)[guards->size() - 2]);
      }
      sim->schedule_in(2, *this, "bench.mixed");
    }
  };
  sim.schedule_at(0, Step{&sim, &budget, &guards}, "bench.mixed");
  const std::uint64_t sensors = 64;
  const std::uint64_t ticks = total / 2 / sensors;
  std::vector<std::uint64_t> fired(sensors, 0);
  for (std::uint64_t s = 0; s < sensors; ++s) {
    sim.schedule_every(
        7, [&fired, s, ticks]() -> bool { return ++fired[s] < ticks; },
        "bench.sensor");
  }
  sim.run();
  return sim.events_processed();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 2'000'000;
  bool obs_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--events=", 9) == 0) {
      events = std::strtoull(argv[i] + 9, nullptr, 10);
      if (events == 0) {
        std::fprintf(stderr, "--events needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      events = 20'000;
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      obs_mode = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  // With --obs, wire the same instruments core::Solution attaches in
  // production: the sampled per-event profiler plus the sim.dispatch_ns
  // histogram, at the default stride. The sim only reads the clock on
  // sampled events, so throughput must stay within a few percent of bare.
  epajsrm::obs::MetricsRegistry registry;
  epajsrm::obs::LoopProfiler profiler;
  constexpr std::uint32_t kObsStride = 64;
  Instrument instrument = [](Simulation&) {};
  if (obs_mode) {
    epajsrm::obs::Histogram* dispatch_ns =
        &registry.histogram("sim.dispatch_ns");
    profiler.set_sample_stride(kObsStride);
    instrument = [&profiler, dispatch_ns](Simulation& sim) {
      sim.set_dispatch_sample_stride(kObsStride);
      sim.set_dispatch_hook([&profiler, dispatch_ns](
                                epajsrm::sim::EventCategory category,
                                std::int64_t wall_ns) {
        profiler.record(category, wall_ns);
        dispatch_ns->observe(static_cast<double>(wall_ns));
      });
    };
  }

  epajsrm::bench::BenchSummary summary(obs_mode ? "event_loop_obs"
                                                : "event_loop");
  struct Row {
    const char* name;
    std::uint64_t dispatched;
    double wall_ms;
  };
  std::vector<Row> rows;
  const auto timed = [&](const char* name, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t n = fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    rows.push_back({name, n, ms});
    summary.add_events(n);
  };

  timed("cascade", [&] { return run_cascade(events, 64, instrument); });
  timed("cancel", [&] { return run_cancel(events / 2, instrument); });
  timed("repeaters",
        [&] { return run_repeaters(256, events / 256, instrument); });
  timed("mixed", [&] { return run_mixed(events, instrument); });

  std::printf("%-12s %14s %10s %14s\n", "workload", "events", "wall ms",
              "events/sec");
  for (const Row& r : rows) {
    const double eps = r.wall_ms > 0.0 ? r.dispatched / (r.wall_ms / 1e3) : 0.0;
    std::printf("%-12s %14llu %10.1f %14.0f\n", r.name,
                static_cast<unsigned long long>(r.dispatched), r.wall_ms, eps);
  }
  if (obs_mode) {
    const epajsrm::obs::Histogram& h = registry.histogram("sim.dispatch_ns");
    std::printf("\nsampled dispatch cost (every %u-th event, %llu samples): "
                "p50<=%.0fns p99<=%.0fns max=%.0fns\n",
                kObsStride, static_cast<unsigned long long>(h.count()),
                h.quantile(0.50), h.quantile(0.99), h.max());
    std::fputs(profiler.format_report().c_str(), stdout);
  }
  return 0;
}
