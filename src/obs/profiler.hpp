// Event-loop profiler: attributes the simulator's wall-clock time to
// callback categories so perf work has a baseline.
//
// sim::Simulation invokes an attached dispatch hook with (category,
// wall_ns) after every callback; the profiler aggregates per category.
// sim::EventCategory wraps a static string literal fixed at scheduling
// time, so the hot path keys the accumulation map by the literal's
// address — no string hashing per event. Equal-content literals from
// different translation units are merged by name at report time.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_category.hpp"

namespace epajsrm::obs {

/// Accumulates per-category dispatch costs for one simulation run.
class LoopProfiler {
 public:
  /// Adds one dispatched callback of `category` costing `wall_ns`.
  void record(sim::EventCategory category, std::int64_t wall_ns) {
    Bucket& b = buckets_[category.name()];
    ++b.count;
    b.total_ns += wall_ns;
    if (wall_ns > b.max_ns) b.max_ns = wall_ns;
    ++total_events_;
    total_ns_ += wall_ns;
  }

  struct CategoryStats {
    std::string category;
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
  };

  std::uint64_t total_events() const { return total_events_; }
  std::int64_t total_wall_ns() const { return total_ns_; }

  /// Declares that only every Nth dispatched event reaches record() (the
  /// simulation's dispatch sampling stride). Counts and totals stay raw
  /// sample counts; events_per_sec is a per-event ratio and is unbiased
  /// under sampling. Purely informational — surfaced in format_report.
  void set_sample_stride(std::uint32_t stride) {
    stride_ = stride == 0 ? 1 : stride;
  }
  std::uint32_t sample_stride() const { return stride_; }

  /// Dispatched events per wall second (0 when nothing was recorded).
  double events_per_sec() const;

  /// Per-category stats, merged by name, sorted by total time descending.
  std::vector<CategoryStats> report() const;

  /// Human-readable table: one line per category plus a totals line.
  std::string format_report() const;

  void reset();

 private:
  struct Bucket {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
  };
  std::unordered_map<const char*, Bucket> buckets_;
  std::uint64_t total_events_ = 0;
  std::int64_t total_ns_ = 0;
  std::uint32_t stride_ = 1;
};

}  // namespace epajsrm::obs
