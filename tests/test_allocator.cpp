#include "rm/allocator.hpp"

#include <gtest/gtest.h>

namespace epajsrm::rm {
namespace {

platform::Cluster make_cluster(std::uint32_t nodes = 64,
                               double sigma = 0.0) {
  return platform::ClusterBuilder()
      .node_count(nodes)
      .topology(std::make_unique<platform::FatTreeTopology>(4, 3))
      .variability_sigma(sigma, 3)
      .build();
}

TEST(FirstFit, PicksLowestIds) {
  platform::Cluster c = make_cluster();
  FirstFitAllocator alloc;
  const auto picked = alloc.select(c, 4, Allocator::default_eligible);
  EXPECT_EQ(picked, (std::vector<platform::NodeId>{0, 1, 2, 3}));
}

TEST(FirstFit, SkipsIneligible) {
  platform::Cluster c = make_cluster();
  c.node(1).set_state(platform::NodeState::kOff);
  c.node(2).allocate(99, c.node(2).cores_total());
  FirstFitAllocator alloc;
  const auto picked = alloc.select(c, 3, Allocator::default_eligible);
  EXPECT_EQ(picked, (std::vector<platform::NodeId>{0, 3, 4}));
}

TEST(FirstFit, FailsWhenNotEnough) {
  platform::Cluster c = make_cluster(8);
  FirstFitAllocator alloc;
  EXPECT_TRUE(alloc.select(c, 9, Allocator::default_eligible).empty());
}

TEST(Allocator, AvailableCountsEligible) {
  platform::Cluster c = make_cluster(8);
  c.node(0).set_state(platform::NodeState::kOff);
  EXPECT_EQ(Allocator::available(c, Allocator::default_eligible), 7u);
}

TEST(TopologyAware, ProducesCompactAllocationsInFragmentedMachine) {
  platform::Cluster c = make_cluster(64);
  // Fragment: occupy every other node in the first half of the machine;
  // leave a pristine contiguous block in the second half.
  for (platform::NodeId id = 0; id < 32; id += 2) {
    c.node(id).allocate(99, c.node(id).cores_total());
  }
  TopologyAwareAllocator topo;
  FirstFitAllocator first;
  const auto t = topo.select(c, 8, Allocator::default_eligible);
  const auto f = first.select(c, 8, Allocator::default_eligible);
  ASSERT_EQ(t.size(), 8u);
  ASSERT_EQ(f.size(), 8u);
  EXPECT_LE(c.topology().allocation_spread(t),
            c.topology().allocation_spread(f));
}

TEST(TopologyAware, ExactFitReturnsAllCandidates) {
  platform::Cluster c = make_cluster(8);
  TopologyAwareAllocator topo;
  const auto picked = topo.select(c, 8, Allocator::default_eligible);
  EXPECT_EQ(picked.size(), 8u);
}

TEST(TopologyAware, FailsWhenInsufficient) {
  platform::Cluster c = make_cluster(8);
  TopologyAwareAllocator topo;
  EXPECT_TRUE(topo.select(c, 9, Allocator::default_eligible).empty());
}

TEST(TopologyAware, ResultSortedAndUnique) {
  platform::Cluster c = make_cluster(64);
  TopologyAwareAllocator topo;
  const auto picked = topo.select(c, 12, Allocator::default_eligible);
  ASSERT_EQ(picked.size(), 12u);
  for (std::size_t i = 1; i < picked.size(); ++i) {
    EXPECT_LT(picked[i - 1], picked[i]);
  }
}

TEST(VariabilityAware, PrefersEfficientSilicon) {
  platform::Cluster c = make_cluster(16, 0.05);
  VariabilityAwareAllocator alloc;
  const auto picked = alloc.select(c, 4, Allocator::default_eligible);
  ASSERT_EQ(picked.size(), 4u);
  // Every picked node must have variability <= every unpicked node.
  double worst_picked = 0.0;
  for (platform::NodeId id : picked) {
    worst_picked = std::max(worst_picked, c.node(id).config().variability);
  }
  for (const platform::Node& n : c.nodes()) {
    if (std::find(picked.begin(), picked.end(), n.id()) == picked.end()) {
      EXPECT_GE(n.config().variability, worst_picked - 1e-12);
    }
  }
}

TEST(VariabilityAware, FallsBackToIdOrderWithoutVariability) {
  platform::Cluster c = make_cluster(16, 0.0);
  VariabilityAwareAllocator alloc;
  const auto picked = alloc.select(c, 3, Allocator::default_eligible);
  EXPECT_EQ(picked, (std::vector<platform::NodeId>{0, 1, 2}));
}

}  // namespace
}  // namespace epajsrm::rm
