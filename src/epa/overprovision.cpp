#include "epa/overprovision.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace epajsrm::epa {

bool OverprovisionPolicy::plan_start(StartPlan& plan) {
  if (host_ == nullptr || budget_ <= 0.0 || plan.job == nullptr) return true;

  const platform::Cluster& cluster = host_->cluster();
  const power::NodePowerModel& model = host_->power_model();
  const platform::PstateTable& pstates = cluster.pstates();
  const workload::JobSpec& spec = plan.job->spec();
  const double idle = cluster.node(0).config().idle_watts;
  const double dyn_per_node =
      std::max(0.0, plan.predicted_node_watts - idle);

  const double headroom = budget_ - host_->ledger().it_power_watts();

  // Candidate shapes: the planned one plus any moldable alternatives.
  struct Candidate {
    std::uint32_t nodes;
    double runtime_scale;
    std::uint32_t pstate;
    double score;  // completed work per joule, higher is better
  };
  std::vector<Candidate> candidates;

  const auto consider = [&](std::uint32_t nodes, double runtime_scale) {
    if (nodes == 0) return;
    for (std::uint32_t p = 0; p <= pstates.deepest(); ++p) {
      const double ratio = pstates.ratio(p);
      const double delta =
          dyn_per_node * std::pow(ratio, model.alpha()) * nodes;
      if (delta > headroom) continue;  // does not fit: deeper state maybe
      // Runtime at this shape/state (Etinski model with the job's beta).
      const double beta = spec.profile.freq_sensitive_fraction;
      const double time_factor =
          runtime_scale * (beta / ratio + (1.0 - beta));
      const double watts = nodes * (idle + dyn_per_node *
                                               std::pow(ratio, model.alpha()));
      // Score: inverse energy-delay product of the configuration.
      const double score = 1.0 / (time_factor * time_factor * watts);
      candidates.push_back({nodes, runtime_scale, p, score});
      break;  // fastest fitting state for this shape is enough
    }
  };

  consider(plan.nodes, plan.runtime_scale);
  for (const workload::MoldableConfig& m : spec.moldable) {
    if (m.nodes == plan.nodes) continue;
    consider(m.nodes, m.runtime_scale);
  }

  if (candidates.empty()) return false;  // nothing fits: wait

  const Candidate* best = &candidates.front();
  for (const Candidate& c : candidates) {
    if (c.score > best->score) best = &c;
  }
  if ((best->nodes != plan.nodes || best->pstate != plan.pstate) &&
      !plan.dry_run) {
    ++reshaped_;
  }
  plan.nodes = best->nodes;
  plan.runtime_scale = best->runtime_scale;
  plan.pstate = std::max(plan.pstate, best->pstate);
  return true;
}

}  // namespace epajsrm::epa
