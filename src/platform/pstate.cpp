#include "platform/pstate.hpp"

namespace epajsrm::platform {

PstateTable::PstateTable(std::vector<double> freqs_ghz)
    : freqs_ghz_(std::move(freqs_ghz)) {
  if (freqs_ghz_.empty()) {
    throw std::invalid_argument("pstate table must not be empty");
  }
  for (std::size_t i = 0; i < freqs_ghz_.size(); ++i) {
    if (freqs_ghz_[i] <= 0.0) {
      throw std::invalid_argument("pstate frequencies must be positive");
    }
    if (i > 0 && freqs_ghz_[i] >= freqs_ghz_[i - 1]) {
      throw std::invalid_argument(
          "pstate frequencies must be strictly decreasing");
    }
  }
}

PstateTable PstateTable::linear(double top_ghz, double bottom_ghz,
                                std::uint32_t steps) {
  if (steps == 0) throw std::invalid_argument("steps must be >= 1");
  if (steps == 1) return PstateTable({top_ghz});
  if (bottom_ghz >= top_ghz || bottom_ghz <= 0.0) {
    throw std::invalid_argument("need 0 < bottom < top");
  }
  std::vector<double> freqs(steps);
  for (std::uint32_t i = 0; i < steps; ++i) {
    freqs[i] = top_ghz - (top_ghz - bottom_ghz) * i / (steps - 1);
  }
  return PstateTable(std::move(freqs));
}

std::uint32_t PstateTable::state_at_or_below(double ratio) const {
  for (std::uint32_t i = 0; i < freqs_ghz_.size(); ++i) {
    if (this->ratio(i) <= ratio + 1e-12) return i;
  }
  return deepest();
}

}  // namespace epajsrm::platform
