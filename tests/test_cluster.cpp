#include "platform/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

namespace epajsrm::platform {
namespace {

Cluster small_cluster(std::uint32_t nodes = 32, double sigma = 0.0) {
  return ClusterBuilder()
      .name("test")
      .node_count(nodes)
      .nodes_per_rack(8)
      .racks_per_pdu(2)
      .racks_per_cooling_loop(2)
      .variability_sigma(sigma)
      .build();
}

TEST(ClusterBuilder, BuildsRequestedNodeCount) {
  Cluster c = small_cluster(32);
  EXPECT_EQ(c.node_count(), 32u);
  EXPECT_EQ(c.name(), "test");
}

TEST(ClusterBuilder, GroupsNodesIntoPdusAndLoops) {
  Cluster c = small_cluster(32);
  // 32 nodes / 8 per rack = 4 racks; 2 racks/pdu = 2 pdus; 2 racks/loop = 2.
  EXPECT_EQ(c.facility().pdus().size(), 2u);
  EXPECT_EQ(c.facility().cooling_loops().size(), 2u);
  std::set<NodeId> seen;
  for (const Pdu& pdu : c.facility().pdus()) {
    EXPECT_EQ(pdu.nodes.size(), 16u);
    seen.insert(pdu.nodes.begin(), pdu.nodes.end());
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(ClusterBuilder, NodePlantBackreferencesConsistent) {
  Cluster c = small_cluster(32);
  for (const Node& node : c.nodes()) {
    const Pdu& pdu = c.facility().pdu(node.pdu());
    EXPECT_NE(std::find(pdu.nodes.begin(), pdu.nodes.end(), node.id()),
              pdu.nodes.end());
  }
}

TEST(ClusterBuilder, VariabilityDrawsSpread) {
  Cluster c = small_cluster(64, 0.05);
  double lo = 10.0, hi = 0.0;
  for (const Node& n : c.nodes()) {
    lo = std::min(lo, n.config().variability);
    hi = std::max(hi, n.config().variability);
  }
  EXPECT_LT(lo, 1.0);
  EXPECT_GT(hi, 1.0);
  EXPECT_GE(lo, 1.0 - 0.15);  // 3-sigma clamp
  EXPECT_LE(hi, 1.0 + 0.15);
}

TEST(ClusterBuilder, VariabilityDeterministicPerSeed) {
  Cluster a = ClusterBuilder().node_count(16).variability_sigma(0.04, 5).build();
  Cluster b = ClusterBuilder().node_count(16).variability_sigma(0.04, 5).build();
  for (NodeId i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.node(i).config().variability,
                     b.node(i).config().variability);
  }
}

TEST(ClusterBuilder, ZeroNodesRejected) {
  EXPECT_THROW(ClusterBuilder().node_count(0).build(), std::invalid_argument);
}

TEST(Cluster, CountsByState) {
  Cluster c = small_cluster(8);
  EXPECT_EQ(c.count_in_state(NodeState::kIdle), 8u);
  c.node(0).set_state(NodeState::kOff);
  c.node(1).set_state(NodeState::kOff);
  EXPECT_EQ(c.count_in_state(NodeState::kOff), 2u);
  EXPECT_EQ(c.nodes_in_state(NodeState::kOff).size(), 2u);
}

TEST(Cluster, CoreAccountingTracksAllocations) {
  Cluster c = small_cluster(4);
  const std::uint64_t per_node = c.node(0).cores_total();
  EXPECT_EQ(c.cores_total(), 4 * per_node);
  c.node(0).allocate(1, static_cast<std::uint32_t>(per_node));
  EXPECT_EQ(c.cores_free(), 3 * per_node);
  EXPECT_NEAR(c.core_utilization(), 0.25, 1e-12);
}

TEST(Cluster, OffNodesLeaveSchedulablePool) {
  Cluster c = small_cluster(4);
  c.node(3).set_state(NodeState::kOff);
  const std::uint64_t per_node = c.node(0).cores_total();
  EXPECT_EQ(c.cores_total(), 3 * per_node);
}

TEST(Cluster, PowerAggregationSumsCachedDraws) {
  Cluster c = small_cluster(32);
  for (Node& n : c.nodes()) n.set_current_watts(100.0);
  EXPECT_DOUBLE_EQ(c.it_power_watts(), 3200.0);
  EXPECT_DOUBLE_EQ(c.pdu_power_watts(0), 1600.0);
  EXPECT_DOUBLE_EQ(c.cooling_load_watts(1), 1600.0);
}

TEST(Cluster, NodeAccessorBoundsChecked) {
  Cluster c = small_cluster(4);
  EXPECT_THROW(c.node(4), std::out_of_range);
}

TEST(Cluster, DefaultTopologyCoversNodes) {
  Cluster c = small_cluster(100);
  EXPECT_GE(c.topology().node_count(), 100u);
}

}  // namespace
}  // namespace epajsrm::platform
